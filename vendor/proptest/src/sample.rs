//! Sampling strategies: `subsequence`.

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct Subsequence<T: Clone> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let len = self.values.len();
        let lo = self.size.lo.min(len);
        let hi = self.size.hi.min(len);
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        // choose n distinct indices by a partial Fisher-Yates, then sort
        // so the subsequence preserves the source order
        let mut idx: Vec<usize> = (0..len).collect();
        for i in 0..n {
            let j = i + rng.below((len - i) as u64) as usize;
            idx.swap(i, j);
        }
        let mut chosen: Vec<usize> = idx[..n].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.values[i].clone()).collect()
    }
}

/// A random subsequence (order-preserving subset) of `values`, with size
/// drawn from `size` (clamped to the available length).
pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        values,
        size: size.into(),
    }
}
