//! The `Strategy` trait and the core combinators (no shrinking).

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`] and [`Union`].
trait DynStrategy {
    type Value;
    fn gen_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.gen_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// `prop_oneof!`: one arm chosen uniformly per case.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

// ------------------------------------------------------ range strategies

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ------------------------------------------------------ tuple strategies

macro_rules! impl_tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
