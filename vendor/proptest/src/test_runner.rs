//! Deterministic case generation: config + the test RNG (SplitMix64).

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// FNV-1a over a test name: the per-test seed base (stable across runs,
/// so failures reproduce deterministically).
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64: tiny, fast, deterministic; plenty for case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fnv_differs_by_name() {
        assert_ne!(fnv1a("alpha"), fnv1a("beta"));
    }
}
