//! `any::<T>()` for the primitive types this workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for the whole domain of `T`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}
