//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's size.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, size)`: a vector whose length is drawn from `size` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
