//! Offline stand-in for the `proptest` crate (the build environment has
//! no registry access). Implements the subset this workspace uses:
//!
//! * [`strategy::Strategy`] with `prop_map`, `boxed`, tuple/range/`Just`
//!   strategies, [`collection::vec`], [`sample::subsequence`],
//!   [`arbitrary::any`], and the [`prop_oneof!`] union macro;
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`,
//!   `pat in strategy` bindings, and `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (stable across runs — failures reproduce exactly), and
//! there is **no shrinking**: a failing case reports its inputs verbatim.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `prop_oneof![s1, s2, ...]`: choose one of the arm strategies uniformly
/// per generated case. (Upstream's `weight => strategy` form is not
/// needed by this workspace and is not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The test macro. Each `fn name(pat in strategy, ...) { body }` becomes a
/// `#[test]`-able function running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __seed = $crate::test_runner::fnv1a(stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::new(__seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0usize..10, (a, b) in (-5i64..5, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&a));
            let _ = b;
        }

        #[test]
        fn mapped_vec(v in crate::collection::vec((0usize..4, -3i32..3), 0..12)) {
            prop_assert!(v.len() < 12);
            for (i, x) in v {
                prop_assert!(i < 4 && (-3..3).contains(&x));
            }
        }

        #[test]
        fn oneof_and_subsequence(
            pick in prop_oneof![Just(1u8), Just(2u8), (3u8..6).prop_map(|v| v)],
            sub in crate::sample::subsequence(vec![0usize, 1, 2, 3, 4], 1..=5),
        ) {
            prop_assert!((1..6).contains(&pick));
            prop_assert!(!sub.is_empty());
            // order preserved
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0usize..100, 0..20);
        let mut r1 = crate::test_runner::TestRng::new(9);
        let mut r2 = crate::test_runner::TestRng::new(9);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
