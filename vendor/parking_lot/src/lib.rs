//! Offline stand-in for the `parking_lot` crate (the build environment has
//! no registry access). Implements the subset of the API this workspace
//! uses — `Mutex`, `RwLock`, `ReentrantMutex` and their guards — over
//! `std::sync` primitives, with parking_lot's no-poisoning semantics
//! (a panicked holder does not poison the lock for later users).

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{
    RwLock as StdRwLock, RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};
use std::thread::ThreadId;

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// --------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized>(StdRwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ------------------------------------------------------- ReentrantMutex

struct ReentrantState {
    owner: Option<ThreadId>,
    depth: usize,
}

/// A mutex that the owning thread can lock again without deadlocking.
pub struct ReentrantMutex<T: ?Sized> {
    state: StdMutex<ReentrantState>,
    cond: Condvar,
    data: UnsafeCell<T>,
}

// Safety: the state machine guarantees at most one thread holds the lock
// (at any depth) at a time, and guards hand out only shared references.
unsafe impl<T: ?Sized + Send> Send for ReentrantMutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for ReentrantMutex<T> {}

pub struct ReentrantMutexGuard<'a, T: ?Sized>(&'a ReentrantMutex<T>);

impl<T> ReentrantMutex<T> {
    pub const fn new(value: T) -> Self {
        ReentrantMutex {
            state: StdMutex::new(ReentrantState {
                owner: None,
                depth: 0,
            }),
            cond: Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T: ?Sized> ReentrantMutex<T> {
    pub fn lock(&self) -> ReentrantMutexGuard<'_, T> {
        let me = std::thread::current().id();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match st.owner {
                None => {
                    st.owner = Some(me);
                    st.depth = 1;
                    return ReentrantMutexGuard(self);
                }
                Some(owner) if owner == me => {
                    st.depth += 1;
                    return ReentrantMutexGuard(self);
                }
                Some(_) => {
                    st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

impl<'a, T: ?Sized> Deref for ReentrantMutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: we hold the (reentrant) lock, and guards are !Send.
        unsafe { &*self.0.data.get() }
    }
}

impl<'a, T: ?Sized> Drop for ReentrantMutexGuard<'a, T> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        st.depth -= 1;
        if st.depth == 0 {
            st.owner = None;
            drop(st);
            self.0.cond.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_unpoisoned() {
        let m = Arc::new(Mutex::new(0i32));
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn reentrant_lock_same_thread() {
        static M: ReentrantMutex<()> = ReentrantMutex::new(());
        let _a = M.lock();
        let _b = M.lock(); // must not deadlock
    }

    #[test]
    fn reentrant_excludes_other_threads() {
        let m = Arc::new(ReentrantMutex::new(()));
        let g = m.lock();
        let m2 = m.clone();
        let h = std::thread::spawn(move || {
            let _g = m2.lock();
            true
        });
        // give the thread a moment to block, then release
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(g);
        assert!(h.join().unwrap());
    }
}
