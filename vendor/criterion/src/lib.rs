//! Offline stand-in for the `criterion` crate (the build environment has
//! no registry access). Implements the subset this workspace's benches
//! use — `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — measuring wall-clock
//! time and printing a criterion-style one-line summary per benchmark.
//!
//! No statistics engine: each benchmark reports min/mean/max over the
//! measured samples. A positional CLI argument acts as a substring
//! filter on benchmark names, like upstream.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Clone, Copy)]
struct MeasureConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 50,
        }
    }
}

pub struct Criterion {
    filter: Option<String>,
    config: MeasureConfig,
}

impl Default for Criterion {
    fn default() -> Self {
        // first positional (non-flag) CLI arg = name filter, as upstream
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            config: MeasureConfig::default(),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name.into_id(), self.filter.as_deref(), self.config, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: MeasureConfig,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(
            full,
            self.criterion.filter.as_deref(),
            self.config,
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Copy, Debug)]
pub enum SamplingMode {
    Auto,
    Linear,
    Flat,
}

pub struct Bencher {
    config: MeasureConfig,
    /// (total time, iterations) accumulated by the measurement loop.
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `f` called repeatedly; timing covers the whole batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warm-up + calibration
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut calls: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_until {
            black_box(f());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls.max(1) as f64;

        let samples = self.config.sample_size;
        let budget = self.config.measurement_time.as_secs_f64();
        let iters = ((budget / samples as f64) / per_call.max(1e-9)).ceil() as u64;
        let iters = iters.clamp(1, 1_000_000_000);
        self.iters_per_sample = iters;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_until {
            let input = setup();
            black_box(routine(input));
        }
        self.iters_per_sample = 1;
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

fn run_one<F>(
    name: String,
    filter: Option<&str>,
    config: MeasureConfig,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        config,
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let mut line = format!(
        "{name:<50} time:   [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        line.push_str(&format!(
            "  thrpt:  [{:.3e} {unit}]",
            amount / mean.max(1e-12)
        ));
    }
    println!("{line}");
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion {
            filter: None,
            config: MeasureConfig {
                warm_up_time: Duration::from_millis(10),
                measurement_time: Duration::from_millis(50),
                sample_size: 5,
            },
        };
        let mut x = 0u64;
        c.bench_function("selftest/iter", |b| b.iter(|| x = x.wrapping_add(1)));
        assert!(x > 0);
    }

    #[test]
    fn group_and_batched() {
        let mut c = Criterion {
            filter: Some("selftest".into()),
            config: MeasureConfig {
                warm_up_time: Duration::from_millis(5),
                measurement_time: Duration::from_millis(20),
                sample_size: 3,
            },
        };
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("batched", 1), |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            config: MeasureConfig::default(),
        };
        let mut ran = false;
        c.bench_function("other/name", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }
}
