//! Offline stand-in for the `rayon` crate (the build environment has no
//! registry access). Provides genuinely parallel, order-preserving
//! implementations of the API subset this workspace uses:
//!
//! * `slice.par_iter()` / `range.into_par_iter()`
//! * `.map`, `.map_init`, `.cloned`, `.collect::<Vec<_>>()`,
//!   `.reduce(identity, op)`
//! * `ThreadPoolBuilder::new().num_threads(n).build()` + `pool.install(f)`
//!
//! Parallelism model: the index space is split into one contiguous chunk
//! per worker and each chunk is evaluated on a scoped `std::thread`.
//! `map_init` creates one scratch state per chunk (rayon: per worker).
//! Ordering guarantees match rayon: `collect` preserves index order.

use std::cell::Cell;
use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Worker count override installed by `ThreadPool::install`.
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel iterators will use.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

// --------------------------------------------------------- thread pools

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// A "pool" that scopes a worker-count override: closures run under
/// `install` see `current_num_threads() == num_threads`, and parallel
/// iterators inside them split accordingly.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|t| {
            let prev = t.replace(Some(self.num_threads.max(1)));
            let r = f();
            t.set(prev);
            r
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ------------------------------------------------------ iterator model
//
// Every parallel iterator is a pure function of a contiguous index range:
// `eval_chunk(lo, hi)` materializes items `lo..hi` in order. Adapters
// compose on top; drivers split `0..len` across worker threads.

pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    fn pi_len(&self) -> usize;

    /// Materialize items `lo..hi` (callable concurrently from workers).
    fn eval_chunk(&self, lo: usize, hi: usize) -> Vec<Self::Item>;

    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    fn map_init<S, R, I, F>(self, init: I, f: F) -> MapInit<Self, I, F>
    where
        S: Send,
        R: Send,
        I: Fn() -> S + Sync + Send,
        F: Fn(&mut S, Self::Item) -> R + Sync + Send,
    {
        MapInit {
            base: self,
            init,
            f,
        }
    }

    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        T: Clone + Send + 'a,
        Self: ParallelIterator<Item = &'a T>,
    {
        Cloned { base: self }
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let chunks = drive(&self);
        chunks
            .into_iter()
            .map(|c| c.into_iter().fold(identity(), &op))
            .fold(identity(), &op)
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        for chunk in drive(&self) {
            chunk.into_iter().for_each(&f);
        }
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        drive(&self)
            .into_iter()
            .map(|c| c.into_iter().sum::<S>())
            .sum()
    }
}

/// Split `0..len` into one chunk per worker and evaluate the chunks on
/// scoped threads; returns the per-chunk item vectors in index order.
fn drive<P: ParallelIterator>(it: &P) -> Vec<Vec<P::Item>> {
    let len = it.pi_len();
    let workers = current_num_threads().max(1).min(len.max(1));
    if workers <= 1 || len <= 1 {
        return vec![it.eval_chunk(0, len)];
    }
    let chunk = len.div_ceil(workers);
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(len)))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| scope.spawn(move || it.eval_chunk(lo, hi)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    })
}

pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(it: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(it: P) -> Self {
        let mut out = Vec::with_capacity(it.pi_len());
        for chunk in drive(&it) {
            out.extend(chunk);
        }
        out
    }
}

// ------------------------------------------------------------- sources

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

pub struct RangeParIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn pi_len(&self) -> usize {
        self.len
    }

    fn eval_chunk(&self, lo: usize, hi: usize) -> Vec<usize> {
        (self.start + lo..self.start + hi).collect()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

pub struct SliceParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn eval_chunk(&self, lo: usize, hi: usize) -> Vec<&'a T> {
        self.slice[lo..hi].iter().collect()
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

// ------------------------------------------------------------ adapters

pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn eval_chunk(&self, lo: usize, hi: usize) -> Vec<R> {
        self.base
            .eval_chunk(lo, hi)
            .into_iter()
            .map(&self.f)
            .collect()
    }
}

pub struct MapInit<P, I, F> {
    base: P,
    init: I,
    f: F,
}

impl<P, S, R, I, F> ParallelIterator for MapInit<P, I, F>
where
    P: ParallelIterator,
    S: Send,
    R: Send,
    I: Fn() -> S + Sync + Send,
    F: Fn(&mut S, P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn eval_chunk(&self, lo: usize, hi: usize) -> Vec<R> {
        let mut state = (self.init)();
        self.base
            .eval_chunk(lo, hi)
            .into_iter()
            .map(|x| (self.f)(&mut state, x))
            .collect()
    }
}

pub struct Cloned<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Cloned<P>
where
    T: Clone + Send + Sync + 'a,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn eval_chunk(&self, lo: usize, hi: usize) -> Vec<T> {
        self.base.eval_chunk(lo, hi).into_iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn slice_par_iter_cloned_and_reduce() {
        let data: Vec<i64> = (1..=1000).collect();
        let s = data.par_iter().cloned().reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 500_500);
    }

    #[test]
    fn map_init_runs_with_scratch() {
        let v: Vec<usize> = (0..5000)
            .into_par_iter()
            .map_init(
                || vec![0u8; 8],
                |s, i| {
                    s[0] = s[0].wrapping_add(1);
                    i + 1
                },
            )
            .collect();
        assert_eq!(v[4999], 5000);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let n = pool.install(current_num_threads);
        assert_eq!(n, 2);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn parallelism_is_observable() {
        // with >1 workers, a wide map should touch >1 thread
        if current_num_threads() < 2 {
            return;
        }
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..64usize)
            .into_par_iter()
            .map(|i| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
                i
            })
            .collect::<Vec<_>>();
        assert!(seen.lock().unwrap().len() > 1);
    }
}
