//! Offline stand-in for `rand_chacha` (the build environment has no
//! registry access). `ChaCha8Rng` here is a deterministic, seedable
//! generator with the same construction API; its stream is **not** the
//! real ChaCha8 stream (nothing in this workspace depends on that — the
//! generators are used for seeded, self-consistent synthetic data).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaCha8Rng(StdRng);

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        ChaCha8Rng(StdRng::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_and_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let x: f64 = a.random();
        assert!((0.0..1.0).contains(&x));
    }
}
