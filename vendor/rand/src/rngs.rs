//! Concrete generators: `StdRng` (xoshiro256**, deterministic).

use crate::{RngCore, SeedableRng};

/// A fast, high-quality, deterministic generator (xoshiro256**).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // avoid the all-zero state, which xoshiro cannot escape
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
