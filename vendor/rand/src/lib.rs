//! Offline stand-in for the `rand` crate, 0.9 API surface (the build
//! environment has no registry access). Deterministic and seedable; the
//! streams differ from upstream rand (nothing in this workspace depends
//! on upstream's exact streams — generators are seeded and compared
//! against themselves only).

pub mod rngs;
pub mod seq;

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (subset: `seed_from_u64`, `from_seed`).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // splitmix64-expand the u64 into the full seed, as upstream does
        let mut s = state;
        let mut seed = Self::Seed::default();
        for b in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            b.copy_from_slice(&bytes[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `rng.random_range(..)`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface (rand 0.9 names).
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    // rand 0.8 spellings, kept for drop-in compatibility
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.random_bool(p)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
