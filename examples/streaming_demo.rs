//! Ingest-while-query on MVCC snapshots (`storage::snapshot`): one
//! thread streams edge updates into a shared adjacency matrix while
//! another repeatedly snapshots it and runs BFS — neither ever waits
//! for the other.
//!
//! The writer's point updates land in the pending delta log (O(1)
//! appends, sealed into sorted runs, compacted LSM-style, merged into
//! the base by the background flusher). The reader's `snapshot()` is
//! O(1): it pins the base and the sealed runs at the current epoch, so
//! every query sees one frozen, consistent state no matter how fast
//! the writer moves.
//!
//! Run with: `cargo run --example streaming_demo`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphblas_algorithms::bfs_levels;
use graphblas_core::prelude::*;

const N: usize = 1024;

fn main() -> Result<()> {
    // Merge sealed runs in the background every 25 ms.
    graphblas_core::storage::snapshot::set_session_flush_window_ms(Some(25));

    // A ring so every vertex is reachable from vertex 0 from the start.
    let m = Matrix::<bool>::new(N, N)?;
    for i in 0..N {
        m.set(i, (i + 1) % N, true)?;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let written = Arc::new(AtomicU64::new(0));

    // Ingest thread: stream chords into the ring at full speed.
    let ingest = {
        let m = m.clone();
        let stop = stop.clone();
        let written = written.clone();
        std::thread::spawn(move || -> Result<()> {
            let mut k = 1usize;
            while !stop.load(Ordering::Relaxed) {
                m.set(k % N, (k * k + 7) % N, true)?;
                written.fetch_add(1, Ordering::Relaxed);
                k += 1;
            }
            Ok(())
        })
    };

    // Query thread (here: the main thread). Each round pins a snapshot
    // and BFSes it; the epoch tells us how much the writer had ingested
    // at that instant.
    let ctx = Context::nonblocking();
    let t0 = Instant::now();
    for round in 0..8 {
        let snap = m.snapshot(); // O(1) — no flush, no waiting
        let frozen = snap.to_matrix();
        let levels = bfs_levels(&ctx, &frozen, 0)?;
        let reached = levels.iter().flatten().count();
        let deepest = levels.iter().flatten().max().copied().unwrap_or(0);
        println!(
            "[{:6.1} ms] round {round}: snapshot epoch {:>8} ({} sealed runs) — \
             BFS from 0 reaches {reached}/{N}, eccentricity {deepest}; \
             writer at {} updates",
            t0.elapsed().as_secs_f64() * 1e3,
            snap.epoch(),
            snap.run_count(),
            written.load(Ordering::Relaxed),
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    stop.store(true, Ordering::Relaxed);
    ingest.join().expect("ingest thread")?;

    let stats = snapshot_stats();
    println!(
        "\ningested {} updates; background: {} flushes, {} compactions; \
         final pending: {:?}",
        written.load(Ordering::Relaxed),
        stats.background_flushes,
        stats.compactions,
        m.delta_stats(),
    );
    // Chords only shrink distances: the ring keeps everything reachable.
    let final_levels = bfs_levels(&ctx, &m.snapshot().to_matrix(), 0)?;
    assert_eq!(final_levels.iter().flatten().count(), N);
    Ok(())
}
