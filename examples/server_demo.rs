//! The multi-tenant query service end to end: start a server on an
//! ephemeral port, connect two tenants over TCP, build a graph, fire
//! concurrent BFS (watch them coalesce into fewer engine launches),
//! apply point updates through the delta log, and read the `STATS`
//! report.
//!
//! Run with: `cargo run --release --example server_demo`

use std::sync::atomic::Ordering;

use server::{Client, Reply, Request, Server, Service, ServiceConfig};

fn main() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        queue_cap: 32,
        batch_max: 64,
        ..Default::default()
    });
    let tcp = Server::bind("127.0.0.1:0", svc.clone()).expect("bind ephemeral port");
    println!("serving on {}", tcp.addr());

    // Tenant "alice" (weight 4) builds a small road network.
    let mut alice = Client::connect(tcp.addr(), "alice", 4).expect("connect alice");
    alice
        .call(&Request::CreateGraph {
            graph: "roads".into(),
            nodes: 10,
            tiles: Some((2, 2)),
        })
        .unwrap();
    for (u, v) in [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (0, 6),
        (6, 7),
        (7, 8),
        (8, 9),
    ] {
        alice
            .call(&Request::AddEdge {
                graph: "roads".into(),
                u,
                v,
            })
            .unwrap();
    }
    println!("alice built 'roads' (10 nodes, 9 edges)");

    // Tenant "bob" (weight 1) queries the same shared graph.
    let mut bob = Client::connect(tcp.addr(), "bob", 1).expect("connect bob");
    if let Reply::Ids(hop) = bob
        .call(&Request::OneHop {
            graph: "roads".into(),
            v: 0,
        })
        .unwrap()
    {
        println!("bob: neighbors of 0 -> {hop:?}");
    }

    // Concurrent BFS from many sources: the scheduler coalesces these
    // into column-block frontier sweeps (one masked mxm per level for
    // the whole batch) when they queue up together.
    let handles: Vec<_> = (0..8)
        .map(|src| {
            let addr = tcp.addr();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, "bob", 1).expect("connect");
                match c
                    .call(&Request::Bfs {
                        graph: "roads".into(),
                        src,
                    })
                    .unwrap()
                {
                    Reply::Levels(levels) => (src, levels),
                    other => panic!("bfs failed: {other:?}"),
                }
            })
        })
        .collect();
    for h in handles {
        let (src, levels) = h.join().unwrap();
        println!("bfs from {src}: {levels:?}");
    }
    let stats = svc.stats();
    println!(
        "coalescing: {} BFS requests ran in {} engine launches (largest batch {})",
        stats.bfs_requests.load(Ordering::Relaxed),
        stats.bfs_batches.load(Ordering::Relaxed),
        stats.max_batch.load(Ordering::Relaxed),
    );

    // Point updates go through the pending-update delta log: O(1)
    // amortized, merged at the next completion-forcing read.
    alice
        .call(&Request::AddEdge {
            graph: "roads".into(),
            u: 5,
            v: 0,
        })
        .unwrap();
    alice
        .call(&Request::RemoveEdge {
            graph: "roads".into(),
            u: 0,
            v: 6,
        })
        .unwrap();
    if let Reply::Levels(levels) = alice
        .call(&Request::Bfs {
            graph: "roads".into(),
            src: 0,
        })
        .unwrap()
    {
        println!("after updates, bfs from 0: {levels:?} (6..=9 now unreachable)");
    }

    // The STATS report: global counters plus per-tenant latency
    // quantiles from the lock-free histograms.
    if let Reply::Stats(report) = alice.call(&Request::Stats).unwrap() {
        println!("--- STATS ---\n{report}");
    }

    tcp.shutdown();
    svc.shutdown();
}
