//! The nonblocking scheduler (exec::sched) made visible: a wide DAG
//! drained by the worker pool with the execution trace showing which
//! worker ran what, the sequential policy for comparison, a shared
//! intermediate scheduled once, and the program-order-first error
//! guarantee under injected faults.
//!
//! Run with: `cargo run --example scheduler`

use graphblas_core::prelude::*;
use graphblas_core::SchedPolicy;

fn random_ish(n: usize, seed: u64) -> Vec<(usize, usize, i64)> {
    // a deterministic scatter, dense enough to give the workers real work
    let mut s = seed;
    let mut t = Vec::new();
    for i in 0..n {
        for _ in 0..n / 8 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % n;
            t.push((i, j, ((s >> 11) % 7) as i64 - 3));
        }
    }
    t.sort_by_key(|&(i, j, _)| (i, j));
    t.dedup_by_key(|&mut (i, j, _)| (i, j));
    t
}

fn main() -> Result<()> {
    let n = 256;
    let a = Matrix::from_tuples(n, n, &random_ish(n, 7))?;
    let b = Matrix::from_tuples(n, n, &random_ish(n, 99))?;
    let d = Descriptor::default();

    for policy in [SchedPolicy::Sequential, SchedPolicy::Parallel] {
        println!("--- wide DAG (12 independent mxm), policy {policy:?} ---");
        let ctx = Context::with_policy(Mode::Nonblocking, policy);
        ctx.enable_trace(true);
        let outs: Vec<Matrix<i64>> = (0..12).map(|_| Matrix::new(n, n).unwrap()).collect();
        for out in &outs {
            ctx.mxm(out, NoMask, NoAccum, plus_times::<i64>(), &a, &b, &d)?;
        }
        println!("pending before wait: {}", ctx.pending_ops());
        ctx.wait()?;
        let trace = ctx.take_trace();
        let workers: std::collections::BTreeSet<usize> = trace.iter().map(|e| e.worker).collect();
        println!("scheduled {} nodes on workers {workers:?}", trace.len());
        for e in trace.iter().take(3) {
            println!(
                "  seq={:?} kind={} {}x{} nvals={} queue={}us run={}us worker={}",
                e.seq,
                e.kind,
                e.rows,
                e.cols,
                e.nvals,
                e.queue_ns() / 1000,
                e.run_ns() / 1000,
                e.worker
            );
        }
    }

    println!("\n--- diamond: shared transpose scheduled once ---");
    let ctx = Context::nonblocking_parallel();
    ctx.enable_trace(true);
    let mid = Matrix::<i64>::new(n, n)?;
    let left = Matrix::<i64>::new(n, n)?;
    let right = Matrix::<i64>::new(n, n)?;
    ctx.transpose(&mid, NoMask, NoAccum, &a, &d)?;
    ctx.ewise_add_matrix(&left, NoMask, NoAccum, Plus::new(), &a, &mid, &d)?;
    ctx.ewise_mult_matrix(&right, NoMask, NoAccum, Times::new(), &a, &mid, &d)?;
    ctx.wait()?;
    let trace = ctx.take_trace();
    let kinds: Vec<&str> = trace.iter().map(|e| e.kind).collect();
    println!("trace kinds: {kinds:?} ({} events for 3 ops)", trace.len());

    println!("\n--- §V under concurrency: program-order-first error ---");
    let ctx = Context::nonblocking_parallel();
    let c1 = Matrix::<i64>::new(n, n)?;
    let c2 = Matrix::<i64>::new(n, n)?;
    ctx.mxm(&c1, NoMask, NoAccum, plus_times::<i64>(), &a, &b, &d)?;
    ctx.inject_fault(Error::InjectedFault("first fault in program order".into()));
    ctx.ewise_add_matrix(&c2, NoMask, NoAccum, Plus::new(), &a, &c1, &d)?;
    ctx.inject_fault(Error::InjectedFault("second fault".into()));
    ctx.transpose(&c1, NoMask, NoAccum, &c2, &d)?;
    let err = ctx.wait().unwrap_err();
    println!("wait() -> {err}");
    println!("GrB_error(): {:?}", ctx.error());
    println!(
        "poisoned consumer observation: {:?}",
        c1.extract_tuples().err()
    );
    Ok(())
}
