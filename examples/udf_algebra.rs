//! Two runtime-registered algebras through the C-shaped registration
//! surface (`grb_type_new` / `grb_binary_op_new` / `grb_monoid_new` /
//! `grb_semiring_new`):
//!
//! 1. **Complex PLUS_TIMES** — a 16-byte `(re, im)` struct with complex
//!    addition and multiplication; `mxv` runs a complex matrix-vector
//!    product that no built-in domain can express.
//! 2. **Tropical min-plus with a declared terminal** — min over `f64`
//!    with `+` as multiply; the monoid declares `0.0` absorbing (valid
//!    for non-negative weights), which lets reductions short-circuit
//!    the moment a zero-distance entry is seen.
//!
//! Run with: `cargo run --release --example udf_algebra`

use graphblas_capi::{
    grb_binary_op_new, grb_monoid_new, grb_monoid_terminal_new, grb_semiring_new, grb_type_new,
    operations as ops, with_session_policies, Descriptor, FusePolicy, GrbMatrix, GrbVector, Mode,
    SchedPolicy, Value,
};
use graphblas_core::error::Result;

fn cenc(re: f64, im: f64) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&re.to_ne_bytes());
    b[8..].copy_from_slice(&im.to_ne_bytes());
    b
}

fn cdec(b: &[u8]) -> (f64, f64) {
    (
        f64::from_ne_bytes(b[..8].try_into().unwrap()),
        f64::from_ne_bytes(b[8..].try_into().unwrap()),
    )
}

fn udf_bytes(v: &Value) -> &[u8] {
    match v {
        Value::Udf(u) => u.bytes(),
        other => panic!("expected a registered domain, got {other:?}"),
    }
}

fn complex_demo() -> Result<()> {
    let cplx = grb_type_new("Complex64", 16)?;
    let t = cplx.ty();
    let add = grb_binary_op_new("cplx_plus", t, t, t, |z, x, y| {
        let (xr, xi) = cdec(x);
        let (yr, yi) = cdec(y);
        z.copy_from_slice(&cenc(xr + yr, xi + yi));
    });
    let mul = grb_binary_op_new("cplx_times", t, t, t, |z, x, y| {
        let (xr, xi) = cdec(x);
        let (yr, yi) = cdec(y);
        z.copy_from_slice(&cenc(xr * yr - xi * yi, xr * yi + xi * yr));
    });
    let plus_monoid = grb_monoid_new(&add, &cenc(0.0, 0.0))?;
    let sr = grb_semiring_new(plus_monoid, mul)?;

    with_session_policies(
        Mode::Nonblocking,
        SchedPolicy::Parallel,
        FusePolicy::On,
        || -> Result<()> {
            let d = Descriptor::default();
            // A = [[1+i, 2], [0, -i]], u = [3, 1-i]
            let a = GrbMatrix::new(t, 2, 2)?;
            a.set(0, 0, cplx.value(&cenc(1.0, 1.0))?)?;
            a.set(0, 1, cplx.value(&cenc(2.0, 0.0))?)?;
            a.set(1, 1, cplx.value(&cenc(0.0, -1.0))?)?;
            let u = GrbVector::new(t, 2)?;
            u.set(0, cplx.value(&cenc(3.0, 0.0))?)?;
            u.set(1, cplx.value(&cenc(1.0, -1.0))?)?;

            let w = GrbVector::new(t, 2)?;
            ops::mxv(&w, None, None, &sr, &a, &u, &d)?;

            // w0 = (1+i)·3 + 2·(1-i) = 5+i ; w1 = (-i)·(1-i) = -1-i
            let tuples = w.extract_tuples()?;
            let got: Vec<(usize, (f64, f64))> = tuples
                .iter()
                .map(|(i, v)| (*i, cdec(udf_bytes(v))))
                .collect();
            assert_eq!(got, vec![(0, (5.0, 1.0)), (1, (-1.0, -1.0))]);
            println!("complex mxv: A·u = {got:?}  (5+i, -1-i) ✓");
            Ok(())
        },
    )?
}

fn tropical_demo() -> Result<()> {
    let trop = grb_type_new("TropicalF64", 8)?;
    let t = trop.ty();
    let dec = |b: &[u8]| f64::from_ne_bytes(b.try_into().unwrap());
    let min = grb_binary_op_new("trop_min", t, t, t, move |z, x, y| {
        z.copy_from_slice(if dec(x) <= dec(y) { x } else { y });
    });
    let plus = grb_binary_op_new("trop_plus", t, t, t, move |z, x, y| {
        z.copy_from_slice(&(dec(x) + dec(y)).to_ne_bytes());
    });
    // min over non-negative weights: identity +inf, absorbing 0 — the
    // GxB_Monoid_terminal_new shape; reduce kernels stop on first zero
    let min_monoid =
        grb_monoid_terminal_new(&min, &f64::INFINITY.to_ne_bytes(), &0.0f64.to_ne_bytes())?;
    let sr = grb_semiring_new(min_monoid.clone(), plus)?;

    with_session_policies(
        Mode::Nonblocking,
        SchedPolicy::Parallel,
        FusePolicy::On,
        || -> Result<()> {
            let d = Descriptor::default();
            let n = 4usize;
            // a little weighted path/diamond: 0→1 (1.5), 0→2 (4.0),
            // 1→2 (2.0), 1→3 (6.0), 2→3 (1.0), plus a free 3→3 (0.0)
            let edges = [
                (0, 1, 1.5),
                (0, 2, 4.0),
                (1, 2, 2.0),
                (1, 3, 6.0),
                (2, 3, 1.0),
                (3, 3, 0.0),
            ];
            let a = GrbMatrix::new(t, n, n)?;
            for (i, j, w) in edges {
                a.set(i, j, trop.value(&f64::to_ne_bytes(w))?)?;
            }
            // two-hop distances from vertex 0: d2 = d1 min.+ A
            let d1 = GrbVector::new(t, n)?;
            for (j, w) in [(1usize, 1.5f64), (2, 4.0)] {
                d1.set(j, trop.value(&w.to_ne_bytes())?)?;
            }
            let d2 = GrbVector::new(t, n)?;
            ops::vxm(&d2, None, None, &sr, &d1, &a, &d)?;
            let got: Vec<(usize, f64)> = d2
                .extract_tuples()?
                .iter()
                .map(|(i, v)| (*i, dec(udf_bytes(v))))
                .collect();
            // 0→1→2 = 3.5 beats 0→2 stored hop; 0→2→3 = 5.0 beats 0→1→3
            assert_eq!(got, vec![(2, 3.5), (3, 5.0)]);
            println!("tropical vxm: two-hop frontier = {got:?} ✓");

            // the declared terminal short-circuits a full reduction the
            // moment the absorbing 0.0 (the free self-loop) is folded in
            let total = ops::reduce_matrix_scalar(&min_monoid, &a)?;
            assert_eq!(dec(udf_bytes(&total)), 0.0);
            println!("tropical reduce: min over all edges = 0.0 (terminal hit) ✓");
            Ok(())
        },
    )?
}

fn main() -> Result<()> {
    complex_demo()?;
    tropical_demo()?;
    println!("runtime-defined algebra demos passed");
    Ok(())
}
