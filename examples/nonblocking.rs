//! The execution model (paper §IV) made visible: deferred operations in
//! nonblocking mode, completion forced by `wait()` or by exporting
//! methods, dead intermediates elided, and execution errors surfacing at
//! the sequence boundary (§V).
//!
//! Run with: `cargo run --example nonblocking`

use graphblas_core::prelude::*;

fn main() -> Result<()> {
    let n = 512;
    let ring: Vec<(usize, usize, i64)> = (0..n).map(|i| (i, (i + 1) % n, 1)).collect();

    println!("--- nonblocking mode defers, wait() completes ---");
    let ctx = Context::nonblocking();
    let a = Matrix::from_tuples(n, n, &ring)?;
    let c = Matrix::<i64>::new(n, n)?;
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )?;
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &c,
        &c,
        &Descriptor::default(),
    )?;
    println!("after two mxm calls: complete = {}", c.is_complete());
    println!("pending operations in the sequence: {}", ctx.pending_ops());
    ctx.wait()?;
    println!(
        "after wait(): complete = {}, C has {} entries",
        c.is_complete(),
        c.nvals()?
    );

    println!("\n--- exporting methods force completion on their own ---");
    let d = Matrix::<i64>::new(n, n)?;
    ctx.mxm(
        &d,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )?;
    println!("deferred: complete = {}", d.is_complete());
    let nv = d.nvals()?; // reads into non-opaque data: must complete
    println!("nvals() returned {nv}; complete = {}", d.is_complete());
    ctx.wait()?;

    println!("\n--- dead intermediates are never computed (lazy DCE) ---");
    {
        let dead = Matrix::<i64>::new(n, n)?;
        ctx.mxm(
            &dead,
            NoMask,
            NoAccum,
            plus_times::<i64>(),
            &a,
            &a,
            &Descriptor::default(),
        )?;
        println!("built a deferred intermediate, then dropped the handle...");
    } // `dead` dropped, never observed
    ctx.wait()?;
    println!("wait() returned without doing that multiply at all");

    println!("\n--- execution errors surface at wait(), not at the call ---");
    let bad = Matrix::<i64>::new(n, n)?;
    ctx.inject_fault(Error::OutOfMemory("simulated allocation failure".into()));
    let submit = ctx.mxm(
        &bad,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    );
    println!("the method call itself returned: {submit:?}");
    match ctx.wait() {
        Err(e) => println!("wait() reported: {e}"),
        Ok(()) => unreachable!(),
    }
    println!("GrB_error(): {:?}", ctx.error());
    match bad.nvals() {
        Err(e) => println!("the output object is now invalid: {e}"),
        Ok(_) => unreachable!(),
    }

    println!("\n--- blocking and nonblocking agree on results (§IV) ---");
    let bctx = Context::blocking();
    let cb = Matrix::<i64>::new(n, n)?;
    bctx.mxm(
        &cb,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &a,
        &a,
        &Descriptor::default(),
    )?;
    bctx.mxm(
        &cb,
        NoMask,
        NoAccum,
        plus_times::<i64>(),
        &cb,
        &cb,
        &Descriptor::default(),
    )?;
    assert_eq!(cb.extract_tuples()?, c.extract_tuples()?);
    println!("identical results from both modes.");
    Ok(())
}
