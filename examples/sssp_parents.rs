//! SSSP **with predecessors** over a runtime-registered user-struct
//! semiring — the paper's `GrB_Type_new` story end to end. The domain is
//! a 16-byte struct `(dist: f64, parent: u64)`; the additive monoid is
//! min-by-dist (ties to the smaller parent id, so the fold is
//! associative and commutative and parallel runs are deterministic);
//! the multiply relaxes an edge stored as `(weight, source)`:
//!
//! ```text
//! (d_u, p_u) ⊗ (w_uv, u) = (d_u + w_uv, u)
//! ```
//!
//! so one `vxm` per Bellman-Ford round carries both the tentative
//! distance *and* the predecessor, in one pass, with no second
//! "argmin" operation. Runs in **nonblocking parallel** mode and is
//! validated against reference Dijkstra distances plus the relaxation
//! invariant `dist[v] = dist[parent[v]] + w(parent[v], v)`.
//!
//! Run with: `cargo run --release --example sssp_parents [n] [avg_degree]`

use std::collections::HashMap;

use graphblas_capi::{
    grb_binary_op_new, grb_monoid_new, grb_semiring_new, grb_type_new, operations as ops,
    with_session_policies, Descriptor, FusePolicy, GrbMatrix, GrbVector, Mode, SchedPolicy, Value,
};
use graphblas_core::error::Result;
use graphblas_gen::erdos_renyi_gnm;
use graphblas_reference::{paths::dijkstra, WeightedGraph};

/// No-predecessor sentinel (source vertex and unreached vertices).
const NIL: u64 = u64::MAX;

fn enc(dist: f64, parent: u64) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&dist.to_ne_bytes());
    b[8..].copy_from_slice(&parent.to_ne_bytes());
    b
}

fn dec(b: &[u8]) -> (f64, u64) {
    (
        f64::from_ne_bytes(b[..8].try_into().unwrap()),
        u64::from_ne_bytes(b[8..].try_into().unwrap()),
    )
}

fn dec_value(v: &Value) -> (f64, u64) {
    match v {
        Value::Udf(u) => dec(u.bytes()),
        other => panic!("expected the registered pair domain, got {other:?}"),
    }
}

fn main() -> Result<()> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);
    let deg: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let src = 0usize;

    let g = erdos_renyi_gnm(n, n * deg / 2, 11);
    let edges = g.weighted_tuples(1.0, 10.0, 42);
    println!("G(n={n}, m={}) with weights in [1, 10)", edges.len());

    // GrB_Type_new: a 16-byte (dist, parent) struct, opaque to the
    // library — the implementation only ever moves the bytes.
    let pair = grb_type_new("SsspPair", 16)?;
    let t = pair.ty();

    // min-by-dist, ties to the smaller parent id: a total order, so the
    // op is a genuine commutative/associative monoid under (inf, NIL).
    let min_pair = grb_binary_op_new("sssp_min_by_dist", t, t, t, |z, x, y| {
        let (dx, px) = dec(x);
        let (dy, py) = dec(y);
        let pick_x = match dx.total_cmp(&dy) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => px <= py,
        };
        z.copy_from_slice(if pick_x { x } else { y });
    });
    // edge relaxation: the second operand is the matrix entry (w, u)
    let relax = grb_binary_op_new("sssp_relax", t, t, t, |z, x, y| {
        let (d, _) = dec(x);
        let (w, u) = dec(y);
        z.copy_from_slice(&enc(d + w, u));
    });
    let min_monoid = grb_monoid_new(&min_pair, &enc(f64::INFINITY, NIL))?;
    let sr = grb_semiring_new(min_monoid, relax)?;

    let (dist, parent) = with_session_policies(
        Mode::Nonblocking,
        SchedPolicy::Parallel,
        FusePolicy::On,
        || -> Result<(Vec<f64>, Vec<u64>)> {
            let d = Descriptor::default();
            // A(u, v) = (w_uv, u): each stored edge knows its source
            let a = GrbMatrix::new(t, n, n)?;
            for &(u, v, w) in &edges {
                a.set(u, v, pair.value(&enc(w, u as u64))?)?;
            }

            // dense tentative-distance vector, (inf, NIL) off the source
            let mut dv = GrbVector::new(t, n)?;
            for i in 0..n {
                let init = if i == src {
                    enc(0.0, NIL)
                } else {
                    enc(f64::INFINITY, NIL)
                };
                dv.set(i, pair.value(&init)?)?;
            }

            let mut prev = snapshot(&dv)?;
            for round in 1..n {
                // one relaxation round: w = d min.relax A, d' = min(d, w)
                let w = GrbVector::new(t, n)?;
                ops::vxm(&w, None, None, &sr, &dv, &a, &d)?;
                let next = GrbVector::new(t, n)?;
                ops::ewise_add_vector(&next, None, None, &min_pair, &dv, &w, &d)?;
                dv = next;
                let cur = snapshot(&dv)?;
                if cur == prev {
                    println!("converged after {round} rounds");
                    break;
                }
                prev = cur;
            }

            let mut dist = vec![f64::INFINITY; n];
            let mut parent = vec![NIL; n];
            for (i, v) in dv.extract_tuples()? {
                let (d, p) = dec_value(&v);
                dist[i] = d;
                parent[i] = p;
            }
            Ok((dist, parent))
        },
    )??;

    // validate distances against reference Dijkstra
    let wg = WeightedGraph::from_edges(n, &edges);
    let baseline = dijkstra(&wg, src);
    let mut reached = 0usize;
    for (v, b) in baseline.iter().enumerate() {
        match b {
            Some(bd) => {
                assert!(
                    (dist[v] - bd).abs() < 1e-9,
                    "distance mismatch at {v}: {} vs {bd}",
                    dist[v]
                );
                reached += 1;
            }
            None => assert!(dist[v].is_infinite(), "false reachability at {v}"),
        }
    }

    // validate parents by the relaxation invariant: every reached
    // non-source vertex's predecessor edge closes its shortest distance
    let wmap: HashMap<(usize, usize), f64> = edges.iter().map(|&(u, v, w)| ((u, v), w)).collect();
    for v in 0..n {
        if v == src || dist[v].is_infinite() {
            continue;
        }
        let p = parent[v] as usize;
        let w = wmap
            .get(&(p, v))
            .unwrap_or_else(|| panic!("parent[{v}] = {p} is not an in-neighbor"));
        assert!(
            (dist[p] + w - dist[v]).abs() < 1e-9,
            "parent edge ({p},{v}) does not close dist[{v}]"
        );
    }
    assert_eq!(parent[src], NIL, "source has no predecessor");

    println!("{reached}/{n} vertices reached; all distances match Dijkstra");
    println!("all predecessor edges satisfy dist[v] = dist[parent] + w");
    let sample: Vec<(usize, f64, u64)> = (0..n)
        .filter(|&v| dist[v].is_finite() && v != src)
        .take(5)
        .map(|v| (v, dist[v], parent[v]))
        .collect();
    println!("sample (vertex, dist, parent): {sample:?}");
    Ok(())
}

/// Decode a vector's tuples into comparable `(index, dist-bits, parent)`
/// triples for the fixpoint test.
fn snapshot(v: &GrbVector) -> Result<Vec<(usize, u64, u64)>> {
    Ok(v.extract_tuples()?
        .into_iter()
        .map(|(i, val)| {
            let (d, p) = dec_value(&val);
            (i, d.to_bits(), p)
        })
        .collect())
}
