//! Triangle counting with masked matrix multiplication — the paper's
//! write-mask machinery (§III-C) doing real algorithmic work: the mask
//! pushes the output pattern *into* the SpGEMM so only wedge counts over
//! existing edges are ever computed.
//!
//! Run with: `cargo run --release --example triangle_census [scale]`

use std::time::Instant;

use graphblas_algorithms::{triangle_count, triangle_counts_per_vertex};
use graphblas_core::prelude::*;
use graphblas_gen::{rmat, RmatParams};
use graphblas_reference::{triangles, AdjGraph};

fn main() -> Result<()> {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    // undirected simple graph: symmetrized RMAT
    let g = rmat(scale, 8, RmatParams::default(), 3)
        .dedup()
        .without_self_loops()
        .symmetrize();
    let n = g.n;
    println!(
        "symmetrized RMAT scale {scale}: {} vertices, {} arcs",
        n,
        g.num_edges()
    );

    let ctx = Context::blocking();
    let a = Matrix::from_tuples(n, n, &g.bool_tuples())?;

    let t0 = Instant::now();
    let count = triangle_count(&ctx, &a)?;
    let t_grb = t0.elapsed();
    println!("GraphBLAS masked-mxm triangles: {count}  ({t_grb:?})");

    let adj = AdjGraph::from_edges(n, &g.edges);
    let t0 = Instant::now();
    let baseline = triangles::triangle_count(&adj);
    let t_ref = t0.elapsed();
    println!("reference node-iterator:        {baseline}  ({t_ref:?})");
    assert_eq!(count, baseline);

    let per_vertex = triangle_counts_per_vertex(&ctx, &a)?;
    let mut ranked: Vec<(usize, u64)> = per_vertex.iter().copied().enumerate().collect();
    ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\nmost clustered vertices:");
    for (v, c) in ranked.iter().take(5) {
        println!("  vertex {v}: member of {c} triangles");
    }
    Ok(())
}
