//! A tour of Table I: the *same* `mxm`/`mxv` code under all five
//! semirings the paper tabulates, each giving a different graph
//! analysis — the core design point that "the matrix and the semiring
//! are represented separately, and the two come together only when an
//! operation is performed" (paper §II).

use graphblas_core::algebra::set::{SetIntersect, SetUnionMonoid};
use graphblas_core::prelude::*;

fn main() -> Result<()> {
    let ctx = Context::blocking();

    // a small weighted digraph: 0 -> 1 -> 3, 0 -> 2 -> 3
    let n = 4;
    let edges = [
        (0usize, 1usize, 2.0f64),
        (0, 2, 5.0),
        (1, 3, 4.0),
        (2, 3, 1.0),
    ];

    println!("=== Table I, row 1: standard arithmetic <R, +, x, 0> ===");
    let a = Matrix::from_tuples(n, n, &edges)?;
    let c = Matrix::<f64>::new(n, n)?;
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<f64>(),
        &a,
        &a,
        &Descriptor::default(),
    )?;
    println!("  (A^2)(0,3) = sum of path products = {:?}", c.get(0, 3)?);

    println!("=== Table I, row 2: max-plus <R ∪ -inf, max, +, -inf> ===");
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        max_plus::<f64>(),
        &a,
        &a,
        &Descriptor::default().replace(),
    )?;
    println!(
        "  longest two-hop 0->3 = {:?} (critical path)",
        c.get(0, 3)?
    );

    println!("=== Table I, row 3: min-max <R+ ∪ inf, min, max, inf> ===");
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        min_max::<f64>(),
        &a,
        &a,
        &Descriptor::default().replace(),
    )?;
    println!(
        "  minimax two-hop 0->3 = {:?} (best bottleneck edge)",
        c.get(0, 3)?
    );

    println!("=== Table I, row 4: Galois field GF(2) <bool, xor, and> ===");
    let b = Matrix::from_tuples(n, n, &edges.map(|(i, j, _)| (i, j, true)))?;
    let p = Matrix::<bool>::new(n, n)?;
    ctx.mxm(
        &p,
        NoMask,
        NoAccum,
        xor_and(),
        &b,
        &b,
        &Descriptor::default(),
    )?;
    println!(
        "  parity of two-hop walk count 0->3 = {:?} (two routes -> even)",
        p.get(0, 3)?
    );

    println!("=== Table I, row 5: power set <P(Z), ∪, ∩, ∅> ===");
    // label each edge with the set of "colors" it carries; a two-hop
    // entry then holds the colors available on *some* route, with ∩
    // requiring a color to survive the whole path and ∪ merging routes
    let color = |cs: &[u32]| SmallSet::from_iter_unsorted(cs.iter().copied());
    let s = Matrix::from_tuples(
        n,
        n,
        &[
            (0, 1, color(&[1, 2])),
            (0, 2, color(&[2, 3])),
            (1, 3, color(&[1])),
            (2, 3, color(&[2, 3])),
        ],
    )?;
    let t = Matrix::<SmallSet>::new(n, n)?;
    ctx.mxm(
        &t,
        NoMask,
        NoAccum,
        SemiringDef::new(SetUnionMonoid, SetIntersect),
        &s,
        &s,
        &Descriptor::default(),
    )?;
    let through = t.get(0, 3)?.unwrap();
    println!(
        "  colors usable end-to-end 0->3: {:?}  (route via 1 keeps {{1}}, via 2 keeps {{2,3}})",
        through.iter().collect::<Vec<_>>()
    );

    println!("\n=== and the bonus tropical semiring: min-plus shortest paths ===");
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        min_plus::<f64>(),
        &a,
        &a,
        &Descriptor::default().replace(),
    )?;
    println!("  shortest two-hop 0->3 = {:?}", c.get(0, 3)?);

    Ok(())
}
