//! Single-source shortest paths over the min-plus (tropical) semiring —
//! Table I's "change the semiring, change the algorithm" in action —
//! validated against Dijkstra.
//!
//! Run with: `cargo run --release --example sssp [n] [avg_degree]`

use std::time::Instant;

use graphblas_algorithms::sssp_bellman_ford;
use graphblas_core::prelude::*;
use graphblas_gen::erdos_renyi_gnm;
use graphblas_reference::{paths::dijkstra, WeightedGraph};

fn main() -> Result<()> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let deg: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let g = erdos_renyi_gnm(n, n * deg / 2, 7);
    let weighted = g.weighted_tuples(1.0, 10.0, 99);
    println!(
        "G(n={n}, m={}) with uniform weights in [1, 10)",
        weighted.len()
    );

    let ctx = Context::blocking();
    let a = Matrix::from_tuples(n, n, &weighted)?;
    let src = 0;

    let t0 = Instant::now();
    let dist = sssp_bellman_ford(&ctx, &a, src)?;
    let t_grb = t0.elapsed();
    println!("GraphBLAS min-plus Bellman-Ford: {t_grb:?}");

    let wg = WeightedGraph::from_edges(n, &weighted);
    let t0 = Instant::now();
    let baseline = dijkstra(&wg, src);
    let t_ref = t0.elapsed();
    println!("reference Dijkstra:              {t_ref:?}");

    let mut max_err = 0.0f64;
    let mut reached = 0usize;
    for (d1, d2) in dist.iter().zip(&baseline) {
        match (d1, d2) {
            (Some(x), Some(y)) => {
                max_err = max_err.max((x - y).abs());
                reached += 1;
            }
            (None, None) => {}
            other => panic!("reachability disagreement: {other:?}"),
        }
    }
    println!("{reached}/{n} vertices reachable; max distance error = {max_err:.3e}");
    assert!(max_err < 1e-9);

    let sample: Vec<(usize, f64)> = dist
        .iter()
        .enumerate()
        .filter_map(|(v, d)| d.map(|x| (v, x)))
        .take(5)
        .collect();
    println!("first reachable distances: {sample:?}");
    Ok(())
}
