//! Community-structure toolkit over one small-world graph: connected
//! components (min-label propagation), k-truss cores (masked mxm +
//! select), and a maximal independent set (Luby) — three analyses,
//! one sparse-algebra engine.
//!
//! Run with: `cargo run --release --example community [n]`

use graphblas_algorithms::{
    connected_components, k_truss, maximal_independent_set, num_components,
};
use graphblas_core::prelude::*;
use graphblas_gen::watts_strogatz;

fn main() -> Result<()> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);

    let g = watts_strogatz(n, 6, 0.05, 11);
    println!(
        "Watts-Strogatz small world: {} vertices, {} arcs (k=6, beta=0.05)",
        g.n,
        g.num_edges()
    );
    let ctx = Context::blocking();
    let a = Matrix::from_tuples(g.n, g.n, &g.bool_tuples())?;

    // --- connected components ---
    let labels = connected_components(&ctx, &a)?;
    let comps = num_components(&ctx, &a)?;
    println!("\nconnected components: {comps}");
    let mut sizes = std::collections::BTreeMap::new();
    for l in labels {
        *sizes.entry(l).or_insert(0usize) += 1;
    }
    let largest = sizes.values().max().copied().unwrap_or(0);
    println!("largest component: {largest} vertices");

    // --- k-truss peeling ---
    println!("\nk-truss cores (edges surviving support pruning):");
    for k in [3u64, 4, 5] {
        let truss = k_truss(&ctx, &a, k)?;
        println!("  {k}-truss: {} arcs", truss.nvals()?);
    }

    // --- maximal independent set ---
    let mis = maximal_independent_set(&ctx, &a, 42)?;
    println!(
        "\nmaximal independent set: {} of {} vertices",
        mis.len(),
        g.n
    );
    // verify independence via one masked product: edges inside the set
    let flags: Vec<(usize, bool)> = mis.iter().map(|&v| (v, true)).collect();
    let set = Vector::from_tuples(g.n, &flags)?;
    let hits = Vector::<bool>::new(g.n)?;
    ctx.vxm(
        &hits,
        &set,
        NoAccum,
        lor_land(),
        &set,
        &a,
        &Descriptor::default().structural_mask().replace(),
    )?;
    println!("edges between set members (must be 0): {}", hits.nvals()?);
    assert_eq!(hits.nvals()?, 0);
    Ok(())
}
