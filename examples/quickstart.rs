//! Quickstart: build a small graph as a sparse matrix, multiply over a
//! couple of semirings, use a mask, and read results back.
//!
//! Run with: `cargo run --example quickstart`

use graphblas_core::prelude::*;

fn main() -> Result<()> {
    // A GraphBLAS context fixes the execution mode (paper §IV).
    let ctx = Context::blocking();

    // The graph 0 -> 1 -> 2 -> 3 with a shortcut 0 -> 2, as an adjacency
    // matrix: stored elements are edges, absent elements are *undefined*
    // (not zero!).
    let n = 4;
    let a =
        Matrix::<f64>::from_tuples(n, n, &[(0, 1, 1.0), (0, 2, 5.0), (1, 2, 1.0), (2, 3, 1.0)])?;
    println!("adjacency: {} stored edges in a {n}x{n} matrix", a.nvals()?);

    // --- two-hop reachability: C = A +.* A over standard arithmetic ---
    let c = Matrix::<f64>::new(n, n)?;
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        plus_times::<f64>(),
        &a,
        &a,
        &Descriptor::default(),
    )?;
    println!("\ntwo-hop path weights (plus_times):");
    for (i, j, v) in c.extract_tuples()? {
        println!("  {i} -> {j}: {v}");
    }

    // --- same multiplication, different algebra: min.+ gives shortest
    //     two-hop distances (Table I's semiring swap in action) ---
    ctx.mxm(
        &c,
        NoMask,
        NoAccum,
        min_plus::<f64>(),
        &a,
        &a,
        &Descriptor::default().replace(),
    )?;
    println!("\nshortest two-hop distances (min_plus):");
    for (i, j, v) in c.extract_tuples()? {
        println!("  {i} -> {j}: {v}");
    }

    // --- masks control where results are written (paper §III-C):
    //     recompute two-hop arithmetic, but only where an edge already
    //     exists ---
    ctx.mxm(
        &c,
        &a, // A itself is the mask: stored-and-true positions
        NoAccum,
        plus_times::<f64>(),
        &a,
        &a,
        &Descriptor::default().structural_mask().replace(),
    )?;
    println!("\ntwo-hop weights restricted to existing edges (masked mxm):");
    for (i, j, v) in c.extract_tuples()? {
        println!("  {i} -> {j}: {v}");
    }

    // --- vectors: out-degrees via row reduce ---
    let deg = Vector::<f64>::new(n)?;
    ctx.reduce_rows(
        &deg,
        NoMask,
        NoAccum,
        PlusMonoid::<f64>::new(),
        &a,
        &Descriptor::default(),
    )?;
    println!("\nweighted out-degrees: {:?}", deg.to_dense()?);

    Ok(())
}
