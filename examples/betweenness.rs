//! Betweenness centrality on an RMAT social-network-like graph: the
//! paper's Figure 3 algorithm (`BC_update`, batched Brandes) via the
//! GraphBLAS API, cross-checked against the classic queue-based Brandes
//! baseline.
//!
//! Run with: `cargo run --release --example betweenness [scale] [batch]`

use std::time::Instant;

use graphblas_algorithms::betweenness;
use graphblas_core::prelude::*;
use graphblas_gen::{rmat, RmatParams};
use graphblas_reference::{bc::brandes, AdjGraph};

fn main() -> Result<()> {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(9);
    let batch: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    let g = rmat(scale, 8, RmatParams::default(), 42)
        .dedup()
        .without_self_loops();
    let n = g.n;
    println!(
        "RMAT scale {scale}: {} vertices, {} edges, batch size {batch}",
        n,
        g.num_edges()
    );

    let ctx = Context::blocking();
    let a = Matrix::from_tuples(n, n, &g.int_tuples())?;

    let t0 = Instant::now();
    let bc = betweenness(&ctx, &a, batch)?;
    let t_grb = t0.elapsed();
    println!("GraphBLAS batched BC_update: {t_grb:?}");

    let t0 = Instant::now();
    let baseline = brandes(&AdjGraph::from_edges(n, &g.edges));
    let t_ref = t0.elapsed();
    println!("reference Brandes:           {t_ref:?}");

    // cross-validate
    let mut max_err = 0.0f64;
    for (x, y) in bc.iter().zip(&baseline) {
        max_err = max_err.max((*x as f64 - y).abs());
    }
    println!("max |GraphBLAS - reference| = {max_err:.3e}");
    assert!(max_err < 1e-2 * (n as f64), "BC mismatch");

    // top-5 most central vertices
    let mut ranked: Vec<(usize, f32)> = bc.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 central vertices:");
    for (v, score) in ranked.iter().take(5) {
        println!("  vertex {v}: {score:.1}");
    }
    Ok(())
}
