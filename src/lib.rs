//! Umbrella crate; see member crates.
