//! Plain-text graph/matrix I/O: the `src dst [weight]` edge-list format
//! shared by SNAP dumps, and the Matrix Market coordinate format
//! (`.mtx`) used by SuiteSparse collection graphs — so benches and
//! examples can load real datasets when available.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::edgelist::EdgeList;

/// A matrix parsed from a Matrix Market coordinate file: shape plus
/// 0-based `(row, col, value)` tuples (pattern entries read as `1.0`).
#[derive(Debug, Clone, PartialEq)]
pub struct MtxMatrix {
    pub nrows: usize,
    pub ncols: usize,
    pub tuples: Vec<(usize, usize, f64)>,
}

fn mtx_err(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Read a Matrix Market coordinate file (`%%MatrixMarket matrix
/// coordinate real|integer|pattern general|symmetric`). Indices are
/// converted from the format's 1-based convention to 0-based; symmetric
/// files are expanded to both triangles (off-diagonal entries
/// duplicated), so the result is always a `general` tuple set.
pub fn read_mtx(r: impl Read) -> std::io::Result<MtxMatrix> {
    let mut lines = BufReader::new(r).lines();

    // banner: %%MatrixMarket matrix coordinate <field> <symmetry>
    let banner = lines
        .next()
        .ok_or_else(|| mtx_err("empty .mtx file".into()))??;
    let tokens: Vec<String> = banner
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(mtx_err(format!("not a MatrixMarket banner: {banner}")));
    }
    if tokens[2] != "coordinate" {
        return Err(mtx_err(format!(
            "only `coordinate` .mtx supported, got `{}`",
            tokens[2]
        )));
    }
    let pattern = match tokens[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        f => return Err(mtx_err(format!("unsupported .mtx field `{f}`"))),
    };
    let symmetric = match tokens[4].as_str() {
        "general" => false,
        "symmetric" => true,
        s => return Err(mtx_err(format!("unsupported .mtx symmetry `{s}`"))),
    };

    // size line: first non-comment line after the banner
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut tuples: Vec<(usize, usize, f64)> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let bad = || mtx_err(format!("line {}: malformed .mtx entry `{t}`", lineno + 2));
        let mut parts = t.split_whitespace();
        let a: usize = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
        let b: usize = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
        match dims {
            None => {
                let nnz: usize = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
                // A hostile size line must fail cleanly, never abort:
                // bound the entry count by what the shape can hold
                // (when that product is representable) …
                if let Some(cap) = a.checked_mul(b) {
                    if nnz > cap {
                        return Err(mtx_err(format!(
                            "size line promises {nnz} entries but a {a}x{b} matrix \
                             holds at most {cap}"
                        )));
                    }
                }
                dims = Some((a, b, nnz));
                // … and never trust it for an up-front allocation — an
                // uncapped `reserve(usize::MAX)` aborts on capacity
                // overflow before the count-mismatch check can reject
                // the file. The cap is a hint; pushes still grow.
                tuples.reserve(nnz.min(1 << 20));
            }
            Some((nrows, ncols, _)) => {
                let v: f64 = if pattern {
                    1.0
                } else {
                    parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?
                };
                if a < 1 || a > nrows || b < 1 || b > ncols {
                    return Err(mtx_err(format!(
                        "line {}: entry ({a}, {b}) outside {nrows}x{ncols}",
                        lineno + 2
                    )));
                }
                let (i, j) = (a - 1, b - 1);
                tuples.push((i, j, v));
                if symmetric && i != j {
                    tuples.push((j, i, v));
                }
            }
        }
    }
    let (nrows, ncols, nnz) = dims.ok_or_else(|| mtx_err("missing .mtx size line".into()))?;
    let stored = if symmetric {
        tuples.iter().filter(|&&(i, j, _)| i <= j).count()
    } else {
        tuples.len()
    };
    if stored != nnz {
        return Err(mtx_err(format!(
            "size line promises {nnz} entries, file holds {stored}"
        )));
    }
    tuples.sort_unstable_by_key(|&(i, j, _)| (i, j));
    Ok(MtxMatrix {
        nrows,
        ncols,
        tuples,
    })
}

/// Write a matrix as Matrix Market `coordinate real general` (1-based
/// indices, one `row col value` line per stored tuple).
pub fn write_mtx(w: impl Write, m: &MtxMatrix) -> std::io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(out, "{} {} {}", m.nrows, m.ncols, m.tuples.len())?;
    for &(i, j, v) in &m.tuples {
        writeln!(out, "{} {} {v}", i + 1, j + 1)?;
    }
    out.flush()
}

/// Parse an edge list from `src dst` lines. `#` and `%` lines are
/// comments; vertex count is `max id + 1` unless a larger `n` is given.
pub fn read_edge_list(r: impl Read, min_n: Option<usize>) -> std::io::Result<EdgeList> {
    let mut edges = Vec::new();
    let mut max_id = 0usize;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse = |s: Option<&str>| -> std::io::Result<usize> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: expected `src dst`", lineno + 1),
                )
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = match (edges.is_empty(), min_n) {
        (true, None) => 0,
        (true, Some(n)) => n,
        (false, None) => max_id + 1,
        (false, Some(n)) => n.max(max_id + 1),
    };
    Ok(EdgeList::new(n, edges))
}

/// A vertex count plus weighted `(src, dst, weight)` edges.
pub type WeightedEdges = (usize, Vec<(usize, usize, f64)>);

/// Parse a weighted edge list from `src dst weight` lines.
pub fn read_weighted_edge_list(r: impl Read) -> std::io::Result<WeightedEdges> {
    let mut edges = Vec::new();
    let mut max_id = 0usize;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let bad = || {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: expected `src dst weight`", lineno + 1),
            )
        };
        let mut parts = t.split_whitespace();
        let u: usize = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
        let v: usize = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
        let w: f64 = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = if edges.is_empty() { 0 } else { max_id + 1 };
    Ok((n, edges))
}

/// Write an edge list as `src dst` lines with a `#` header.
pub fn write_edge_list(w: impl Write, g: &EdgeList) -> std::io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "# {} vertices, {} edges", g.n, g.num_edges())?;
    for &(u, v) in &g.edges {
        writeln!(out, "{u} {v}")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = EdgeList::new(5, vec![(0, 1), (3, 4), (2, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let back = read_edge_list(&buf[..], None).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n% another comment\n\n0 1\n 2 3 \n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.n, 4);
        assert_eq!(g.edges, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn min_n_expands_vertex_count() {
        let g = read_edge_list("0 1\n".as_bytes(), Some(10)).unwrap();
        assert_eq!(g.n, 10);
        let g = read_edge_list("0 9\n".as_bytes(), Some(3)).unwrap();
        assert_eq!(g.n, 10); // max id wins when larger
    }

    #[test]
    fn weighted_parse() {
        let (n, e) = read_weighted_edge_list("0 1 2.5\n1 2 0.5\n".as_bytes()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(e, vec![(0, 1, 2.5), (1, 2, 0.5)]);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(read_edge_list("0\n".as_bytes(), None).is_err());
        assert!(read_edge_list("a b\n".as_bytes(), None).is_err());
        assert!(read_weighted_edge_list("0 1\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes(), None).unwrap();
        assert_eq!(g.n, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn mtx_round_trip() {
        let m = MtxMatrix {
            nrows: 4,
            ncols: 3,
            tuples: vec![(0, 2, 1.5), (1, 0, -2.0), (3, 1, 7.0)],
        };
        let mut buf = Vec::new();
        write_mtx(&mut buf, &m).unwrap();
        let back = read_mtx(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn mtx_pattern_and_comments() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    3 3 2\n\
                    1 2\n\
                    3 3\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!((m.nrows, m.ncols), (3, 3));
        assert_eq!(m.tuples, vec![(0, 1, 1.0), (2, 2, 1.0)]);
    }

    #[test]
    fn mtx_symmetric_expands_both_triangles() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 3\n\
                    1 1 5.0\n\
                    2 1 1.0\n\
                    3 2 2.0\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(
            m.tuples,
            vec![
                (0, 0, 5.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 2.0),
                (2, 1, 2.0)
            ]
        );
    }

    #[test]
    fn mtx_rejects_malformed_input() {
        assert!(read_mtx("".as_bytes()).is_err());
        assert!(read_mtx("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
        // out-of-bounds entry
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_mtx(text.as_bytes()).is_err());
        // entry-count mismatch
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_mtx(text.as_bytes()).is_err());
        // 0-based index (mtx is 1-based)
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_mtx(text.as_bytes()).is_err());
        // … in either coordinate
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1.0\n";
        assert!(read_mtx(text.as_bytes()).is_err());
        // more entries than promised is a mismatch too
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 2.0\n";
        assert!(read_mtx(text.as_bytes()).is_err());
    }

    /// A size line whose numbers don't fit `usize` must produce an
    /// `InvalidData` error — not a panic, and not silent truncation.
    #[test]
    fn mtx_rejects_overflowing_dims() {
        let huge = "9".repeat(30); // > usize::MAX
        for size_line in [
            format!("{huge} 3 1"),
            format!("3 {huge} 1"),
            format!("3 3 {huge}"),
        ] {
            let text = format!("%%MatrixMarket matrix coordinate real general\n{size_line}\n");
            let e = read_mtx(text.as_bytes()).unwrap_err();
            assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "{size_line}");
        }
    }

    /// A hostile-but-parseable entry count must not be able to abort the
    /// process through an up-front allocation; it fails either the
    /// shape-capacity bound or the final count check.
    #[test]
    fn mtx_hostile_nnz_fails_cleanly() {
        // usize::MAX entries in a 2x2 shape: rejected by the capacity bound
        let text = format!(
            "%%MatrixMarket matrix coordinate real general\n2 2 {}\n1 1 1.0\n",
            usize::MAX
        );
        let e = read_mtx(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("holds at most"), "{e}");
        // dims whose product overflows skip the bound; the reserve cap
        // keeps the huge count harmless and the mismatch check rejects it
        let text = format!(
            "%%MatrixMarket matrix coordinate real general\n{n} {n} {}\n1 1 1.0\n",
            usize::MAX,
            n = usize::MAX / 2
        );
        let e = read_mtx(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("promises"), "{e}");
    }
}
