//! Plain-text edge-list I/O: the `src dst [weight]` lines-and-comments
//! format shared by SNAP dumps and Matrix-Market-adjacent tooling, so
//! examples can run on real datasets when available.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::edgelist::EdgeList;

/// Parse an edge list from `src dst` lines. `#` and `%` lines are
/// comments; vertex count is `max id + 1` unless a larger `n` is given.
pub fn read_edge_list(r: impl Read, min_n: Option<usize>) -> std::io::Result<EdgeList> {
    let mut edges = Vec::new();
    let mut max_id = 0usize;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse = |s: Option<&str>| -> std::io::Result<usize> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: expected `src dst`", lineno + 1),
                )
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = match (edges.is_empty(), min_n) {
        (true, None) => 0,
        (true, Some(n)) => n,
        (false, None) => max_id + 1,
        (false, Some(n)) => n.max(max_id + 1),
    };
    Ok(EdgeList::new(n, edges))
}

/// Parse a weighted edge list from `src dst weight` lines.
pub fn read_weighted_edge_list(
    r: impl Read,
) -> std::io::Result<(usize, Vec<(usize, usize, f64)>)> {
    let mut edges = Vec::new();
    let mut max_id = 0usize;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let bad = || {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: expected `src dst weight`", lineno + 1),
            )
        };
        let mut parts = t.split_whitespace();
        let u: usize = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
        let v: usize = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
        let w: f64 = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = if edges.is_empty() { 0 } else { max_id + 1 };
    Ok((n, edges))
}

/// Write an edge list as `src dst` lines with a `#` header.
pub fn write_edge_list(w: impl Write, g: &EdgeList) -> std::io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "# {} vertices, {} edges", g.n, g.num_edges())?;
    for &(u, v) in &g.edges {
        writeln!(out, "{u} {v}")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = EdgeList::new(5, vec![(0, 1), (3, 4), (2, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let back = read_edge_list(&buf[..], None).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n% another comment\n\n0 1\n 2 3 \n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.n, 4);
        assert_eq!(g.edges, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn min_n_expands_vertex_count() {
        let g = read_edge_list("0 1\n".as_bytes(), Some(10)).unwrap();
        assert_eq!(g.n, 10);
        let g = read_edge_list("0 9\n".as_bytes(), Some(3)).unwrap();
        assert_eq!(g.n, 10); // max id wins when larger
    }

    #[test]
    fn weighted_parse() {
        let (n, e) = read_weighted_edge_list("0 1 2.5\n1 2 0.5\n".as_bytes()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(e, vec![(0, 1, 2.5), (1, 2, 0.5)]);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(read_edge_list("0\n".as_bytes(), None).is_err());
        assert!(read_edge_list("a b\n".as_bytes(), None).is_err());
        assert!(read_weighted_edge_list("0 1\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes(), None).unwrap();
        assert_eq!(g.n, 0);
        assert_eq!(g.num_edges(), 0);
    }
}
