//! The [`EdgeList`] workload container and its transformations.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A directed edge list over vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices.
    pub n: usize,
    /// Directed edges `(src, dst)`; duplicates and self-loops allowed
    /// until [`EdgeList::dedup`] / [`EdgeList::without_self_loops`].
    pub edges: Vec<(usize, usize)>,
}

impl EdgeList {
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        debug_assert!(edges.iter().all(|&(u, v)| u < n && v < n));
        EdgeList { n, edges }
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Sort and remove duplicate edges.
    pub fn dedup(mut self) -> Self {
        self.edges.sort_unstable();
        self.edges.dedup();
        self
    }

    /// Remove self-loops.
    pub fn without_self_loops(mut self) -> Self {
        self.edges.retain(|&(u, v)| u != v);
        self
    }

    /// Add the reverse of every edge (then dedup) — turns a directed list
    /// into an undirected (symmetric) one.
    pub fn symmetrize(mut self) -> Self {
        let rev: Vec<(usize, usize)> = self.edges.iter().map(|&(u, v)| (v, u)).collect();
        self.edges.extend(rev);
        self.dedup()
    }

    /// Apply a deterministic random relabeling of the vertices —
    /// decorrelates vertex ids from generator structure (standard for
    /// RMAT workloads).
    pub fn permuted(mut self, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E37_79B9);
        let mut perm: Vec<usize> = (0..self.n).collect();
        perm.shuffle(&mut rng);
        for e in &mut self.edges {
            *e = (perm[e.0], perm[e.1]);
        }
        self
    }

    /// The out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(u, _) in &self.edges {
            d[u] += 1;
        }
        d
    }

    /// Tuples `(i, j, true)` for building a Boolean GraphBLAS matrix.
    pub fn bool_tuples(&self) -> Vec<(usize, usize, bool)> {
        self.edges.iter().map(|&(u, v)| (u, v, true)).collect()
    }

    /// Tuples `(i, j, 1)` for an integer adjacency matrix ("presence of
    /// an edge is indicated by a stored 1" — the BC example's input).
    pub fn int_tuples(&self) -> Vec<(usize, usize, i32)> {
        self.edges.iter().map(|&(u, v)| (u, v, 1)).collect()
    }

    /// Deterministic uniform weights in `[lo, hi)` keyed by `seed`.
    pub fn weighted_tuples(&self, lo: f64, hi: f64, seed: u64) -> Vec<(usize, usize, f64)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB5E0_2C2B);
        self.edges
            .iter()
            .map(|&(u, v)| (u, v, rng.random_range(lo..hi)))
            .collect()
    }

    /// Adjacency-list form (for the `graphblas-reference` baselines).
    pub fn to_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].push(v);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    /// Weighted adjacency-list form with the same weights as
    /// [`EdgeList::weighted_tuples`] for the same seed.
    pub fn to_weighted_adjacency(&self, lo: f64, hi: f64, seed: u64) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); self.n];
        for (u, v, w) in self.weighted_tuples(lo, hi, seed) {
            adj[u].push((v, w));
        }
        for l in &mut adj {
            l.sort_unstable_by_key(|e| e.0);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::new(4, vec![(0, 1), (1, 2), (0, 1), (2, 2), (3, 0)])
    }

    #[test]
    fn dedup_and_self_loops() {
        let e = sample().dedup();
        assert_eq!(e.edges, vec![(0, 1), (1, 2), (2, 2), (3, 0)]);
        let e = e.without_self_loops();
        assert_eq!(e.edges, vec![(0, 1), (1, 2), (3, 0)]);
    }

    #[test]
    fn symmetrize_adds_reverses() {
        let e = EdgeList::new(3, vec![(0, 1), (1, 2)]).symmetrize();
        assert_eq!(e.edges, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn permutation_is_deterministic_and_structure_preserving() {
        let e = EdgeList::new(10, vec![(0, 1), (1, 2), (2, 3)]);
        let p1 = e.clone().permuted(7);
        let p2 = e.clone().permuted(7);
        assert_eq!(p1, p2);
        assert_eq!(p1.num_edges(), 3);
        // a permutation preserves the degree multiset
        let mut d1 = e.out_degrees();
        let mut d2 = p1.out_degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn tuple_conversions() {
        let e = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        assert_eq!(e.bool_tuples(), vec![(0, 1, true), (1, 2, true)]);
        assert_eq!(e.int_tuples(), vec![(0, 1, 1), (1, 2, 1)]);
        let w = e.weighted_tuples(1.0, 2.0, 42);
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|&(_, _, x)| (1.0..2.0).contains(&x)));
        // deterministic
        assert_eq!(w, e.weighted_tuples(1.0, 2.0, 42));
        assert_ne!(w, e.weighted_tuples(1.0, 2.0, 43));
    }

    #[test]
    fn adjacency_matches_weighted_adjacency() {
        let e = EdgeList::new(4, vec![(2, 0), (0, 3), (0, 1)]);
        let adj = e.to_adjacency();
        assert_eq!(adj[0], vec![1, 3]);
        assert_eq!(adj[2], vec![0]);
        let wadj = e.to_weighted_adjacency(0.0, 1.0, 5);
        assert_eq!(wadj[0].iter().map(|x| x.0).collect::<Vec<_>>(), adj[0]);
    }

    #[test]
    fn degrees() {
        assert_eq!(sample().out_degrees(), vec![2, 1, 1, 1]);
    }
}
