//! Social-network-style generators beyond RMAT: Barabási–Albert
//! preferential attachment (power-law degrees) and Watts–Strogatz small
//! worlds (high clustering, short paths) — the workload families the
//! paper's introduction motivates ("graphs such as those arising in
//! social networks").

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::edgelist::EdgeList;

/// Barabási–Albert preferential attachment: starts from a small clique
/// of `m` vertices; each new vertex attaches `m` edges to existing
/// vertices with probability proportional to their degree. Produces the
/// power-law degree distributions of citation/social graphs. Undirected
/// (both directions stored).
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need more vertices than the seed clique");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // repeated-endpoint list: sampling uniformly from it IS
    // degree-proportional sampling
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // seed clique on vertices 0..=m
    for u in 0..=m {
        for v in (u + 1)..=m {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m + 1)..n {
        let mut targets = std::collections::BTreeSet::new();
        while targets.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != v {
                targets.insert(t);
            }
        }
        for &t in &targets {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    let sym: Vec<(usize, usize)> = edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
    EdgeList::new(n, sym).dedup()
}

/// Watts–Strogatz small world: a ring lattice where every vertex links
/// to its `k/2` nearest neighbours on each side, with each edge rewired
/// to a random endpoint with probability `beta`. Undirected (both
/// directions stored); `k` must be even and `< n`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> EdgeList {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < n, "k must be below n");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for u in 0..n {
        for d in 1..=(k / 2) {
            let mut v = (u + d) % n;
            if rng.random::<f64>() < beta {
                // rewire to a uniform non-self target
                loop {
                    let cand = rng.random_range(0..n);
                    if cand != u {
                        v = cand;
                        break;
                    }
                }
            }
            edges.push((u, v));
            edges.push((v, u));
        }
    }
    EdgeList::new(n, edges).dedup()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_shape_and_determinism() {
        let g = barabasi_albert(200, 3, 5);
        assert_eq!(g.n, 200);
        assert_eq!(g, barabasi_albert(200, 3, 5));
        assert_ne!(g, barabasi_albert(200, 3, 6));
        // symmetric
        let set: std::collections::BTreeSet<_> = g.edges.iter().copied().collect();
        assert!(g.edges.iter().all(|&(u, v)| set.contains(&(v, u))));
    }

    #[test]
    fn ba_has_power_law_head() {
        let g = barabasi_albert(500, 2, 9);
        let deg = g.out_degrees();
        let max = *deg.iter().max().unwrap();
        let mean = g.num_edges() as f64 / g.n as f64;
        assert!(
            (max as f64) > 5.0 * mean,
            "expected hubs: max {max}, mean {mean:.1}"
        );
        // every late vertex has at least m undirected edges
        assert!(deg.iter().all(|&d| d >= 2));
    }

    #[test]
    fn ws_lattice_at_beta_zero() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        // pure ring lattice: every vertex has degree exactly k
        assert!(g.out_degrees().iter().all(|&d| d == 4));
        assert_eq!(g.num_edges(), 20 * 4);
    }

    #[test]
    fn ws_rewiring_preserves_scale() {
        let g = watts_strogatz(100, 6, 0.3, 2);
        assert_eq!(g.n, 100);
        // rewiring may merge parallel edges, but stays near n*k arcs
        assert!(g.num_edges() > 100 * 5 && g.num_edges() <= 100 * 6);
        assert_eq!(g, watts_strogatz(100, 6, 0.3, 2));
        // still symmetric
        let set: std::collections::BTreeSet<_> = g.edges.iter().copied().collect();
        assert!(g.edges.iter().all(|&(u, v)| set.contains(&(v, u))));
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn ws_rejects_odd_k() {
        watts_strogatz(10, 3, 0.1, 0);
    }
}
