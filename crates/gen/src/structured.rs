//! Structured graph families with known analytic properties — the
//! fixtures of choice for exact-answer tests (path diameters, star
//! centralities, grid distances, complete-graph counts).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::edgelist::EdgeList;

/// Directed path `0 -> 1 -> … -> n-1`.
pub fn path(n: usize) -> EdgeList {
    EdgeList::new(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect())
}

/// Directed cycle `0 -> 1 -> … -> n-1 -> 0`.
pub fn cycle(n: usize) -> EdgeList {
    EdgeList::new(n, (0..n).map(|i| (i, (i + 1) % n)).collect())
}

/// Star with center `0`: undirected (both directions stored).
pub fn star(n: usize) -> EdgeList {
    let mut edges = Vec::with_capacity(2 * n.saturating_sub(1));
    for v in 1..n {
        edges.push((0, v));
        edges.push((v, 0));
    }
    EdgeList::new(n, edges)
}

/// Complete directed graph (no self-loops).
pub fn complete(n: usize) -> EdgeList {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    EdgeList::new(n, edges)
}

/// 4-neighbor 2D grid, undirected (both directions stored). Vertex
/// `(r, c)` is `r * cols + c`.
pub fn grid2d(rows: usize, cols: usize) -> EdgeList {
    let n = rows * cols;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edges.push((v, v + 1));
                edges.push((v + 1, v));
            }
            if r + 1 < rows {
                edges.push((v, v + cols));
                edges.push((v + cols, v));
            }
        }
    }
    EdgeList::new(n, edges)
}

/// Complete binary tree of the given depth (depth 0 = single vertex),
/// edges directed parent -> child.
pub fn binary_tree(depth: u32) -> EdgeList {
    let n = (1usize << (depth + 1)) - 1;
    let mut edges = Vec::with_capacity(n - 1);
    for v in 0..n {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < n {
                edges.push((v, child));
            }
        }
    }
    EdgeList::new(n, edges)
}

/// Random bipartite graph: left vertices `0..nl`, right vertices
/// `nl..nl+nr`, each left-right pair independently with probability `p`,
/// edges directed left -> right.
pub fn bipartite_random(nl: usize, nr: usize, p: f64, seed: u64) -> EdgeList {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..nl {
        for v in 0..nr {
            if rng.random::<f64>() < p {
                edges.push((u, nl + v));
            }
        }
    }
    EdgeList::new(nl + nr, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_cycle() {
        let p = path(4);
        assert_eq!(p.edges, vec![(0, 1), (1, 2), (2, 3)]);
        let c = cycle(3);
        assert_eq!(c.edges, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(0).num_edges(), 0);
    }

    #[test]
    fn star_degrees() {
        let s = star(5);
        let deg = s.out_degrees();
        assert_eq!(deg[0], 4);
        assert!(deg[1..].iter().all(|&d| d == 1));
    }

    #[test]
    fn complete_count() {
        assert_eq!(complete(5).num_edges(), 20);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn grid_edges() {
        let g = grid2d(2, 3); // 6 vertices; 7 undirected edges = 14 arcs
        assert_eq!(g.n, 6);
        assert_eq!(g.num_edges(), 14);
        // corner (0,0) has two neighbors
        assert_eq!(g.out_degrees()[0], 2);
    }

    #[test]
    fn tree_structure() {
        let t = binary_tree(3); // 15 vertices, 14 edges
        assert_eq!(t.n, 15);
        assert_eq!(t.num_edges(), 14);
        // root has two children, leaves none
        let deg = t.out_degrees();
        assert_eq!(deg[0], 2);
        assert_eq!(deg[14], 0);
    }

    #[test]
    fn bipartite_partitions() {
        let b = bipartite_random(4, 3, 0.9, 1);
        assert_eq!(b.n, 7);
        assert!(b.edges.iter().all(|&(u, v)| u < 4 && (4..7).contains(&v)));
        assert_eq!(b, bipartite_random(4, 3, 0.9, 1));
    }
}
