//! # graphblas-gen
//!
//! Deterministic synthetic graph generators for the GraphBLAS
//! reproduction: RMAT/Kronecker graphs (the SSCA/Graph500-style workload
//! behind the paper's batched-BC lineage), Erdős–Rényi graphs, and the
//! structured families (paths, cycles, grids, stars, trees, complete and
//! bipartite graphs) used by tests and benchmarks.
//!
//! All generators are seeded (`rand_chacha::ChaCha8Rng`) and produce an
//! [`EdgeList`] — a plain `(src, dst)` list plus the vertex count — with
//! helpers to deduplicate, symmetrize, permute labels, strip self-loops,
//! and attach deterministic weights.

pub mod edgelist;
pub mod io;
pub mod random;
pub mod social;
pub mod structured;

pub use edgelist::EdgeList;
pub use io::{
    read_edge_list, read_mtx, read_weighted_edge_list, write_edge_list, write_mtx, MtxMatrix,
};
pub use random::{erdos_renyi_gnm, erdos_renyi_gnp, rmat, RmatParams};
pub use social::{barabasi_albert, watts_strogatz};
pub use structured::{binary_tree, bipartite_random, complete, cycle, grid2d, path, star};
