//! Random graph generators: Erdős–Rényi and RMAT/Kronecker.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::edgelist::EdgeList;

/// `G(n, p)`: every ordered pair (no self-loops) independently with
/// probability `p`. O(n²) — intended for small n; use
/// [`erdos_renyi_gnm`] at scale.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> EdgeList {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.random::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    EdgeList::new(n, edges)
}

/// `G(n, m)`: `m` distinct directed edges drawn uniformly (no
/// self-loops). Sampling with rejection; requires
/// `m <= n*(n-1)/2` to terminate quickly.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 2, "need at least two vertices");
    assert!(
        m <= n * (n - 1) / 2,
        "too many edges requested for rejection sampling"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && seen.insert((u, v)) {
            edges.push((u, v));
        }
    }
    EdgeList::new(n, edges)
}

/// RMAT quadrant probabilities. The Graph500 defaults
/// (`a=0.57, b=0.19, c=0.19, d=0.05`) produce the skewed degree
/// distributions of social-network-like graphs.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

/// RMAT/Kronecker generator: `2^scale` vertices,
/// `edge_factor * 2^scale` edge insertions (duplicates kept, as in
/// Graph500 — call `.dedup()` for a simple graph). Deterministic in
/// `seed`.
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> EdgeList {
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let RmatParams { a, b, c, d } = params;
    let total = a + b + c + d;
    assert!(
        (total - 1.0).abs() < 1e-9,
        "quadrant probabilities must sum to 1"
    );
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let r: f64 = rng.random();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        edges.push((u, v));
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_determinism_and_bounds() {
        let g1 = erdos_renyi_gnp(30, 0.2, 1);
        let g2 = erdos_renyi_gnp(30, 0.2, 1);
        assert_eq!(g1, g2);
        assert_ne!(g1, erdos_renyi_gnp(30, 0.2, 2));
        assert!(g1.edges.iter().all(|&(u, v)| u != v && u < 30 && v < 30));
        // expectation ~ 0.2 * 30*29 = 174; loose sanity bounds
        assert!(g1.num_edges() > 80 && g1.num_edges() < 300);
    }

    #[test]
    fn gnm_exact_count_and_distinct() {
        let g = erdos_renyi_gnm(50, 100, 3);
        assert_eq!(g.num_edges(), 100);
        let dd = g.clone().dedup();
        assert_eq!(dd.num_edges(), 100); // already distinct
        assert!(g.edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(8, 8, RmatParams::default(), 42);
        assert_eq!(g.n, 256);
        assert_eq!(g.num_edges(), 8 * 256);
        assert!(g.edges.iter().all(|&(u, v)| u < 256 && v < 256));
        // determinism
        assert_eq!(g, rmat(8, 8, RmatParams::default(), 42));
    }

    #[test]
    fn rmat_is_skewed() {
        // with Graph500 parameters the max out-degree should be far above
        // the mean (power-law-ish head)
        let g = rmat(10, 16, RmatParams::default(), 7).dedup();
        let deg = g.out_degrees();
        let max = *deg.iter().max().unwrap();
        let mean = g.num_edges() as f64 / g.n as f64;
        assert!(
            (max as f64) > 4.0 * mean,
            "expected a heavy hub: max {max}, mean {mean}"
        );
    }

    #[test]
    fn rmat_uniform_params_not_skewed_like_default() {
        let uni = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        };
        let g_uni = rmat(10, 16, uni, 7).dedup();
        let g_def = rmat(10, 16, RmatParams::default(), 7).dedup();
        let max_uni = *g_uni.out_degrees().iter().max().unwrap();
        let max_def = *g_def.out_degrees().iter().max().unwrap();
        assert!(
            max_def > 2 * max_uni,
            "default RMAT should be much more skewed"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_params() {
        rmat(
            4,
            2,
            RmatParams {
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            0,
        );
    }
}
