//! E13: 2D-tiled hypersparse storage vs the single-slab store on the
//! E12 mid-size BFS workloads (`crates/gen` social graphs).
//!
//! The acceptance bar for tiling is *neutrality*, not speedup: with
//! every kernel walking tiles in ascending global index order the
//! results are bitwise identical (`tests/tiled_equivalence.rs`), and
//! the wall-clock on resident mid-size graphs must stay within 1.15×
//! of the slab. Tiling pays off elsewhere — tile-granular delta
//! flushes and the mmap-backed out-of-core grid (`tests/out_of_core.rs`
//! builds and traverses a graph whose slab cannot even be allocated).
//!
//! Workloads are E12's, unchanged: `khop2` (BFS-heavy 2-hop
//! neighborhood queries, frontiers stay sparse) and `bfs_full` (the
//! sparse → dense → sparse sweep). The adjacency handle is reused, so
//! per-store caches — per-tile degree caches in the tiled variant —
//! are warm after the first call: the resident-service steady state.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_core::prelude::*;
use std::time::Duration;

use graphblas_gen::barabasi_albert;

/// Vertices reached within `hops` steps of `src` (E12's query shape).
fn khop(ctx: &Context, a: &Matrix<bool>, src: usize, hops: usize) -> usize {
    let n = a.nrows();
    let visited = Vector::<bool>::new(n).unwrap();
    let q = Vector::from_tuples(n, &[(src, true)]).unwrap();
    let expand = Descriptor::default()
        .complement_mask()
        .structural_mask()
        .replace();
    ctx.assign_scalar_vector(&visited, &q, NoAccum, true, ALL, &Descriptor::default())
        .unwrap();
    for _ in 0..hops {
        ctx.mxv(&q, &visited, NoAccum, lor_land(), a, &q, &expand)
            .unwrap();
        if q.nvals().unwrap() == 0 {
            break;
        }
        ctx.assign_scalar_vector(&visited, &q, NoAccum, true, ALL, &Descriptor::default())
            .unwrap();
    }
    visited.nvals().unwrap()
}

/// Full single-source BFS with `mxv` frontier steps (E12's sweep).
fn bfs_mxv(ctx: &Context, a: &Matrix<bool>, src: usize) -> usize {
    let n = a.nrows();
    let levels = Vector::<i64>::new(n).unwrap();
    let q = Vector::from_tuples(n, &[(src, true)]).unwrap();
    let push = Descriptor::default()
        .complement_mask()
        .structural_mask()
        .replace();
    let mut d = 0i64;
    loop {
        ctx.assign_scalar_vector(&levels, &q, NoAccum, d, ALL, &Descriptor::default())
            .unwrap();
        ctx.mxv(&q, &levels, NoAccum, lor_land(), a, &q, &push)
            .unwrap();
        if q.nvals().unwrap() == 0 {
            break;
        }
        d += 1;
    }
    levels.nvals().unwrap()
}

fn bench_tiled(c: &mut Criterion) {
    let (n, m) = (50_000usize, 8usize);
    let el = barabasi_albert(n, m, 42).symmetrize();
    let tuples = el.bool_tuples();
    let ctx = Context::blocking();

    // One handle per storage variant; the graph data is identical.
    let slab = Matrix::from_tuples(el.n, el.n, &tuples).unwrap();
    slab.set_format(Format::Csr).unwrap();
    let variants: Vec<(String, Matrix<bool>)> = std::iter::once(("slab".to_string(), slab))
        .chain(
            [(2usize, 2usize), (4, 4), (8, 8)]
                .into_iter()
                .map(|(r, c)| {
                    let a = Matrix::from_tuples(el.n, el.n, &tuples).unwrap();
                    a.set_tile_shape(r, c).unwrap();
                    (format!("tiled{r}x{c}"), a)
                }),
        )
        .collect();

    let mut group = c.benchmark_group(format!("e13/ba_n{n}_m{m}"));
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);

    let sources: Vec<usize> = (0..32).map(|k| (k * 1543) % n).collect();
    for (name, a) in &variants {
        // warm the degree caches / assembled row view once
        let _ = bfs_mxv(&ctx, a, 0);
        group.bench_function(format!("khop2_{name}"), |b| {
            b.iter(|| sources.iter().map(|&s| khop(&ctx, a, s, 2)).sum::<usize>())
        });
        group.bench_function(format!("bfs_full_{name}"), |b| {
            b.iter(|| bfs_mxv(&ctx, a, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tiled);
criterion_main!(benches);
