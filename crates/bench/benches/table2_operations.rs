//! Experiment T2: one benchmark series per Table II operation, across
//! RMAT scales — the reproduction of the paper's operation inventory as
//! a performance surface.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::{dense_vector, f64_matrix, rmat_graph};
use graphblas_core::prelude::*;
use std::time::Duration;

const SCALES: [u32; 3] = [9, 11, 13];

fn setup(scale: u32) -> (Context, Matrix<f64>, Vector<f64>, usize) {
    let g = rmat_graph(scale);
    let ctx = Context::blocking();
    let a = f64_matrix(&g, scale as u64);
    let v = dense_vector(g.n);
    (ctx, a, v, g.n)
}

fn bench_all_operations(c: &mut Criterion) {
    for scale in SCALES {
        let (ctx, a, v, n) = setup(scale);
        let d = Descriptor::default();

        let mut group = c.benchmark_group(format!("table2/scale{scale}"));
        group.warm_up_time(Duration::from_millis(500));
        group.measurement_time(Duration::from_secs(2));
        group.sample_size(if scale >= 13 { 10 } else { 20 });

        group.bench_function(BenchmarkId::new("mxm", scale), |b| {
            b.iter(|| {
                let out = Matrix::<f64>::new(n, n).unwrap();
                ctx.mxm(&out, NoMask, NoAccum, plus_times::<f64>(), &a, &a, &d)
                    .unwrap();
                out.nvals().unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("mxv", scale), |b| {
            b.iter(|| {
                let w = Vector::<f64>::new(n).unwrap();
                ctx.mxv(&w, NoMask, NoAccum, plus_times::<f64>(), &a, &v, &d)
                    .unwrap();
                w.nvals().unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("vxm", scale), |b| {
            b.iter(|| {
                let w = Vector::<f64>::new(n).unwrap();
                ctx.vxm(&w, NoMask, NoAccum, plus_times::<f64>(), &v, &a, &d)
                    .unwrap();
                w.nvals().unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("eWiseMult", scale), |b| {
            b.iter(|| {
                let out = Matrix::<f64>::new(n, n).unwrap();
                ctx.ewise_mult_matrix(&out, NoMask, NoAccum, Times::new(), &a, &a, &d)
                    .unwrap();
                out.nvals().unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("eWiseAdd", scale), |b| {
            b.iter(|| {
                let out = Matrix::<f64>::new(n, n).unwrap();
                ctx.ewise_add_matrix(&out, NoMask, NoAccum, Plus::new(), &a, &a, &d)
                    .unwrap();
                out.nvals().unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("reduce_rows", scale), |b| {
            b.iter(|| {
                let w = Vector::<f64>::new(n).unwrap();
                ctx.reduce_rows(&w, NoMask, NoAccum, PlusMonoid::new(), &a, &d)
                    .unwrap();
                w.nvals().unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("apply", scale), |b| {
            b.iter(|| {
                let out = Matrix::<f64>::new(n, n).unwrap();
                ctx.apply_matrix(&out, NoMask, NoAccum, Minv::new(), &a, &d)
                    .unwrap();
                out.nvals().unwrap()
            })
        });
        let a_tuples = a.extract_tuples().unwrap();
        group.bench_function(BenchmarkId::new("transpose", scale), |b| {
            // a fresh value node per iteration defeats the memoized
            // transpose, so the full counting sort is measured
            b.iter_batched(
                || Matrix::from_tuples(n, n, &a_tuples).unwrap(),
                |fresh| {
                    let out = Matrix::<f64>::new(n, n).unwrap();
                    ctx.transpose(&out, NoMask, NoAccum, &fresh, &d).unwrap();
                    out.nvals().unwrap()
                },
                criterion::BatchSize::LargeInput,
            )
        });
        let half: Vec<Index> = (0..n / 2).collect();
        group.bench_function(BenchmarkId::new("extract", scale), |b| {
            b.iter(|| {
                let out = Matrix::<f64>::new(n / 2, n / 2).unwrap();
                ctx.extract_matrix(
                    &out,
                    NoMask,
                    NoAccum,
                    &a,
                    IndexSelection::List(&half),
                    IndexSelection::List(&half),
                    &d,
                )
                .unwrap();
                out.nvals().unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("assign", scale), |b| {
            b.iter(|| {
                let out = Matrix::<f64>::new(n, n).unwrap();
                ctx.assign_scalar_matrix(
                    &out,
                    NoMask,
                    NoAccum,
                    1.0,
                    IndexSelection::Range(0, n / 2),
                    IndexSelection::Range(0, n / 2),
                    &d,
                )
                .unwrap();
                out.nvals().unwrap()
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_all_operations);
criterion_main!(benches);
