//! Experiment F2: the full `GrB_mxm` semantic surface of Figure 2 —
//! accumulators, write masks (plain / complemented / structural),
//! REPLACE vs merge, input transposition — plus the headline mask
//! optimization: a sparse mask pushed into the multiply makes the
//! product cost scale with the *mask*, not the full flop count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::{f64_matrix, rmat_graph};
use graphblas_core::prelude::*;
use std::time::Duration;

fn bench_descriptor_variants(c: &mut Criterion) {
    let scale = 9;
    let g = rmat_graph(scale);
    let n = g.n;
    let ctx = Context::blocking();
    let a = f64_matrix(&g, 1);
    // a modest mask: the graph's own pattern
    let mask = a.dup();

    let mut group = c.benchmark_group("fig2/mxm_variants");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    let sr = plus_times::<f64>;

    group.bench_function(BenchmarkId::new("plain", scale), |b| {
        b.iter(|| {
            let out = Matrix::<f64>::new(n, n).unwrap();
            ctx.mxm(&out, NoMask, NoAccum, sr(), &a, &a, &Descriptor::default())
                .unwrap();
            out.nvals().unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("accum", scale), |b| {
        b.iter(|| {
            let out = a.dup();
            ctx.mxm(
                &out,
                NoMask,
                Accum(Plus::<f64>::new()),
                sr(),
                &a,
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            out.nvals().unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("masked_merge", scale), |b| {
        b.iter(|| {
            let out = Matrix::<f64>::new(n, n).unwrap();
            ctx.mxm(
                &out,
                &mask,
                NoAccum,
                sr(),
                &a,
                &a,
                &Descriptor::default().structural_mask(),
            )
            .unwrap();
            out.nvals().unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("masked_replace", scale), |b| {
        b.iter(|| {
            let out = Matrix::<f64>::new(n, n).unwrap();
            ctx.mxm(
                &out,
                &mask,
                NoAccum,
                sr(),
                &a,
                &a,
                &Descriptor::default().structural_mask().replace(),
            )
            .unwrap();
            out.nvals().unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("masked_scmp_replace", scale), |b| {
        b.iter(|| {
            let out = Matrix::<f64>::new(n, n).unwrap();
            ctx.mxm(
                &out,
                &mask,
                NoAccum,
                sr(),
                &a,
                &a,
                &Descriptor::default()
                    .structural_mask()
                    .complement_mask()
                    .replace(),
            )
            .unwrap();
            out.nvals().unwrap()
        })
    });
    let a_tuples = a.extract_tuples().unwrap();
    group.bench_function(BenchmarkId::new("transpose_first_cold", scale), |b| {
        // fresh value node each iteration: the transpose is recomputed
        b.iter_batched(
            || Matrix::from_tuples(n, n, &a_tuples).unwrap(),
            |fresh| {
                let out = Matrix::<f64>::new(n, n).unwrap();
                ctx.mxm(
                    &out,
                    NoMask,
                    NoAccum,
                    sr(),
                    &fresh,
                    &a,
                    &Descriptor::default().transpose_first(),
                )
                .unwrap();
                out.nvals().unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("transpose_first_cached", scale), |b| {
        // the same operand matrix every time: the memoized transpose is
        // computed once — the BC forward-sweep pattern
        b.iter(|| {
            let out = Matrix::<f64>::new(n, n).unwrap();
            ctx.mxm(
                &out,
                NoMask,
                NoAccum,
                sr(),
                &a,
                &a,
                &Descriptor::default().transpose_first(),
            )
            .unwrap();
            out.nvals().unwrap()
        })
    });
    group.finish();
}

fn bench_mask_sparsity_scaling(c: &mut Criterion) {
    // the masked-SpGEMM payoff: with an e-fraction mask the work should
    // track the mask size (dot-product form), not the full product
    let scale = 10;
    let g = rmat_graph(scale);
    let n = g.n;
    let ctx = Context::blocking();
    let a = f64_matrix(&g, 2);

    let mut group = c.benchmark_group("fig2/mask_sparsity");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(15);
    for frac_pow in [0u32, 3, 6, 9] {
        // mask with ~n*4^(−frac_pow/3) entries down to a handful
        let keep = |k: usize| {
            (k as u64)
                .wrapping_mul(2654435761)
                .is_multiple_of(1 << frac_pow)
        };
        let mtuples: Vec<(usize, usize, bool)> = (0..n)
            .flat_map(|i| {
                let j = (i * 7 + 3) % n;
                keep(i).then_some((i, j, true))
            })
            .collect();
        if mtuples.is_empty() {
            continue;
        }
        let mut mt = mtuples;
        mt.sort_by_key(|t| (t.0, t.1));
        let mask = Matrix::from_tuples(n, n, &mt).unwrap();
        let nnz = mask.nvals().unwrap();
        group.bench_function(BenchmarkId::new("masked_mxm_nnz", nnz), |b| {
            b.iter(|| {
                let out = Matrix::<f64>::new(n, n).unwrap();
                ctx.mxm(
                    &out,
                    &mask,
                    NoAccum,
                    plus_times::<f64>(),
                    &a,
                    &a,
                    &Descriptor::default().structural_mask().replace(),
                )
                .unwrap();
                out.nvals().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_descriptor_variants,
    bench_mask_sparsity_scaling
);
criterion_main!(benches);
