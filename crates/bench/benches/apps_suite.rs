//! Application-suite benchmark: the GraphBLAS algorithms vs their
//! classic baselines on one RMAT workload — the "who wins, by what
//! factor" series EXPERIMENTS.md records for the paper's claim that the
//! API enables high-performance graph libraries.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_algorithms as alg;
use graphblas_bench::{bool_matrix, rmat_graph, rmat_undirected};
use graphblas_core::prelude::*;
use graphblas_reference as refr;
use graphblas_reference::{AdjGraph, WeightedGraph};
use std::time::Duration;

fn bench_apps(c: &mut Criterion) {
    let scale = 11;
    let g = rmat_graph(scale);
    let n = g.n;
    let ctx = Context::blocking();
    let a = bool_matrix(&g);
    let adj = AdjGraph::from_edges(n, &g.edges);

    let mut group = c.benchmark_group(format!("apps/scale{scale}"));
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    group.bench_function("bfs_graphblas", |b| {
        b.iter(|| alg::bfs_levels(&ctx, &a, 0).unwrap().len())
    });
    group.bench_function("bfs_reference", |b| {
        b.iter(|| refr::traversal::bfs_levels(&adj, 0).len())
    });

    let wt = g.weighted_tuples(1.0, 5.0, 3);
    let aw = Matrix::from_tuples(n, n, &wt).unwrap();
    let wg = WeightedGraph::from_edges(n, &wt);
    group.bench_function("sssp_graphblas_bellman_ford", |b| {
        b.iter(|| alg::sssp_bellman_ford(&ctx, &aw, 0).unwrap().len())
    });
    group.bench_function("sssp_reference_dijkstra", |b| {
        b.iter(|| refr::paths::dijkstra(&wg, 0).len())
    });

    group.bench_function("pagerank_graphblas", |b| {
        b.iter(|| alg::pagerank(&ctx, &a, 0.85, 1e-8, 100).unwrap().1)
    });
    group.bench_function("pagerank_reference", |b| {
        b.iter(|| refr::pagerank::pagerank(&adj, 0.85, 1e-8, 100).1)
    });

    let und = rmat_undirected(scale - 1);
    let au = bool_matrix(&und);
    let adj_u = AdjGraph::from_edges(und.n, &und.edges);
    group.bench_function("triangles_graphblas", |b| {
        b.iter(|| alg::triangle_count(&ctx, &au).unwrap())
    });
    group.bench_function("triangles_reference", |b| {
        b.iter(|| refr::triangles::triangle_count(&adj_u))
    });

    group.bench_function("components_graphblas", |b| {
        b.iter(|| alg::num_components(&ctx, &au).unwrap())
    });
    group.bench_function("components_reference", |b| {
        b.iter(|| refr::components::num_components(&adj_u))
    });

    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
