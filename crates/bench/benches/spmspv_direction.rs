//! E12: direction-optimized SpMSpV vs the dense-pull baseline on
//! `crates/gen` social graphs (GAP-style BFS workloads).
//!
//! Two workload shapes, each run twice — once with the dispatch free to
//! choose (`Direction::Auto`, the shipped default) and once pinned to
//! the pre-PR dense kernels (`Direction::Dense`):
//!
//! - `khop2`: 2-hop neighborhood queries from many sources — the
//!   BFS-heavy service shape. Frontiers stay sparse for the whole
//!   query, so the O(n + nnz)-per-step dense merge-walk dominates the
//!   baseline and push wins by a wide margin.
//! - `bfs_full`: complete single-source BFS — frontiers sweep sparse →
//!   dense → sparse, so Auto switches push → pull mid-traversal (the
//!   trace evidence lives in `tests/direction_equivalence.rs`).
//!
//! Both workloads step the frontier with `mxv` (`q' = A ⊕.⊗ q`), whose
//! pre-PR kernel is the dense merge-walk pull over *every* row of A —
//! the "dense-pull baseline" of the experiment. (`vxm`'s legacy kernel
//! already expanded only frontier rows, so its gap is the O(n)
//! accumulator, not the O(nnz) walk; `khop2_vxm_*` quantifies that
//! smaller win.) On a symmetric graph both forms compute the same
//! frontier, which `tests/direction_equivalence.rs` pins bitwise.
//!
//! The adjacency handle is reused across iterations, so the per-matrix
//! property caches (degrees, symmetry, shared transpose view) are warm
//! after the first call — exactly the steady state a resident graph
//! service runs in.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_core::prelude::*;
use graphblas_core::spmspv::{self, Direction};
use graphblas_gen::barabasi_albert;
use std::time::Duration;

/// Vertices reached within `hops` steps of `src` — one masked
/// matrix–vector product per hop, the frontier shape of
/// neighborhood/ego-net queries. `use_mxv` picks the product form (see
/// the module docs: `mxv` is the dense-pull-baseline form).
fn khop(ctx: &Context, a: &Matrix<bool>, src: usize, hops: usize, use_mxv: bool) -> usize {
    let n = a.nrows();
    let visited = Vector::<bool>::new(n).unwrap();
    let q = Vector::from_tuples(n, &[(src, true)]).unwrap();
    let expand = Descriptor::default()
        .complement_mask()
        .structural_mask()
        .replace();
    ctx.assign_scalar_vector(&visited, &q, NoAccum, true, ALL, &Descriptor::default())
        .unwrap();
    for _ in 0..hops {
        if use_mxv {
            ctx.mxv(&q, &visited, NoAccum, lor_land(), a, &q, &expand)
                .unwrap();
        } else {
            ctx.vxm(&q, &visited, NoAccum, lor_land(), &q, a, &expand)
                .unwrap();
        }
        if q.nvals().unwrap() == 0 {
            break;
        }
        ctx.assign_scalar_vector(&visited, &q, NoAccum, true, ALL, &Descriptor::default())
            .unwrap();
    }
    visited.nvals().unwrap()
}

/// Full single-source BFS with `mxv` frontier steps — the same level
/// sweep as `graphblas_algorithms::bfs_levels`, in the product form
/// whose pre-PR kernel is the dense merge-walk.
fn bfs_mxv(ctx: &Context, a: &Matrix<bool>, src: usize) -> usize {
    let n = a.nrows();
    let levels = Vector::<i64>::new(n).unwrap();
    let q = Vector::from_tuples(n, &[(src, true)]).unwrap();
    let push = Descriptor::default()
        .complement_mask()
        .structural_mask()
        .replace();
    let mut d = 0i64;
    loop {
        ctx.assign_scalar_vector(&levels, &q, NoAccum, d, ALL, &Descriptor::default())
            .unwrap();
        ctx.mxv(&q, &levels, NoAccum, lor_land(), a, &q, &push)
            .unwrap();
        if q.nvals().unwrap() == 0 {
            break;
        }
        d += 1;
    }
    levels.nvals().unwrap()
}

fn bench_directions(c: &mut Criterion) {
    let (n, m) = (50_000usize, 8usize);
    let el = barabasi_albert(n, m, 42).symmetrize();
    let a = Matrix::from_tuples(el.n, el.n, &el.bool_tuples()).unwrap();
    let ctx = Context::blocking();
    // Warm the property caches and the shared row view once; every
    // variant then benches the steady state.
    let _ = bfs_mxv(&ctx, &a, 0);

    let mut group = c.benchmark_group(format!("e12/ba_n{n}_m{m}"));
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);

    let sources: Vec<usize> = (0..32).map(|k| (k * 1543) % n).collect();
    for (name, dir) in [
        ("khop2_auto", Direction::Auto),
        ("khop2_dense_baseline", Direction::Dense),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                spmspv::with_direction(dir, || {
                    sources
                        .iter()
                        .map(|&s| khop(&ctx, &a, s, 2, true))
                        .sum::<usize>()
                })
            })
        });
    }
    for (name, dir) in [
        ("khop2_vxm_auto", Direction::Auto),
        ("khop2_vxm_dense_baseline", Direction::Dense),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                spmspv::with_direction(dir, || {
                    sources
                        .iter()
                        .map(|&s| khop(&ctx, &a, s, 2, false))
                        .sum::<usize>()
                })
            })
        });
    }

    for (name, dir) in [
        ("bfs_full_auto", Direction::Auto),
        ("bfs_full_dense_baseline", Direction::Dense),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| spmspv::with_direction(dir, || bfs_mxv(&ctx, &a, 0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_directions);
criterion_main!(benches);
