//! Experiment F3: the Figure 3 betweenness-centrality kernel.
//!
//! Series: `BC_update` (batched, GraphBLAS) vs classic Brandes
//! (reference baseline) across graph scales, and the batch-size sweep
//! that motivates the batched formulation — one fused multi-source
//! sweep amortizes the graph traversals that one-source-at-a-time
//! Brandes repeats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphblas_algorithms::bc_update;
use graphblas_bench::{int_matrix, rmat_graph};
use graphblas_core::prelude::*;
use graphblas_reference::{bc::brandes_batch, AdjGraph};
use std::time::Duration;

fn bench_bc_scaling(c: &mut Criterion) {
    let batch = 32;
    let mut group = c.benchmark_group("fig3/scaling");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for scale in [8u32, 10, 12] {
        let g = rmat_graph(scale);
        let n = g.n;
        let ctx = Context::blocking();
        let a = int_matrix(&g);
        let adj = AdjGraph::from_edges(n, &g.edges);
        let sources: Vec<Index> = (0..batch.min(n)).collect();
        group.throughput(Throughput::Elements(sources.len() as u64));

        group.bench_function(BenchmarkId::new("graphblas_bc_update", scale), |b| {
            b.iter(|| {
                let delta = bc_update(&ctx, &a, &sources).unwrap();
                delta.nvals().unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("reference_brandes", scale), |b| {
            b.iter(|| brandes_batch(&adj, &sources).len())
        });
    }
    group.finish();
}

fn bench_batch_size_sweep(c: &mut Criterion) {
    // fixed graph, growing batch: GraphBLAS cost per source should fall
    // as the batch amortizes sweeps over the same adjacency structure
    let scale = 10;
    let g = rmat_graph(scale);
    let ctx = Context::blocking();
    let a = int_matrix(&g);

    let mut group = c.benchmark_group("fig3/batch_sweep");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for batch in [1usize, 4, 16, 64, 256] {
        let sources: Vec<Index> = (0..batch).collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(BenchmarkId::new("bc_update_batch", batch), |b| {
            b.iter(|| {
                let delta = bc_update(&ctx, &a, &sources).unwrap();
                delta.nvals().unwrap()
            })
        });
    }
    group.finish();
}

fn bench_bc_modes(c: &mut Criterion) {
    // blocking vs nonblocking execution of the same BC computation:
    // §IV promises identical results; the deferral machinery should cost
    // little on a computation this dense in forced observations
    let scale = 9;
    let g = rmat_graph(scale);
    let a = int_matrix(&g);
    let sources: Vec<Index> = (0..32).collect();

    let mut group = c.benchmark_group("fig3/modes");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("blocking", |b| {
        let ctx = Context::blocking();
        b.iter(|| bc_update(&ctx, &a, &sources).unwrap().nvals().unwrap())
    });
    group.bench_function("nonblocking", |b| {
        let ctx = Context::nonblocking();
        b.iter(|| {
            let r = bc_update(&ctx, &a, &sources).unwrap().nvals().unwrap();
            ctx.wait().unwrap();
            r
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bc_scaling,
    bench_batch_size_sweep,
    bench_bc_modes
);
criterion_main!(benches);
