//! Experiment E11: ingest-while-query on MVCC snapshots
//! (`storage::snapshot`).
//!
//! A custom harness (not criterion — the unit of measurement is a
//! sustained writer/reader race, not a closure): one writer thread
//! streams point edge updates into a shared adjacency matrix at full
//! speed while reader threads repeatedly take O(1) snapshots and run
//! full BFS sweeps against them on their own traced contexts.
//!
//! Acceptance (recorded in EXPERIMENTS.md):
//! * sustained ingest ≥ 10⁶ edge updates/s *while* the readers query;
//! * readers never force a drain of the writer's delta log — verified
//!   from the reader traces, which must contain **zero** `flush`
//!   nodes (snapshot reads produce only `overlay` + kernel events);
//! * the background flusher/compactor, not the readers, is what keeps
//!   the run backlog bounded (reported from `snapshot_stats()`).
//!
//! Environment knobs: `GRB_INGEST_SECS` (default 3),
//! `GRB_INGEST_READERS` (default 2).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphblas_algorithms::bfs_multi;
use graphblas_core::prelude::*;
use graphblas_core::storage::delta;
use graphblas_core::SchedPolicy;
use graphblas_gen::{rmat, RmatParams};

const SCALE: u32 = 12; // 4096 vertices

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Small deterministic PRNG so every run streams the same edges.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn main() {
    let secs = env_usize("GRB_INGEST_SECS", 3);
    let readers = env_usize("GRB_INGEST_READERS", 2);

    // Default run cap + a short flush window: the realistic streaming
    // configuration (size-triggered seals, time-triggered background
    // merges).
    delta::set_session_run_cap(None);
    graphblas_core::storage::snapshot::set_session_flush_window_ms(Some(50));

    // Seed graph so the BFS sweeps do real frontier work from step one.
    let g = rmat(SCALE, 8, RmatParams::default(), 11)
        .dedup()
        .without_self_loops();
    let n = g.n;
    let m = Matrix::<bool>::new(n, n).unwrap();
    for &(u, v) in &g.edges {
        m.set(u, v, true).unwrap();
    }
    let _ = m.nvals().unwrap(); // settle the seed into the base

    let stop = Arc::new(AtomicBool::new(false));
    let updates = Arc::new(AtomicU64::new(0));
    let queries = Arc::new(AtomicU64::new(0));
    let reader_flush_nodes = Arc::new(AtomicU64::new(0));
    let overlay_snapshots = Arc::new(AtomicU64::new(0));
    let stall_ns_max = Arc::new(AtomicU64::new(0));

    let stats0 = snapshot_stats();
    let start = Instant::now();

    // The writer: full-speed point updates, ~10% tombstones. It never
    // calls a completion-forcing read; the background flusher owns the
    // merges.
    let writer = {
        let m = m.clone();
        let stop = stop.clone();
        let updates = updates.clone();
        std::thread::spawn(move || {
            let mut rng = Lcg(0xfeed);
            let t0 = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                // batch the stop check so the hot loop is pure ingest
                for _ in 0..1024 {
                    let u = (rng.next() as usize) % n;
                    let v = (rng.next() as usize) % n;
                    if rng.next().is_multiple_of(10) {
                        m.remove(u, v).unwrap();
                    } else {
                        m.set(u, v, true).unwrap();
                    }
                }
                updates.fetch_add(1024, Ordering::Relaxed);
            }
            // the writer's own active window: the joins below wait out
            // the readers' last sweeps, which must not dilute the rate
            t0.elapsed().as_secs_f64()
        })
    };

    // The readers: snapshot → frozen handle → multi-source BFS on a
    // private traced context. The trace is the proof of isolation:
    // snapshot reads must schedule only overlay merges and kernels,
    // never a `flush` of the live log.
    let handles: Vec<_> = (0..readers.max(1))
        .map(|r| {
            let m = m.clone();
            let stop = stop.clone();
            let queries = queries.clone();
            let flushes = reader_flush_nodes.clone();
            let overlays = overlay_snapshots.clone();
            let stall = stall_ns_max.clone();
            std::thread::spawn(move || {
                let ctx = Context::with_policy(Mode::Nonblocking, SchedPolicy::Parallel);
                ctx.enable_trace(true);
                let mut rng = Lcg(0xace + r as u64);
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let snap = m.snapshot(); // O(1), never blocks on the writer
                    if snap.run_count() > 0 {
                        // taken atop live sealed runs: this sweep reads
                        // through a (base, runs) overlay, not a
                        // quiesced base
                        overlays.fetch_add(1, Ordering::Relaxed);
                    }
                    let frozen = snap.to_matrix();
                    let sources: Vec<usize> = (0..4).map(|_| (rng.next() as usize) % n).collect();
                    bfs_multi(&ctx, &frozen, &sources).unwrap();
                    let dt = t0.elapsed().as_nanos() as u64;
                    stall.fetch_max(dt, Ordering::Relaxed);
                    queries.fetch_add(1, Ordering::Relaxed);
                    // The trace is the no-stall proof: a regression
                    // that re-introduced completion-forcing reads
                    // would put a `flush` node in the reader's DAG.
                    for e in ctx.take_trace() {
                        if e.kind == "flush" {
                            flushes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs(secs as u64));
    stop.store(true, Ordering::Relaxed);
    let writer_secs = writer.join().unwrap();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();

    let updates = updates.load(Ordering::Relaxed);
    let queries = queries.load(Ordering::Relaxed);
    let flushes = reader_flush_nodes.load(Ordering::Relaxed);
    let overlays = overlay_snapshots.load(Ordering::Relaxed);
    let stats1 = snapshot_stats();
    let rate = updates as f64 / writer_secs;
    let final_stats = m.delta_stats();

    println!(
        "ingest_query (e11): 1 writer + {readers} snapshot-BFS readers on rmat scale {SCALE}, {elapsed:.1}s"
    );
    println!(
        "  ingest: {updates} updates, {:.2}M updates/s (sustained, while readers query)",
        rate / 1e6
    );
    println!(
        "  readers: {queries} BFS sweeps (4 sources each), max sweep latency {:.1} ms",
        stall_ns_max.load(Ordering::Relaxed) as f64 / 1e6
    );
    println!(
        "  isolation: reader-issued flush nodes = {flushes} (must be 0), sweeps atop live sealed runs = {overlays}/{queries}"
    );
    println!(
        "  background: {} flushes, {} compactions ({} KiB merged), {} snapshots taken, final backlog: {} runs / {} pending",
        stats1.background_flushes - stats0.background_flushes,
        stats1.compactions - stats0.compactions,
        (stats1.compacted_bytes - stats0.compacted_bytes) / 1024,
        stats1.snapshots_taken - stats0.snapshots_taken,
        final_stats.run_count,
        final_stats.pending_len,
    );

    assert!(updates > 0 && queries > 0, "both sides must make progress");
    assert_eq!(
        flushes, 0,
        "snapshot readers must never force a drain of the writer's log"
    );
    assert!(
        overlays > 0,
        "at least one sweep should read through a (base, runs) overlay, not a quiesced base"
    );
    assert!(
        rate >= 1e6,
        "sustained ingest fell below 10^6 updates/s: {rate:.0}"
    );
}
