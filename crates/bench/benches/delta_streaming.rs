//! Experiment E9: the pending-update buffer (`storage::delta`).
//!
//! Series:
//! * `e9/incremental_load` — build an n×n matrix edge-by-edge through
//!   `Matrix::set`, then force one `nvals()`. `deferred` is the
//!   shipped path: O(1) appends into the delta log, one k-way merge at
//!   the end. `eager` emulates the pre-delta seed, where every `set`
//!   forced completion and rewrote the backing store (reproduced here
//!   by a `wait()` after each call): O(nvals) per edge, O(E²) total.
//!   The acceptance target is deferred ≥ 10× faster at 10⁵ edges.
//! * The 10⁶-edge point runs deferred-only — the eager rewrite is
//!   quadratic and would dominate the whole harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_core::prelude::*;
use graphblas_gen::erdos_renyi_gnm;
use std::time::Duration;

const N: usize = 2048;

fn edge_list(edges: usize) -> Vec<(usize, usize)> {
    erdos_renyi_gnm(N, edges, 9).edges
}

/// The shipped path: buffered appends, one merge at the closing read.
fn load_deferred(edges: &[(usize, usize)]) -> usize {
    let m = Matrix::<f64>::new(N, N).unwrap();
    for &(i, j) in edges {
        m.set(i, j, 1.0).unwrap();
    }
    m.nvals().unwrap()
}

/// The seed emulation: flush after every point update, as `set` did
/// before the delta subsystem existed.
fn load_eager(edges: &[(usize, usize)]) -> usize {
    let m = Matrix::<f64>::new(N, N).unwrap();
    for &(i, j) in edges {
        m.set(i, j, 1.0).unwrap();
        m.wait().unwrap();
    }
    m.nvals().unwrap()
}

fn bench_incremental_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9/incremental_load");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for edges in [1_000usize, 10_000, 100_000, 1_000_000] {
        let list = edge_list(edges);
        group.bench_function(BenchmarkId::new("deferred", edges), |b| {
            b.iter(|| load_deferred(&list))
        });
        if edges <= 100_000 {
            group.bench_function(BenchmarkId::new("eager", edges), |b| {
                b.iter(|| load_eager(&list))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_load);
criterion_main!(benches);
