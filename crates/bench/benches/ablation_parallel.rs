//! Experiment E8: thread-scaling ablation — the row-parallel kernels at
//! intra-kernel degrees 1, 2, 4, 8 on the shared worker pool (design
//! objective (ii): "enabling high-performance implementations on modern
//! hardware"). Kernels are called directly, so there is no DAG
//! scheduling or fusion in the loop; the degree is pinned per
//! measurement with [`par::with_parallelism`].

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_core::algebra::semiring::plus_times;
use graphblas_core::kernel::mxm::{mxm, MxmStrategy};
use graphblas_core::mask::MaskCsr;
use graphblas_core::par;
use graphblas_core::storage::csr::Csr;
use graphblas_gen::{rmat, RmatParams};
use std::time::Duration;

const DEGREES: [usize; 4] = [1, 2, 4, 8];

/// Fix the worker pool's width at the widest degree we measure. The
/// pool is sized once, at first use, from the default-parallelism knob —
/// so this must run before the first parallel kernel.
fn widen_pool() {
    par::set_default_parallelism(Some(*DEGREES.iter().max().unwrap()));
}

fn bench_thread_scaling(c: &mut Criterion) {
    widen_pool();
    let g = rmat(12, 8, RmatParams::default(), 9)
        .dedup()
        .without_self_loops();
    let mut t = g.weighted_tuples(1.0, 2.0, 9);
    t.sort_by_key(|&(i, j, _)| (i, j));
    let a = Csr::from_sorted_tuples(g.n, g.n, t);
    let sr = plus_times::<f64>();

    let mut group = c.benchmark_group("ablation_parallel/mxm");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for degree in DEGREES {
        group.bench_function(BenchmarkId::new("threads", degree), |b| {
            b.iter(|| {
                par::with_parallelism(degree, || {
                    mxm(&sr, &a, &a, &MaskCsr::All, MxmStrategy::Auto).nvals()
                })
            })
        });
    }
    group.finish();
}

fn bench_ewise_scaling(c: &mut Criterion) {
    widen_pool();
    let g = rmat(13, 8, RmatParams::default(), 10).dedup();
    let mut t = g.weighted_tuples(1.0, 2.0, 10);
    t.sort_by_key(|&(i, j, _)| (i, j));
    let a = Csr::from_sorted_tuples(g.n, g.n, t);

    let mut group = c.benchmark_group("ablation_parallel/ewise_add");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    let add = graphblas_core::algebra::binary::Plus::<f64>::new();
    for degree in DEGREES {
        group.bench_function(BenchmarkId::new("threads", degree), |b| {
            b.iter(|| {
                par::with_parallelism(degree, || {
                    graphblas_core::kernel::ewise::ewise_add_matrix(&a, &a, &add).nvals()
                })
            })
        });
    }
    group.finish();
}

fn bench_mxv_scaling(c: &mut Criterion) {
    widen_pool();
    let g = rmat(14, 8, RmatParams::default(), 11).dedup();
    let mut t = g.weighted_tuples(1.0, 2.0, 11);
    t.sort_by_key(|&(i, j, _)| (i, j));
    let a = Csr::from_sorted_tuples(g.n, g.n, t);
    let v = graphblas_core::storage::vec::SparseVec::from_sorted_parts(
        g.n,
        (0..g.n).collect(),
        (0..g.n).map(|i| (i % 17) as f64).collect(),
    );
    let sr = plus_times::<f64>();

    let mut group = c.benchmark_group("ablation_parallel/mxv");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for degree in DEGREES {
        group.bench_function(BenchmarkId::new("threads", degree), |b| {
            b.iter(|| {
                par::with_parallelism(degree, || {
                    graphblas_core::kernel::mxv::mxv(
                        &sr,
                        &a,
                        &v,
                        &graphblas_core::mask::MaskVec::All,
                    )
                    .nvals()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_thread_scaling,
    bench_ewise_scaling,
    bench_mxv_scaling
);
criterion_main!(benches);
