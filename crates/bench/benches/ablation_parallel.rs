//! Experiment A2: thread-scaling ablation — the row-parallel kernels
//! under rayon pools of 1, 2, 4, … threads (design objective (ii):
//! "enabling high-performance implementations on modern hardware").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_core::algebra::semiring::plus_times;
use graphblas_core::kernel::mxm::{mxm, MxmStrategy};
use graphblas_core::mask::MaskCsr;
use graphblas_core::storage::csr::Csr;
use graphblas_gen::{rmat, RmatParams};
use std::time::Duration;

fn bench_thread_scaling(c: &mut Criterion) {
    let g = rmat(12, 8, RmatParams::default(), 9)
        .dedup()
        .without_self_loops();
    let mut t = g.weighted_tuples(1.0, 2.0, 9);
    t.sort_by_key(|&(i, j, _)| (i, j));
    let a = Csr::from_sorted_tuples(g.n, g.n, t);
    let sr = plus_times::<f64>();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut group = c.benchmark_group("ablation_parallel/mxm");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| pool.install(|| mxm(&sr, &a, &a, &MaskCsr::All, MxmStrategy::Auto).nvals()))
        });
        threads *= 2;
    }
    group.finish();
}

fn bench_transpose_scaling(c: &mut Criterion) {
    let g = rmat(13, 8, RmatParams::default(), 10).dedup();
    let mut t = g.weighted_tuples(1.0, 2.0, 10);
    t.sort_by_key(|&(i, j, _)| (i, j));
    let a = Csr::from_sorted_tuples(g.n, g.n, t);

    let mut group = c.benchmark_group("ablation_parallel/ewise_add");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let add = graphblas_core::algebra::binary::Plus::<f64>::new();
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                pool.install(|| {
                    graphblas_core::kernel::ewise::ewise_add_matrix(&a, &a, &add).nvals()
                })
            })
        });
        threads *= 2;
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_transpose_scaling);
criterion_main!(benches);
