//! Experiment A1: SpGEMM accumulator-strategy ablation, driving the
//! kernel layer directly — hash vs dense vs the per-row Auto heuristic,
//! on workloads chosen to favour each side, plus scatter vs dot-product
//! form for masked products.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_core::algebra::semiring::plus_times;
use graphblas_core::kernel::mxm::{mxm, mxm_dot, MxmStrategy};
use graphblas_core::mask::MaskCsr;
use graphblas_core::storage::csr::Csr;
use graphblas_gen::{erdos_renyi_gnm, rmat, RmatParams};
use std::time::Duration;

fn to_csr(g: &graphblas_gen::EdgeList, seed: u64) -> Csr<f64> {
    let mut t = g.weighted_tuples(1.0, 2.0, seed);
    t.sort_by_key(|&(i, j, _)| (i, j));
    Csr::from_sorted_tuples(g.n, g.n, t)
}

fn bench_strategies(c: &mut Criterion) {
    // hypersparse: ER with avg degree 4 (hash should win)
    // denser rows: RMAT with heavy hubs (dense accumulators pay off on
    // hub rows; Auto should track the better of the two)
    let workloads = [
        (
            "er_sparse",
            to_csr(&erdos_renyi_gnm(4096, 16384, 1).dedup(), 1),
        ),
        (
            "rmat_skewed",
            to_csr(
                &rmat(12, 8, RmatParams::default(), 2)
                    .dedup()
                    .without_self_loops(),
                2,
            ),
        ),
    ];
    let sr = plus_times::<f64>();
    for (name, a) in &workloads {
        let mut group = c.benchmark_group(format!("ablation_spgemm/{name}"));
        group.warm_up_time(Duration::from_millis(500));
        group.measurement_time(Duration::from_secs(2));
        group.sample_size(10);
        for (label, strat) in [
            ("hash", MxmStrategy::Hash),
            ("dense", MxmStrategy::Dense),
            ("auto", MxmStrategy::Auto),
        ] {
            group.bench_function(BenchmarkId::new(label, a.nvals()), |b| {
                b.iter(|| mxm(&sr, a, a, &MaskCsr::All, strat).nvals())
            });
        }
        group.finish();
    }
}

fn bench_masked_scatter_vs_dot(c: &mut Criterion) {
    // a very sparse mask over a heavy product: dot form touches only
    // admitted positions while scatter still sweeps all flops
    let g = rmat(11, 12, RmatParams::default(), 3)
        .dedup()
        .without_self_loops();
    let a = to_csr(&g, 3);
    let at = a.transpose();
    let n = g.n;
    let sr = plus_times::<f64>();

    let mut group = c.benchmark_group("ablation_spgemm/masked_form");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for mask_rows in [n / 256, n / 16, n] {
        let mut tuples: Vec<(usize, usize, bool)> = (0..mask_rows.max(1))
            .map(|k| ((k * 131) % n, (k * 197) % n, true))
            .collect();
        tuples.sort_by_key(|t| (t.0, t.1));
        tuples.dedup_by_key(|t| (t.0, t.1));
        let mask_src = Csr::from_sorted_tuples(n, n, tuples);
        let mask = MaskCsr::from_csr(&mask_src, true, false);
        let pattern = mask_src.map(|_| ());
        let nnz = mask_src.nvals();

        group.bench_function(BenchmarkId::new("scatter_masked", nnz), |b| {
            b.iter(|| mxm(&sr, &a, &a, &mask, MxmStrategy::Auto).nvals())
        });
        group.bench_function(BenchmarkId::new("dot_masked", nnz), |b| {
            b.iter(|| mxm_dot(&sr, &a, &at, &pattern).nvals())
        });
    }
    group.finish();
}

fn bench_triangle_variants(c: &mut Criterion) {
    // Burkhardt (full masked square, /6) vs Sandia (tril-masked, exact)
    // vs the classic node-iterator baseline
    use graphblas_algorithms::{triangle_count, triangle_count_sandia};
    use graphblas_core::prelude::*;
    use graphblas_reference::AdjGraph;

    let g = rmat(10, 8, RmatParams::default(), 5)
        .dedup()
        .without_self_loops()
        .symmetrize();
    let ctx = Context::blocking();
    let a = Matrix::from_tuples(g.n, g.n, &g.bool_tuples()).unwrap();
    let adj = AdjGraph::from_edges(g.n, &g.edges);

    let mut group = c.benchmark_group("ablation_spgemm/triangles");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("burkhardt_masked_full", |b| {
        b.iter(|| triangle_count(&ctx, &a).unwrap())
    });
    group.bench_function("sandia_tril_masked", |b| {
        b.iter(|| triangle_count_sandia(&ctx, &a).unwrap())
    });
    group.bench_function("reference_node_iterator", |b| {
        b.iter(|| graphblas_reference::triangles::triangle_count(&adj))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_masked_scatter_vs_dot,
    bench_triangle_variants
);
criterion_main!(benches);
