//! Experiment T1: Table I's five semirings driving the *same* `mxv` and
//! `mxm` kernels on the same RMAT graph — the cost of changing the
//! algebra should be the cost of the operator arithmetic alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::{bool_matrix, f64_matrix, rmat_graph};
use graphblas_core::algebra::set::{SetIntersect, SetUnionMonoid, SmallSet};
use graphblas_core::prelude::*;
use std::time::Duration;

fn bench_mxv_semirings(c: &mut Criterion) {
    let scale = 12;
    let g = rmat_graph(scale);
    let n = g.n;
    let ctx = Context::blocking();
    let a = f64_matrix(&g, 7);
    let b = bool_matrix(&g);
    let v = Vector::from_dense(&vec![1.0f64; n]).unwrap();
    let vb = Vector::from_dense(&vec![true; n]).unwrap();

    let mut group = c.benchmark_group("table1/mxv");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function(BenchmarkId::new("arithmetic_plus_times", scale), |bench| {
        bench.iter(|| {
            let w = Vector::<f64>::new(n).unwrap();
            ctx.mxv(
                &w,
                NoMask,
                NoAccum,
                plus_times::<f64>(),
                &a,
                &v,
                &Descriptor::default(),
            )
            .unwrap();
            w.nvals().unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("max_plus", scale), |bench| {
        bench.iter(|| {
            let w = Vector::<f64>::new(n).unwrap();
            ctx.mxv(
                &w,
                NoMask,
                NoAccum,
                max_plus::<f64>(),
                &a,
                &v,
                &Descriptor::default(),
            )
            .unwrap();
            w.nvals().unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("min_max", scale), |bench| {
        bench.iter(|| {
            let w = Vector::<f64>::new(n).unwrap();
            ctx.mxv(
                &w,
                NoMask,
                NoAccum,
                min_max::<f64>(),
                &a,
                &v,
                &Descriptor::default(),
            )
            .unwrap();
            w.nvals().unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("gf2_xor_and", scale), |bench| {
        bench.iter(|| {
            let w = Vector::<bool>::new(n).unwrap();
            ctx.mxv(
                &w,
                NoMask,
                NoAccum,
                xor_and(),
                &b,
                &vb,
                &Descriptor::default(),
            )
            .unwrap();
            w.nvals().unwrap()
        })
    });
    group.finish();
}

fn bench_mxm_semirings(c: &mut Criterion) {
    let scale = 9;
    let g = rmat_graph(scale);
    let n = g.n;
    let ctx = Context::blocking();
    let a = f64_matrix(&g, 7);
    let b = bool_matrix(&g);

    let mut group = c.benchmark_group("table1/mxm");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("arithmetic_plus_times", scale), |bench| {
        bench.iter(|| {
            let out = Matrix::<f64>::new(n, n).unwrap();
            ctx.mxm(
                &out,
                NoMask,
                NoAccum,
                plus_times::<f64>(),
                &a,
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            out.nvals().unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("min_plus_tropical", scale), |bench| {
        bench.iter(|| {
            let out = Matrix::<f64>::new(n, n).unwrap();
            ctx.mxm(
                &out,
                NoMask,
                NoAccum,
                min_plus::<f64>(),
                &a,
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            out.nvals().unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("lor_land_reachability", scale), |bench| {
        bench.iter(|| {
            let out = Matrix::<bool>::new(n, n).unwrap();
            ctx.mxm(
                &out,
                NoMask,
                NoAccum,
                lor_land(),
                &b,
                &b,
                &Descriptor::default(),
            )
            .unwrap();
            out.nvals().unwrap()
        })
    });
    group.finish();
}

fn bench_power_set_semiring(c: &mut Criterion) {
    // row 5 on a smaller graph (set values are heavier than scalars)
    let scale = 7;
    let g = rmat_graph(scale);
    let n = g.n;
    let ctx = Context::blocking();
    let tuples: Vec<(usize, usize, SmallSet)> = g
        .edges
        .iter()
        .enumerate()
        .map(|(k, &(i, j))| (i, j, SmallSet::singleton((k % 16) as u32)))
        .collect();
    let mut sorted = tuples;
    sorted.sort_by_key(|t| (t.0, t.1));
    let s = Matrix::from_tuples(n, n, &sorted).unwrap();

    c.bench_function("table1/mxm/power_set_union_intersect", |bench| {
        bench.iter(|| {
            let out = Matrix::<SmallSet>::new(n, n).unwrap();
            ctx.mxm(
                &out,
                NoMask,
                NoAccum,
                SemiringDef::new(SetUnionMonoid, SetIntersect),
                &s,
                &s,
                &Descriptor::default(),
            )
            .unwrap();
            out.nvals().unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_mxv_semirings,
    bench_mxm_semirings,
    bench_power_set_semiring
);
criterion_main!(benches);
