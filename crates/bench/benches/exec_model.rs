//! Experiment E1: the execution model's cost surface (paper §IV).
//!
//! * blocking vs nonblocking on the same pipelines (deferral overhead
//!   should be noise);
//! * lazy dead-code elimination: pipelines whose intermediates are
//!   overwritten before observation cost nothing for the dead work in
//!   nonblocking mode;
//! * the memoized transpose shared across a sequence (the "don't
//!   rematerialize" latitude).

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_bench::{dense_vector, f64_matrix, int_matrix, rmat_graph};
use graphblas_core::prelude::*;
use graphblas_core::SchedPolicy;
use std::time::Duration;

fn bench_pipeline_modes(c: &mut Criterion) {
    let scale = 10;
    let g = rmat_graph(scale);
    let n = g.n;
    let a = f64_matrix(&g, 3);
    let v = dense_vector(n);

    // a BFS-ish pipeline: 8 chained mxv + ewise steps, observed once
    let pipeline = |ctx: &Context| {
        let w = Vector::<f64>::new(n).unwrap();
        ctx.mxv(
            &w,
            NoMask,
            NoAccum,
            plus_times::<f64>(),
            &a,
            &v,
            &Descriptor::default(),
        )
        .unwrap();
        for _ in 0..7 {
            ctx.mxv(
                &w,
                NoMask,
                NoAccum,
                plus_times::<f64>(),
                &a,
                &w,
                &Descriptor::default().replace(),
            )
            .unwrap();
        }
        w.nvals().unwrap()
    };

    let mut group = c.benchmark_group("exec/pipeline");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("blocking", |b| {
        let ctx = Context::blocking();
        b.iter(|| pipeline(&ctx))
    });
    group.bench_function("nonblocking", |b| {
        let ctx = Context::nonblocking();
        b.iter(|| {
            let r = pipeline(&ctx);
            ctx.wait().unwrap();
            r
        })
    });
    group.finish();
}

fn bench_dead_code_elimination(c: &mut Criterion) {
    let scale = 9;
    let g = rmat_graph(scale);
    let n = g.n;
    let a = f64_matrix(&g, 4);

    // 4 expensive products; only the last is observed, and each
    // overwrites the same handle — nonblocking never runs the first 3
    let wasteful = |ctx: &Context| {
        let out = Matrix::<f64>::new(n, n).unwrap();
        for _ in 0..4 {
            ctx.mxm(
                &out,
                NoMask,
                NoAccum,
                plus_times::<f64>(),
                &a,
                &a,
                &Descriptor::default().replace(),
            )
            .unwrap();
        }
        out.nvals().unwrap()
    };

    let mut group = c.benchmark_group("exec/dead_code");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("blocking_computes_all_4", |b| {
        let ctx = Context::blocking();
        b.iter(|| wasteful(&ctx))
    });
    group.bench_function("nonblocking_computes_only_1", |b| {
        let ctx = Context::nonblocking();
        b.iter(|| {
            let r = wasteful(&ctx);
            ctx.wait().unwrap();
            r
        })
    });
    group.finish();
}

fn bench_transpose_caching(c: &mut Criterion) {
    // the BC forward-sweep pattern: A^T used in a loop — memoized on the
    // operand's node, so iterations after the first skip the sort
    let scale = 11;
    let g = rmat_graph(scale);
    let n = g.n;
    let a = f64_matrix(&g, 5);
    let v = dense_vector(n);
    let ctx = Context::blocking();

    let mut group = c.benchmark_group("exec/transpose_cache");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("mxv_tran_cached_operand", |b| {
        // same `a` handle across iterations: cache hit after warmup
        b.iter(|| {
            let w = Vector::<f64>::new(n).unwrap();
            ctx.mxv(
                &w,
                NoMask,
                NoAccum,
                plus_times::<f64>(),
                &a,
                &v,
                &Descriptor::default().transpose_first(),
            )
            .unwrap();
            w.nvals().unwrap()
        })
    });
    let a_tuples = a.extract_tuples().unwrap();
    group.bench_function("mxv_tran_fresh_operand", |b| {
        // fresh value node each iteration: the transpose is recomputed
        b.iter_batched(
            || Matrix::from_tuples(n, n, &a_tuples).unwrap(),
            |fresh| {
                let w = Vector::<f64>::new(n).unwrap();
                ctx.mxv(
                    &w,
                    NoMask,
                    NoAccum,
                    plus_times::<f64>(),
                    &fresh,
                    &v,
                    &Descriptor::default().transpose_first(),
                )
                .unwrap();
                w.nvals().unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_sched(c: &mut Criterion) {
    // E5: the nonblocking scheduler. A wide DAG — k independent products
    // deferred, then forced by one wait() — is the scheduler's best
    // case; batched BC (Figure 3) is the realistic case, a mix of
    // parallel slack and serial chains.
    let scale = 9;
    let g = rmat_graph(scale);
    let n = g.n;
    let a = f64_matrix(&g, 6);
    let policies = [
        ("sequential", SchedPolicy::Sequential),
        ("parallel", SchedPolicy::Parallel),
    ];

    let mut group = c.benchmark_group("exec_sched/wide_dag");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (name, policy) in policies {
        group.bench_function(name, |b| {
            let ctx = Context::with_policy(Mode::Nonblocking, policy);
            b.iter(|| {
                let outs: Vec<Matrix<f64>> = (0..16).map(|_| Matrix::new(n, n).unwrap()).collect();
                for out in &outs {
                    ctx.mxm(
                        out,
                        NoMask,
                        NoAccum,
                        plus_times::<f64>(),
                        &a,
                        &a,
                        &Descriptor::default(),
                    )
                    .unwrap();
                }
                ctx.wait().unwrap();
                outs.iter().map(|o| o.nvals().unwrap()).sum::<usize>()
            })
        });
    }
    group.finish();

    let adj = int_matrix(&rmat_graph(10));
    let sources: Vec<Index> = (0..8).map(|k| (k * 37) % adj.nrows()).collect();
    let mut group = c.benchmark_group("exec_sched/bc_batch");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (name, policy) in policies {
        group.bench_function(name, |b| {
            let ctx = Context::with_policy(Mode::Nonblocking, policy);
            b.iter(|| {
                let delta = graphblas_algorithms::bc_update(&ctx, &adj, &sources).unwrap();
                ctx.wait().unwrap();
                delta.nvals().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_modes,
    bench_dead_code_elimination,
    bench_transpose_caching,
    bench_sched
);
criterion_main!(benches);
