//! Experiment E6: the polymorphic storage engine (`storage::engine`).
//!
//! Series:
//! * `e6/mxv_density` — y = Ax with a dense frontier across a matrix
//!   density sweep, per forced format (CSR vs Bitmap) and Auto: where
//!   does the presence-bitmap kernel overtake row-merge CSR?
//! * `e6/hyper_mxm` — C = A·A on a hypersparse square (nnz ≪ nrows):
//!   the hypersparse kernel walks only non-empty rows while CSR pays
//!   O(nrows) regardless.
//! * `e6/bc_policy` — the Figure 3 `BC_update` kernel with the
//!   adjacency under Auto selection vs pinned CSR: the policy must not
//!   tax a workload whose natural format *is* CSR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_algorithms::bc_update;
use graphblas_bench::{int_matrix, rmat_graph};
use graphblas_core::prelude::*;
use graphblas_gen::erdos_renyi_gnm;
use std::time::Duration;

/// An n×n f64 matrix with exactly `nnz` stored entries, pinned to
/// `format` (or left on Auto).
fn random_matrix(n: usize, nnz: usize, format: Option<Format>) -> Matrix<f64> {
    let g = erdos_renyi_gnm(n, nnz, 7);
    let tuples: Vec<(usize, usize, f64)> = g
        .edges
        .iter()
        .map(|&(i, j)| (i, j, 1.0 + ((i + j) % 7) as f64))
        .collect();
    let a = Matrix::from_tuples(n, n, &tuples).unwrap();
    match format {
        Some(f) => a.set_format(f).unwrap(),
        None => a.set_format_policy(FormatPolicy::Auto),
    }
    a
}

fn bench_mxv_density_sweep(c: &mut Criterion) {
    let n = 1024;
    let ctx = Context::blocking();
    let u = Vector::from_dense(&vec![1.0f64; n]).unwrap();
    let d = Descriptor::default();

    let mut group = c.benchmark_group("e6/mxv_density");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for density_pct in [1usize, 6, 12, 25] {
        let nnz = n * n * density_pct / 100;
        for (label, format) in [
            ("csr", Some(Format::Csr)),
            ("bitmap", Some(Format::Bitmap)),
            ("auto", None),
        ] {
            let a = random_matrix(n, nnz, format);
            a.wait().unwrap();
            group.bench_function(BenchmarkId::new(label, format!("{density_pct}pct")), |b| {
                b.iter(|| {
                    let w = Vector::<f64>::new(n).unwrap();
                    ctx.mxv(&w, NoMask, NoAccum, plus_times::<f64>(), &a, &u, &d)
                        .unwrap();
                    w.nvals().unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_hyper_mxm(c: &mut Criterion) {
    // 1<<17 rows, entries confined to 128 of them: nnz ≪ nrows. The
    // hypersparse kernel's row loop is O(non-empty rows); CSR's is
    // O(nrows).
    let n = 1 << 17;
    let active = 128usize;
    let per_row = 8usize;
    let tuples: Vec<(usize, usize, f64)> = (0..active)
        .flat_map(|k| {
            let i = k * (n / active);
            (0..per_row).map(move |e| (i, (i + e * 31) % n, 1.0))
        })
        .collect();
    let ctx = Context::blocking();
    let d = Descriptor::default();

    let mut group = c.benchmark_group("e6/hyper_mxm");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (label, format) in [
        ("csr", Some(Format::Csr)),
        ("hyper", Some(Format::Hyper)),
        ("auto", None),
    ] {
        let a = Matrix::from_tuples(n, n, &tuples).unwrap();
        match format {
            Some(f) => a.set_format(f).unwrap(),
            None => a.set_format_policy(FormatPolicy::Auto),
        }
        a.wait().unwrap();
        group.bench_function(BenchmarkId::new(label, "n17_nnz1k"), |b| {
            b.iter(|| {
                let out = Matrix::<f64>::new(n, n).unwrap();
                ctx.mxm(&out, NoMask, NoAccum, plus_times::<f64>(), &a, &a, &d)
                    .unwrap();
                out.nvals().unwrap()
            })
        });
    }
    group.finish();
}

fn bench_bc_policy(c: &mut Criterion) {
    let scale = 10;
    let g = rmat_graph(scale);
    let sources: Vec<Index> = (0..32).collect();
    let ctx = Context::blocking();

    let mut group = c.benchmark_group("e6/bc_policy");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (label, policy) in [
        ("auto", FormatPolicy::Auto),
        ("forced_csr", FormatPolicy::Force(Format::Csr)),
    ] {
        let a = int_matrix(&g);
        a.set_format_policy(policy);
        if let FormatPolicy::Force(f) = policy {
            a.set_format(f).unwrap();
        }
        a.wait().unwrap();
        group.bench_function(BenchmarkId::new(label, scale), |b| {
            b.iter(|| {
                let delta = bc_update(&ctx, &a, &sources).unwrap();
                delta.nvals().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mxv_density_sweep,
    bench_hyper_mxm,
    bench_bc_policy
);
criterion_main!(benches);
