//! Experiment E14: the erased-lane tax — the same PLUS_TIMES program
//! through the capi with (a) the built-in `GrB_INT64` semiring, which
//! dispatches to the monomorphized kernels, and (b) a runtime-registered
//! wrapped-`i64` user type whose closures do the identical arithmetic
//! over raw bytes on the erased `Value::Udf` lane. The gap is the cost
//! of runtime-defined algebra: per-element closure dispatch, byte
//! encode/decode, and `Arc<[u8]>` payload allocation. The built-in lane
//! here must match the untouched E12/E13 built-in numbers — the erased
//! lane is a separate instantiation, not a rewrite of the hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_capi as grb;
use graphblas_capi::{
    grb_binary_op_new, grb_monoid_new, grb_semiring_new, grb_type_new, GrbBinaryOp, GrbMatrix,
    GrbMonoid, GrbSemiring, GrbType, GrbVector, Value,
};
use graphblas_gen::{rmat, RmatParams};
use std::time::Duration;

fn builtin_semiring() -> GrbSemiring {
    let add = GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int64).unwrap(), Value::Int64(0)).unwrap();
    GrbSemiring::new(add, GrbBinaryOp::times(GrbType::Int64).unwrap()).unwrap()
}

fn bench_udf_overhead(c: &mut Criterion) {
    let g = rmat(9, 8, RmatParams::default(), 21)
        .dedup()
        .without_self_loops();
    let n = g.n;
    let tuples = g.int_tuples();

    let udt = grb_type_new("bench_wrapped_i64", 8).unwrap();
    let t = udt.ty();
    let dec = |b: &[u8]| i64::from_ne_bytes(b.try_into().unwrap());
    let uplus = grb_binary_op_new("bench_plus_i64", t, t, t, move |z, x, y| {
        z.copy_from_slice(&dec(x).wrapping_add(dec(y)).to_ne_bytes());
    });
    let utimes = grb_binary_op_new("bench_times_i64", t, t, t, move |z, x, y| {
        z.copy_from_slice(&dec(x).wrapping_mul(dec(y)).to_ne_bytes());
    });
    let uadd = grb_monoid_new(&uplus, &0i64.to_ne_bytes()).unwrap();
    let usr = grb_semiring_new(uadd, utimes).unwrap();

    let mut group = c.benchmark_group("udf_overhead");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    grb::with_session(graphblas_core::Mode::Blocking, || {
        let rows: Vec<usize> = tuples.iter().map(|t| t.0).collect();
        let cols: Vec<usize> = tuples.iter().map(|t| t.1).collect();

        // built-in lane (monomorphized kernels over Value::Int64)
        let bsr = builtin_semiring();
        let vals: Vec<Value> = tuples
            .iter()
            .map(|t| Value::Int64(i64::from(t.2)))
            .collect();
        let a_b = GrbMatrix::new(GrbType::Int64, n, n).unwrap();
        a_b.build(
            &rows,
            &cols,
            &vals,
            &GrbBinaryOp::plus(GrbType::Int64).unwrap(),
        )
        .unwrap();
        let u_b = GrbVector::new(GrbType::Int64, n).unwrap();
        for i in 0..n {
            u_b.set(i, Value::Int64(i as i64 + 1)).unwrap();
        }

        // erased lane (identical arithmetic via registered byte closures)
        let vals: Vec<Value> = tuples
            .iter()
            .map(|t| udt.value(&i64::from(t.2).to_ne_bytes()).unwrap())
            .collect();
        let a_u = GrbMatrix::new(t, n, n).unwrap();
        a_u.build(&rows, &cols, &vals, &uplus).unwrap();
        let u_u = GrbVector::new(t, n).unwrap();
        for i in 0..n {
            u_u.set(i, udt.value(&(i as i64 + 1).to_ne_bytes()).unwrap())
                .unwrap();
        }

        group.bench_function("mxv/builtin_int64", |b| {
            b.iter(|| {
                let w = GrbVector::new(GrbType::Int64, n).unwrap();
                grb::mxv(&w, None, None, &bsr, &a_b, &u_b, &Default::default()).unwrap();
                w.nvals().unwrap()
            })
        });
        group.bench_function("mxv/udf_wrapped_i64", |b| {
            b.iter(|| {
                let w = GrbVector::new(t, n).unwrap();
                grb::mxv(&w, None, None, &usr, &a_u, &u_u, &Default::default()).unwrap();
                w.nvals().unwrap()
            })
        });
        group.bench_function("mxm/builtin_int64", |b| {
            b.iter(|| {
                let out = GrbMatrix::new(GrbType::Int64, n, n).unwrap();
                grb::mxm(&out, None, None, &bsr, &a_b, &a_b, &Default::default()).unwrap();
                out.nvals().unwrap()
            })
        });
        group.bench_function("mxm/udf_wrapped_i64", |b| {
            b.iter(|| {
                let out = GrbMatrix::new(t, n, n).unwrap();
                grb::mxm(&out, None, None, &usr, &a_u, &a_u, &Default::default()).unwrap();
                out.nvals().unwrap()
            })
        });
    })
    .unwrap();
    group.finish();
}

criterion_group!(benches, bench_udf_overhead);
criterion_main!(benches);
