//! Experiment E7: the §IV fusion-latitude ablation — the same deferred
//! programs under `FusePolicy::On` vs `FusePolicy::Off`, isolating what
//! the `exec::fuse` rewrite pass buys.
//!
//! Three shapes, one per rewrite family:
//! * `masked_product` — mxm whose (dead) product is immediately
//!   restricted by a sparse mask: pushdown computes only the masked
//!   entries (the headline win; scales with mask sparsity).
//! * `apply_chain` — three chained unary applies: fusion collapses the
//!   chain to one traversal, eliding two intermediate materializations.
//! * `dot_reduce` — eWiseMult + scalar reduce: the fused dot product
//!   never materializes the elementwise product.
//!
//! Intermediates are dropped before `wait()` in both arms, so the only
//! difference is whether the pass is allowed to rewrite.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_core::prelude::*;
use graphblas_gen::{rmat, RmatParams};
use std::time::Duration;

fn ctx_with(fuse: FusePolicy) -> Context {
    Context::with_fuse_policy(Mode::Nonblocking, SchedPolicy::Sequential, fuse)
}

fn graph(n_log2: u32, seed: u64) -> (usize, Vec<(usize, usize, i64)>) {
    let g = rmat(n_log2, 8, RmatParams::default(), seed)
        .dedup()
        .without_self_loops();
    let tuples = g.edges.iter().map(|&(u, v)| (u, v, 1i64)).collect();
    (g.n, tuples)
}

fn bench_masked_product(c: &mut Criterion) {
    let (n, tuples) = graph(10, 7);
    let a = Matrix::from_tuples(n, n, &tuples).unwrap();
    // a sparse mask: one row's worth of admitted entries
    let mask_tuples: Vec<(usize, usize, i64)> =
        (0..n.min(64)).map(|j| (j % n, (j * 17) % n, 1)).collect();
    let mask = Matrix::from_tuples(n, n, &mask_tuples).unwrap();

    let mut group = c.benchmark_group("fusion/masked_product");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (label, fuse) in [("fuse_on", FusePolicy::On), ("fuse_off", FusePolicy::Off)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let ctx = ctx_with(fuse);
                let out = Matrix::<i64>::new(n, n).unwrap();
                {
                    let tmp = Matrix::<i64>::new(n, n).unwrap();
                    ctx.mxm(
                        &tmp,
                        NoMask,
                        NoAccum,
                        plus_times::<i64>(),
                        &a,
                        &a,
                        &Descriptor::default(),
                    )
                    .unwrap();
                    ctx.apply_matrix(
                        &out,
                        &mask,
                        NoAccum,
                        Identity::new(),
                        &tmp,
                        &Descriptor::default().structural_mask(),
                    )
                    .unwrap();
                } // tmp dropped: exclusively dead
                ctx.wait().unwrap();
                out.nvals().unwrap()
            })
        });
    }
    group.finish();
}

fn bench_apply_chain(c: &mut Criterion) {
    let (n, tuples) = graph(11, 9);
    let a = Matrix::from_tuples(n, n, &tuples).unwrap();

    let mut group = c.benchmark_group("fusion/apply_chain");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (label, fuse) in [("fuse_on", FusePolicy::On), ("fuse_off", FusePolicy::Off)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let ctx = ctx_with(fuse);
                let out = Matrix::<i64>::new(n, n).unwrap();
                {
                    let t1 = Matrix::<i64>::new(n, n).unwrap();
                    let t2 = Matrix::<i64>::new(n, n).unwrap();
                    let d = Descriptor::default();
                    ctx.apply_matrix(&t1, NoMask, NoAccum, unary_fn(|x: &i64| x * 3), &a, &d)
                        .unwrap();
                    ctx.apply_matrix(&t2, NoMask, NoAccum, unary_fn(|x: &i64| x + 1), &t1, &d)
                        .unwrap();
                    ctx.apply_matrix(&out, NoMask, NoAccum, unary_fn(|x: &i64| -x), &t2, &d)
                        .unwrap();
                }
                ctx.wait().unwrap();
                out.nvals().unwrap()
            })
        });
    }
    group.finish();
}

fn bench_dot_reduce(c: &mut Criterion) {
    let (n, tuples) = graph(11, 11);
    let a = Matrix::from_tuples(n, n, &tuples).unwrap();
    let b_m = Matrix::from_tuples(n, n, &tuples).unwrap();

    let mut group = c.benchmark_group("fusion/dot_reduce");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (label, fuse) in [("fuse_on", FusePolicy::On), ("fuse_off", FusePolicy::Off)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let ctx = ctx_with(fuse);
                let tmp = Matrix::<i64>::new(n, n).unwrap();
                ctx.ewise_mult_matrix(
                    &tmp,
                    NoMask,
                    NoAccum,
                    Times::new(),
                    &a,
                    &b_m,
                    &Descriptor::default(),
                )
                .unwrap();
                ctx.reduce_matrix_to_scalar(PlusMonoid::<i64>::new(), &tmp)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_masked_product,
    bench_apply_chain,
    bench_dot_reduce
);
criterion_main!(benches);
