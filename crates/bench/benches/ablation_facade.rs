//! Experiment A3: the price of dynamic typing — the same `mxm` through
//! the typed core (monomorphized, inlined semiring) vs through the
//! C-shaped facade (tagged-union `Value` domain, closure-dispatched
//! operators). The gap is the compile-time-algebra dividend the Rust
//! binding earns over a C-faithful dynamic layer.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_capi as grb;
use graphblas_capi::{GrbBinaryOp, GrbMatrix, GrbMonoid, GrbSemiring, GrbType, Value};
use graphblas_core::prelude::*;
use graphblas_gen::{rmat, RmatParams};
use std::time::Duration;

fn bench_facade_tax(c: &mut Criterion) {
    let g = rmat(9, 8, RmatParams::default(), 21)
        .dedup()
        .without_self_loops();
    let n = g.n;
    let tuples = g.int_tuples();

    let mut group = c.benchmark_group("ablation_facade/mxm");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    // typed core: static semiring over i32
    let ctx = Context::blocking();
    let a_typed = Matrix::from_tuples(n, n, &tuples).unwrap();
    group.bench_function("typed_core_i32", |b| {
        b.iter(|| {
            let out = Matrix::<i32>::new(n, n).unwrap();
            ctx.mxm(
                &out,
                NoMask,
                NoAccum,
                plus_times::<i32>(),
                &a_typed,
                &a_typed,
                &Descriptor::default(),
            )
            .unwrap();
            out.nvals().unwrap()
        })
    });

    // facade: Value-union domain, runtime-composed semiring
    grb::with_session(graphblas_core::Mode::Blocking, || {
        let add =
            GrbMonoid::new(GrbBinaryOp::plus(GrbType::Int32).unwrap(), Value::Int32(0)).unwrap();
        let sr = GrbSemiring::new(add, GrbBinaryOp::times(GrbType::Int32).unwrap()).unwrap();
        let a_dyn = GrbMatrix::new(GrbType::Int32, n, n).unwrap();
        let rows: Vec<usize> = tuples.iter().map(|t| t.0).collect();
        let cols: Vec<usize> = tuples.iter().map(|t| t.1).collect();
        let vals: Vec<Value> = tuples.iter().map(|t| Value::Int32(t.2)).collect();
        a_dyn
            .build(
                &rows,
                &cols,
                &vals,
                &GrbBinaryOp::plus(GrbType::Int32).unwrap(),
            )
            .unwrap();
        group.bench_function("capi_facade_value_union", |b| {
            b.iter(|| {
                let out = GrbMatrix::new(GrbType::Int32, n, n).unwrap();
                grb::mxm(
                    &out,
                    None,
                    None,
                    &sr,
                    &a_dyn,
                    &a_dyn,
                    &Descriptor::default(),
                )
                .unwrap();
                out.nvals().unwrap()
            })
        });
    })
    .unwrap();
    group.finish();
}

criterion_group!(benches, bench_facade_tax);
criterion_main!(benches);
