//! Experiment E10: the query service under multi-tenant load.
//!
//! A custom harness (not criterion — the unit of measurement is a
//! whole service under sustained concurrent load, not a closure):
//! driver threads simulate ~1000 clients issuing a ~70/30 read/write
//! mix (BFS, one-hop, degree, point reads / point writes) against a
//! handful of shared R-MAT graphs. Reported: end-to-end latency
//! quantiles (p50/p99/p999), throughput, shed rate, and the batching
//! evidence — BFS requests vs BFS batch launches (the §VII
//! column-block coalescing win).
//!
//! Environment knobs: `GRB_SERVER_SECS` (default 3),
//! `GRB_SERVER_DRIVERS` (default 32), `GRB_SERVER_CLIENTS` (default
//! 1024).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphblas_gen::{rmat, RmatParams};
use server::stats::Histogram;
use server::{Reply, Request, Service, ServiceConfig};

const GRAPHS: usize = 4;
const SCALE: u32 = 10; // 1024 vertices per graph

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Small deterministic PRNG so every run issues the same request mix.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn main() {
    let secs = env_usize("GRB_SERVER_SECS", 3);
    let drivers = env_usize("GRB_SERVER_DRIVERS", 32);
    let clients = env_usize("GRB_SERVER_CLIENTS", 1024);

    let svc = Service::start(ServiceConfig {
        workers: 4,
        queue_cap: 64,
        batch_max: 64,
        ..Default::default()
    });

    // Shared graphs, bulk-loaded through the registry.
    let mut nodes = Vec::new();
    for gi in 0..GRAPHS {
        let g = rmat(SCALE, 8, RmatParams::default(), 100 + gi as u64)
            .dedup()
            .without_self_loops();
        let name = format!("g{gi}");
        svc.graphs().create(&name, g.n, None).unwrap();
        let entry = svc.graphs().get(&name).unwrap();
        for &(u, v) in &g.edges {
            entry.matrix.set(u, v, true).unwrap();
        }
        nodes.push(g.n);
    }

    let latency = Arc::new(Histogram::new());
    let completed = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let start = Instant::now();
    let handles: Vec<_> = (0..drivers)
        .map(|d| {
            let svc = svc.clone();
            let latency = latency.clone();
            let completed = completed.clone();
            let shed = shed.clone();
            let errors = errors.clone();
            let stop = stop.clone();
            let nodes = nodes.clone();
            std::thread::spawn(move || {
                let mut rng = Lcg(0xc0ffee + d as u64);
                // each driver round-robins a disjoint slice of clients
                let per = clients.div_ceil(drivers);
                let mut turn = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let client = d * per + (turn % per);
                    turn += 1;
                    let tenant = format!("c{client}");
                    let gi = (rng.next() as usize) % GRAPHS;
                    let graph = format!("g{gi}");
                    let n = nodes[gi];
                    let v = (rng.next() as usize) % n;
                    let u = (rng.next() as usize) % n;
                    // ~70/30 read/write mix; reads are BFS-heavy so the
                    // coalescer has something to coalesce
                    let req = match rng.next() % 10 {
                        0..=3 => Request::Bfs { graph, src: v },
                        4 => Request::OneHop { graph, v },
                        5 => Request::Degree { graph, v },
                        6 => Request::HasEdge { graph, u, v },
                        7..=8 => Request::AddEdge { graph, u, v },
                        _ => Request::RemoveEdge { graph, u, v },
                    };
                    let t0 = Instant::now();
                    match svc.submit(&tenant, req) {
                        Reply::Overloaded => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Reply::Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            latency.record(t0.elapsed().as_nanos() as u64);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs(secs as u64));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();

    let completed = completed.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let errors = errors.load(Ordering::Relaxed);
    let total = completed + shed + errors;
    let stats = svc.stats();
    let bfs_requests = stats.bfs_requests.load(Ordering::Relaxed);
    let bfs_batches = stats.bfs_batches.load(Ordering::Relaxed);
    let max_batch = stats.max_batch.load(Ordering::Relaxed);

    println!("server_load: {clients} clients on {drivers} drivers, {GRAPHS} rmat graphs (scale {SCALE}), {elapsed:.1}s");
    println!(
        "  requests: total={total} completed={completed} shed={shed} errors={errors} shed_rate={:.2}%",
        100.0 * shed as f64 / total.max(1) as f64
    );
    println!("  throughput: {:.0} req/s", completed as f64 / elapsed);
    println!(
        "  latency_us: p50={} p99={} p999={} max={}",
        latency.quantile(0.5) / 1_000,
        latency.quantile(0.99) / 1_000,
        latency.quantile(0.999) / 1_000,
        latency.max() / 1_000,
    );
    println!(
        "  bfs coalescing: {bfs_requests} requests in {bfs_batches} batches (max batch {max_batch}, {:.1} req/launch)",
        bfs_requests as f64 / bfs_batches.max(1) as f64
    );
    svc.shutdown();

    assert!(total > 0, "no requests completed");
    assert!(
        bfs_batches <= bfs_requests,
        "batch count cannot exceed request count"
    );

    overload_phase();
}

/// A second, shorter scenario that drives the admission controller into
/// shedding: few tenants, many concurrent submitters each, tiny
/// per-tenant queues — so the shed path is exercised, not just present.
fn overload_phase() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        queue_cap: 2,
        batch_max: 64,
        ..Default::default()
    });
    let g = rmat(SCALE, 8, RmatParams::default(), 7)
        .dedup()
        .without_self_loops();
    svc.graphs().create("g", g.n, None).unwrap();
    let entry = svc.graphs().get("g").unwrap();
    for &(u, v) in &g.edges {
        entry.matrix.set(u, v, true).unwrap();
    }
    let n = g.n;

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..32)
        .map(|d| {
            let svc = svc.clone();
            let stop = stop.clone();
            let completed = completed.clone();
            let shed = shed.clone();
            std::thread::spawn(move || {
                let mut rng = Lcg(0xdead + d as u64);
                let tenant = format!("t{}", d % 8); // 4 submitters per tenant
                while !stop.load(Ordering::Relaxed) {
                    let src = (rng.next() as usize) % n;
                    match svc.submit(
                        &tenant,
                        Request::Bfs {
                            graph: "g".into(),
                            src,
                        },
                    ) {
                        Reply::Overloaded => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_secs(1));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let completed = completed.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    println!("overload (8 tenants x 4 submitters, queue_cap=2):");
    println!(
        "  completed={completed} shed={shed} shed_rate={:.2}%",
        100.0 * shed as f64 / (completed + shed).max(1) as f64
    );
    svc.shutdown();
}
