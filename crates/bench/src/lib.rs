//! Shared fixtures for the benchmark harness: deterministic graphs at
//! the scales used across the per-table/figure benches, plus conversion
//! helpers.

use graphblas_core::prelude::*;
use graphblas_gen::{rmat, EdgeList, RmatParams};

/// The standard RMAT workload at a given scale (Graph500-style
/// parameters, edge factor 8, deduplicated simple digraph).
pub fn rmat_graph(scale: u32) -> EdgeList {
    rmat(scale, 8, RmatParams::default(), 42)
        .dedup()
        .without_self_loops()
}

/// The undirected (symmetrized) variant for triangle benches.
pub fn rmat_undirected(scale: u32) -> EdgeList {
    rmat_graph(scale).symmetrize()
}

pub fn bool_matrix(g: &EdgeList) -> Matrix<bool> {
    Matrix::from_tuples(g.n, g.n, &g.bool_tuples()).unwrap()
}

pub fn int_matrix(g: &EdgeList) -> Matrix<i32> {
    Matrix::from_tuples(g.n, g.n, &g.int_tuples()).unwrap()
}

pub fn f64_matrix(g: &EdgeList, seed: u64) -> Matrix<f64> {
    Matrix::from_tuples(g.n, g.n, &g.weighted_tuples(1.0, 10.0, seed)).unwrap()
}

/// A dense f64 vector of the graph's size.
pub fn dense_vector(n: usize) -> Vector<f64> {
    Vector::from_dense(&vec![1.0f64; n]).unwrap()
}
