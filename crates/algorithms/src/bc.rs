//! Batched Brandes betweenness centrality — a line-by-line port of the
//! paper's Figure 3 (`BC_update`) to the Rust binding.
//!
//! `BC_update` computes the BC contributions from a batch of source
//! vertices with two sweeps over the graph: a forward sweep of
//! simultaneous BFS traversals counting independent shortest paths
//! (`numsp`), and a backward sweep tallying contributions along the
//! stored BFS levels (`sigmas`). Comments cite the corresponding
//! Figure 3 lines.

use graphblas_core::prelude::*;

/// `GrB_Info BC_update(GrB_Vector *delta, GrB_Matrix A, GrB_Index *s,
/// GrB_Index nsver)` — Figure 3.
///
/// `a` is the `n × n` adjacency matrix of an unweighted directed graph
/// ("presence of an edge is indicated by a stored 1"), `s` the batch of
/// source vertices. Returns the vector of BC contributions from shortest
/// paths starting at the batch.
pub fn bc_update(ctx: &Context, a: &Matrix<i32>, s: &[Index]) -> Result<Vector<f32>> {
    let nsver = s.len();
    if nsver == 0 {
        return Err(Error::InvalidValue("empty source batch".into()));
    }
    let n = a.nrows(); // line 6: GrB_Matrix_nrows(&n, A)
    if a.ncols() != n {
        return Err(Error::DimensionMismatch(format!(
            "adjacency matrix must be square, got {}x{}",
            n,
            a.ncols()
        )));
    }
    let delta = Vector::<f32>::new(n)?; // line 7: Vector<float> delta(n)

    // lines 9-12: Int32Add monoid and Int32AddMul semiring
    let int32_add_mul = plus_times::<i32>();

    // lines 14-18: desc_tsr = {INP0: TRAN, MASK: SCMP, OUTP: REPLACE}
    let desc_tsr = Descriptor::default()
        .transpose_first()
        .complement_mask()
        .replace();

    // lines 20-29: numsp(s[i], i) = 1
    let i_nsver: Vec<Index> = (0..nsver).collect();
    let ones = vec![1i32; nsver];
    let numsp = Matrix::<i32>::new(n, nsver)?;
    numsp.build(s, &i_nsver, &ones, &Plus::<i32>::new())?;

    // lines 31-33: frontier = A^T(:, s), masked by !numsp
    let frontier = Matrix::<i32>::new(n, nsver)?;
    ctx.extract_matrix(
        &frontier,
        &numsp,
        NoAccum,
        a,
        ALL,
        IndexSelection::List(s),
        &desc_tsr,
    )?;

    // line 36: sigmas — one Boolean frontier snapshot per BFS level
    let mut sigmas: Vec<Matrix<bool>> = Vec::new();
    let mut d = 0usize; // line 37: BFS level number

    // lines 39-46: the BFS phase (forward sweep)
    loop {
        // lines 40-41: sigmas[d] = (Boolean) frontier
        let sigma_d = Matrix::<bool>::new(n, nsver)?;
        ctx.apply_matrix(
            &sigma_d,
            NoMask,
            NoAccum,
            Cast::<i32, bool>::new(),
            &frontier,
            &Descriptor::default(),
        )?;
        sigmas.push(sigma_d);
        // line 42: numsp += frontier
        ctx.ewise_add_matrix(
            &numsp,
            NoMask,
            NoAccum,
            Plus::<i32>::new(),
            &numsp,
            &frontier,
            &Descriptor::default(),
        )?;
        // line 43: frontier<!numsp> = A^T +.* frontier (replace)
        ctx.mxm(
            &frontier,
            &numsp,
            NoAccum,
            int32_add_mul,
            a,
            &frontier,
            &desc_tsr,
        )?;
        d += 1;
        // line 44: nvals = frontier.nvals() — forces completion
        if frontier.nvals()? == 0 {
            break; // line 46: while (nvals)
        }
    }

    // lines 48-53: FP32Add/FP32Mul monoids, FP32AddMul semiring.
    // Line 73 multiplies the int32 adjacency against the float workspace;
    // the C API casts implicitly, so the ⊗ here carries the cast.
    let fp32_add_mul = SemiringDef::new(
        PlusMonoid::<f32>::new(),
        binary_fn(|aij: &i32, wv: &f32| *aij as f32 * wv),
    );

    // lines 55-57: nspinv = 1 ./ numsp (GrB_MINV_FP32 with the C API's
    // implicit int -> float domain cast, explicit here)
    let nspinv = Matrix::<f32>::new(n, nsver)?;
    ctx.apply_matrix(
        &nspinv,
        NoMask,
        NoAccum,
        unary_fn(|x: &i32| 1.0f32 / *x as f32),
        &numsp,
        &Descriptor::default(),
    )?;

    // lines 59-61: bcu = all 1.0 ("to avoid issues with implied zeros")
    let bcu = Matrix::<f32>::new(n, nsver)?;
    ctx.assign_scalar_matrix(
        &bcu,
        NoMask,
        NoAccum,
        1.0f32,
        ALL,
        ALL,
        &Descriptor::default(),
    )?;

    // lines 63-65: desc_r = {OUTP: REPLACE}
    let desc_r = Descriptor::default().replace();

    // line 68: workspace w
    let w = Matrix::<f32>::new(n, nsver)?;

    // lines 69-75: the tally phase (backward sweep)
    for i in (1..d).rev() {
        // line 70: w<sigmas[i]> = (1 ./ nsp) .* bcu (replace)
        ctx.ewise_mult_matrix(
            &w,
            &sigmas[i],
            NoAccum,
            Times::<f32>::new(),
            &bcu,
            &nspinv,
            &desc_r,
        )?;
        // line 73: w<sigmas[i-1]> = A +.* w (replace)
        ctx.mxm(
            &w,
            &sigmas[i - 1],
            NoAccum,
            fp32_add_mul.clone(),
            a,
            &w,
            &desc_r,
        )?;
        // line 74: bcu += w .* numsp (implicit int -> float cast on numsp)
        ctx.ewise_mult_matrix(
            &bcu,
            NoMask,
            Accum(Plus::<f32>::new()),
            binary_fn(|wv: &f32, nv: &i32| wv * *nv as f32),
            &w,
            &numsp,
            &Descriptor::default(),
        )?;
    }

    // line 77: delta = -nsver everywhere
    ctx.assign_scalar_vector(
        &delta,
        NoMask,
        NoAccum,
        -(nsver as f32),
        ALL,
        &Descriptor::default(),
    )?;
    // line 78: delta += row-reduce(bcu)
    ctx.reduce_rows(
        &delta,
        NoMask,
        Accum(Plus::<f32>::new()),
        PlusMonoid::<f32>::new(),
        &bcu,
        &Descriptor::default(),
    )?;

    // lines 80-83: resources are freed by RAII; return delta
    Ok(delta)
}

/// Full betweenness centrality: run [`bc_update`] over all vertices in
/// batches of `batch_size` and sum the contributions.
pub fn betweenness(ctx: &Context, a: &Matrix<i32>, batch_size: usize) -> Result<Vec<f32>> {
    let n = a.nrows();
    let batch_size = batch_size.max(1);
    let mut total = vec![0.0f32; n];
    let all: Vec<Index> = (0..n).collect();
    for chunk in all.chunks(batch_size) {
        let delta = bc_update(ctx, a, chunk)?;
        for (i, v) in delta.extract_tuples()? {
            total[i] += v;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(n: usize, edges: &[(usize, usize)]) -> Matrix<i32> {
        let tuples: Vec<(usize, usize, i32)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
        Matrix::from_tuples(n, n, &tuples).unwrap()
    }

    fn assert_close(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-4, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn path_graph() {
        let ctx = Context::blocking();
        let a = adj(4, &[(0, 1), (1, 2), (2, 3)]);
        let bc = betweenness(&ctx, &a, 4).unwrap();
        assert_close(&bc, &[0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn diamond_split() {
        let ctx = Context::blocking();
        let a = adj(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let bc = betweenness(&ctx, &a, 4).unwrap();
        assert_close(&bc, &[0.0, 0.5, 0.5, 0.0]);
    }

    #[test]
    fn undirected_star() {
        let ctx = Context::blocking();
        let mut edges = Vec::new();
        for v in 1..5 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        let a = adj(5, &edges);
        let bc = betweenness(&ctx, &a, 5).unwrap();
        assert_close(&bc, &[12.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn batching_is_equivalent() {
        let ctx = Context::blocking();
        let a = adj(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (4, 5), (0, 2)]);
        let b1 = betweenness(&ctx, &a, 1).unwrap();
        let b2 = betweenness(&ctx, &a, 3).unwrap();
        let b6 = betweenness(&ctx, &a, 6).unwrap();
        assert_close(&b1, &b2);
        assert_close(&b1, &b6);
    }

    #[test]
    fn nonblocking_matches_blocking() {
        let bctx = Context::blocking();
        let nctx = Context::nonblocking();
        let a = adj(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (4, 1)]);
        let b = betweenness(&bctx, &a, 2).unwrap();
        let nb = betweenness(&nctx, &a, 2).unwrap();
        nctx.wait().unwrap();
        assert_close(&b, &nb);
    }

    #[test]
    fn empty_batch_rejected() {
        let ctx = Context::blocking();
        let a = adj(3, &[(0, 1)]);
        assert!(bc_update(&ctx, &a, &[]).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let ctx = Context::blocking();
        let a = Matrix::<i32>::from_tuples(2, 3, &[(0, 1, 1)]).unwrap();
        assert!(matches!(
            bc_update(&ctx, &a, &[0]),
            Err(Error::DimensionMismatch(_))
        ));
    }

    #[test]
    fn self_loops_do_not_break_it() {
        let ctx = Context::blocking();
        let a = adj(3, &[(0, 0), (0, 1), (1, 2)]);
        let bc = betweenness(&ctx, &a, 3).unwrap();
        assert_close(&bc, &[0.0, 1.0, 0.0]);
    }
}
