//! k-core decomposition: iteratively peel vertices of degree `< k`
//! until a fixed point — degree counting by row reduction, pruning by
//! `assign`-ing empty content over the peeled rows and columns.

use graphblas_core::prelude::*;

/// The k-core of an undirected graph (symmetric Boolean adjacency):
/// the maximal subgraph where every vertex has degree ≥ `k`. Returns
/// the core's adjacency (original vertex ids) and the member vertices.
pub fn k_core(ctx: &Context, a: &Matrix<bool>, k: u64) -> Result<(Matrix<bool>, Vec<Index>)> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    let cur = a.dup();
    loop {
        // degree per vertex over the current subgraph
        let ones = Matrix::<u64>::new(n, n)?;
        ctx.apply_matrix(
            &ones,
            NoMask,
            NoAccum,
            unary_fn(|_: &bool| 1u64),
            &cur,
            &Descriptor::default(),
        )?;
        let deg = Vector::<u64>::new(n)?;
        ctx.reduce_rows(
            &deg,
            NoMask,
            NoAccum,
            PlusMonoid::<u64>::new(),
            &ones,
            &Descriptor::default(),
        )?;
        // peel vertices present in the subgraph with degree < k
        let peeled: Vec<Index> = deg
            .extract_tuples()?
            .into_iter()
            .filter(|&(_, d)| d < k)
            .map(|(i, _)| i)
            .collect();
        if peeled.is_empty() {
            let members: Vec<Index> = deg.extract_tuples()?.into_iter().map(|(i, _)| i).collect();
            return Ok((cur, members));
        }
        // delete the peeled rows and columns (assign of an empty source
        // clears exactly the region)
        let empty_rows = Matrix::<bool>::new(peeled.len(), n)?;
        ctx.assign_matrix(
            &cur,
            NoMask,
            NoAccum,
            &empty_rows,
            IndexSelection::List(&peeled),
            ALL,
            &Descriptor::default(),
        )?;
        let empty_cols = Matrix::<bool>::new(n, peeled.len())?;
        ctx.assign_matrix(
            &cur,
            NoMask,
            NoAccum,
            &empty_cols,
            ALL,
            IndexSelection::List(&peeled),
            &Descriptor::default(),
        )?;
    }
}

/// Core number of every vertex: the largest `k` such that the vertex
/// belongs to the k-core (0 for isolated vertices). O(k_max) passes of
/// [`k_core`] — simple and exact.
pub fn core_numbers(ctx: &Context, a: &Matrix<bool>) -> Result<Vec<u64>> {
    let n = a.nrows();
    let mut core = vec![0u64; n];
    let mut k = 1u64;
    loop {
        let (_, members) = k_core(ctx, a, k)?;
        if members.is_empty() {
            return Ok(core);
        }
        for v in members {
            core[v] = k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let mut t = Vec::new();
        for &(u, v) in edges {
            t.push((u, v, true));
            t.push((v, u, true));
        }
        t.sort();
        t.dedup();
        Matrix::from_tuples(n, n, &t).unwrap()
    }

    #[test]
    fn triangle_with_tail() {
        // triangle {0,1,2} plus path 2-3-4: 2-core is the triangle
        let ctx = Context::blocking();
        let a = undirected(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let (core, members) = k_core(&ctx, &a, 2).unwrap();
        assert_eq!(members, vec![0, 1, 2]);
        assert_eq!(core.nvals().unwrap(), 6);
        assert_eq!(core.get(2, 3).unwrap(), None); // tail edge removed
    }

    #[test]
    fn k4_is_a_3_core() {
        let ctx = Context::blocking();
        let a = undirected(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let (_, m3) = k_core(&ctx, &a, 3).unwrap();
        assert_eq!(m3, vec![0, 1, 2, 3]);
        let (_, m4) = k_core(&ctx, &a, 4).unwrap();
        assert!(m4.is_empty());
    }

    #[test]
    fn cascading_peel() {
        // star: removing leaves (degree 1) leaves the center at degree 0
        let ctx = Context::blocking();
        let edges: Vec<(usize, usize)> = (1..5).map(|v| (0, v)).collect();
        let a = undirected(5, &edges);
        let (_, m2) = k_core(&ctx, &a, 2).unwrap();
        assert!(m2.is_empty());
    }

    #[test]
    fn core_numbers_profile() {
        // triangle + tail: core numbers [2,2,2,1,1]
        let ctx = Context::blocking();
        let a = undirected(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        assert_eq!(core_numbers(&ctx, &a).unwrap(), vec![2, 2, 2, 1, 1]);
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let ctx = Context::blocking();
        let a = undirected(4, &[(0, 1)]);
        assert_eq!(core_numbers(&ctx, &a).unwrap(), vec![1, 1, 0, 0]);
    }
}
