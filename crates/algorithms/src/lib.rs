//! # graphblas-algorithms
//!
//! Graph algorithms written against the GraphBLAS API of
//! `graphblas-core` — headlined by [`bc::bc_update`], the line-by-line
//! port of the paper's Figure 3 batched betweenness-centrality kernel,
//! plus the classic suite the GraphBLAS is designed to express:
//!
//! * [`bc`] — batched Brandes betweenness centrality (Figure 3)
//! * [`bfs`] — BFS levels and parent trees (`lor.land`, `min.first`)
//! * [`sssp`] — Bellman–Ford SSSP and min-plus APSP (tropical semiring)
//! * [`triangles`] — masked-`mxm` triangle counting (`plus_pair`)
//! * [`mis`] — Luby's maximal independent set (randomized, masked)
//! * [`mod@pagerank`] — power iteration over the arithmetic semiring
//! * [`components`] — min-label propagation connected components
//! * [`reach`] — transitive closure (`lor.land`) and GF2 walk parity
//!
//! Every algorithm takes an explicit [`Context`](graphblas_core::Context)
//! and works identically in blocking and nonblocking modes.

pub mod bc;
pub mod bfs;
pub mod closeness;
pub mod components;
pub mod cores;
pub mod mis;
pub mod pagerank;
pub mod reach;
pub mod sssp;
pub mod triangles;

pub use bc::{bc_update, betweenness};
pub use bfs::{bfs_levels, bfs_multi, bfs_parents};
pub use closeness::{closeness_centrality, multi_source_bfs_levels};
pub use components::{connected_components, num_components};
pub use cores::{core_numbers, k_core};
pub use mis::maximal_independent_set;
pub use pagerank::pagerank;
pub use reach::{reachable_set, transitive_closure, walk_parity};
pub use sssp::{apsp_min_plus, sssp_bellman_ford};
pub use triangles::{k_truss, triangle_count, triangle_count_sandia, triangle_counts_per_vertex};
