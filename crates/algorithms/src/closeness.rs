//! Closeness centrality via batched multi-source BFS — the same
//! matrix-frontier pattern as the paper's BC forward sweep (Figure 3
//! lines 39–46), with level accumulation instead of path counting.

use graphblas_core::prelude::*;

/// BFS levels from a batch of sources, as an `n × batch` matrix:
/// `L(v, s)` is the hop distance from `sources[s]` to `v` (stored only
/// for reached vertices; the source itself carries 0).
pub fn multi_source_bfs_levels(
    ctx: &Context,
    a: &Matrix<bool>,
    sources: &[Index],
) -> Result<Matrix<i64>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    if sources.is_empty() {
        return Err(Error::InvalidValue("empty source batch".into()));
    }
    let b = sources.len();
    // levels: like Fig. 3's numsp, the structure doubles as the
    // "already discovered" set
    let levels = Matrix::<i64>::new(n, b)?;
    let cols: Vec<Index> = (0..b).collect();
    let zeros = vec![0i64; b];
    levels.build(sources, &cols, &zeros, &First::<i64, i64>::new())?;

    // frontier<!levels> = A^T selected columns (Fig. 3 lines 31-33 shape)
    let desc_tsr = Descriptor::default()
        .transpose_first()
        .complement_mask()
        .structural_mask()
        .replace();
    let frontier = Matrix::<bool>::new(n, b)?;
    ctx.extract_matrix(
        &frontier,
        &levels,
        NoAccum,
        a,
        ALL,
        IndexSelection::List(sources),
        &desc_tsr,
    )?;

    let mut d = 1i64;
    while frontier.nvals()? > 0 {
        // levels<frontier> = d (merge mode: only frontier positions set)
        ctx.assign_scalar_matrix(
            &levels,
            &frontier,
            NoAccum,
            d,
            ALL,
            ALL,
            &Descriptor::default().structural_mask(),
        )?;
        // frontier<!levels> = A^T lor.land frontier (replace)
        ctx.mxm(
            &frontier,
            &levels,
            NoAccum,
            lor_land(),
            a,
            &frontier,
            &desc_tsr,
        )?;
        d += 1;
    }
    Ok(levels)
}

/// Closeness centrality `C(v) = (r - 1) / Σ_t d(v, t)` where `r` is the
/// number of vertices reachable *from* `v` (out-closeness; harmonic-free
/// classic definition, 0 for vertices reaching nothing). Computed by
/// batched BFS from every vertex.
pub fn closeness_centrality(ctx: &Context, a: &Matrix<bool>, batch: usize) -> Result<Vec<f64>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    let batch = batch.max(1);
    let mut out = vec![0.0f64; n];
    let all: Vec<Index> = (0..n).collect();
    for chunk in all.chunks(batch) {
        // levels from these sources: L(v, s) = dist(source_s -> v)
        let levels = multi_source_bfs_levels(ctx, a, chunk)?;
        // per-source reach count and distance sum = column reductions
        let ones = Matrix::<i64>::new(n, chunk.len())?;
        ctx.apply_matrix(
            &ones,
            NoMask,
            NoAccum,
            unary_fn(|_: &i64| 1i64),
            &levels,
            &Descriptor::default(),
        )?;
        let reach = Vector::<i64>::new(chunk.len())?;
        ctx.reduce_rows(
            &reach,
            NoMask,
            NoAccum,
            PlusMonoid::<i64>::new(),
            &ones,
            &Descriptor::default().transpose_first(),
        )?;
        let dist_sum = Vector::<i64>::new(chunk.len())?;
        ctx.reduce_rows(
            &dist_sum,
            NoMask,
            NoAccum,
            PlusMonoid::<i64>::new(),
            &levels,
            &Descriptor::default().transpose_first(),
        )?;
        for (s, &v) in chunk.iter().enumerate() {
            let r = reach.get(s)?.unwrap_or(0) - 1; // exclude the source
            let total = dist_sum.get(s)?.unwrap_or(0);
            out[v] = if r > 0 && total > 0 {
                r as f64 / total as f64
            } else {
                0.0
            };
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let t: Vec<(usize, usize, bool)> = edges.iter().map(|&(u, v)| (u, v, true)).collect();
        Matrix::from_tuples(n, n, &t).unwrap()
    }

    #[test]
    fn levels_match_single_source_bfs() {
        let ctx = Context::blocking();
        let a = adj(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let l = multi_source_bfs_levels(&ctx, &a, &[0, 3]).unwrap();
        // column 0: from vertex 0
        for (v, want) in [
            (0, Some(0)),
            (1, Some(1)),
            (2, Some(1)),
            (3, Some(2)),
            (4, Some(3)),
            (5, None),
        ] {
            assert_eq!(l.get(v, 0).unwrap(), want.map(|x: i64| x), "v={v}");
        }
        // column 1: from vertex 3
        assert_eq!(l.get(4, 1).unwrap(), Some(1));
        assert_eq!(l.get(0, 1).unwrap(), None);
    }

    #[test]
    fn levels_agree_with_reference_over_batches() {
        use graphblas_reference::{traversal::bfs_levels, AdjGraph};
        let ctx = Context::blocking();
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (5, 1)];
        let a = adj(6, &edges);
        let adjg = AdjGraph::from_edges(6, &edges);
        let sources: Vec<Index> = (0..6).collect();
        let l = multi_source_bfs_levels(&ctx, &a, &sources).unwrap();
        for s in 0..6 {
            let want = bfs_levels(&adjg, s);
            for (v, lvl) in want.iter().enumerate() {
                assert_eq!(l.get(v, s).unwrap(), lvl.map(|x| x as i64), "v={v} s={s}");
            }
        }
    }

    #[test]
    fn closeness_on_a_path() {
        // undirected path 0-1-2: middle vertex is closest to everyone
        let ctx = Context::blocking();
        let a = adj(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let c = closeness_centrality(&ctx, &a, 2).unwrap();
        assert!((c[1] - 1.0).abs() < 1e-12); // 2 others at distance 1
        assert!((c[0] - 2.0 / 3.0).abs() < 1e-12); // dist 1 + 2
        assert!((c[0] - c[2]).abs() < 1e-12);
    }

    #[test]
    fn unreachable_vertices_score_zero() {
        let ctx = Context::blocking();
        let a = adj(3, &[(0, 1)]);
        let c = closeness_centrality(&ctx, &a, 3).unwrap();
        assert_eq!(c[1], 0.0); // reaches nothing
        assert_eq!(c[2], 0.0); // isolated
        assert!(c[0] > 0.0);
    }
}
