//! Reachability and path-parity analyses — the Boolean `lor.land` and
//! GF2 `xor.land` semirings of Table I driving the *same* `mxm` code.

use graphblas_core::prelude::*;

/// Transitive closure by repeated Boolean squaring over `lor.land`:
/// `R(i,j)` stored iff a path of length ≥ 1 exists from `i` to `j`.
pub fn transitive_closure(ctx: &Context, a: &Matrix<bool>) -> Result<Matrix<bool>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    let r = a.dup();
    loop {
        let before = r.nvals()?;
        // R = R lor (R lor.land R): add all 2-hop extensions
        ctx.mxm(
            &r,
            NoMask,
            Accum(LOr),
            lor_land(),
            &r,
            &r,
            &Descriptor::default(),
        )?;
        if r.nvals()? == before {
            return Ok(r);
        }
    }
}

/// Set of vertices reachable from `src` (excluding `src` itself unless
/// on a cycle) by BFS-style frontier expansion over `lor.land`.
pub fn reachable_set(ctx: &Context, a: &Matrix<bool>, src: Index) -> Result<Vec<Index>> {
    let n = a.nrows();
    if src >= n {
        return Err(Error::InvalidIndex(format!("source {src} out of range")));
    }
    let visited = Vector::<bool>::new(n)?;
    let q = Vector::from_tuples(n, &[(src, true)])?;
    let push = Descriptor::default()
        .complement_mask()
        .structural_mask()
        .replace();
    loop {
        // visited lor= q ... then expand
        let next = Vector::<bool>::new(n)?;
        ctx.vxm(&next, &visited, NoAccum, lor_land(), &q, a, &push)?;
        ctx.ewise_add_vector(
            &visited,
            NoMask,
            NoAccum,
            LOr,
            &visited,
            &next,
            &Descriptor::default(),
        )?;
        if next.nvals()? == 0 {
            break;
        }
        ctx.apply_vector(
            &q,
            NoMask,
            NoAccum,
            Identity::<bool>::new(),
            &next,
            &Descriptor::default().replace(),
        )?;
    }
    Ok(visited
        .extract_tuples()?
        .into_iter()
        .map(|(i, _)| i)
        .collect())
}

/// Parity of the number of length-`k` walks between every vertex pair,
/// computed over GF2 (`xor.land`, Table I row 4): `P(i,j)` stored and
/// `true` iff the count of `k`-walks from `i` to `j` is odd. (Stored
/// `false` values — even counts that collided — are preserved, matching
/// the semiring arithmetic.)
pub fn walk_parity(ctx: &Context, a: &Matrix<bool>, k: u32) -> Result<Matrix<bool>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    if k == 0 {
        return Err(Error::InvalidValue("walk length must be >= 1".into()));
    }
    let p = a.dup();
    for _ in 1..k {
        ctx.mxm(
            &p,
            NoMask,
            NoAccum,
            xor_and(),
            &p,
            a,
            &Descriptor::default().replace(),
        )?;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let t: Vec<(usize, usize, bool)> = edges.iter().map(|&(u, v)| (u, v, true)).collect();
        Matrix::from_tuples(n, n, &t).unwrap()
    }

    #[test]
    fn closure_of_a_path() {
        let ctx = Context::blocking();
        let a = adj(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = transitive_closure(&ctx, &a).unwrap();
        assert_eq!(
            r.extract_tuples().unwrap(),
            vec![
                (0, 1, true),
                (0, 2, true),
                (0, 3, true),
                (1, 2, true),
                (1, 3, true),
                (2, 3, true)
            ]
        );
    }

    #[test]
    fn closure_with_cycle_reaches_self() {
        let ctx = Context::blocking();
        let a = adj(3, &[(0, 1), (1, 0), (1, 2)]);
        let r = transitive_closure(&ctx, &a).unwrap();
        assert_eq!(r.get(0, 0).unwrap(), Some(true));
        assert_eq!(r.get(2, 0).unwrap(), None);
    }

    #[test]
    fn reachable_from_source() {
        let ctx = Context::blocking();
        let a = adj(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(reachable_set(&ctx, &a, 0).unwrap(), vec![1, 2]);
        assert_eq!(reachable_set(&ctx, &a, 3).unwrap(), vec![4]);
        assert!(reachable_set(&ctx, &a, 2).unwrap().is_empty());
    }

    #[test]
    fn gf2_walk_parity() {
        let ctx = Context::blocking();
        // two disjoint 2-paths from 0 to 3: walk count 2 -> parity even
        let a = adj(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let p2 = walk_parity(&ctx, &a, 2).unwrap();
        assert_eq!(p2.get(0, 3).unwrap(), Some(false)); // even # of walks
                                                        // single 2-walk 1 -> 3? 1->3 is one hop; at k=2 none
        let p1 = walk_parity(&ctx, &a, 1).unwrap();
        assert_eq!(p1.get(0, 1).unwrap(), Some(true));
        // triangle with an extra path: odd/even distinction
        let b = adj(3, &[(0, 1), (1, 2)]);
        let p = walk_parity(&ctx, &b, 2).unwrap();
        assert_eq!(p.get(0, 2).unwrap(), Some(true)); // exactly one 2-walk
    }
}
