//! Single-source shortest paths over the min-plus (tropical) semiring —
//! Table I row 2's family put to work: one `vxm` per Bellman–Ford
//! relaxation round.

use graphblas_core::prelude::*;

/// Bellman–Ford SSSP: distances from `src` over a weighted adjacency
/// matrix (stored weight = edge length; absent = no edge). `None` for
/// unreachable vertices. Returns an error on a negative cycle reachable
/// from `src` (distances still decreasing after `n` rounds).
pub fn sssp_bellman_ford(ctx: &Context, a: &Matrix<f64>, src: Index) -> Result<Vec<Option<f64>>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    if src >= n {
        return Err(Error::InvalidIndex(format!("source {src} out of range")));
    }
    let dist = Vector::from_tuples(n, &[(src, 0.0f64)])?;
    let relaxed = Vector::<f64>::new(n)?;
    let mut prev = dist.extract_tuples()?;
    for round in 0..n {
        // relaxed = dist min.+ A
        ctx.vxm(
            &relaxed,
            NoMask,
            NoAccum,
            min_plus::<f64>(),
            &dist,
            a,
            &Descriptor::default().replace(),
        )?;
        // dist = min(dist, relaxed)
        ctx.ewise_add_vector(
            &dist,
            NoMask,
            NoAccum,
            Min::<f64>::new(),
            &dist,
            &relaxed,
            &Descriptor::default(),
        )?;
        let cur = dist.extract_tuples()?;
        if cur == prev {
            let mut out = vec![None; n];
            for (i, d) in cur {
                out[i] = Some(d);
            }
            return Ok(out);
        }
        if round == n - 1 {
            return Err(Error::InvalidValue(
                "negative cycle reachable from source".into(),
            ));
        }
        prev = cur;
    }
    unreachable!("loop returns or errors")
}

/// All-pairs shortest paths by min-plus matrix powering (repeated
/// squaring of `I_0 ⊕ A` until a fixed point): `D(i,j)` is the shortest
/// path length, absent = unreachable. O(n³ log n) worst case — for
/// small/medium graphs and for validating `sssp_bellman_ford`.
pub fn apsp_min_plus(ctx: &Context, a: &Matrix<f64>) -> Result<Matrix<f64>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    // D = A ⊕ 0-diagonal (distance 0 to self)
    let diag: Vec<(Index, Index, f64)> = (0..n).map(|i| (i, i, 0.0)).collect();
    let eye = Matrix::from_tuples(n, n, &diag)?;
    let d = Matrix::<f64>::new(n, n)?;
    ctx.ewise_add_matrix(
        &d,
        NoMask,
        NoAccum,
        Min::<f64>::new(),
        a,
        &eye,
        &Descriptor::default(),
    )?;
    loop {
        let before = d.extract_tuples()?;
        // D = D min.+ D
        ctx.mxm(
            &d,
            NoMask,
            NoAccum,
            min_plus::<f64>(),
            &d,
            &d,
            &Descriptor::default(),
        )?;
        if d.extract_tuples()? == before {
            return Ok(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(n: usize, edges: &[(usize, usize, f64)]) -> Matrix<f64> {
        Matrix::from_tuples(n, n, edges).unwrap()
    }

    #[test]
    fn simple_distances() {
        let ctx = Context::blocking();
        let a = adj(
            5,
            &[
                (0, 1, 4.0),
                (0, 2, 1.0),
                (2, 1, 2.0),
                (1, 3, 1.0),
                (2, 3, 5.0),
            ],
        );
        let d = sssp_bellman_ford(&ctx, &a, 0).unwrap();
        assert_eq!(d, vec![Some(0.0), Some(3.0), Some(1.0), Some(4.0), None]);
    }

    #[test]
    fn negative_edge_ok() {
        let ctx = Context::blocking();
        let a = adj(3, &[(0, 1, 5.0), (1, 2, -3.0), (0, 2, 4.0)]);
        let d = sssp_bellman_ford(&ctx, &a, 0).unwrap();
        assert_eq!(d[2], Some(2.0));
    }

    #[test]
    fn negative_cycle_detected() {
        let ctx = Context::blocking();
        let a = adj(2, &[(0, 1, 1.0), (1, 0, -2.0)]);
        assert!(sssp_bellman_ford(&ctx, &a, 0).is_err());
    }

    #[test]
    fn apsp_agrees_with_sssp() {
        let ctx = Context::blocking();
        let a = adj(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (0, 3, 10.0),
                (3, 0, 1.0),
            ],
        );
        let apsp = apsp_min_plus(&ctx, &a).unwrap();
        for src in 0..4 {
            let d = sssp_bellman_ford(&ctx, &a, src).unwrap();
            for (dst, want) in d.iter().enumerate() {
                let from_apsp = apsp.get(src, dst).unwrap();
                assert_eq!(&from_apsp, want, "src {src} dst {dst}");
            }
        }
    }

    #[test]
    fn unreachable_is_absent_not_infinite() {
        let ctx = Context::blocking();
        let a = adj(3, &[(1, 2, 1.0)]);
        let d = sssp_bellman_ford(&ctx, &a, 0).unwrap();
        assert_eq!(d, vec![Some(0.0), None, None]);
    }
}
