//! PageRank as GraphBLAS primitives: one `vxm` over the arithmetic
//! semiring per power iteration, plus element-wise scaling and a scalar
//! reduction for the dangling-mass correction.
//!
//! The per-iteration `vxm` goes through the SpMSpV direction dispatch:
//! the rank vector is dense, so the cost model settles on the pull/dense
//! side and PageRank keeps its streaming row-walk — while still sharing
//! the cached degree vectors with the traversal algorithms.

use graphblas_core::prelude::*;

/// PageRank with damping `d`, iterating until the L1 change drops below
/// `tol` or `max_iters` is reached. Dangling mass is redistributed
/// uniformly. Returns `(ranks, iterations)`.
pub fn pagerank(
    ctx: &Context,
    a: &Matrix<bool>,
    d: f64,
    tol: f64,
    max_iters: usize,
) -> Result<(Vec<f64>, usize)> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    let nf = n as f64;

    // out-degrees: row-reduce of A over plus (bool -> count via apply)
    let a_ones = Matrix::<f64>::new(n, n)?;
    ctx.apply_matrix(
        &a_ones,
        NoMask,
        NoAccum,
        unary_fn(|_: &bool| 1.0f64),
        a,
        &Descriptor::default(),
    )?;
    let out_deg = Vector::<f64>::new(n)?;
    ctx.reduce_rows(
        &out_deg,
        NoMask,
        NoAccum,
        PlusMonoid::<f64>::new(),
        &a_ones,
        &Descriptor::default(),
    )?;
    // inverse out-degree (absent for dangling vertices)
    let inv_deg = Vector::<f64>::new(n)?;
    ctx.apply_vector(
        &inv_deg,
        NoMask,
        NoAccum,
        Minv::<f64>::new(),
        &out_deg,
        &Descriptor::default(),
    )?;

    // rank starts uniform (dense)
    let rank = Vector::<f64>::new(n)?;
    ctx.assign_scalar_vector(
        &rank,
        NoMask,
        NoAccum,
        1.0 / nf,
        ALL,
        &Descriptor::default(),
    )?;
    let contrib = Vector::<f64>::new(n)?;
    let next = Vector::<f64>::new(n)?;
    let diff = Vector::<f64>::new(n)?;

    for it in 1..=max_iters {
        // contrib = rank ./ out_deg (dangling vertices drop out here)
        ctx.ewise_mult_vector(
            &contrib,
            NoMask,
            NoAccum,
            Times::<f64>::new(),
            &rank,
            &inv_deg,
            &Descriptor::default().replace(),
        )?;
        // dangling mass = total rank - mass that has an outgoing edge
        let distributed = ctx.reduce_vector_to_scalar(PlusMonoid::<f64>::new(), &contrib)?;
        let total = ctx.reduce_vector_to_scalar(PlusMonoid::<f64>::new(), &rank)?;
        // `distributed` is Σ rank/deg, not Σ rank — recompute the mass
        // carried by non-dangling vertices instead:
        let _ = distributed;
        let carried = {
            let m = Vector::<f64>::new(n)?;
            // m = rank masked to vertices with out-degree (structural)
            ctx.ewise_mult_vector(
                &m,
                NoMask,
                NoAccum,
                First::<f64, f64>::new(),
                &rank,
                &inv_deg,
                &Descriptor::default(),
            )?;
            ctx.reduce_vector_to_scalar(PlusMonoid::<f64>::new(), &m)?
        };
        let dangling = total - carried;
        let base = (1.0 - d) / nf + d * dangling / nf;

        // next = base everywhere, then accumulate d * (contrib ⊕.⊗ A)
        ctx.assign_scalar_vector(
            &next,
            NoMask,
            NoAccum,
            base,
            ALL,
            &Descriptor::default().replace(),
        )?;
        let scaled = Vector::<f64>::new(n)?;
        ctx.apply_vector(
            &scaled,
            NoMask,
            NoAccum,
            unary_fn(move |x: &f64| d * x),
            &contrib,
            &Descriptor::default(),
        )?;
        ctx.vxm(
            &next,
            NoMask,
            Accum(Plus::<f64>::new()),
            SemiringDef::new(PlusMonoid::<f64>::new(), binary_fn(|x: &f64, _: &bool| *x)),
            &scaled,
            a,
            &Descriptor::default(),
        )?;

        // diff = |rank - next|, L1
        ctx.ewise_add_vector(
            &diff,
            NoMask,
            NoAccum,
            binary_fn(|x: &f64, y: &f64| (x - y).abs()),
            &rank,
            &next,
            &Descriptor::default().replace(),
        )?;
        let l1 = ctx.reduce_vector_to_scalar(PlusMonoid::<f64>::new(), &diff)?;

        // rank = next
        ctx.apply_vector(
            &rank,
            NoMask,
            NoAccum,
            Identity::<f64>::new(),
            &next,
            &Descriptor::default().replace(),
        )?;

        if l1 < tol {
            let mut out = vec![0.0; n];
            for (i, v) in rank.extract_tuples()? {
                out[i] = v;
            }
            return Ok((out, it));
        }
    }
    let mut out = vec![0.0; n];
    for (i, v) in rank.extract_tuples()? {
        out[i] = v;
    }
    Ok((out, max_iters))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let t: Vec<(usize, usize, bool)> = edges.iter().map(|&(u, v)| (u, v, true)).collect();
        Matrix::from_tuples(n, n, &t).unwrap()
    }

    #[test]
    fn ranks_sum_to_one() {
        let ctx = Context::blocking();
        let a = adj(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let (r, _) = pagerank(&ctx, &a, 0.85, 1e-12, 500).unwrap();
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_is_uniform() {
        let ctx = Context::blocking();
        let a = adj(3, &[(0, 1), (1, 2), (2, 0)]);
        let (r, iters) = pagerank(&ctx, &a, 0.85, 1e-12, 500).unwrap();
        assert!(iters < 500);
        for &x in &r {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_vertices_handled() {
        let ctx = Context::blocking();
        let a = adj(2, &[(0, 1)]);
        let (r, _) = pagerank(&ctx, &a, 0.85, 1e-12, 500).unwrap();
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(r[1] > r[0]);
    }
}
