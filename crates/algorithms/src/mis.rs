//! Luby's maximal independent set — the classic randomized GraphBLAS
//! showcase: each round every candidate draws a random score, local
//! maxima join the set, and winners plus their neighborhoods leave the
//! candidate pool (masked assigns and complemented masks doing the
//! pruning, as in the paper's BC forward sweep).

use graphblas_core::prelude::*;

/// Deterministic splitmix64 — the per-round score generator (no external
/// RNG dependency; reproducible across runs for a given seed).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A maximal independent set of an undirected graph (symmetric Boolean
/// adjacency, no self-loops), as a sorted vertex list. Deterministic in
/// `seed`.
pub fn maximal_independent_set(ctx: &Context, a: &Matrix<bool>, seed: u64) -> Result<Vec<Index>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }

    // all vertices start as candidates
    let candidates = Vector::from_dense(&vec![true; n])?;
    let mis = Vector::<bool>::new(n)?;
    let max_first_score =
        SemiringDef::new(MaxMonoid::<f64>::new(), binary_fn(|s: &f64, _e: &bool| *s));

    let mut round = 0u64;
    while candidates.nvals()? > 0 {
        round += 1;
        // random scores on the candidate pattern
        let scores_dense: Vec<f64> = (0..n)
            .map(|v| (splitmix(seed ^ (round << 32) ^ v as u64) as f64) / (u64::MAX as f64))
            .collect();
        let all_scores = Vector::from_dense(&scores_dense)?;
        let cand_scores = Vector::<f64>::new(n)?;
        ctx.ewise_mult_vector(
            &cand_scores,
            NoMask,
            NoAccum,
            binary_fn(|_: &bool, s: &f64| *s),
            &candidates,
            &all_scores,
            &Descriptor::default().replace(),
        )?;

        // neighbour maxima, dense over candidates (start at -inf so
        // isolated candidates win automatically)
        let nbr_max = Vector::<f64>::new(n)?;
        ctx.apply_vector(
            &nbr_max,
            &candidates,
            NoAccum,
            unary_fn(|_: &bool| f64::NEG_INFINITY),
            &candidates,
            &Descriptor::default().structural_mask().replace(),
        )?;
        ctx.vxm(
            &nbr_max,
            &candidates,
            Accum(Max::<f64>::new()),
            max_first_score.clone(),
            &cand_scores,
            a,
            &Descriptor::default().structural_mask(),
        )?;

        // winners: candidates strictly above every candidate neighbour
        let winner_flags = Vector::<bool>::new(n)?;
        ctx.ewise_mult_vector(
            &winner_flags,
            NoMask,
            NoAccum,
            binary_fn(|s: &f64, m: &f64| s > m),
            &cand_scores,
            &nbr_max,
            &Descriptor::default().replace(),
        )?;
        let winners = Vector::<bool>::new(n)?;
        ctx.select_vector(
            &winners,
            NoMask,
            NoAccum,
            select_fn(|_, _, v: &bool| *v),
            &winner_flags,
            &Descriptor::default(),
        )?;
        if winners.nvals()? == 0 {
            // all-tie pathological round: retry with fresh scores
            continue;
        }

        // mis ∪= winners
        ctx.ewise_add_vector(
            &mis,
            NoMask,
            NoAccum,
            LOr,
            &mis,
            &winners,
            &Descriptor::default(),
        )?;

        // removed = winners ∪ neighbours(winners)
        let neighbours = Vector::<bool>::new(n)?;
        ctx.vxm(
            &neighbours,
            NoMask,
            NoAccum,
            lor_land(),
            &winners,
            a,
            &Descriptor::default().replace(),
        )?;
        let removed = Vector::<bool>::new(n)?;
        ctx.ewise_add_vector(
            &removed,
            NoMask,
            NoAccum,
            LOr,
            &winners,
            &neighbours,
            &Descriptor::default().replace(),
        )?;

        // candidates = candidates \ removed (complemented structural mask)
        let next = Vector::<bool>::new(n)?;
        ctx.apply_vector(
            &next,
            &removed,
            NoAccum,
            Identity::<bool>::new(),
            &candidates,
            &Descriptor::default()
                .structural_mask()
                .complement_mask()
                .replace(),
        )?;
        ctx.apply_vector(
            &candidates,
            NoMask,
            NoAccum,
            Identity::<bool>::new(),
            &next,
            &Descriptor::default().replace(),
        )?;
    }

    Ok(mis.extract_tuples()?.into_iter().map(|(i, _)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let mut t = Vec::new();
        for &(u, v) in edges {
            t.push((u, v, true));
            t.push((v, u, true));
        }
        t.sort();
        t.dedup();
        Matrix::from_tuples(n, n, &t).unwrap()
    }

    fn check_mis(n: usize, edges: &[(usize, usize)], mis: &[Index]) {
        let in_set = |v: usize| mis.contains(&v);
        // independence
        for &(u, v) in edges {
            assert!(!(in_set(u) && in_set(v)), "edge ({u},{v}) inside the set");
        }
        // maximality: every vertex outside the set has a neighbour inside
        for v in 0..n {
            if !in_set(v) {
                let has = edges
                    .iter()
                    .any(|&(a, b)| (a == v && in_set(b)) || (b == v && in_set(a)));
                assert!(has, "vertex {v} could be added");
            }
        }
    }

    #[test]
    fn mis_on_path() {
        let ctx = Context::blocking();
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
        let a = undirected(5, &edges);
        let mis = maximal_independent_set(&ctx, &a, 1).unwrap();
        check_mis(5, &edges, &mis);
    }

    #[test]
    fn mis_on_star_is_leaves_or_center() {
        let ctx = Context::blocking();
        let edges: Vec<(usize, usize)> = (1..6).map(|v| (0, v)).collect();
        let a = undirected(6, &edges);
        let mis = maximal_independent_set(&ctx, &a, 7).unwrap();
        check_mis(6, &edges, &mis);
        assert!(mis == vec![0] || mis == vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn mis_with_isolated_vertices_includes_them() {
        let ctx = Context::blocking();
        let edges = [(0, 1)];
        let a = undirected(4, &edges);
        let mis = maximal_independent_set(&ctx, &a, 3).unwrap();
        check_mis(4, &edges, &mis);
        assert!(mis.contains(&2) && mis.contains(&3));
    }

    #[test]
    fn mis_deterministic_per_seed_and_valid_across_seeds() {
        let ctx = Context::blocking();
        let edges = [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (1, 4),
        ];
        let a = undirected(6, &edges);
        let first = maximal_independent_set(&ctx, &a, 42).unwrap();
        assert_eq!(first, maximal_independent_set(&ctx, &a, 42).unwrap());
        for seed in 0..10 {
            let mis = maximal_independent_set(&ctx, &a, seed).unwrap();
            check_mis(6, &edges, &mis);
        }
    }
}
