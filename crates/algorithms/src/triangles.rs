//! Triangle counting with masked matrix multiplication — the showcase
//! for pushing a write mask *into* the multiply: `C<A> = A ⊕.pair A`
//! touches only positions where an edge exists (Burkhardt's formulation),
//! so the masked SpGEMM computes wedge counts per edge, never the full
//! square.

use graphblas_core::prelude::*;

/// Number of triangles in an undirected graph given as a Boolean
/// adjacency matrix with both directions stored and no self-loops.
///
/// `C<A-structural> = A plus_pair.⊗ A` counts, for every edge `(i,j)`,
/// the wedges `i—k—j`; summing over all stored positions counts each
/// triangle six times (3 corners × 2 directions).
pub fn triangle_count(ctx: &Context, a: &Matrix<bool>) -> Result<u64> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    let c = Matrix::<u64>::new(n, n)?;
    ctx.mxm(
        &c,
        a,
        NoAccum,
        SemiringDef::new(PlusMonoid::<u64>::new(), Pair::<bool, bool, u64>::new()),
        a,
        a,
        &Descriptor::default().structural_mask().replace(),
    )?;
    let six_t = ctx.reduce_matrix_to_scalar(PlusMonoid::<u64>::new(), &c)?;
    Ok(six_t / 6)
}

/// Per-vertex triangle participation: `t(i)` = number of triangles
/// containing vertex `i` (row sums of the wedge-count matrix, halved:
/// each triangle at `i` is seen via its two incident edges).
pub fn triangle_counts_per_vertex(ctx: &Context, a: &Matrix<bool>) -> Result<Vec<u64>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    let c = Matrix::<u64>::new(n, n)?;
    ctx.mxm(
        &c,
        a,
        NoAccum,
        SemiringDef::new(PlusMonoid::<u64>::new(), Pair::<bool, bool, u64>::new()),
        a,
        a,
        &Descriptor::default().structural_mask().replace(),
    )?;
    let t = Vector::<u64>::new(n)?;
    ctx.reduce_rows(
        &t,
        NoMask,
        NoAccum,
        PlusMonoid::<u64>::new(),
        &c,
        &Descriptor::default(),
    )?;
    let mut out = vec![0u64; n];
    for (i, v) in t.extract_tuples()? {
        out[i] = v / 2;
    }
    Ok(out)
}

/// Sandia triangle counting: `L = tril(A, -1)`, then
/// `C<L> = L plus_pair L` and the sum of `C` counts each triangle
/// exactly once. Uses the `select` extension (`GrB_TRIL`); fewer wedges
/// are enumerated than in the Burkhardt full-matrix form, at the cost of
/// the select pass.
pub fn triangle_count_sandia(ctx: &Context, a: &Matrix<bool>) -> Result<u64> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    let l = Matrix::<bool>::new(n, n)?;
    ctx.select_matrix(
        &l,
        NoMask,
        NoAccum,
        Tril::new(-1),
        a,
        &Descriptor::default(),
    )?;
    let c = Matrix::<u64>::new(n, n)?;
    ctx.mxm(
        &c,
        &l,
        NoAccum,
        SemiringDef::new(PlusMonoid::<u64>::new(), Pair::<bool, bool, u64>::new()),
        &l,
        &l,
        &Descriptor::default().structural_mask().replace(),
    )?;
    ctx.reduce_matrix_to_scalar(PlusMonoid::<u64>::new(), &c)
}

/// k-truss: the maximal subgraph in which every edge participates in at
/// least `k - 2` triangles. Iterates support counting
/// (`C<A> = A plus_pair A`) and support-threshold pruning
/// (`select(ValueGe(k-2))`) to a fixed point; returns the Boolean
/// adjacency of the truss. Classic composition of masked `mxm` with the
/// `select` extension.
pub fn k_truss(ctx: &Context, a: &Matrix<bool>, k: u64) -> Result<Matrix<bool>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    if k < 3 {
        return Err(Error::InvalidValue("k-truss requires k >= 3".into()));
    }
    let mut cur = a.dup();
    loop {
        let before = cur.nvals()?;
        // support(i,j) = # wedges closing edge (i,j)
        let support = Matrix::<u64>::new(n, n)?;
        ctx.mxm(
            &support,
            &cur,
            NoAccum,
            SemiringDef::new(PlusMonoid::<u64>::new(), Pair::<bool, bool, u64>::new()),
            &cur,
            &cur,
            &Descriptor::default().structural_mask().replace(),
        )?;
        // keep edges with support >= k-2
        let kept = Matrix::<u64>::new(n, n)?;
        ctx.select_matrix(
            &kept,
            NoMask,
            NoAccum,
            ValueGe(k - 2),
            &support,
            &Descriptor::default(),
        )?;
        let next = Matrix::<bool>::new(n, n)?;
        ctx.apply_matrix(
            &next,
            NoMask,
            NoAccum,
            unary_fn(|_: &u64| true),
            &kept,
            &Descriptor::default(),
        )?;
        if next.nvals()? == before {
            return Ok(next);
        }
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let mut t = Vec::new();
        for &(u, v) in edges {
            t.push((u, v, true));
            t.push((v, u, true));
        }
        t.sort();
        t.dedup();
        Matrix::from_tuples(n, n, &t).unwrap()
    }

    #[test]
    fn one_triangle() {
        let ctx = Context::blocking();
        let a = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle_count(&ctx, &a).unwrap(), 1);
        assert_eq!(triangle_counts_per_vertex(&ctx, &a).unwrap(), vec![1, 1, 1]);
    }

    #[test]
    fn k4() {
        let ctx = Context::blocking();
        let a = undirected(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(triangle_count(&ctx, &a).unwrap(), 4);
        assert_eq!(
            triangle_counts_per_vertex(&ctx, &a).unwrap(),
            vec![3, 3, 3, 3]
        );
    }

    #[test]
    fn triangle_free_cycle() {
        let ctx = Context::blocking();
        let a = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(triangle_count(&ctx, &a).unwrap(), 0);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        let ctx = Context::blocking();
        let a = undirected(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)]);
        assert_eq!(triangle_count(&ctx, &a).unwrap(), 2);
        assert_eq!(
            triangle_counts_per_vertex(&ctx, &a).unwrap(),
            vec![2, 2, 1, 1]
        );
    }

    #[test]
    fn sandia_variant_agrees_with_burkhardt() {
        let ctx = Context::blocking();
        for (n, edges) in [
            (3, vec![(0, 1), (1, 2), (0, 2)]),
            (4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
            (5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
            (
                6,
                vec![(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)],
            ),
        ] {
            let a = undirected(n, &edges);
            assert_eq!(
                triangle_count(&ctx, &a).unwrap(),
                triangle_count_sandia(&ctx, &a).unwrap(),
                "n={n}"
            );
        }
    }

    #[test]
    fn k3_truss_of_k4_is_k4() {
        let ctx = Context::blocking();
        let k4 = undirected(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let t = k_truss(&ctx, &k4, 3).unwrap();
        assert_eq!(t.nvals().unwrap(), 12); // all arcs survive
                                            // k=4: every edge of K4 is in exactly 2 triangles -> survives k=4
        let t4 = k_truss(&ctx, &k4, 4).unwrap();
        assert_eq!(t4.nvals().unwrap(), 12);
        // k=5 would need 3 triangles per edge: empty
        let t5 = k_truss(&ctx, &k4, 5).unwrap();
        assert_eq!(t5.nvals().unwrap(), 0);
    }

    #[test]
    fn truss_prunes_pendant_triangles() {
        // two triangles sharing an edge plus a pendant edge: the pendant
        // edge has no triangle support and is pruned by k=3
        let ctx = Context::blocking();
        let g = undirected(5, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 4)]);
        let t = k_truss(&ctx, &g, 3).unwrap();
        // (2,4) pruned (both directions); all triangle edges kept
        assert_eq!(t.nvals().unwrap(), 10);
        assert_eq!(t.get(2, 4).unwrap(), None);
        assert_eq!(t.get(0, 1).unwrap(), Some(true));
    }

    #[test]
    fn k_truss_rejects_small_k() {
        let ctx = Context::blocking();
        let a = undirected(3, &[(0, 1)]);
        assert!(k_truss(&ctx, &a, 2).is_err());
    }
}
