//! Breadth-first search in the language of linear algebra: frontier
//! expansion is `q<!visited> = q ⊕.⊗ A` with the Boolean `lor.land`
//! semiring, the complemented-mask pruning being exactly the trick the BC
//! example's forward sweep uses (paper §VII-C).
//!
//! Every frontier step goes through the SpMSpV direction dispatch
//! (`kernel::spmspv`): sparse frontiers are *pushed* (work proportional
//! to the frontier's out-degree sum, not nnz(A)), while dense frontiers
//! near the traversal peak are *pulled* against the complemented visited
//! mask so already-discovered vertices are never expanded. The switch is
//! per-level and automatic; enable tracing on the [`Context`] to observe
//! the chosen direction per step.

use graphblas_core::prelude::*;

/// BFS levels from `src` over a Boolean adjacency matrix: `None` for
/// unreachable vertices, `Some(0)` for the source.
pub fn bfs_levels(ctx: &Context, a: &Matrix<bool>, src: Index) -> Result<Vec<Option<usize>>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    if src >= n {
        return Err(Error::InvalidIndex(format!("source {src} out of range")));
    }
    let levels = Vector::<i64>::new(n)?;
    let q = Vector::from_tuples(n, &[(src, true)])?;
    // structural: level 0 is a stored value that casts to false, but the
    // source must still be pruned from future frontiers
    let push = Descriptor::default()
        .complement_mask()
        .structural_mask()
        .replace();
    let mut d = 0i64;
    loop {
        // levels<q> = d (merge mode: only frontier positions written)
        ctx.assign_scalar_vector(&levels, &q, NoAccum, d, ALL, &Descriptor::default())?;
        // q<!levels> = q lor.land A (replace): expand and prune visited
        ctx.vxm(&q, &levels, NoAccum, lor_land(), &q, a, &push)?;
        // Drain through the context's scheduler (a no-op in blocking
        // mode): the nvals() force below would complete the level too,
        // but outside the scheduler — and so outside the execution
        // trace that records each level's push/pull choice.
        ctx.wait()?;
        if q.nvals()? == 0 {
            break;
        }
        d += 1;
    }
    let mut out = vec![None; n];
    for (i, lv) in levels.extract_tuples()? {
        out[i] = Some(lv as usize);
    }
    Ok(out)
}

/// Batched BFS: levels from every source in `sources` at once — the
/// paper's §VII batching trick (the same one Figure 3's batched BC
/// exploits). The per-source frontiers form the columns of one `n × b`
/// Boolean matrix, so each BFS level is **one** masked `mxm` over the
/// whole batch instead of `b` independent `vxm`s; the result block is
/// demultiplexed back into one level vector per source.
///
/// `out[s][v]` is the hop distance from `sources[s]` to `v` (`Some(0)`
/// for the source itself, `None` if unreachable) — exactly what
/// [`bfs_levels`] returns for each source on its own, which the unit
/// tests assert. Duplicate sources are allowed; each occupies its own
/// column. This is the coalescing primitive the `server` crate's
/// request batcher drives.
pub fn bfs_multi(
    ctx: &Context,
    a: &Matrix<bool>,
    sources: &[Index],
) -> Result<Vec<Vec<Option<usize>>>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    if let Some(&bad) = sources.iter().find(|&&s| s >= n) {
        return Err(Error::InvalidIndex(format!("source {bad} out of range")));
    }
    // column-block frontier sweep: one mxm per level over all sources
    let levels = crate::closeness::multi_source_bfs_levels(ctx, a, sources)?;
    let mut out = vec![vec![None; n]; sources.len()];
    for (v, s, lv) in levels.extract_tuples()? {
        out[s][v] = Some(lv as usize);
    }
    Ok(out)
}

/// BFS parent tree from `src` using the `min.first` semiring: frontier
/// values carry vertex ids, so each newly discovered vertex receives the
/// minimum-id parent (deterministic tie-breaking).
pub fn bfs_parents(ctx: &Context, a: &Matrix<bool>, src: Index) -> Result<Vec<Option<usize>>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    if src >= n {
        return Err(Error::InvalidIndex(format!("source {src} out of range")));
    }
    // ids(i) = i, used to re-stamp each frontier with its own ids
    let ids: Vec<(Index, u64)> = (0..n).map(|i| (i, i as u64)).collect();
    let iota = Vector::from_tuples(n, &ids)?;
    let parents = Vector::from_tuples(n, &[(src, src as u64)])?;
    let frontier = Vector::from_tuples(n, &[(src, src as u64)])?;
    // the adjacency is Boolean; propagate parent ids with min.first over
    // a cast view of A (first-arg values are the frontier's ids)
    let desc = Descriptor::default()
        .complement_mask()
        .structural_mask()
        .replace();
    // hoisted out of the loop: the replace descriptor clears it each step
    let next = Vector::<u64>::new(n)?;
    loop {
        // next<!parents> = frontier min.first A: each discovered vertex
        // gets the smallest frontier id pointing at it
        ctx.vxm(
            &next,
            &parents,
            NoAccum,
            SemiringDef::new(MinMonoid::<u64>::new(), binary_fn(|p: &u64, _e: &bool| *p)),
            &frontier,
            a,
            &desc,
        )?;
        ctx.wait()?; // trace-visible completion, as in bfs_levels
        if next.nvals()? == 0 {
            break;
        }
        // parents ∪= next (first wins; disjoint by the mask anyway)
        ctx.ewise_add_vector(
            &parents,
            NoMask,
            NoAccum,
            First::<u64, u64>::new(),
            &parents,
            &next,
            &Descriptor::default(),
        )?;
        // frontier = next re-stamped with its own vertex ids
        ctx.ewise_mult_vector(
            &frontier,
            NoMask,
            NoAccum,
            Second::<u64, u64>::new(),
            &next,
            &iota,
            &Descriptor::default().replace(),
        )?;
    }
    let mut out = vec![None; n];
    for (i, p) in parents.extract_tuples()? {
        out[i] = Some(p as usize);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let t: Vec<(usize, usize, bool)> = edges.iter().map(|&(u, v)| (u, v, true)).collect();
        Matrix::from_tuples(n, n, &t).unwrap()
    }

    #[test]
    fn levels_on_dag() {
        let ctx = Context::blocking();
        let a = adj(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        assert_eq!(
            bfs_levels(&ctx, &a, 0).unwrap(),
            vec![Some(0), Some(1), Some(1), Some(2), Some(3), None]
        );
    }

    #[test]
    fn levels_with_cycle() {
        let ctx = Context::blocking();
        let a = adj(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(
            bfs_levels(&ctx, &a, 1).unwrap(),
            vec![Some(2), Some(0), Some(1), Some(2)]
        );
    }

    #[test]
    fn parents_match_reference_tie_breaking() {
        let ctx = Context::blocking();
        let a = adj(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let p = bfs_parents(&ctx, &a, 0).unwrap();
        assert_eq!(p[0], Some(0));
        assert_eq!(p[3], Some(1)); // min-id parent among {1, 2}
        assert_eq!(p[4], Some(3));
        assert_eq!(p[5], None);
    }

    #[test]
    fn isolated_source() {
        let ctx = Context::blocking();
        let a = adj(3, &[(1, 2)]);
        assert_eq!(bfs_levels(&ctx, &a, 0).unwrap(), vec![Some(0), None, None]);
    }

    #[test]
    fn source_bounds_checked() {
        let ctx = Context::blocking();
        let a = adj(2, &[(0, 1)]);
        assert!(bfs_levels(&ctx, &a, 5).is_err());
        assert!(bfs_parents(&ctx, &a, 5).is_err());
    }

    #[test]
    fn bfs_multi_matches_n_independent_runs() {
        // the §VII batching primitive must be observationally identical
        // to running bfs_levels once per source
        let ctx = Context::blocking();
        let a = adj(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (1, 4),
                (4, 5),
                (5, 1),
                (6, 7), // separate component
            ],
        );
        let sources: Vec<Index> = vec![0, 3, 6, 5];
        let batched = bfs_multi(&ctx, &a, &sources).unwrap();
        assert_eq!(batched.len(), sources.len());
        for (s, &src) in sources.iter().enumerate() {
            let single = bfs_levels(&ctx, &a, src).unwrap();
            assert_eq!(batched[s], single, "source {src}");
        }
    }

    #[test]
    fn bfs_multi_allows_duplicate_sources() {
        let ctx = Context::blocking();
        let a = adj(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let batched = bfs_multi(&ctx, &a, &[2, 2, 0]).unwrap();
        let from2 = bfs_levels(&ctx, &a, 2).unwrap();
        let from0 = bfs_levels(&ctx, &a, 0).unwrap();
        assert_eq!(batched[0], from2);
        assert_eq!(batched[1], from2);
        assert_eq!(batched[2], from0);
    }

    #[test]
    fn bfs_multi_checks_bounds_and_rejects_empty() {
        let ctx = Context::blocking();
        let a = adj(3, &[(0, 1)]);
        assert!(bfs_multi(&ctx, &a, &[0, 7]).is_err());
        assert!(bfs_multi(&ctx, &a, &[]).is_err());
    }

    #[test]
    fn nonblocking_bfs_matches() {
        let b = Context::blocking();
        let nb = Context::nonblocking();
        let a = adj(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 3)]);
        assert_eq!(
            bfs_levels(&b, &a, 0).unwrap(),
            bfs_levels(&nb, &a, 0).unwrap()
        );
    }
}
