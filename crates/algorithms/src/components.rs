//! Connected components by min-label propagation over the
//! `min.first` semiring: each round every vertex adopts the smallest
//! label among itself and its neighbors; the fixed point labels each
//! component with its minimum vertex id.

use graphblas_core::prelude::*;

/// Component labels (minimum vertex id per component). `a` must be
/// symmetric (undirected graph with both directions stored).
pub fn connected_components(ctx: &Context, a: &Matrix<bool>) -> Result<Vec<usize>> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch("adjacency must be square".into()));
    }
    let ids: Vec<(Index, u64)> = (0..n).map(|i| (i, i as u64)).collect();
    let labels = Vector::from_tuples(n, &ids)?;
    let incoming = Vector::<u64>::new(n)?;
    let min_first = SemiringDef::new(MinMonoid::<u64>::new(), binary_fn(|l: &u64, _e: &bool| *l));
    loop {
        let before = labels.extract_tuples()?;
        // incoming(j) = min over neighbors i of labels(i)
        ctx.vxm(
            &incoming,
            NoMask,
            NoAccum,
            min_first.clone(),
            &labels,
            a,
            &Descriptor::default().replace(),
        )?;
        // labels = min(labels, incoming)
        ctx.ewise_add_vector(
            &labels,
            NoMask,
            NoAccum,
            Min::<u64>::new(),
            &labels,
            &incoming,
            &Descriptor::default(),
        )?;
        if labels.extract_tuples()? == before {
            break;
        }
    }
    Ok(labels
        .extract_tuples()?
        .into_iter()
        .map(|(_, l)| l as usize)
        .collect())
}

/// Number of connected components.
pub fn num_components(ctx: &Context, a: &Matrix<bool>) -> Result<usize> {
    let mut labels = connected_components(ctx, a)?;
    labels.sort_unstable();
    labels.dedup();
    Ok(labels.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let mut t = Vec::new();
        for &(u, v) in edges {
            t.push((u, v, true));
            t.push((v, u, true));
        }
        t.sort();
        t.dedup();
        Matrix::from_tuples(n, n, &t).unwrap()
    }

    #[test]
    fn two_components() {
        let ctx = Context::blocking();
        let a = undirected(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(connected_components(&ctx, &a).unwrap(), vec![0, 0, 0, 3, 3]);
        assert_eq!(num_components(&ctx, &a).unwrap(), 2);
    }

    #[test]
    fn isolated_vertices() {
        let ctx = Context::blocking();
        let a = undirected(3, &[(1, 2)]);
        assert_eq!(connected_components(&ctx, &a).unwrap(), vec![0, 1, 1]);
        assert_eq!(num_components(&ctx, &a).unwrap(), 2);
    }

    #[test]
    fn long_chain_converges() {
        let ctx = Context::blocking();
        let edges: Vec<(usize, usize)> = (0..19).map(|i| (i, i + 1)).collect();
        let a = undirected(20, &edges);
        assert_eq!(connected_components(&ctx, &a).unwrap(), vec![0; 20]);
    }
}
