//! Scalar domains.
//!
//! A GraphBLAS collection is defined over a *domain* `D` (paper,
//! Section III-A). In this binding a domain is any type implementing
//! [`Scalar`]; the predefined C domains (`GrB_BOOL`, `GrB_INT32`,
//! `GrB_FP32`, …) map onto the corresponding Rust primitives, and
//! user-defined domains are ordinary Rust types (see
//! [`crate::algebra::set::SmallSet`] for the power-set domain of Table I).
//!
//! [`AsBool`] renders the C API's implicit cast of any built-in domain to
//! Boolean, which the paper's BC example relies on when it passes the
//! integer matrix `numsp` as a mask ("the implicit cast of numsp to
//! Boolean", Section VII-C).

/// Any type usable as the domain of a GraphBLAS collection.
///
/// The bounds are what the storage layer and the deferred-execution engine
/// need: values are cloned into result collections, moved across worker
/// threads, and captured in deferred expressions.
pub trait Scalar: Clone + Send + Sync + std::fmt::Debug + 'static {}
impl<T: Clone + Send + Sync + std::fmt::Debug + 'static> Scalar for T {}

/// Domains that carry the C API's implicit cast to Boolean, used when a
/// collection serves as a write mask: a *stored* element contributes to the
/// mask structure only if its value casts to `true`.
pub trait AsBool: Scalar {
    /// The Boolean interpretation of this value (C semantics: nonzero is
    /// true).
    fn as_bool(&self) -> bool;
}

macro_rules! as_bool_int {
    ($($t:ty),*) => {$(
        impl AsBool for $t {
            #[inline]
            fn as_bool(&self) -> bool { *self != 0 }
        }
    )*};
}
as_bool_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl AsBool for bool {
    #[inline]
    fn as_bool(&self) -> bool {
        *self
    }
}

impl AsBool for f32 {
    #[inline]
    fn as_bool(&self) -> bool {
        *self != 0.0
    }
}

impl AsBool for f64 {
    #[inline]
    fn as_bool(&self) -> bool {
        *self != 0.0
    }
}

/// Numeric domains supporting the arithmetic predefined operators of
/// Table IV (`GrB_PLUS_*`, `GrB_TIMES_*`, `GrB_MIN_*`, …).
///
/// `zero`/`one` are the identities of + and ×; `min_value`/`max_value` are
/// the identities of max and min respectively (for floats these are the
/// infinities, matching the max-plus and min-max rows of Table I, whose
/// domains are extended with ±∞).
pub trait NumScalar: Scalar + PartialOrd {
    fn zero() -> Self;
    fn one() -> Self;
    fn min_value() -> Self;
    fn max_value() -> Self;
    fn add(&self, rhs: &Self) -> Self;
    fn sub(&self, rhs: &Self) -> Self;
    fn mul(&self, rhs: &Self) -> Self;
    fn div(&self, rhs: &Self) -> Self;
    /// Additive inverse (`GrB_AINV`); wrapping for unsigned integers.
    fn neg(&self) -> Self;
    /// Absolute value (`GrB_ABS`); identity for unsigned integers.
    fn abs(&self) -> Self;
    /// Overflow-aware addition for the checked operators (execution-error
    /// path). `None` signals overflow.
    fn checked_add(&self, rhs: &Self) -> Option<Self>;
    /// Overflow-aware multiplication. `None` signals overflow.
    fn checked_mul(&self, rhs: &Self) -> Option<Self>;
}

macro_rules! num_scalar_int {
    ($abs:expr; $($t:ty),*) => {$(
        impl NumScalar for $t {
            #[inline] fn zero() -> Self { 0 }
            #[inline] fn one() -> Self { 1 }
            #[inline] fn min_value() -> Self { <$t>::MIN }
            #[inline] fn max_value() -> Self { <$t>::MAX }
            #[inline] fn add(&self, rhs: &Self) -> Self { self.wrapping_add(*rhs) }
            #[inline] fn sub(&self, rhs: &Self) -> Self { self.wrapping_sub(*rhs) }
            #[inline] fn mul(&self, rhs: &Self) -> Self { self.wrapping_mul(*rhs) }
            #[inline] fn div(&self, rhs: &Self) -> Self {
                if *rhs == 0 { 0 } else { self.wrapping_div(*rhs) }
            }
            #[inline] fn neg(&self) -> Self { self.wrapping_neg() }
            #[inline] fn abs(&self) -> Self {
                let f: fn($t) -> $t = $abs;
                f(*self)
            }
            #[inline] fn checked_add(&self, rhs: &Self) -> Option<Self> {
                <$t>::checked_add(*self, *rhs)
            }
            #[inline] fn checked_mul(&self, rhs: &Self) -> Option<Self> {
                <$t>::checked_mul(*self, *rhs)
            }
        }
    )*};
}
num_scalar_int!(|x| x.wrapping_abs(); i8, i16, i32, i64, isize);
num_scalar_int!(|x| x; u8, u16, u32, u64, usize);

macro_rules! num_scalar_float {
    ($($t:ty),*) => {$(
        impl NumScalar for $t {
            #[inline] fn zero() -> Self { 0.0 }
            #[inline] fn one() -> Self { 1.0 }
            #[inline] fn min_value() -> Self { <$t>::NEG_INFINITY }
            #[inline] fn max_value() -> Self { <$t>::INFINITY }
            #[inline] fn add(&self, rhs: &Self) -> Self { self + rhs }
            #[inline] fn sub(&self, rhs: &Self) -> Self { self - rhs }
            #[inline] fn mul(&self, rhs: &Self) -> Self { self * rhs }
            #[inline] fn div(&self, rhs: &Self) -> Self { self / rhs }
            #[inline] fn neg(&self) -> Self { -self }
            #[inline] fn abs(&self) -> Self { (*self).abs() }
            #[inline] fn checked_add(&self, rhs: &Self) -> Option<Self> {
                let r = self + rhs;
                if r.is_finite() || !(self.is_finite() && rhs.is_finite()) {
                    Some(r)
                } else {
                    None
                }
            }
            #[inline] fn checked_mul(&self, rhs: &Self) -> Option<Self> {
                let r = self * rhs;
                if r.is_finite() || !(self.is_finite() && rhs.is_finite()) {
                    Some(r)
                } else {
                    None
                }
            }
        }
    )*};
}
num_scalar_float!(f32, f64);

/// Bitwise value equality for the built-in domains, used by the storage
/// engine's symmetry probe. [`Scalar`] deliberately carries no `PartialEq`
/// bound (user domains need none), and `PartialEq` would be wrong here
/// anyway: the engine's determinism contract is *bitwise*, so `0.0` and
/// `-0.0` must compare unequal and two NaNs with the same payload equal.
/// Floats therefore compare by `to_bits`; unknown (user-defined) domains
/// return `None`, which callers must treat as "not comparable".
pub(crate) fn value_bits_eq<T: Scalar>(a: &T, b: &T) -> Option<bool> {
    use std::any::Any;
    let (a, b) = (a as &dyn Any, b as &dyn Any);
    macro_rules! probe_eq {
        ($($t:ty),*) => {$(
            if let (Some(x), Some(y)) = (a.downcast_ref::<$t>(), b.downcast_ref::<$t>()) {
                return Some(x == y);
            }
        )*};
    }
    probe_eq!(bool, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
    if let (Some(x), Some(y)) = (a.downcast_ref::<f32>(), b.downcast_ref::<f32>()) {
        return Some(x.to_bits() == y.to_bits());
    }
    if let (Some(x), Some(y)) = (a.downcast_ref::<f64>(), b.downcast_ref::<f64>()) {
        return Some(x.to_bits() == y.to_bits());
    }
    None
}

/// Lossy conversion between built-in domains (the C API's implicit domain
/// cast, surfaced explicitly in Rust). Follows C conversion rules via `as`.
pub trait CastFrom<S>: Sized {
    fn cast_from(s: &S) -> Self;
}

macro_rules! cast_from_prim {
    ($src:ty => $($dst:ty),*) => {$(
        impl CastFrom<$src> for $dst {
            #[inline]
            fn cast_from(s: &$src) -> Self { *s as $dst }
        }
    )*};
}
macro_rules! cast_from_all {
    ($($src:ty),*) => {$(
        cast_from_prim!($src => i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);
        impl CastFrom<$src> for bool {
            #[inline]
            fn cast_from(s: &$src) -> Self { *s != (0 as $src) }
        }
    )*};
}
cast_from_all!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! cast_from_float {
    ($($src:ty),*) => {$(
        cast_from_prim!($src => i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);
        impl CastFrom<$src> for bool {
            #[inline]
            fn cast_from(s: &$src) -> Self { *s != 0.0 }
        }
    )*};
}
cast_from_float!(f32, f64);

macro_rules! cast_from_bool {
    ($($dst:ty),*) => {$(
        impl CastFrom<bool> for $dst {
            #[inline]
            fn cast_from(s: &bool) -> Self { if *s { 1 as $dst } else { 0 as $dst } }
        }
    )*};
}
cast_from_bool!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

impl CastFrom<bool> for bool {
    #[inline]
    fn cast_from(s: &bool) -> Self {
        *s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_bool_follows_c_nonzero_rule() {
        assert!(3i32.as_bool());
        assert!(!0i32.as_bool());
        assert!((-1i64).as_bool());
        assert!(0.5f32.as_bool());
        assert!(!0.0f64.as_bool());
        assert!(true.as_bool());
        assert!(!false.as_bool());
        assert!(255u8.as_bool());
    }

    #[test]
    fn numeric_identities() {
        assert_eq!(i32::zero(), 0);
        assert_eq!(f64::one(), 1.0);
        assert_eq!(f32::min_value(), f32::NEG_INFINITY);
        assert_eq!(f32::max_value(), f32::INFINITY);
        assert_eq!(u8::MAX, 255);
    }

    #[test]
    fn wrapping_and_checked_arithmetic() {
        assert_eq!(i8::MAX.add(&1), i8::MIN); // wrapping default
        assert_eq!(NumScalar::checked_add(&i8::MAX, &1), None);
        assert_eq!(NumScalar::checked_mul(&100i8, &2), None);
        assert_eq!(NumScalar::checked_mul(&10i8, &2), Some(20));
        assert_eq!(1.0f64.checked_add(&2.0), Some(3.0));
        assert_eq!(f64::MAX.checked_mul(&2.0), None); // overflow to inf
                                                      // inf inputs are legal values in max-plus domains; not an overflow
        assert_eq!(f64::INFINITY.checked_add(&1.0), Some(f64::INFINITY));
    }

    #[test]
    fn neg_and_abs() {
        assert_eq!((-5i32).abs(), 5);
        assert_eq!(5u32.abs(), 5);
        assert_eq!(NumScalar::neg(&3i8), -3);
        assert_eq!(NumScalar::neg(&1u8), 255); // wrapping for unsigned
        assert_eq!(NumScalar::neg(&2.5f64), -2.5);
        assert_eq!(NumScalar::abs(&-2.5f32), 2.5);
    }

    #[test]
    fn integer_division_by_zero_is_total() {
        assert_eq!(7i32.div(&0), 0);
        assert_eq!(7i32.div(&2), 3);
    }

    #[test]
    fn value_bits_eq_is_bitwise_for_floats() {
        assert_eq!(value_bits_eq(&1i32, &1i32), Some(true));
        assert_eq!(value_bits_eq(&1u8, &2u8), Some(false));
        assert_eq!(value_bits_eq(&true, &true), Some(true));
        // bitwise, not IEEE: -0.0 != 0.0, NaN == NaN (same payload)
        assert_eq!(value_bits_eq(&0.0f64, &-0.0f64), Some(false));
        assert_eq!(value_bits_eq(&f64::NAN, &f64::NAN), Some(true));
        assert_eq!(value_bits_eq(&f32::NAN, &f32::NAN), Some(true));
        // unknown domains are not comparable
        #[derive(Clone, Debug)]
        struct Opaque;
        assert_eq!(value_bits_eq(&Opaque, &Opaque), None);
    }

    #[test]
    fn casts_follow_c_rules() {
        assert_eq!(i32::cast_from(&3.9f64), 3);
        assert_eq!(f32::cast_from(&7i32), 7.0);
        assert!(bool::cast_from(&-2i8));
        assert!(!bool::cast_from(&0.0f32));
        assert_eq!(u8::cast_from(&true), 1);
        assert_eq!(f64::cast_from(&false), 0.0);
    }
}
