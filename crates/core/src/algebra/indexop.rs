//! Index-aware unary operators (`GrB_IndexUnaryOp`) and the predefined
//! structural selectors.
//!
//! A documented **extension** beyond the paper: the released GraphBLAS
//! 2.0 specification added `GrB_IndexUnaryOp` and `GrB_select` — the
//! "keep a structural part of the collection" primitive (lower/upper
//! triangle, diagonal, value thresholds) that algorithms like the
//! Sandia triangle-count and k-truss are built from. Predefined
//! selectors mirror `GrB_TRIL`, `GrB_TRIU`, `GrB_DIAG`, `GrB_OFFDIAG`,
//! and the `GrB_VALUE*` comparators.

use std::marker::PhantomData;

use crate::index::Index;
use crate::scalar::Scalar;

/// An index-aware predicate `f(i, j, v) -> bool` used by `select`
/// (row-only uses for vectors pass `j = 0`).
pub trait IndexSelectOp<T: Scalar>: Send + Sync + Clone + 'static {
    fn keep(&self, i: Index, j: Index, v: &T) -> bool;
}

macro_rules! structural_select {
    ($(#[$doc:meta])* $name:ident, ($i:ident, $j:ident, $k:ident) -> $body:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy)]
        pub struct $name {
            /// Diagonal offset: 0 = main diagonal, +k above, -k below.
            pub k: i64,
        }

        impl $name {
            pub fn new(k: i64) -> Self {
                $name { k }
            }
        }

        impl<T: Scalar> IndexSelectOp<T> for $name {
            #[inline]
            fn keep(&self, $i: Index, $j: Index, _v: &T) -> bool {
                let $k = self.k;
                let ($i, $j) = ($i as i64, $j as i64);
                $body
            }
        }
    };
}

structural_select!(
    /// `GrB_TRIL`: keep entries on or below diagonal `k`.
    Tril, (i, j, k) -> j - i <= k
);
structural_select!(
    /// `GrB_TRIU`: keep entries on or above diagonal `k`.
    Triu, (i, j, k) -> j - i >= k
);
structural_select!(
    /// `GrB_DIAG`: keep entries exactly on diagonal `k`.
    Diag, (i, j, k) -> j - i == k
);
structural_select!(
    /// `GrB_OFFDIAG`: keep entries off diagonal `k`.
    OffDiag, (i, j, k) -> j - i != k
);

macro_rules! value_select {
    ($(#[$doc:meta])* $name:ident, ($v:ident, $t:ident) -> $body:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy)]
        pub struct $name<T>(pub T);

        impl<T: Scalar + PartialOrd> IndexSelectOp<T> for $name<T> {
            #[inline]
            fn keep(&self, _i: Index, _j: Index, $v: &T) -> bool {
                let $t = &self.0;
                $body
            }
        }
    };
}

value_select!(
    /// `GrB_VALUEGT`: keep entries with `v > thunk`.
    ValueGt, (v, t) -> v > t
);
value_select!(
    /// `GrB_VALUEGE`: keep entries with `v >= thunk`.
    ValueGe, (v, t) -> v >= t
);
value_select!(
    /// `GrB_VALUELT`: keep entries with `v < thunk`.
    ValueLt, (v, t) -> v < t
);
value_select!(
    /// `GrB_VALUELE`: keep entries with `v <= thunk`.
    ValueLe, (v, t) -> v <= t
);
value_select!(
    /// `GrB_VALUEEQ`: keep entries with `v == thunk`.
    ValueEq, (v, t) -> v == t
);
value_select!(
    /// `GrB_VALUENE`: keep entries with `v != thunk`.
    ValueNe, (v, t) -> v != t
);

/// A selector from a closure (`GrB_IndexUnaryOp_new`).
pub struct SelectFn<T, F> {
    f: F,
    _pd: PhantomData<fn() -> T>,
}

impl<T, F: Clone> Clone for SelectFn<T, F> {
    fn clone(&self) -> Self {
        SelectFn {
            f: self.f.clone(),
            _pd: PhantomData,
        }
    }
}

impl<T, F> IndexSelectOp<T> for SelectFn<T, F>
where
    T: Scalar,
    F: Fn(Index, Index, &T) -> bool + Send + Sync + Clone + 'static,
{
    #[inline]
    fn keep(&self, i: Index, j: Index, v: &T) -> bool {
        (self.f)(i, j, v)
    }
}

/// Wrap a closure `f(i, j, &v) -> bool` as a select operator.
pub fn select_fn<T, F>(f: F) -> SelectFn<T, F>
where
    T: Scalar,
    F: Fn(Index, Index, &T) -> bool + Send + Sync + Clone + 'static,
{
    SelectFn {
        f,
        _pd: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangles_and_diagonals() {
        let tril = Tril::new(0);
        assert!(IndexSelectOp::<i32>::keep(&tril, 2, 1, &0));
        assert!(IndexSelectOp::<i32>::keep(&tril, 2, 2, &0));
        assert!(!IndexSelectOp::<i32>::keep(&tril, 1, 2, &0));
        let tril_m1 = Tril::new(-1); // strictly below
        assert!(!IndexSelectOp::<i32>::keep(&tril_m1, 2, 2, &0));
        assert!(IndexSelectOp::<i32>::keep(&tril_m1, 3, 1, &0));
        let triu = Triu::new(1); // strictly above
        assert!(IndexSelectOp::<i32>::keep(&triu, 0, 1, &0));
        assert!(!IndexSelectOp::<i32>::keep(&triu, 1, 1, &0));
        let diag = Diag::new(0);
        assert!(IndexSelectOp::<i32>::keep(&diag, 3, 3, &0));
        assert!(!IndexSelectOp::<i32>::keep(&diag, 3, 4, &0));
        let off = OffDiag::new(0);
        assert!(!IndexSelectOp::<i32>::keep(&off, 3, 3, &0));
        assert!(IndexSelectOp::<i32>::keep(&off, 3, 4, &0));
    }

    #[test]
    fn value_thresholds() {
        assert!(ValueGt(5).keep(0, 0, &7));
        assert!(!ValueGt(5).keep(0, 0, &5));
        assert!(ValueGe(5).keep(0, 0, &5));
        assert!(ValueLt(5.0).keep(0, 0, &4.5));
        assert!(ValueLe(5).keep(0, 0, &5));
        assert!(ValueEq(3).keep(0, 0, &3));
        assert!(ValueNe(3).keep(0, 0, &4));
    }

    #[test]
    fn closure_selector() {
        let checker = select_fn(|i: Index, j: Index, v: &i32| (i + j).is_multiple_of(2) && *v > 0);
        assert!(checker.keep(1, 1, &5));
        assert!(!checker.keep(1, 2, &5));
        assert!(!checker.keep(1, 1, &-5));
    }
}
