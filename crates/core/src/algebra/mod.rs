//! The algebraic objects of the GraphBLAS (paper, Section III-B;
//! Figure 1): unary and binary operators, monoids, and semirings.

pub mod binary;
pub mod indexop;
pub mod monoid;
pub mod semiring;
pub mod set;
pub mod udf;
pub mod unary;

pub use binary::{binary_fn, BinaryFn, BinaryOp};
pub use monoid::{Monoid, MonoidDef};
pub use semiring::{Semiring, SemiringDef};
pub use udf::{UdfBinary, UdfMonoid, UdfSemiring, UdfTypeId, UdfUnary, UdfValue};
pub use unary::{unary_fn, UnaryFn, UnaryOp};
