//! GraphBLAS unary operators (paper, Section III-B; Table IV lists
//! `GrB_MINV_FP32` and `GrB_IDENTITY_BOOL`).
//!
//! A unary operator is `F_u = <D1, D2, f>` with `f : D1 → D2`. The
//! betweenness-centrality example uses `GrB_IDENTITY_BOOL` to cast the
//! integer frontier to Booleans (Fig. 3 line 41) and `GrB_MINV_FP32` for
//! the element-wise inverse of the path counts (line 57).

use std::marker::PhantomData;

use crate::scalar::{CastFrom, NumScalar, Scalar};

/// A GraphBLAS unary operator `f : D1 → D2`.
pub trait UnaryOp<D1: Scalar, D2: Scalar>: Send + Sync + Clone + 'static {
    fn apply(&self, x: &D1) -> D2;
}

macro_rules! zst_unop {
    ($(#[$doc:meta])* $name:ident<$t:ident : $bound:path> -> $out:ty, ($x:ident) -> $body:expr) => {
        $(#[$doc])*
        pub struct $name<$t>(PhantomData<fn() -> $t>);

        impl<$t> $name<$t> {
            pub const fn new() -> Self { $name(PhantomData) }
        }
        impl<$t> Default for $name<$t> {
            fn default() -> Self { Self::new() }
        }
        impl<$t> Clone for $name<$t> {
            fn clone(&self) -> Self { *self }
        }
        impl<$t> Copy for $name<$t> {}
        impl<$t> std::fmt::Debug for $name<$t> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(stringify!($name))
            }
        }

        impl<$t: $bound> UnaryOp<$t, $out> for $name<$t> {
            #[inline]
            fn apply(&self, $x: &$t) -> $out {
                $body
            }
        }
    };
}

zst_unop!(
    /// `GrB_IDENTITY_T`: returns its input unchanged.
    Identity<T: Scalar> -> T, (x) -> x.clone()
);
zst_unop!(
    /// `GrB_AINV_T`: additive inverse, `-x`.
    Ainv<T: NumScalar> -> T, (x) -> x.neg()
);
zst_unop!(
    /// `GrB_MINV_T`: multiplicative inverse, `1/x` (the paper's
    /// `GrB_MINV_FP32`).
    Minv<T: NumScalar> -> T, (x) -> T::one().div(x)
);
zst_unop!(
    /// `GrB_ABS_T`: absolute value.
    Abs<T: NumScalar> -> T, (x) -> x.abs()
);
zst_unop!(
    /// `GxB_ONE_T`: the constant 1 of the domain, regardless of input.
    One<T: NumScalar> -> T, (x) -> { let _ = x; T::one() }
);

/// `GrB_LNOT`: logical complement of a Boolean.
#[derive(Debug, Default, Clone, Copy)]
pub struct LNot;

impl UnaryOp<bool, bool> for LNot {
    #[inline]
    fn apply(&self, x: &bool) -> bool {
        !*x
    }
}

/// Domain-conversion operator: `f(x) = (D2) x` — the implicit cast the C
/// API performs between built-in domains, surfaced as an explicit unary op.
pub struct Cast<D1, D2>(PhantomData<fn() -> (D1, D2)>);

impl<D1, D2> Cast<D1, D2> {
    pub const fn new() -> Self {
        Cast(PhantomData)
    }
}
impl<D1, D2> Default for Cast<D1, D2> {
    fn default() -> Self {
        Self::new()
    }
}
impl<D1, D2> Clone for Cast<D1, D2> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<D1, D2> Copy for Cast<D1, D2> {}

impl<D1: Scalar, D2: Scalar + CastFrom<D1>> UnaryOp<D1, D2> for Cast<D1, D2> {
    #[inline]
    fn apply(&self, x: &D1) -> D2 {
        D2::cast_from(x)
    }
}

/// A unary operator defined by a closure (`GrB_UnaryOp_new`).
pub struct UnaryFn<D1, D2, F> {
    f: F,
    _pd: PhantomData<fn() -> (D1, D2)>,
}

impl<D1, D2, F: Clone> Clone for UnaryFn<D1, D2, F> {
    fn clone(&self) -> Self {
        UnaryFn {
            f: self.f.clone(),
            _pd: PhantomData,
        }
    }
}

impl<D1, D2, F> UnaryOp<D1, D2> for UnaryFn<D1, D2, F>
where
    D1: Scalar,
    D2: Scalar,
    F: Fn(&D1) -> D2 + Send + Sync + Clone + 'static,
{
    #[inline]
    fn apply(&self, x: &D1) -> D2 {
        (self.f)(x)
    }
}

/// Wrap a closure as a GraphBLAS unary operator (`GrB_UnaryOp_new`).
pub fn unary_fn<D1, D2, F>(f: F) -> UnaryFn<D1, D2, F>
where
    D1: Scalar,
    D2: Scalar,
    F: Fn(&D1) -> D2 + Send + Sync + Clone + 'static,
{
    UnaryFn {
        f,
        _pd: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_inverse() {
        assert_eq!(Identity::<i32>::new().apply(&5), 5);
        assert_eq!(Ainv::<i32>::new().apply(&5), -5);
        assert_eq!(Minv::<f32>::new().apply(&4.0), 0.25);
        assert_eq!(Abs::<i64>::new().apply(&-9), 9);
        assert_eq!(One::<f64>::new().apply(&123.0), 1.0);
    }

    #[test]
    fn lnot() {
        assert!(!LNot.apply(&true));
        assert!(LNot.apply(&false));
    }

    #[test]
    fn cast_is_the_c_conversion() {
        let c: Cast<f64, i32> = Cast::new();
        assert_eq!(c.apply(&2.9), 2);
        let b: Cast<i32, bool> = Cast::new();
        assert!(b.apply(&-3));
        assert!(!b.apply(&0));
    }

    #[test]
    fn closure_unary() {
        let square = unary_fn(|x: &i32| x * x);
        assert_eq!(square.apply(&7), 49);
    }

    #[test]
    fn zero_sized() {
        assert_eq!(std::mem::size_of::<Minv<f32>>(), 0);
        assert_eq!(std::mem::size_of::<Cast<f64, i32>>(), 0);
    }
}
