//! Runtime-defined algebra: user-defined types and operators registered
//! at **runtime**, the C API's `GrB_Type_new` / `GrB_UnaryOp_new` /
//! `GrB_BinaryOp_new` / `GrB_Monoid_new` / `GrB_Semiring_new` surface
//! (paper §III-B; Fig. 3 lines 12/53 build the algebra the same way).
//!
//! The typed core stays monomorphized: built-in kernels compile against
//! zero-sized operator structs and never see this module. Runtime-defined
//! algebra instead rides the **erased lane** — a [`UdfValue`] is a
//! type-tagged byte payload (`memcpy`-able, exactly the C contract: the
//! library moves user values around without interpreting them), and a
//! [`UdfBinary`] applies a user closure over raw byte slices with the
//! C-style out-parameter shape `f(z, x, y)`. Because `UdfValue` satisfies
//! the blanket [`Scalar`](crate::scalar::Scalar) bound, every generic kernel (mxm, SpMSpV,
//! eWise, reduce, delta merge, tiled walks) works over it unchanged —
//! the erased lane is a new *instantiation*, not a new code path, so the
//! built-in instantiations keep their codegen and benchmarks.
//!
//! Type identity is nominal and process-global: [`register_type`] hands
//! out a fresh [`UdfTypeId`] per call, and two registrations are distinct
//! domains even with equal names and sizes — exactly the C API, where
//! each `GrB_Type_new` call mints a distinct opaque handle. Registered
//! names back error detail (`GrB_DOMAIN_MISMATCH` names both domains)
//! and the scheduler trace; they are interned for the process lifetime
//! (bounded by the number of registrations, a handful per program).

use std::cell::Cell;
use std::sync::{Arc, OnceLock, RwLock};

use crate::algebra::binary::BinaryOp;
use crate::algebra::monoid::Monoid;
use crate::algebra::semiring::Semiring;
use crate::algebra::unary::UnaryOp;
use crate::error::{Error, Result};

// ----- the type registry -----

/// Handle to a registered runtime type (`GrB_Type`). Copyable and
/// hashable; identity is the registration, not the name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UdfTypeId(u32);

struct TypeInfo {
    name: &'static str,
    size: usize,
}

/// The built-in domains are pre-registered so mixed signatures (a user
/// operator producing, say, `FP64` from two struct inputs) name their
/// built-in ends with the same machinery.
const BUILTINS: [(&str, usize); 11] = [
    ("GrB_BOOL", 1),
    ("GrB_INT8", 1),
    ("GrB_INT16", 2),
    ("GrB_INT32", 4),
    ("GrB_INT64", 8),
    ("GrB_UINT8", 1),
    ("GrB_UINT16", 2),
    ("GrB_UINT32", 4),
    ("GrB_UINT64", 8),
    ("GrB_FP32", 4),
    ("GrB_FP64", 8),
];

/// Pre-registered ids for the built-in domains, in the order of the C
/// API's predefined types.
pub const TYPE_BOOL: UdfTypeId = UdfTypeId(0);
pub const TYPE_INT8: UdfTypeId = UdfTypeId(1);
pub const TYPE_INT16: UdfTypeId = UdfTypeId(2);
pub const TYPE_INT32: UdfTypeId = UdfTypeId(3);
pub const TYPE_INT64: UdfTypeId = UdfTypeId(4);
pub const TYPE_UINT8: UdfTypeId = UdfTypeId(5);
pub const TYPE_UINT16: UdfTypeId = UdfTypeId(6);
pub const TYPE_UINT32: UdfTypeId = UdfTypeId(7);
pub const TYPE_UINT64: UdfTypeId = UdfTypeId(8);
pub const TYPE_FP32: UdfTypeId = UdfTypeId(9);
pub const TYPE_FP64: UdfTypeId = UdfTypeId(10);

fn registry() -> &'static RwLock<Vec<TypeInfo>> {
    static REGISTRY: OnceLock<RwLock<Vec<TypeInfo>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        RwLock::new(
            BUILTINS
                .iter()
                .map(|&(name, size)| TypeInfo { name, size })
                .collect(),
        )
    })
}

/// `GrB_Type_new(&type, sizeof(user_struct))`: register a user-defined
/// type with its byte size. The name appears in `GrB_DOMAIN_MISMATCH`
/// detail and the execution trace.
pub fn register_type(name: &str, size: usize) -> Result<UdfTypeId> {
    if size == 0 {
        return Err(Error::InvalidValue(format!(
            "user-defined type {name:?} must have nonzero size"
        )));
    }
    let mut reg = registry().write().unwrap();
    let id = u32::try_from(reg.len())
        .map_err(|_| Error::InvalidValue("user-defined type registry exhausted".into()))?;
    reg.push(TypeInfo {
        name: intern(name),
        size,
    });
    Ok(UdfTypeId(id))
}

/// Intern a string for the process lifetime (names of registered types
/// and operators; bounded by the number of registrations).
pub fn intern(s: &str) -> &'static str {
    Box::leak(s.to_owned().into_boxed_str())
}

impl UdfTypeId {
    /// Whether this id is one of the pre-registered built-in domains.
    pub fn is_builtin(self) -> bool {
        (self.0 as usize) < BUILTINS.len()
    }

    /// Registered name (the built-ins carry their C names).
    pub fn name(self) -> &'static str {
        registry().read().unwrap()[self.0 as usize].name
    }

    /// Registered byte size.
    pub fn size(self) -> usize {
        registry().read().unwrap()[self.0 as usize].size
    }
}

// ----- values -----

/// A value of a runtime-registered domain: a type tag plus an opaque
/// byte payload of exactly the registered size. Cloning shares the
/// payload (values are immutable once constructed, as everywhere in the
/// engine). Satisfies the blanket [`crate::scalar::Scalar`] bound, so
/// every generic kernel accepts `Matrix<UdfValue>` directly.
#[derive(Clone, PartialEq, PartialOrd)]
pub struct UdfValue {
    ty: UdfTypeId,
    bytes: Arc<[u8]>,
}

impl UdfValue {
    /// Wrap `bytes` as a value of `ty`; the length must equal the
    /// registered size (the C API reads exactly `sizeof(type)` bytes).
    pub fn new(ty: UdfTypeId, bytes: &[u8]) -> Result<Self> {
        if bytes.len() != ty.size() {
            return Err(Error::InvalidValue(format!(
                "value of {} bytes for type {} of size {}",
                bytes.len(),
                ty.name(),
                ty.size()
            )));
        }
        Ok(UdfValue {
            ty,
            bytes: bytes.into(),
        })
    }

    pub(crate) fn from_boxed(ty: UdfTypeId, bytes: Box<[u8]>) -> Self {
        debug_assert_eq!(bytes.len(), ty.size());
        UdfValue {
            ty,
            bytes: bytes.into(),
        }
    }

    pub fn ty(&self) -> UdfTypeId {
        self.ty
    }

    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl std::fmt::Debug for UdfValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(0x", self.ty.name())?;
        for b in self.bytes.iter() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

// ----- operators -----

type RawUnaryFn = Arc<dyn Fn(&mut [u8], &[u8]) + Send + Sync>;
type RawBinaryFn = Arc<dyn Fn(&mut [u8], &[u8], &[u8]) + Send + Sync>;

/// `GrB_UnaryOp_new`: a user function `f : D1 → D2` over raw bytes, in
/// the C out-parameter shape `f(z, x)`. The output buffer arrives
/// zeroed at the registered size of `d2`.
#[derive(Clone)]
pub struct UdfUnary {
    name: &'static str,
    d1: UdfTypeId,
    d2: UdfTypeId,
    f: RawUnaryFn,
}

impl UdfUnary {
    pub fn new(
        name: &str,
        d1: UdfTypeId,
        d2: UdfTypeId,
        f: impl Fn(&mut [u8], &[u8]) + Send + Sync + 'static,
    ) -> Self {
        UdfUnary {
            name: intern(name),
            d1,
            d2,
            f: Arc::new(f),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }
    pub fn d1(&self) -> UdfTypeId {
        self.d1
    }
    pub fn d2(&self) -> UdfTypeId {
        self.d2
    }

    /// Apply over raw payloads (domain checking is the caller's; the
    /// dispatch layer has already verified the operand domains).
    pub fn apply_raw(&self, x: &[u8]) -> Box<[u8]> {
        note_udf(self.name);
        let mut out = vec![0u8; self.d2.size()].into_boxed_slice();
        (self.f)(&mut out, x);
        out
    }
}

impl std::fmt::Debug for UdfUnary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "UdfUnary({}: {} -> {})",
            self.name,
            self.d1.name(),
            self.d2.name()
        )
    }
}

impl UnaryOp<UdfValue, UdfValue> for UdfUnary {
    fn apply(&self, x: &UdfValue) -> UdfValue {
        debug_assert_eq!(x.ty, self.d1, "domain confusion past the API checks");
        UdfValue::from_boxed(self.d2, self.apply_raw(&x.bytes))
    }
}

/// `GrB_BinaryOp_new`: a user function `⊙ : D1 × D2 → D3` over raw
/// bytes, in the C out-parameter shape `f(z, x, y)`.
#[derive(Clone)]
pub struct UdfBinary {
    name: &'static str,
    d1: UdfTypeId,
    d2: UdfTypeId,
    d3: UdfTypeId,
    f: RawBinaryFn,
}

impl UdfBinary {
    pub fn new(
        name: &str,
        d1: UdfTypeId,
        d2: UdfTypeId,
        d3: UdfTypeId,
        f: impl Fn(&mut [u8], &[u8], &[u8]) + Send + Sync + 'static,
    ) -> Self {
        UdfBinary {
            name: intern(name),
            d1,
            d2,
            d3,
            f: Arc::new(f),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }
    pub fn d1(&self) -> UdfTypeId {
        self.d1
    }
    pub fn d2(&self) -> UdfTypeId {
        self.d2
    }
    pub fn d3(&self) -> UdfTypeId {
        self.d3
    }

    /// Apply over raw payloads.
    pub fn apply_raw(&self, x: &[u8], y: &[u8]) -> Box<[u8]> {
        note_udf(self.name);
        let mut out = vec![0u8; self.d3.size()].into_boxed_slice();
        (self.f)(&mut out, x, y);
        out
    }
}

impl std::fmt::Debug for UdfBinary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "UdfBinary({}: {} x {} -> {})",
            self.name,
            self.d1.name(),
            self.d2.name(),
            self.d3.name()
        )
    }
}

impl BinaryOp<UdfValue, UdfValue, UdfValue> for UdfBinary {
    fn apply(&self, x: &UdfValue, y: &UdfValue) -> UdfValue {
        debug_assert_eq!(x.ty, self.d1, "domain confusion past the API checks");
        debug_assert_eq!(y.ty, self.d2, "domain confusion past the API checks");
        UdfValue::from_boxed(self.d3, self.apply_raw(&x.bytes, &y.bytes))
    }
}

/// `GrB_Monoid_new`: a uniform-domain [`UdfBinary`] plus identity bytes,
/// with an optional **terminal** (absorbing) value — a SuiteSparse-style
/// extension letting reductions exit early once the fold can no longer
/// change (e.g. `false` for LAND, `+∞`-free min over saturated domains).
#[derive(Clone, Debug)]
pub struct UdfMonoid {
    op: UdfBinary,
    identity: Arc<[u8]>,
    terminal: Option<Arc<[u8]>>,
}

impl UdfMonoid {
    pub fn new(op: UdfBinary, identity: &[u8], terminal: Option<&[u8]>) -> Result<Self> {
        if op.d1 != op.d3 || op.d2 != op.d3 {
            return Err(Error::DomainMismatch(format!(
                "monoid operator {} has domains {} x {} -> {}; a monoid requires one domain",
                op.name,
                op.d1.name(),
                op.d2.name(),
                op.d3.name()
            )));
        }
        for (role, bytes) in
            std::iter::once(("identity", identity)).chain(terminal.iter().map(|t| ("terminal", *t)))
        {
            if bytes.len() != op.d3.size() {
                return Err(Error::InvalidValue(format!(
                    "monoid {role} of {} bytes for domain {} of size {}",
                    bytes.len(),
                    op.d3.name(),
                    op.d3.size()
                )));
            }
        }
        Ok(UdfMonoid {
            op,
            identity: identity.into(),
            terminal: terminal.map(Into::into),
        })
    }

    /// The single domain `D` of the monoid.
    pub fn domain(&self) -> UdfTypeId {
        self.op.d3
    }

    pub fn op(&self) -> &UdfBinary {
        &self.op
    }

    pub fn identity_bytes(&self) -> &[u8] {
        &self.identity
    }

    pub fn terminal_bytes(&self) -> Option<&[u8]> {
        self.terminal.as_deref()
    }
}

impl BinaryOp<UdfValue, UdfValue, UdfValue> for UdfMonoid {
    fn apply(&self, x: &UdfValue, y: &UdfValue) -> UdfValue {
        self.op.apply(x, y)
    }
}

impl Monoid<UdfValue> for UdfMonoid {
    fn identity(&self) -> UdfValue {
        UdfValue {
            ty: self.op.d3,
            bytes: self.identity.clone(),
        }
    }

    fn is_terminal(&self, v: &UdfValue) -> bool {
        self.terminal
            .as_deref()
            .is_some_and(|t| t == v.bytes.as_ref())
    }
}

/// `GrB_Semiring_new`: a [`UdfMonoid`] ⊕ plus a [`UdfBinary`] ⊗ whose
/// output domain is the monoid's domain. Implements the core
/// [`Semiring`] trait over [`UdfValue`], so it drops into every generic
/// kernel exactly where a Table I semiring would.
#[derive(Clone, Debug)]
pub struct UdfSemiring {
    add: UdfMonoid,
    mul: UdfBinary,
}

impl UdfSemiring {
    pub fn new(add: UdfMonoid, mul: UdfBinary) -> Result<Self> {
        if mul.d3 != add.domain() {
            return Err(Error::DomainMismatch(format!(
                "multiplicative operator {} produces {} but the additive monoid is over {}",
                mul.name,
                mul.d3.name(),
                add.domain().name()
            )));
        }
        Ok(UdfSemiring { add, mul })
    }
}

impl Semiring<UdfValue, UdfValue, UdfValue> for UdfSemiring {
    type Add = UdfMonoid;
    type Mul = UdfBinary;

    fn add(&self) -> &UdfMonoid {
        &self.add
    }

    fn mul(&self) -> &UdfBinary {
        &self.mul
    }
}

// ----- erased-lane trace note -----

thread_local! {
    static UDF_NOTE: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Note that a runtime-registered operator ran on this thread; the
/// scheduler drains the note per node into `TraceEvent::udf`. First
/// operator wins within one node (a semiring touches both ⊗ and ⊕; one
/// representative name is enough to mark the erased lane). Applications
/// inside pool-fanned row chunks may land on a chunk worker's local and
/// be dropped by that worker's next pre-compute drain — the note is an
/// attribution aid, never an under- or over-counted metric.
pub fn note_udf(name: &'static str) {
    UDF_NOTE.with(|c| {
        if c.get().is_none() {
            c.set(Some(name));
        }
    });
}

/// Drain this thread's erased-lane note (scheduler plumbing).
pub fn take_udf() -> Option<&'static str> {
    UDF_NOTE.with(Cell::take)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::monoid::Monoid;

    fn i64_bytes(v: i64) -> [u8; 8] {
        v.to_ne_bytes()
    }

    fn wrapped_i64_type() -> UdfTypeId {
        register_type("test_wrapped_i64", 8).unwrap()
    }

    fn plus_op(ty: UdfTypeId) -> UdfBinary {
        UdfBinary::new("test_plus", ty, ty, ty, |z, x, y| {
            let a = i64::from_ne_bytes(x.try_into().unwrap());
            let b = i64::from_ne_bytes(y.try_into().unwrap());
            z.copy_from_slice(&a.wrapping_add(b).to_ne_bytes());
        })
    }

    #[test]
    fn builtin_domains_are_preregistered() {
        assert!(TYPE_FP64.is_builtin());
        assert_eq!(TYPE_FP64.name(), "GrB_FP64");
        assert_eq!(TYPE_FP64.size(), 8);
        assert_eq!(TYPE_BOOL.size(), 1);
    }

    #[test]
    fn registration_is_nominal() {
        let a = register_type("test_same_name", 4).unwrap();
        let b = register_type("test_same_name", 4).unwrap();
        assert_ne!(a, b, "each registration is a distinct domain");
        assert!(!a.is_builtin());
        assert_eq!(a.name(), "test_same_name");
        assert_eq!(a.size(), 4);
    }

    #[test]
    fn zero_size_rejected() {
        assert!(register_type("test_empty", 0).is_err());
    }

    #[test]
    fn value_length_checked() {
        let ty = wrapped_i64_type();
        assert!(UdfValue::new(ty, &[0; 3]).is_err());
        let v = UdfValue::new(ty, &i64_bytes(42)).unwrap();
        assert_eq!(v.ty(), ty);
        assert_eq!(v.bytes(), &i64_bytes(42));
        assert_eq!(v.clone(), v);
    }

    #[test]
    fn binary_applies_user_function() {
        let ty = wrapped_i64_type();
        let op = plus_op(ty);
        let x = UdfValue::new(ty, &i64_bytes(40)).unwrap();
        let y = UdfValue::new(ty, &i64_bytes(2)).unwrap();
        let z = op.apply(&x, &y);
        assert_eq!(z.ty(), ty);
        assert_eq!(z.bytes(), &i64_bytes(42));
    }

    #[test]
    fn monoid_identity_and_terminal() {
        let ty = wrapped_i64_type();
        let m = UdfMonoid::new(plus_op(ty), &i64_bytes(0), Some(&i64_bytes(-1))).unwrap();
        assert_eq!(m.identity().bytes(), &i64_bytes(0));
        assert!(m.is_terminal(&UdfValue::new(ty, &i64_bytes(-1)).unwrap()));
        assert!(!m.is_terminal(&UdfValue::new(ty, &i64_bytes(7)).unwrap()));
        // wrong-length identity
        assert!(UdfMonoid::new(plus_op(ty), &[0; 2], None).is_err());
    }

    #[test]
    fn monoid_requires_uniform_domain() {
        let a = register_type("test_dom_a", 8).unwrap();
        let b = register_type("test_dom_b", 8).unwrap();
        let op = UdfBinary::new("test_mixed", a, a, b, |z, _, _| z.fill(0));
        let e = UdfMonoid::new(op, &[0; 8], None).unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        let msg = e.to_string();
        assert!(
            msg.contains("test_dom_a") && msg.contains("test_dom_b"),
            "{msg}"
        );
    }

    #[test]
    fn semiring_checks_mul_output_domain() {
        let ty = wrapped_i64_type();
        let other = register_type("test_other", 8).unwrap();
        let add = UdfMonoid::new(plus_op(ty), &i64_bytes(0), None).unwrap();
        let bad_mul = UdfBinary::new("test_bad_mul", ty, ty, other, |z, _, _| z.fill(0));
        let e = UdfSemiring::new(add.clone(), bad_mul).unwrap_err();
        assert_eq!(e.code_name(), "GrB_DOMAIN_MISMATCH");
        let ok = UdfSemiring::new(add, plus_op(ty)).unwrap();
        assert_eq!(ok.zero().bytes(), &i64_bytes(0));
    }

    #[test]
    fn apply_notes_the_erased_lane() {
        let ty = wrapped_i64_type();
        let _ = take_udf();
        let op = plus_op(ty);
        let x = UdfValue::new(ty, &i64_bytes(1)).unwrap();
        op.apply(&x, &x);
        assert_eq!(take_udf(), Some("test_plus"));
        assert_eq!(take_udf(), None, "drained");
    }

    #[test]
    fn unary_over_bytes() {
        let ty = wrapped_i64_type();
        let neg = UdfUnary::new("test_neg", ty, ty, |z, x| {
            let a = i64::from_ne_bytes(x.try_into().unwrap());
            z.copy_from_slice(&a.wrapping_neg().to_ne_bytes());
        });
        let v = UdfValue::new(ty, &i64_bytes(5)).unwrap();
        assert_eq!(neg.apply(&v).bytes(), &i64_bytes(-5));
    }

    #[test]
    fn generic_kernels_accept_udf_values_end_to_end() {
        // the whole point of the erased lane: Matrix<UdfValue> runs the
        // same generic kernels as Matrix<f64>
        use crate::prelude::*;
        let ty = wrapped_i64_type();
        let sr = UdfSemiring::new(
            UdfMonoid::new(plus_op(ty), &i64_bytes(0), None).unwrap(),
            UdfBinary::new("test_times", ty, ty, ty, |z, x, y| {
                let a = i64::from_ne_bytes(x.try_into().unwrap());
                let b = i64::from_ne_bytes(y.try_into().unwrap());
                z.copy_from_slice(&a.wrapping_mul(b).to_ne_bytes());
            }),
        )
        .unwrap();
        let uv = |v: i64| UdfValue::new(ty, &i64_bytes(v)).unwrap();
        let ctx = Context::nonblocking_parallel();
        let a = Matrix::<UdfValue>::new(2, 2).unwrap();
        a.set(0, 0, uv(2)).unwrap();
        a.set(0, 1, uv(3)).unwrap();
        a.set(1, 1, uv(4)).unwrap();
        let u = Vector::<UdfValue>::new(2).unwrap();
        u.set(0, uv(10)).unwrap();
        u.set(1, uv(100)).unwrap();
        let w = Vector::<UdfValue>::new(2).unwrap();
        let d = Descriptor::default();
        ctx.mxv(&w, NoMask, NoAccum, sr.clone(), &a, &u, &d)
            .unwrap();
        ctx.wait().unwrap();
        // w[0] = 2*10 + 3*100 = 320, w[1] = 4*100 = 400
        let got = w.extract_tuples().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (0, uv(320)));
        assert_eq!(got[1], (1, uv(400)));
        // scalar reduce through the monoid
        let s = ctx
            .reduce_vector_to_scalar(
                UdfMonoid::new(plus_op(ty), &i64_bytes(0), None).unwrap(),
                &w,
            )
            .unwrap();
        assert_eq!(s, uv(720));
    }
}
