//! GraphBLAS monoids (paper, Section III-B; Figure 1).
//!
//! A monoid `M = <D, ⊙, 0>` is a binary operator with a single domain, an
//! associative operation, and an identity element. The paper constructs
//! monoids from binary operators plus an identity (`GrB_Monoid_new`, used
//! at Fig. 3 lines 10, 49, 51); [`MonoidDef`] mirrors that constructor, and
//! the common monoids are predefined as zero-sized types.

use std::marker::PhantomData;

use crate::algebra::binary::{BinaryOp, LAnd, LOr, LXnor, LXor, Max, Min, Plus, Times};
use crate::scalar::{NumScalar, Scalar};

/// A GraphBLAS monoid: an associative binary operator `D × D → D` together
/// with its identity element.
///
/// Every monoid *is* a binary operator (supertrait), matching Figure 1's
/// class hierarchy where `Monoid` specializes the binary operator with a
/// single domain and an identity.
pub trait Monoid<T: Scalar>: BinaryOp<T, T, T> {
    /// The identity element **0** of the monoid (not necessarily the
    /// number zero: `-∞` for max-plus, `∞` for min-max, `false` for lor).
    fn identity(&self) -> T;

    /// Whether `v` is a **terminal** (absorbing) element: `v ⊙ x = v`
    /// for every `x`. Reduction kernels may stop folding once the
    /// accumulator turns terminal — the result cannot change, so the
    /// early exit is invisible to the bitwise-determinism contract.
    /// Runtime-registered monoids (`algebra::udf`) opt in; the
    /// predefined monoids keep the `false` default.
    fn is_terminal(&self, _v: &T) -> bool {
        false
    }
}

/// A monoid built from a binary operator and an explicit identity element
/// (`GrB_Monoid_new`).
pub struct MonoidDef<T, F> {
    op: F,
    id: T,
}

impl<T: Clone, F: Clone> Clone for MonoidDef<T, F> {
    fn clone(&self) -> Self {
        MonoidDef {
            op: self.op.clone(),
            id: self.id.clone(),
        }
    }
}

impl<T: Scalar, F: BinaryOp<T, T, T>> MonoidDef<T, F> {
    /// `GrB_Monoid_new(&monoid, domain, op, identity)`.
    ///
    /// The C API cannot verify associativity or that `identity` is a true
    /// identity; neither can we. The contract is the caller's, exactly as
    /// in the specification.
    pub fn new(op: F, identity: T) -> Self {
        MonoidDef { op, id: identity }
    }
}

impl<T: Scalar, F: BinaryOp<T, T, T>> BinaryOp<T, T, T> for MonoidDef<T, F> {
    #[inline]
    fn apply(&self, x: &T, y: &T) -> T {
        self.op.apply(x, y)
    }

    fn poll_error(&self) -> Option<crate::error::Error> {
        self.op.poll_error()
    }
}

impl<T: Scalar, F: BinaryOp<T, T, T>> Monoid<T> for MonoidDef<T, F> {
    #[inline]
    fn identity(&self) -> T {
        self.id.clone()
    }
}

macro_rules! predefined_monoid {
    ($(#[$doc:meta])* $name:ident<$t:ident : $bound:path>, $op:ty, $id:expr) => {
        $(#[$doc])*
        pub struct $name<$t>(PhantomData<fn() -> $t>);

        impl<$t> $name<$t> {
            pub const fn new() -> Self { $name(PhantomData) }
        }
        impl<$t> Default for $name<$t> {
            fn default() -> Self { Self::new() }
        }
        impl<$t> Clone for $name<$t> {
            fn clone(&self) -> Self { *self }
        }
        impl<$t> Copy for $name<$t> {}
        impl<$t> std::fmt::Debug for $name<$t> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(stringify!($name))
            }
        }

        impl<$t: $bound> BinaryOp<$t, $t, $t> for $name<$t> {
            #[inline]
            fn apply(&self, x: &$t, y: &$t) -> $t {
                <$op>::new().apply(x, y)
            }
        }

        impl<$t: $bound> Monoid<$t> for $name<$t> {
            #[inline]
            fn identity(&self) -> $t {
                $id
            }
        }
    };
}

predefined_monoid!(
    /// `GrB_PLUS_MONOID_T`: `<T, +, 0>` — the ⊕ of standard arithmetic
    /// (Table I row 1).
    PlusMonoid<T: NumScalar>, Plus<T>, T::zero()
);
predefined_monoid!(
    /// `GrB_TIMES_MONOID_T`: `<T, ×, 1>`.
    TimesMonoid<T: NumScalar>, Times<T>, T::one()
);
predefined_monoid!(
    /// `GrB_MIN_MONOID_T`: `<T, min, +∞>` — the ⊕ of min-plus and min-max
    /// algebras (Table I rows 2–3 use max/min with infinities as **0**).
    MinMonoid<T: NumScalar>, Min<T>, T::max_value()
);
predefined_monoid!(
    /// `GrB_MAX_MONOID_T`: `<T, max, -∞>`.
    MaxMonoid<T: NumScalar>, Max<T>, T::min_value()
);

macro_rules! predefined_bool_monoid {
    ($(#[$doc:meta])* $name:ident, $op:ty, $id:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $name;

        impl BinaryOp<bool, bool, bool> for $name {
            #[inline]
            fn apply(&self, x: &bool, y: &bool) -> bool {
                <$op>::default().apply(x, y)
            }
        }

        impl Monoid<bool> for $name {
            #[inline]
            fn identity(&self) -> bool {
                $id
            }
        }
    };
}

predefined_bool_monoid!(
    /// `GrB_LOR_MONOID`: `<bool, ∨, false>`.
    LOrMonoid, LOr, false
);
predefined_bool_monoid!(
    /// `GrB_LAND_MONOID`: `<bool, ∧, true>`.
    LAndMonoid, LAnd, true
);
predefined_bool_monoid!(
    /// `GrB_LXOR_MONOID`: `<bool, ⊻, false>` — the ⊕ of GF2 (Table I
    /// row 4).
    LXorMonoid, LXor, false
);
predefined_bool_monoid!(
    /// `GrB_LXNOR_MONOID`: `<bool, ==, true>`.
    LXnorMonoid, LXnor, true
);

#[cfg(test)]
mod tests {
    use super::*;

    fn check_identity<T: Scalar + PartialEq, M: Monoid<T>>(m: &M, samples: &[T]) {
        let id = m.identity();
        for s in samples {
            assert!(m.apply(s, &id) == *s, "right identity failed");
            assert!(m.apply(&id, s) == *s, "left identity failed");
        }
    }

    fn check_associative<T: Scalar + PartialEq, M: Monoid<T>>(m: &M, samples: &[T]) {
        for a in samples {
            for b in samples {
                for c in samples {
                    let l = m.apply(&m.apply(a, b), c);
                    let r = m.apply(a, &m.apply(b, c));
                    assert!(l == r, "associativity failed");
                }
            }
        }
    }

    #[test]
    fn numeric_monoid_laws() {
        let ints = [-3i32, 0, 1, 7, 100];
        check_identity(&PlusMonoid::<i32>::new(), &ints);
        check_identity(&TimesMonoid::<i32>::new(), &ints);
        check_identity(&MinMonoid::<i32>::new(), &ints);
        check_identity(&MaxMonoid::<i32>::new(), &ints);
        check_associative(&PlusMonoid::<i32>::new(), &ints);
        check_associative(&MinMonoid::<i32>::new(), &ints);
        check_associative(&MaxMonoid::<i32>::new(), &ints);
    }

    #[test]
    fn float_min_max_identities_are_infinities() {
        check_identity(&MinMonoid::<f64>::new(), &[-1.5, 0.0, 3.25]);
        check_identity(&MaxMonoid::<f64>::new(), &[-1.5, 0.0, 3.25]);
        assert_eq!(MinMonoid::<f64>::new().identity(), f64::INFINITY);
        assert_eq!(MaxMonoid::<f64>::new().identity(), f64::NEG_INFINITY);
    }

    #[test]
    fn boolean_monoid_laws() {
        let bools = [false, true];
        check_identity(&LOrMonoid, &bools);
        check_identity(&LAndMonoid, &bools);
        check_identity(&LXorMonoid, &bools);
        check_identity(&LXnorMonoid, &bools);
        check_associative(&LXorMonoid, &bools);
        check_associative(&LOrMonoid, &bools);
    }

    #[test]
    fn monoid_def_mirrors_grb_monoid_new() {
        // Fig. 3 line 10: GrB_Monoid_new(&Int32Add, GrB_INT32, GrB_PLUS_INT32, 0)
        let int32_add = MonoidDef::new(Plus::<i32>::new(), 0);
        check_identity(&int32_add, &[-5, 0, 9]);
        assert_eq!(int32_add.apply(&2, &3), 5);
        assert_eq!(int32_add.identity(), 0);
    }

    #[test]
    fn monoid_def_propagates_checked_errors() {
        use crate::algebra::binary::CheckedPlus;
        let m = MonoidDef::new(CheckedPlus::<i8>::new(), 0);
        assert!(m.poll_error().is_none());
        m.apply(&120, &120);
        assert!(m.poll_error().is_some());
    }
}
