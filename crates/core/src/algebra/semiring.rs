//! GraphBLAS semirings (paper, Section III-B; Figure 1; Table I).
//!
//! A GraphBLAS semiring `S = <D1, D2, D3, ⊕, ⊗, 0>` combines an additive
//! monoid `<D3, ⊕, 0>` with a multiplicative binary operator
//! `⊗ : D1 × D2 → D3`. It differs from the textbook algebraic semiring in
//! that (i) the inputs may come from different domains and (ii) no
//! multiplicative identity is required (Figure 1's caption).
//!
//! [`SemiringDef::new`] mirrors `GrB_Semiring_new(monoid, binop)`
//! (Fig. 3 lines 12, 53), and the constructors at the bottom provide every
//! Table I semiring plus the named graph semirings used by the algorithms
//! crate.

use crate::algebra::binary::{BinaryOp, First, LAnd, Pair, Plus, Second, Times};
use crate::algebra::monoid::{LOrMonoid, LXorMonoid, MaxMonoid, MinMonoid, Monoid, PlusMonoid};
use crate::algebra::set::{SetIntersect, SetUnionMonoid};
use crate::scalar::{NumScalar, Scalar};

/// A GraphBLAS semiring `<D1, D2, D3, ⊕, ⊗, 0>`.
///
/// Decomposes into its associated monoid and binary operator exactly as in
/// the paper: "for a GraphBLAS semiring there is always an associated
/// monoid `<D3, ⊕, 0>` and an associated binary operator
/// `<D1, D2, D3, ⊗>`".
pub trait Semiring<D1: Scalar, D2: Scalar, D3: Scalar>: Send + Sync + Clone + 'static {
    /// The additive monoid `<D3, ⊕, 0>`.
    type Add: Monoid<D3>;
    /// The multiplicative operator `⊗ : D1 × D2 → D3`.
    type Mul: BinaryOp<D1, D2, D3>;

    fn add(&self) -> &Self::Add;
    fn mul(&self) -> &Self::Mul;

    /// The **0** element: the identity of ⊕ (and annihilator of ⊗).
    #[inline]
    fn zero(&self) -> D3 {
        self.add().identity()
    }
}

/// A semiring assembled from a monoid and a binary operator
/// (`GrB_Semiring_new`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SemiringDef<M, F> {
    add: M,
    mul: F,
}

impl<M, F> SemiringDef<M, F> {
    /// `GrB_Semiring_new(&semiring, add_monoid, mul_op)`.
    pub fn new(add: M, mul: F) -> Self {
        SemiringDef { add, mul }
    }

    /// Recover the constituent monoid and operator (Figure 1's
    /// decomposition).
    pub fn into_parts(self) -> (M, F) {
        (self.add, self.mul)
    }
}

impl<D1, D2, D3, M, F> Semiring<D1, D2, D3> for SemiringDef<M, F>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    M: Monoid<D3> + Clone + 'static,
    F: BinaryOp<D1, D2, D3>,
{
    type Add = M;
    type Mul = F;

    #[inline]
    fn add(&self) -> &M {
        &self.add
    }

    #[inline]
    fn mul(&self) -> &F {
        &self.mul
    }
}

// ----- Table I semirings -----

/// Standard arithmetic: `<T, +, ×, 0>` (Table I row 1). The `Int32AddMul`
/// and `FP32AddMul` semirings of the BC example.
pub type PlusTimes<T> = SemiringDef<PlusMonoid<T>, Times<T>>;

/// Constructor for the arithmetic semiring.
pub fn plus_times<T: NumScalar>() -> PlusTimes<T> {
    SemiringDef::new(PlusMonoid::new(), Times::new())
}

/// Max-plus algebra: `<T ∪ {-∞}, max, +, -∞>` (Table I row 2); longest /
/// critical paths.
pub type MaxPlus<T> = SemiringDef<MaxMonoid<T>, Plus<T>>;

pub fn max_plus<T: NumScalar>() -> MaxPlus<T> {
    SemiringDef::new(MaxMonoid::new(), Plus::new())
}

/// Min-max algebra: `<T ∪ {∞}, min, max, ∞>` (Table I row 3); minimax /
/// bottleneck paths.
pub type MinMax<T> = SemiringDef<MinMonoid<T>, crate::algebra::binary::Max<T>>;

pub fn min_max<T: NumScalar>() -> MinMax<T> {
    SemiringDef::new(MinMonoid::new(), crate::algebra::binary::Max::new())
}

/// Galois field GF(2): `<bool, xor, and, false>` (Table I row 4); path
/// parity.
pub type XorAnd = SemiringDef<LXorMonoid, LAnd>;

pub fn xor_and() -> XorAnd {
    SemiringDef::new(LXorMonoid, LAnd)
}

/// Power-set algebra: `<P(Z), ∪, ∩, ∅>` (Table I row 5).
pub type UnionIntersect = SemiringDef<SetUnionMonoid, SetIntersect>;

pub fn union_intersect() -> UnionIntersect {
    SemiringDef::new(SetUnionMonoid, SetIntersect)
}

// ----- additional named graph semirings -----

/// Min-plus (tropical): `<T ∪ {∞}, min, +, ∞>`; shortest paths.
pub type MinPlus<T> = SemiringDef<MinMonoid<T>, Plus<T>>;

pub fn min_plus<T: NumScalar>() -> MinPlus<T> {
    SemiringDef::new(MinMonoid::new(), Plus::new())
}

/// Boolean reachability: `<bool, lor, land, false>`; BFS frontier
/// expansion on unweighted graphs.
pub type LorLand = SemiringDef<LOrMonoid, LAnd>;

pub fn lor_land() -> LorLand {
    SemiringDef::new(LOrMonoid, LAnd)
}

/// `plus_pair`: `⊗` ignores values and returns 1 — counts intersections
/// (triangle counting).
pub type PlusPair<T> = SemiringDef<PlusMonoid<T>, Pair<T, T, T>>;

pub fn plus_pair<T: NumScalar>() -> PlusPair<T> {
    SemiringDef::new(PlusMonoid::new(), Pair::new())
}

/// `min_first`: `⊗(a, b) = a` under min — propagates the row value
/// (parent pointers in BFS trees).
pub type MinFirst<T> = SemiringDef<MinMonoid<T>, First<T, T>>;

pub fn min_first<T: NumScalar>() -> MinFirst<T> {
    SemiringDef::new(MinMonoid::new(), First::new())
}

/// `min_second`: `⊗(a, b) = b` under min.
pub type MinSecond<T> = SemiringDef<MinMonoid<T>, Second<T, T>>;

pub fn min_second<T: NumScalar>() -> MinSecond<T> {
    SemiringDef::new(MinMonoid::new(), Second::new())
}

/// `plus_first`: `⊗(a, b) = a` under +, i.e. `A ⊕.first B` multiplies by
/// the pattern of `B` only.
pub type PlusFirst<T> = SemiringDef<PlusMonoid<T>, First<T, T>>;

pub fn plus_first<T: NumScalar>() -> PlusFirst<T> {
    SemiringDef::new(PlusMonoid::new(), First::new())
}

/// `plus_second`: `⊗(a, b) = b` under +.
pub type PlusSecond<T> = SemiringDef<PlusMonoid<T>, Second<T, T>>;

pub fn plus_second<T: NumScalar>() -> PlusSecond<T> {
    SemiringDef::new(PlusMonoid::new(), Second::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::set::SmallSet;

    #[test]
    fn semiring_decomposes_into_monoid_and_binop() {
        // Figure 1: semiring ↔ (monoid, binary op) round trip.
        let s = plus_times::<i32>();
        assert_eq!(s.zero(), 0);
        assert_eq!(s.add().identity(), 0);
        assert_eq!(s.mul().apply(&6, &7), 42);
        let (m, f) = s.into_parts();
        let rebuilt = SemiringDef::new(m, f);
        assert_eq!(Semiring::<i32, i32, i32>::zero(&rebuilt), 0);
    }

    #[test]
    fn table1_arithmetic() {
        let s = plus_times::<f64>();
        assert_eq!(s.add().apply(&1.5, &2.0), 3.5);
        assert_eq!(s.mul().apply(&1.5, &2.0), 3.0);
        assert_eq!(s.zero(), 0.0);
    }

    #[test]
    fn table1_max_plus() {
        let s = max_plus::<f64>();
        assert_eq!(s.zero(), f64::NEG_INFINITY);
        assert_eq!(s.add().apply(&3.0, &5.0), 5.0);
        assert_eq!(s.mul().apply(&3.0, &5.0), 8.0);
        // 0 annihilates ⊗: -∞ + x = -∞
        assert_eq!(s.mul().apply(&s.zero(), &5.0), f64::NEG_INFINITY);
    }

    #[test]
    fn table1_min_max() {
        let s = min_max::<f64>();
        assert_eq!(s.zero(), f64::INFINITY);
        assert_eq!(s.add().apply(&3.0, &5.0), 3.0);
        assert_eq!(s.mul().apply(&3.0, &5.0), 5.0);
    }

    #[test]
    fn table1_gf2() {
        let s = xor_and();
        assert!(!s.zero());
        assert!(s.add().apply(&true, &false));
        assert!(!s.add().apply(&true, &true)); // xor
        assert!(s.mul().apply(&true, &true));
        assert!(!s.mul().apply(&true, &false));
    }

    #[test]
    fn table1_power_set() {
        let s = union_intersect();
        assert_eq!(s.zero(), SmallSet::empty());
        let a = SmallSet::from(&[1u32, 2][..]);
        let b = SmallSet::from(&[2u32, 3][..]);
        assert_eq!(s.add().apply(&a, &b), SmallSet::from(&[1u32, 2, 3][..]));
        assert_eq!(s.mul().apply(&a, &b), SmallSet::from(&[2u32][..]));
        // ∅ annihilates ∩
        assert_eq!(s.mul().apply(&a, &s.zero()), SmallSet::empty());
    }

    #[test]
    fn tropical_and_reachability() {
        let sp = min_plus::<f32>();
        assert_eq!(sp.zero(), f32::INFINITY);
        assert_eq!(sp.add().apply(&2.0, &3.0), 2.0);
        assert_eq!(sp.mul().apply(&2.0, &3.0), 5.0);

        let r = lor_land();
        assert!(!r.zero());
        assert!(r.add().apply(&false, &true));
    }

    #[test]
    fn structural_semirings() {
        let tc = plus_pair::<u64>();
        assert_eq!(tc.mul().apply(&123, &456), 1);
        let mf = min_first::<u32>();
        assert_eq!(mf.mul().apply(&3, &9), 3);
        let ps = plus_second::<i32>();
        assert_eq!(ps.mul().apply(&3, &9), 9);
        let pf = plus_first::<i32>();
        assert_eq!(pf.mul().apply(&3, &9), 3);
        let ms = min_second::<u32>();
        assert_eq!(ms.mul().apply(&3, &9), 9);
    }

    #[test]
    fn user_defined_semiring_over_custom_domain() {
        // A "widest path with tie-breaking" semiring assembled by hand,
        // showing GrB_Semiring_new-style composition with a closure op.
        use crate::algebra::binary::binary_fn;
        use crate::algebra::monoid::MonoidDef;
        let add = MonoidDef::new(binary_fn(|x: &u32, y: &u32| *x.max(y)), 0u32);
        let mul = binary_fn(|x: &u32, y: &u32| *x.min(y));
        let widest = SemiringDef::new(add, mul);
        assert_eq!(Semiring::<u32, u32, u32>::zero(&widest), 0);
        assert_eq!(widest.add().apply(&4, &9), 9);
        assert_eq!(widest.mul().apply(&4, &9), 4);
    }
}
