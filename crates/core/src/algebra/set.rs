//! The power-set domain of Table I (row 5): `P(Z)` with `⊕ = ∪` and
//! `⊗ = ∩`.
//!
//! GraphBLAS domains are arbitrary types, so "user-defined domains" are
//! ordinary Rust types. [`SmallSet`] is a compact sorted-slice set of `u32`
//! labels, suitable for carrying small label sets (e.g. "which source
//! vertices can reach me through which intermediate labels") through a
//! semiring computation. The semiring
//! [`union_intersect`](crate::algebra::semiring::union_intersect) is built
//! on the operators defined here.
//!
//! Note the power-set semiring's **0** (the ⊕-identity and ⊗-annihilator)
//! is `∅`, and its **1** is the universe `U` — which is why the GraphBLAS
//! semiring deliberately does not require a multiplicative identity
//! (Section III-B): `U` may be unrepresentable, and no operation needs it.

use crate::algebra::binary::{BinaryOp, Commutative};
use crate::algebra::monoid::Monoid;

/// A small sorted set of `u32` elements — a member of the power-set domain
/// `P(Z)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SmallSet(Box<[u32]>);

impl SmallSet {
    /// The empty set `∅` — the **0** of the power-set semiring.
    pub fn empty() -> Self {
        SmallSet(Box::new([]))
    }

    /// A singleton set `{x}`.
    pub fn singleton(x: u32) -> Self {
        SmallSet(Box::new([x]))
    }

    /// Build from any iterator (sorts and deduplicates).
    pub fn from_iter_unsorted(iter: impl IntoIterator<Item = u32>) -> Self {
        let mut v: Vec<u32> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        SmallSet(v.into_boxed_slice())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn contains(&self, x: u32) -> bool {
        self.0.binary_search(&x).is_ok()
    }

    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }

    /// Set union — the ⊕ of the power-set semiring.
    pub fn union(&self, other: &SmallSet) -> SmallSet {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        SmallSet(out.into_boxed_slice())
    }

    /// Set intersection — the ⊗ of the power-set semiring.
    pub fn intersect(&self, other: &SmallSet) -> SmallSet {
        let (small, large) = if self.0.len() <= other.0.len() {
            (&self.0, &other.0)
        } else {
            (&other.0, &self.0)
        };
        let mut out = Vec::with_capacity(small.len());
        if large.len() > 16 * small.len() {
            // galloping path for very lopsided inputs
            for &x in small.iter() {
                if large.binary_search(&x).is_ok() {
                    out.push(x);
                }
            }
        } else {
            let (mut i, mut j) = (0, 0);
            while i < small.len() && j < large.len() {
                match small[i].cmp(&large[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(small[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        SmallSet(out.into_boxed_slice())
    }
}

impl FromIterator<u32> for SmallSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        SmallSet::from_iter_unsorted(iter)
    }
}

impl From<&[u32]> for SmallSet {
    fn from(s: &[u32]) -> Self {
        SmallSet::from_iter_unsorted(s.iter().copied())
    }
}

/// `⊕ = ∪`: the union operator on [`SmallSet`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SetUnion;

impl BinaryOp<SmallSet, SmallSet, SmallSet> for SetUnion {
    #[inline]
    fn apply(&self, x: &SmallSet, y: &SmallSet) -> SmallSet {
        x.union(y)
    }
}
impl Commutative for SetUnion {}

/// `⊗ = ∩`: the intersection operator on [`SmallSet`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SetIntersect;

impl BinaryOp<SmallSet, SmallSet, SmallSet> for SetIntersect {
    #[inline]
    fn apply(&self, x: &SmallSet, y: &SmallSet) -> SmallSet {
        x.intersect(y)
    }
}
impl Commutative for SetIntersect {}

/// The `<P(Z), ∪, ∅>` monoid — the additive monoid of the power-set
/// semiring.
#[derive(Debug, Default, Clone, Copy)]
pub struct SetUnionMonoid;

impl BinaryOp<SmallSet, SmallSet, SmallSet> for SetUnionMonoid {
    #[inline]
    fn apply(&self, x: &SmallSet, y: &SmallSet) -> SmallSet {
        x.union(y)
    }
}

impl Monoid<SmallSet> for SetUnionMonoid {
    #[inline]
    fn identity(&self) -> SmallSet {
        SmallSet::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[u32]) -> SmallSet {
        SmallSet::from(v)
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let x = s(&[3, 1, 3, 2, 1]);
        assert_eq!(x.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(x.len(), 3);
        assert!(x.contains(2));
        assert!(!x.contains(5));
    }

    #[test]
    fn union_and_intersection() {
        let a = s(&[1, 3, 5]);
        let b = s(&[2, 3, 4, 5]);
        assert_eq!(a.union(&b), s(&[1, 2, 3, 4, 5]));
        assert_eq!(a.intersect(&b), s(&[3, 5]));
        assert_eq!(a.intersect(&SmallSet::empty()), SmallSet::empty());
        assert_eq!(a.union(&SmallSet::empty()), a);
    }

    #[test]
    fn galloping_intersection_matches_merge() {
        let small = s(&[5, 500, 995]);
        let large: SmallSet = (0..1000).collect();
        assert_eq!(small.intersect(&large), small);
        assert_eq!(large.intersect(&small), small);
    }

    #[test]
    fn empty_is_union_identity_and_intersect_annihilator() {
        // exactly the 0 of Table I row 5
        let m = SetUnionMonoid;
        let x = s(&[7, 9]);
        assert_eq!(m.apply(&x, &m.identity()), x);
        assert_eq!(m.apply(&m.identity(), &x), x);
        assert_eq!(
            SetIntersect.apply(&x, &SmallSet::empty()),
            SmallSet::empty()
        );
    }

    #[test]
    fn algebraic_laws_on_samples() {
        let samples = [
            SmallSet::empty(),
            s(&[1]),
            s(&[1, 2]),
            s(&[2, 3, 4]),
            s(&[1, 4]),
        ];
        for a in &samples {
            for b in &samples {
                // commutativity
                assert_eq!(a.union(b), b.union(a));
                assert_eq!(a.intersect(b), b.intersect(a));
                for c in &samples {
                    // associativity
                    assert_eq!(a.union(b).union(c), a.union(&b.union(c)));
                    assert_eq!(a.intersect(b).intersect(c), a.intersect(&b.intersect(c)));
                    // distributivity of ∩ over ∪ (semiring law)
                    assert_eq!(
                        a.intersect(&b.union(c)),
                        a.intersect(b).union(&a.intersect(c))
                    );
                }
            }
        }
    }
}
