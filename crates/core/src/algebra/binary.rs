//! GraphBLAS binary operators (paper, Section III-B and Table IV).
//!
//! A binary operator is `F_b = <D1, D2, D3, ⊙>` with `⊙ : D1 × D2 → D3`.
//! The predefined operators of the C API are zero-sized generic structs so
//! every kernel monomorphizes and inlines them; user-defined operators are
//! either custom trait impls or closures wrapped with [`binary_fn`]
//! (mirroring `GrB_BinaryOp_new`).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::Error;
use crate::scalar::{CastFrom, NumScalar, Scalar};

/// A GraphBLAS binary operator `⊙ : D1 × D2 → D3`.
///
/// `Clone + 'static` lets operator values be captured by deferred
/// expressions in nonblocking mode; all predefined operators are `Copy`
/// zero-sized types.
pub trait BinaryOp<D1: Scalar, D2: Scalar, D3: Scalar>: Send + Sync + Clone + 'static {
    /// Apply the operator.
    fn apply(&self, x: &D1, y: &D2) -> D3;

    /// Out-of-band execution-error channel: checked operators (e.g.
    /// [`CheckedPlus`]) report overflow here after a kernel finishes, so the
    /// hot loop stays infallible. Non-checked operators return `None`.
    fn poll_error(&self) -> Option<Error> {
        None
    }
}

/// Marker for operators that are mathematically commutative on `T`
/// (used by tests and by kernels free to reorder reductions).
pub trait Commutative {}

macro_rules! zst_binop {
    ($(#[$doc:meta])* $name:ident<$t:ident : $bound:path>, ($x:ident, $y:ident) -> $body:expr) => {
        $(#[$doc])*
        pub struct $name<$t>(PhantomData<fn() -> $t>);

        impl<$t> $name<$t> {
            pub const fn new() -> Self {
                $name(PhantomData)
            }
        }
        impl<$t> Default for $name<$t> {
            fn default() -> Self {
                Self::new()
            }
        }
        impl<$t> Clone for $name<$t> {
            fn clone(&self) -> Self {
                *self
            }
        }
        impl<$t> Copy for $name<$t> {}
        impl<$t> std::fmt::Debug for $name<$t> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(stringify!($name))
            }
        }

        impl<$t: $bound> BinaryOp<$t, $t, $t> for $name<$t> {
            #[inline]
            fn apply(&self, $x: &$t, $y: &$t) -> $t {
                $body
            }
        }
    };
}

zst_binop!(
    /// `GrB_PLUS_T`: x + y (wrapping for integers).
    Plus<T: NumScalar>, (x, y) -> x.add(y)
);
zst_binop!(
    /// `GrB_MINUS_T`: x - y.
    Minus<T: NumScalar>, (x, y) -> x.sub(y)
);
zst_binop!(
    /// `GrB_TIMES_T`: x * y.
    Times<T: NumScalar>, (x, y) -> x.mul(y)
);
zst_binop!(
    /// `GrB_DIV_T`: x / y (integer division by zero yields 0 to stay total).
    Div<T: NumScalar>, (x, y) -> x.div(y)
);
zst_binop!(
    /// `GrB_MIN_T`: min(x, y), with C `fmin` semantics on floats: a NaN
    /// argument loses to any number, so the result is NaN only when both
    /// arguments are NaN. This keeps the operator genuinely commutative
    /// (and associative) on the full float domain — required for the
    /// schedule-independence guarantee of parallel reductions (§IV).
    Min<T: NumScalar>, (x, y) -> if y < x {
        y.clone()
    } else if x <= y {
        x.clone()
    } else if x.partial_cmp(x).is_none() {
        // x is incomparable with itself, i.e. NaN -> y wins (fmin)
        y.clone()
    } else {
        x.clone()
    }
);
zst_binop!(
    /// `GrB_MAX_T`: max(x, y), with C `fmax` semantics on floats (NaN
    /// loses to any number; see [`Min`]).
    Max<T: NumScalar>, (x, y) -> if y > x {
        y.clone()
    } else if x >= y {
        x.clone()
    } else if x.partial_cmp(x).is_none() {
        y.clone()
    } else {
        x.clone()
    }
);

impl<T> Commutative for Plus<T> {}
impl<T> Commutative for Times<T> {}
impl<T> Commutative for Min<T> {}
impl<T> Commutative for Max<T> {}

/// `GrB_FIRST_T`: returns its first argument, `f(x, y) = x`.
pub struct First<D1, D2 = D1>(PhantomData<fn() -> (D1, D2)>);
/// `GrB_SECOND_T`: returns its second argument, `f(x, y) = y`.
pub struct Second<D1, D2 = D1>(PhantomData<fn() -> (D1, D2)>);
/// Variance-neutral marker tying a zero-sized or closure-carrying
/// operator to its three domains.
type DomainMarker<D1, D2, D3> = PhantomData<fn() -> (D1, D2, D3)>;

/// `GrB_ONEB_T` / "pair": returns 1 whenever both arguments are present.
/// The workhorse of structure-only computations such as triangle counting.
pub struct Pair<D1, D2 = D1, D3 = D1>(DomainMarker<D1, D2, D3>);

macro_rules! manual_zst {
    ($name:ident < $($p:ident),* >) => {
        impl<$($p),*> $name<$($p),*> {
            pub const fn new() -> Self { $name(PhantomData) }
        }
        impl<$($p),*> Default for $name<$($p),*> {
            fn default() -> Self { Self::new() }
        }
        impl<$($p),*> Clone for $name<$($p),*> {
            fn clone(&self) -> Self { *self }
        }
        impl<$($p),*> Copy for $name<$($p),*> {}
        impl<$($p),*> std::fmt::Debug for $name<$($p),*> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(stringify!($name))
            }
        }
    };
}
manual_zst!(First<D1, D2>);
manual_zst!(Second<D1, D2>);
manual_zst!(Pair<D1, D2, D3>);

impl<D1: Scalar, D2: Scalar> BinaryOp<D1, D2, D1> for First<D1, D2> {
    #[inline]
    fn apply(&self, x: &D1, _y: &D2) -> D1 {
        x.clone()
    }
}

impl<D1: Scalar, D2: Scalar> BinaryOp<D1, D2, D2> for Second<D1, D2> {
    #[inline]
    fn apply(&self, _x: &D1, y: &D2) -> D2 {
        y.clone()
    }
}

impl<D1: Scalar, D2: Scalar, D3: NumScalar> BinaryOp<D1, D2, D3> for Pair<D1, D2, D3> {
    #[inline]
    fn apply(&self, _x: &D1, _y: &D2) -> D3 {
        D3::one()
    }
}

// ----- comparison operators: D1 × D1 → bool -----

macro_rules! cmp_binop {
    ($(#[$doc:meta])* $name:ident, ($x:ident, $y:ident) -> $body:expr) => {
        $(#[$doc])*
        pub struct $name<T>(PhantomData<fn() -> T>);
        manual_zst!($name<T>);
        impl<T: Scalar + PartialOrd + PartialEq> BinaryOp<T, T, bool> for $name<T> {
            #[inline]
            fn apply(&self, $x: &T, $y: &T) -> bool {
                $body
            }
        }
    };
}

cmp_binop!(
    /// `GrB_EQ_T`: x == y.
    Eq, (x, y) -> x == y
);
cmp_binop!(
    /// `GrB_NE_T`: x != y.
    Ne, (x, y) -> x != y
);
cmp_binop!(
    /// `GrB_GT_T`: x > y.
    Gt, (x, y) -> x > y
);
cmp_binop!(
    /// `GrB_LT_T`: x < y.
    Lt, (x, y) -> x < y
);
cmp_binop!(
    /// `GrB_GE_T`: x >= y.
    Ge, (x, y) -> x >= y
);
cmp_binop!(
    /// `GrB_LE_T`: x <= y.
    Le, (x, y) -> x <= y
);

// ----- logical operators on bool -----

macro_rules! bool_binop {
    ($(#[$doc:meta])* $name:ident, ($x:ident, $y:ident) -> $body:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $name;
        impl BinaryOp<bool, bool, bool> for $name {
            #[inline]
            fn apply(&self, $x: &bool, $y: &bool) -> bool {
                $body
            }
        }
        impl Commutative for $name {}
    };
}

bool_binop!(
    /// `GrB_LAND`: logical and.
    LAnd, (x, y) -> *x && *y
);
bool_binop!(
    /// `GrB_LOR`: logical or.
    LOr, (x, y) -> *x || *y
);
bool_binop!(
    /// `GrB_LXOR`: logical exclusive or (the ⊕ of the GF2 semiring,
    /// Table I).
    LXor, (x, y) -> *x ^ *y
);
bool_binop!(
    /// `GrB_LXNOR`: logical equality.
    LXnor, (x, y) -> *x == *y
);

/// Cast-then-apply adaptor: applies `op : D × D → D` after casting both
/// arguments into `D` (the C API's implicit domain conversion, explicit in
/// Rust).
pub struct CastBinary<D1, D2, D, F> {
    op: F,
    _pd: DomainMarker<D1, D2, D>,
}

impl<D1, D2, D, F: Clone> Clone for CastBinary<D1, D2, D, F> {
    fn clone(&self) -> Self {
        CastBinary {
            op: self.op.clone(),
            _pd: PhantomData,
        }
    }
}

impl<D1, D2, D, F> CastBinary<D1, D2, D, F> {
    pub fn new(op: F) -> Self {
        CastBinary {
            op,
            _pd: PhantomData,
        }
    }
}

impl<D1, D2, D, F> BinaryOp<D1, D2, D> for CastBinary<D1, D2, D, F>
where
    D1: Scalar,
    D2: Scalar,
    D: Scalar + CastFrom<D1> + CastFrom<D2>,
    F: BinaryOp<D, D, D>,
{
    #[inline]
    fn apply(&self, x: &D1, y: &D2) -> D {
        self.op.apply(&D::cast_from(x), &D::cast_from(y))
    }
}

// ----- checked operators (execution-error demonstrators) -----

/// Overflow-checked addition. On overflow the operator latches an
/// execution error (reported through [`BinaryOp::poll_error`]) and yields
/// the wrapped value so the kernel can finish.
#[derive(Debug, Clone, Default)]
pub struct CheckedPlus<T> {
    overflowed: Arc<AtomicBool>,
    _pd: PhantomData<fn() -> T>,
}

/// Overflow-checked multiplication; see [`CheckedPlus`].
#[derive(Debug, Clone, Default)]
pub struct CheckedTimes<T> {
    overflowed: Arc<AtomicBool>,
    _pd: PhantomData<fn() -> T>,
}

impl<T> CheckedPlus<T> {
    pub fn new() -> Self {
        CheckedPlus {
            overflowed: Arc::new(AtomicBool::new(false)),
            _pd: PhantomData,
        }
    }
}

impl<T> CheckedTimes<T> {
    pub fn new() -> Self {
        CheckedTimes {
            overflowed: Arc::new(AtomicBool::new(false)),
            _pd: PhantomData,
        }
    }
}

impl<T: NumScalar> BinaryOp<T, T, T> for CheckedPlus<T> {
    #[inline]
    fn apply(&self, x: &T, y: &T) -> T {
        match x.checked_add(y) {
            Some(v) => v,
            None => {
                self.overflowed.store(true, Ordering::Relaxed);
                x.add(y)
            }
        }
    }

    fn poll_error(&self) -> Option<Error> {
        self.overflowed
            .load(Ordering::Relaxed)
            .then(|| Error::Arithmetic("integer overflow in checked plus".into()))
    }
}

impl<T: NumScalar> BinaryOp<T, T, T> for CheckedTimes<T> {
    #[inline]
    fn apply(&self, x: &T, y: &T) -> T {
        match x.checked_mul(y) {
            Some(v) => v,
            None => {
                self.overflowed.store(true, Ordering::Relaxed);
                x.mul(y)
            }
        }
    }

    fn poll_error(&self) -> Option<Error> {
        self.overflowed
            .load(Ordering::Relaxed)
            .then(|| Error::Arithmetic("integer overflow in checked times".into()))
    }
}

// ----- user-defined operators from closures -----

/// A binary operator defined by a closure (`GrB_BinaryOp_new`).
pub struct BinaryFn<D1, D2, D3, F> {
    f: F,
    _pd: DomainMarker<D1, D2, D3>,
}

impl<D1, D2, D3, F: Clone> Clone for BinaryFn<D1, D2, D3, F> {
    fn clone(&self) -> Self {
        BinaryFn {
            f: self.f.clone(),
            _pd: PhantomData,
        }
    }
}

impl<D1, D2, D3, F> BinaryOp<D1, D2, D3> for BinaryFn<D1, D2, D3, F>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    F: Fn(&D1, &D2) -> D3 + Send + Sync + Clone + 'static,
{
    #[inline]
    fn apply(&self, x: &D1, y: &D2) -> D3 {
        (self.f)(x, y)
    }
}

/// Wrap a closure as a GraphBLAS binary operator (`GrB_BinaryOp_new`).
///
/// ```
/// use graphblas_core::algebra::binary::{binary_fn, BinaryOp};
/// let saturating = binary_fn(|x: &u8, y: &u8| x.saturating_add(*y));
/// assert_eq!(saturating.apply(&250, &10), 255);
/// ```
pub fn binary_fn<D1, D2, D3, F>(f: F) -> BinaryFn<D1, D2, D3, F>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    F: Fn(&D1, &D2) -> D3 + Send + Sync + Clone + 'static,
{
    BinaryFn {
        f,
        _pd: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        assert_eq!(Plus::<i32>::new().apply(&2, &3), 5);
        assert_eq!(Minus::<i32>::new().apply(&2, &3), -1);
        assert_eq!(Times::<f64>::new().apply(&2.0, &3.0), 6.0);
        assert_eq!(Div::<f32>::new().apply(&3.0, &2.0), 1.5);
        assert_eq!(Min::<i32>::new().apply(&2, &3), 2);
        assert_eq!(Max::<i32>::new().apply(&2, &3), 3);
    }

    #[test]
    fn min_max_follow_c_fmin_fmax_on_nan() {
        let min = Min::<f64>::new();
        let max = Max::<f64>::new();
        let nan = f64::NAN;
        // NaN loses to any number, in either argument position
        assert_eq!(min.apply(&nan, &5.0), 5.0);
        assert_eq!(min.apply(&5.0, &nan), 5.0);
        assert_eq!(max.apply(&nan, &5.0), 5.0);
        assert_eq!(max.apply(&5.0, &nan), 5.0);
        // NaN only if both arguments are NaN
        assert!(min.apply(&nan, &nan).is_nan());
        assert!(max.apply(&nan, &nan).is_nan());
        // infinities are ordinary comparable values
        assert_eq!(min.apply(&f64::NEG_INFINITY, &1.0), f64::NEG_INFINITY);
        assert_eq!(max.apply(&f64::INFINITY, &1.0), f64::INFINITY);
        assert_eq!(min.apply(&nan, &f64::INFINITY), f64::INFINITY);
        assert_eq!(max.apply(&nan, &f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn min_max_commutative_under_nan() {
        // the Commutative impls must hold on the whole float domain
        let min = Min::<f32>::new();
        let max = Max::<f32>::new();
        let pool = [
            0.0f32,
            -0.0,
            1.5,
            -2.5,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
        ];
        let same = |a: f32, b: f32| a == b || (a.is_nan() && b.is_nan());
        for &x in &pool {
            for &y in &pool {
                assert!(
                    same(min.apply(&x, &y), min.apply(&y, &x)),
                    "min not commutative at ({x}, {y})"
                );
                assert!(
                    same(max.apply(&x, &y), max.apply(&y, &x)),
                    "max not commutative at ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn first_second_pair() {
        assert_eq!(First::<i32, f64>::new().apply(&7, &1.5), 7);
        assert_eq!(Second::<i32, f64>::new().apply(&7, &1.5), 1.5);
        let p: Pair<bool, bool, i32> = Pair::new();
        assert_eq!(p.apply(&false, &false), 1);
    }

    #[test]
    fn comparisons_produce_bool() {
        assert!(Eq::<i32>::new().apply(&4, &4));
        assert!(Ne::<i32>::new().apply(&4, &5));
        assert!(Gt::<f64>::new().apply(&2.0, &1.0));
        assert!(Lt::<f64>::new().apply(&1.0, &2.0));
        assert!(Ge::<u8>::new().apply(&2, &2));
        assert!(Le::<u8>::new().apply(&2, &2));
    }

    #[test]
    fn logical_ops() {
        assert!(LAnd.apply(&true, &true));
        assert!(!LAnd.apply(&true, &false));
        assert!(LOr.apply(&false, &true));
        assert!(LXor.apply(&true, &false));
        assert!(!LXor.apply(&true, &true));
        assert!(LXnor.apply(&true, &true));
    }

    #[test]
    fn checked_plus_latches_overflow_out_of_band() {
        let op = CheckedPlus::<i8>::new();
        assert_eq!(op.poll_error(), None);
        assert_eq!(op.apply(&100, &100), 100i8.wrapping_add(100));
        let err = op.poll_error().expect("overflow must be latched");
        assert!(err.is_execution_error());
        // clones share the latch (deferred thunks capture clones)
        let clone = op.clone();
        assert!(clone.poll_error().is_some());
    }

    #[test]
    fn checked_times_ok_path_reports_nothing() {
        let op = CheckedTimes::<i32>::new();
        assert_eq!(op.apply(&6, &7), 42);
        assert_eq!(op.poll_error(), None);
    }

    #[test]
    fn closure_ops() {
        let hypot = binary_fn(|x: &f64, y: &f64| (x * x + y * y).sqrt());
        assert_eq!(hypot.apply(&3.0, &4.0), 5.0);
    }

    #[test]
    fn cast_binary_mixes_domains() {
        // i32 + f64 with arithmetic carried out in f64
        let op: CastBinary<i32, f64, f64, Plus<f64>> = CastBinary::new(Plus::new());
        assert_eq!(op.apply(&2, &0.5), 2.5);
    }

    #[test]
    fn predefined_ops_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Plus<f64>>(), 0);
        assert_eq!(std::mem::size_of::<First<i32, f64>>(), 0);
        assert_eq!(std::mem::size_of::<LXor>(), 0);
    }
}
