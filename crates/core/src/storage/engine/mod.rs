//! The polymorphic storage engine: one matrix value, four layouts.
//!
//! The paper's object model hides representation entirely — a
//! `GrB_Matrix` is just the set `L(A) = {(i, j, A_ij)}` (§III-A) — which
//! is precisely the latitude this module exploits. A [`MatrixStore`]
//! holds the same mathematical content in whichever concrete layout the
//! [`FormatPolicy`] picks from the observed shape and occupancy:
//!
//! * [`Format::Csr`] — the general-purpose row-compressed layout;
//! * [`Format::Csc`] — the CSR of `A^T`: column-major access, and a
//!   *free* transpose view (a `GrB_TRAN` descriptor on a Csc operand
//!   reads the stored array as-is);
//! * [`Format::Bitmap`] — presence bits + value slots, for stored
//!   fractions ≳ 6% where per-element indices cost more than they save;
//! * [`Format::Hyper`] — hypersparse CSR over the non-empty rows only,
//!   for `nnz ≪ nrows` where even the row-pointer array would dominate.
//!
//! Kernels stay layout-generic through the memoized [`MatrixStore::row_csr`]
//! / [`MatrixStore::col_csr`] views: a store converts to the orientation a
//! kernel asks for **once**, no matter how many consumers ask (the
//! `OnceLock` serializes concurrent first requests from the parallel
//! scheduler), which is the "convert an intermediate once instead of
//! per-consumer" latitude of nonblocking mode. Specialized kernels
//! (`mxm_hyper`, `mxv_bitmap`, the CSR×CSC dot product) dispatch on
//! [`MatrixStore::layout`] instead and skip conversion entirely.

pub mod bitmap;
pub mod hyper;

use std::sync::{Arc, OnceLock};

use crate::index::Index;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::tiled::{self, Tiled};

pub use bitmap::Bitmap;
pub use hyper::Hyper;

/// A concrete storage layout (the engine's `GxB_FORMAT_*` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Compressed sparse row.
    Csr,
    /// Compressed sparse column (stored as CSR of the transpose).
    Csc,
    /// Presence bitmap + dense value slots.
    Bitmap,
    /// Hypersparse CSR (compressed non-empty-row list).
    Hyper,
    /// 2D grid of independently formatted blocks
    /// ([`crate::storage::tiled::Tiled`]).
    Tiled,
}

impl Format {
    /// Stable lowercase name, used in execution traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Format::Csr => "csr",
            Format::Csc => "csc",
            Format::Bitmap => "bitmap",
            Format::Hyper => "hyper",
            Format::Tiled => "tiled",
        }
    }
}

/// The tile grid [`MatrixStore::into_format`] uses when asked for
/// [`Format::Tiled`] without an explicit shape (`FormatPolicy::Tiled`
/// carries its own).
pub const DEFAULT_TILE_GRID: (usize, usize) = (4, 4);

/// Per-object format policy: how the engine stores values computed into
/// an object (the `GxB_*`-style hint of the C extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FormatPolicy {
    /// Pick the layout from observed shape/occupancy on every new value
    /// (the thresholds below).
    #[default]
    Auto,
    /// Always store in the given layout.
    Force(Format),
    /// Store as a 2D tile grid of the given shape, each block formatted
    /// autonomously by `Auto` — the tiling knob set through
    /// `GxB_set(…, TileShape, …)`.
    Tiled { rows: u16, cols: u16 },
}

/// `Auto` stores a bitmap when `nvals / (nrows*ncols) ≥ 1/16` (6.25%,
/// inside the 4–10% break-even band measured in the `storage_formats`
/// bench) …
pub const BITMAP_DENSITY_DIVISOR: usize = 16;
/// … but never allocates presence bits + slots for more than this many
/// cells (64M — a dense `Option<f64>` plane of 1 GB).
pub const BITMAP_MAX_CELLS: u128 = 1 << 26;
/// `Auto` goes hypersparse when fewer than one row in this many holds
/// any element (`nvals * 4 < nrows`).
pub const HYPER_ROW_DIVISOR: usize = 4;

impl FormatPolicy {
    /// The layout this policy stores a value of the given shape and
    /// occupancy in. `Auto` never picks `Csc` — column orientation is an
    /// access-pattern choice, made by explicit hint or transpose views.
    pub fn choose(self, nrows: Index, ncols: Index, nvals: usize) -> Format {
        match self {
            FormatPolicy::Force(f) => f,
            FormatPolicy::Tiled { .. } => Format::Tiled,
            FormatPolicy::Auto => {
                let cells = nrows as u128 * ncols as u128;
                if nvals == 0 || cells == 0 {
                    Format::Csr
                } else if cells <= BITMAP_MAX_CELLS
                    && nvals as u128 * BITMAP_DENSITY_DIVISOR as u128 >= cells
                {
                    Format::Bitmap
                } else if (nvals as u128) * (HYPER_ROW_DIVISOR as u128) < nrows as u128 {
                    Format::Hyper
                } else {
                    Format::Csr
                }
            }
        }
    }

    /// The tile grid this policy shards into, if it is a tiling policy.
    pub fn tile_grid(self) -> Option<(usize, usize)> {
        match self {
            FormatPolicy::Tiled { rows, cols } => Some((rows as usize, cols as usize)),
            _ => None,
        }
    }
}

/// Session-wide default format policy, applied to newly created
/// matrices (`GxB_set(Global, FormatPolicy | TileShape, …)`). Objects
/// that set their own policy are unaffected.
static SESSION_DEFAULT_POLICY: parking_lot::RwLock<FormatPolicy> =
    parking_lot::RwLock::new(FormatPolicy::Auto);

/// Set (or with `FormatPolicy::Auto` reset) the session default policy.
pub fn set_session_default_policy(policy: FormatPolicy) {
    *SESSION_DEFAULT_POLICY.write() = policy;
}

/// The format policy newly created matrices start with.
pub fn session_default_policy() -> FormatPolicy {
    *SESSION_DEFAULT_POLICY.read()
}

/// The four concrete layouts behind a [`MatrixStore`].
#[derive(Debug)]
pub enum Layout<T> {
    /// Row-compressed content.
    Csr(Arc<Csr<T>>),
    /// Column-compressed content: the CSR of `A^T`.
    Csc(Arc<Csr<T>>),
    /// Presence bitmap + value slots.
    Bitmap(Arc<Bitmap<T>>),
    /// Hypersparse CSR.
    Hyper(Arc<Hyper<T>>),
    /// 2D tile grid of independently formatted blocks.
    Tiled(Arc<Tiled<T>>),
}

impl<T> Clone for Layout<T> {
    // manual: the variants are Arcs, so no `T: Clone` bound is needed
    fn clone(&self) -> Self {
        match self {
            Layout::Csr(c) => Layout::Csr(c.clone()),
            Layout::Csc(t) => Layout::Csc(t.clone()),
            Layout::Bitmap(b) => Layout::Bitmap(b.clone()),
            Layout::Hyper(h) => Layout::Hyper(h.clone()),
            Layout::Tiled(g) => Layout::Tiled(g.clone()),
        }
    }
}

/// One matrix value in one of four layouts, with memoized CSR views of
/// both orientations so kernels can stay layout-generic.
#[derive(Debug)]
pub struct MatrixStore<T> {
    nrows: Index,
    ncols: Index,
    layout: Layout<T>,
    /// The layout this value was converted *from* by a policy migration
    /// (`None` when it was produced natively) — surfaced in execution
    /// traces as a migration event.
    migrated_from: Option<Format>,
    /// Memoized CSR of `A` (identity for `Csr` layouts).
    row_view: OnceLock<Arc<Csr<T>>>,
    /// Memoized CSR of `A^T` (identity for `Csc` layouts).
    col_view: OnceLock<Arc<Csr<T>>>,
    /// Memoized per-row stored-element counts (`len = nrows`).
    row_degrees: OnceLock<Arc<[usize]>>,
    /// Memoized per-column stored-element counts (`len = ncols`).
    col_degrees: OnceLock<Arc<[usize]>>,
    /// Memoized bitwise symmetry (`A == A^T`, values compared by bits).
    symmetry: OnceLock<bool>,
}

impl<T> Clone for MatrixStore<T> {
    fn clone(&self) -> Self {
        MatrixStore {
            nrows: self.nrows,
            ncols: self.ncols,
            layout: self.layout.clone(),
            migrated_from: self.migrated_from,
            row_view: self.row_view.clone(),
            col_view: self.col_view.clone(),
            row_degrees: self.row_degrees.clone(),
            col_degrees: self.col_degrees.clone(),
            symmetry: self.symmetry.clone(),
        }
    }
}

impl<T: Scalar> MatrixStore<T> {
    fn from_layout(nrows: Index, ncols: Index, layout: Layout<T>) -> Self {
        MatrixStore {
            nrows,
            ncols,
            layout,
            migrated_from: None,
            row_view: OnceLock::new(),
            col_view: OnceLock::new(),
            row_degrees: OnceLock::new(),
            col_degrees: OnceLock::new(),
            symmetry: OnceLock::new(),
        }
    }

    /// An empty store (no stored elements) in CSR layout.
    pub fn empty(nrows: Index, ncols: Index) -> Self {
        Self::csr(Csr::empty(nrows, ncols))
    }

    /// Wrap a CSR value without conversion.
    pub fn csr(csr: Csr<T>) -> Self {
        let (nrows, ncols) = (csr.nrows(), csr.ncols());
        Self::from_layout(nrows, ncols, Layout::Csr(Arc::new(csr)))
    }

    /// Wrap a natively produced hypersparse value without conversion.
    pub fn hyper(h: Hyper<T>) -> Self {
        let (nrows, ncols) = (h.nrows(), h.ncols());
        Self::from_layout(nrows, ncols, Layout::Hyper(Arc::new(h)))
    }

    /// Wrap a natively produced tile grid without conversion.
    pub fn tiled(t: Tiled<T>) -> Self {
        let (nrows, ncols) = (t.nrows(), t.ncols());
        Self::from_layout(nrows, ncols, Layout::Tiled(Arc::new(t)))
    }

    /// Store a freshly computed CSR value under `policy`: choose the
    /// layout from the value's shape/occupancy and convert if it differs
    /// from CSR, recording the migration.
    pub fn from_csr(csr: Csr<T>, policy: FormatPolicy) -> Self {
        if let Some(grid) = policy.tile_grid() {
            return Self::csr(csr).into_tiled(grid);
        }
        let target = policy.choose(csr.nrows(), csr.ncols(), csr.nvals());
        Self::csr(csr).into_format(target)
    }

    /// Re-store this value under `policy` (the migration step of
    /// `set_format` and of fast-path kernel outputs). A no-op when the
    /// policy's choice matches the current layout.
    pub fn apply_policy(self, policy: FormatPolicy) -> Self {
        if let Some(grid) = policy.tile_grid() {
            return self.into_tiled(grid);
        }
        let target = policy.choose(self.nrows, self.ncols, self.nvals());
        self.into_format(target)
    }

    /// Convert to a tile grid of the given shape (clamped to the matrix
    /// dimensions), carrying property caches like every migration. A
    /// no-op when already tiled at that grid.
    pub fn into_tiled(self, grid: (usize, usize)) -> Self {
        let clamped = tiled::clamp_grid(self.nrows, self.ncols, grid);
        if let Layout::Tiled(t) = &self.layout {
            if t.grid() == clamped {
                return self;
            }
        }
        let from = self.format();
        let (nrows, ncols) = (self.nrows, self.ncols);
        let slab = self.row_csr();
        let layout = Layout::Tiled(Arc::new(Tiled::from_csr(&slab, clamped)));
        let mut store = Self::from_layout(nrows, ncols, layout);
        store.migrated_from = Some(from);
        store.row_degrees = self.row_degrees;
        store.col_degrees = self.col_degrees;
        store.symmetry = self.symmetry;
        // the slab this grid was cut from stays available as the row view
        let _ = store.row_view.set(slab);
        store
    }

    /// Convert to an explicit layout, recording where the value came
    /// from. No-op (and no record) when already there.
    pub fn into_format(self, target: Format) -> Self {
        let from = self.format();
        if from == target {
            return self;
        }
        if target == Format::Tiled {
            return self.into_tiled(DEFAULT_TILE_GRID);
        }
        let (nrows, ncols) = (self.nrows, self.ncols);
        let layout = match target {
            Format::Csr => Layout::Csr(self.row_csr()),
            Format::Csc => Layout::Csc(self.col_csr()),
            Format::Bitmap => Layout::Bitmap(Arc::new(Bitmap::from_csr(&self.row_csr()))),
            Format::Hyper => Layout::Hyper(Arc::new(Hyper::from_csr(&self.row_csr()))),
            Format::Tiled => unreachable!("handled above"),
        };
        let mut store = Self::from_layout(nrows, ncols, layout);
        store.migrated_from = Some(from);
        // cached properties describe the mathematical content, not the
        // layout, so a migration carries them over instead of recomputing
        store.row_degrees = self.row_degrees;
        store.col_degrees = self.col_degrees;
        store.symmetry = self.symmetry;
        // the conversion source stays available as a view: a Csc→Csr
        // migration keeps the column view it came from, and vice versa
        match (&store.layout, self.layout) {
            (Layout::Csr(_), Layout::Csc(t)) => {
                let _ = store.col_view.set(t);
            }
            (Layout::Csc(_), Layout::Csr(c)) => {
                let _ = store.row_view.set(c);
            }
            _ => {}
        }
        store
    }

    /// The concrete layout, for kernel dispatch.
    #[inline]
    pub fn layout(&self) -> &Layout<T> {
        &self.layout
    }

    /// The current format tag.
    pub fn format(&self) -> Format {
        match self.layout {
            Layout::Csr(_) => Format::Csr,
            Layout::Csc(_) => Format::Csc,
            Layout::Bitmap(_) => Format::Bitmap,
            Layout::Hyper(_) => Format::Hyper,
            Layout::Tiled(_) => Format::Tiled,
        }
    }

    /// The tile grid shape, when this value is stored tiled.
    pub fn tile_grid(&self) -> Option<(usize, usize)> {
        match &self.layout {
            Layout::Tiled(t) => Some(t.grid()),
            _ => None,
        }
    }

    /// The layout this value was migrated from, if a policy converted it.
    pub fn migrated_from(&self) -> Option<Format> {
        self.migrated_from
    }

    #[inline]
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored elements, from the layout's own bookkeeping.
    pub fn nvals(&self) -> usize {
        match &self.layout {
            Layout::Csr(c) | Layout::Csc(c) => c.nvals(),
            Layout::Bitmap(b) => b.nvals(),
            Layout::Hyper(h) => h.nvals(),
            Layout::Tiled(t) => t.nvals(),
        }
    }

    /// Stored fraction `nvals / (nrows * ncols)`.
    pub fn density(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nvals() as f64 / cells
        }
    }

    /// Probe `(i, j)` in the native layout — no conversion, O(1) for
    /// bitmap, O(log row) for the compressed layouts.
    pub fn get(&self, i: Index, j: Index) -> Option<&T> {
        match &self.layout {
            Layout::Csr(c) => c.get(i, j),
            Layout::Csc(t) => t.get(j, i),
            Layout::Bitmap(b) => b.get(i, j),
            Layout::Hyper(h) => h.get(i, j),
            Layout::Tiled(t) => t.get(i, j),
        }
    }

    /// All stored tuples in row-major order (`GrB_Matrix_extractTuples`).
    pub fn to_tuples(&self) -> Vec<(Index, Index, T)> {
        match &self.layout {
            Layout::Csr(c) => c.to_tuples(),
            Layout::Csc(_) | Layout::Tiled(_) => self.row_csr().to_tuples(),
            Layout::Bitmap(b) => b.iter().map(|(i, j, v)| (i, j, v.clone())).collect(),
            Layout::Hyper(h) => h.iter().map(|(i, j, v)| (i, j, v.clone())).collect(),
        }
    }

    /// The CSR rendering of this value (row orientation), converting at
    /// most once per store — concurrent consumers share the result.
    pub fn row_csr(&self) -> Arc<Csr<T>> {
        if let Layout::Csr(c) = &self.layout {
            return c.clone();
        }
        self.row_view
            .get_or_init(|| {
                Arc::new(match &self.layout {
                    Layout::Csr(_) => unreachable!(),
                    Layout::Csc(t) => t.transpose(),
                    Layout::Bitmap(b) => b.to_csr(),
                    Layout::Hyper(h) => h.to_csr(),
                    Layout::Tiled(t) => t.to_csr(),
                })
            })
            .clone()
    }

    /// The CSR rendering of `A^T` (column orientation) — the engine's
    /// transpose view, converting at most once per store. For a `Csc`
    /// store this is the stored array itself: transpose is free, and a
    /// bitwise-symmetric value shares its row view instead of building a
    /// transposed copy (the degree pre-filter in [`Self::is_symmetric`]
    /// keeps the probe cheap for asymmetric inputs).
    pub fn col_csr(&self) -> Arc<Csr<T>> {
        if let Layout::Csc(t) = &self.layout {
            return t.clone();
        }
        self.col_view
            .get_or_init(|| {
                if self.is_symmetric() {
                    self.row_csr()
                } else {
                    Arc::new(self.row_csr().transpose())
                }
            })
            .clone()
    }

    /// `true` when the CSR view of the requested orientation is already
    /// materialized (native layout or cached conversion) — lets kernels
    /// prefer plans whose operand views are free.
    pub fn csr_view_ready(&self, transposed: bool) -> bool {
        if transposed {
            matches!(self.layout, Layout::Csc(_)) || self.col_view.get().is_some()
        } else {
            matches!(self.layout, Layout::Csr(_)) || self.row_view.get().is_some()
        }
    }

    /// Per-row stored-element counts, computed once per store from the
    /// native layout (no CSR conversion), O(nvals + nrows). Because the
    /// cache hangs off the *store* — and every delta-log drain or policy
    /// migration installs a fresh store — invalidation is automatic, and
    /// MVCC snapshots (which pin the old store) keep their old counts.
    pub fn row_degrees(&self) -> Arc<[usize]> {
        self.row_degrees
            .get_or_init(|| {
                let mut deg = vec![0usize; self.nrows];
                match &self.layout {
                    Layout::Csr(c) => {
                        for (i, d) in deg.iter_mut().enumerate() {
                            *d = c.row_nvals(i);
                        }
                    }
                    Layout::Csc(t) => {
                        // the Csc store is the CSR of A^T: its column
                        // indices are A's row indices
                        for &i in t.col_idx() {
                            deg[i] += 1;
                        }
                    }
                    Layout::Bitmap(b) => {
                        for (i, d) in deg.iter_mut().enumerate() {
                            *d = b.row_bits(i).iter().map(|w| w.count_ones() as usize).sum();
                        }
                    }
                    Layout::Hyper(h) => {
                        for k in 0..h.nonempty_rows().len() {
                            let (i, cols, _) = h.row_by_pos(k);
                            deg[i] = cols.len();
                        }
                    }
                    Layout::Tiled(t) => deg = t.row_degrees_sum(),
                }
                deg.into()
            })
            .clone()
    }

    /// Per-column stored-element counts; same caching and invalidation
    /// story as [`MatrixStore::row_degrees`].
    pub fn col_degrees(&self) -> Arc<[usize]> {
        self.col_degrees
            .get_or_init(|| {
                let mut deg = vec![0usize; self.ncols];
                match &self.layout {
                    Layout::Csr(c) => {
                        for &j in c.col_idx() {
                            deg[j] += 1;
                        }
                    }
                    Layout::Csc(t) => {
                        for (j, d) in deg.iter_mut().enumerate() {
                            *d = t.row_nvals(j);
                        }
                    }
                    Layout::Bitmap(b) => {
                        for (_, j, _) in b.iter() {
                            deg[j] += 1;
                        }
                    }
                    Layout::Hyper(h) => {
                        for (_, j, _) in h.iter() {
                            deg[j] += 1;
                        }
                    }
                    Layout::Tiled(t) => deg = t.col_degrees_sum(),
                }
                deg.into()
            })
            .clone()
    }

    /// Bitwise symmetry (`A(i,j) == A(j,i)` for every stored element,
    /// values compared by bits), memoized per store. Cheap to reject:
    /// non-square shapes, domains without a bit comparison, and any
    /// row/column degree mismatch bail before the O(nvals·log) probe.
    /// The probe itself reads the row view, so call this only when that
    /// view is materialized or about to be (as [`MatrixStore::col_csr`]
    /// does).
    pub fn is_symmetric(&self) -> bool {
        *self.symmetry.get_or_init(|| self.compute_symmetry())
    }

    fn compute_symmetry(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        if self.row_degrees() != self.col_degrees() {
            return false;
        }
        let a = self.row_csr();
        for i in 0..self.nrows {
            let (cols, vals) = a.row(i);
            for (&j, v) in cols.iter().zip(vals) {
                if j == i {
                    continue;
                }
                match a.get(j, i) {
                    Some(w) => match crate::scalar::value_bits_eq(v, w) {
                        Some(true) => {}
                        // unequal values, or a domain with no bitwise
                        // comparison: not (provably) symmetric
                        Some(false) | None => return false,
                    },
                    None => return false,
                }
            }
        }
        true
    }
}

impl<T: Scalar> crate::exec::node::StorageMeta for MatrixStore<T> {
    fn trace_shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }
    fn trace_nvals(&self) -> usize {
        self.nvals()
    }
    fn trace_format(&self) -> &'static str {
        self.format().as_str()
    }
    fn trace_migrated_from(&self) -> Option<&'static str> {
        self.migrated_from.map(Format::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<i32> {
        Csr::from_sorted_tuples(3, 3, vec![(0, 0, 1), (0, 2, 2), (2, 0, 3), (2, 1, 4)])
    }

    #[test]
    fn auto_policy_thresholds() {
        let auto = FormatPolicy::Auto;
        // 4/9 stored = 44% -> bitmap
        assert_eq!(auto.choose(3, 3, 4), Format::Bitmap);
        // far below 1/16 density, nnz*4 >= nrows -> csr
        assert_eq!(auto.choose(1000, 1000, 10_000), Format::Csr);
        // nnz << nrows -> hyper
        assert_eq!(auto.choose(1_000_000, 1_000_000, 1_000), Format::Hyper);
        // empty -> csr
        assert_eq!(auto.choose(10, 10, 0), Format::Csr);
        // dense but too many cells for a bitmap plane -> csr
        assert_eq!(auto.choose(1 << 14, 1 << 14, usize::MAX / 2), Format::Csr);
        // forced always wins
        assert_eq!(
            FormatPolicy::Force(Format::Hyper).choose(3, 3, 4),
            Format::Hyper
        );
    }

    #[test]
    fn all_formats_preserve_content() {
        let csr = sample();
        for fmt in [Format::Csr, Format::Csc, Format::Bitmap, Format::Hyper] {
            let store = MatrixStore::csr(csr.clone()).into_format(fmt);
            assert_eq!(store.format(), fmt, "{fmt:?}");
            assert_eq!(store.nvals(), 4);
            assert_eq!(store.to_tuples(), csr.to_tuples(), "{fmt:?}");
            assert_eq!(store.get(0, 2), Some(&2), "{fmt:?}");
            assert_eq!(store.get(1, 1), None, "{fmt:?}");
            assert_eq!(*store.row_csr(), csr, "{fmt:?} row view");
            assert_eq!(*store.col_csr(), csr.transpose(), "{fmt:?} col view");
        }
    }

    #[test]
    fn migration_is_recorded_once() {
        let store = MatrixStore::csr(sample());
        assert_eq!(store.migrated_from(), None);
        let hyper = store.into_format(Format::Hyper);
        assert_eq!(hyper.migrated_from(), Some(Format::Csr));
        // converting to the format it's already in records nothing new
        let same = hyper.clone().into_format(Format::Hyper);
        assert_eq!(same.migrated_from(), Some(Format::Csr));
    }

    #[test]
    fn csc_store_has_free_transpose_view() {
        let store = MatrixStore::csr(sample()).into_format(Format::Csc);
        assert!(store.csr_view_ready(true));
        // migration kept the CSR it came from as the row view
        assert!(store.csr_view_ready(false));
        let t = store.col_csr();
        assert_eq!(*t, sample().transpose());
    }

    #[test]
    fn views_are_memoized() {
        let store = MatrixStore::csr(sample()).into_format(Format::Bitmap);
        assert!(!store.csr_view_ready(false));
        let a = store.row_csr();
        assert!(store.csr_view_ready(false));
        let b = store.row_csr();
        assert!(Arc::ptr_eq(&a, &b), "second request reuses the conversion");
    }

    #[test]
    fn from_csr_applies_auto_migration() {
        // dense enough for bitmap under Auto
        let store = MatrixStore::from_csr(sample(), FormatPolicy::Auto);
        assert_eq!(store.format(), Format::Bitmap);
        assert_eq!(store.migrated_from(), Some(Format::Csr));
        // forced CSR keeps it native with no migration
        let store = MatrixStore::from_csr(sample(), FormatPolicy::Force(Format::Csr));
        assert_eq!(store.format(), Format::Csr);
        assert_eq!(store.migrated_from(), None);
    }

    #[test]
    fn density_reporting() {
        let store = MatrixStore::csr(sample());
        assert!((store.density() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn degrees_agree_across_layouts() {
        for fmt in [Format::Csr, Format::Csc, Format::Bitmap, Format::Hyper] {
            let store = MatrixStore::csr(sample()).into_format(fmt);
            assert_eq!(&store.row_degrees()[..], &[2, 0, 2], "{fmt:?} rows");
            assert_eq!(&store.col_degrees()[..], &[2, 1, 1], "{fmt:?} cols");
        }
        // hypersparse with a genuinely empty tail
        let wide = Csr::from_sorted_tuples(6, 4, vec![(1, 3, 1i32), (4, 0, 2)]);
        let store = MatrixStore::csr(wide).into_format(Format::Hyper);
        assert_eq!(&store.row_degrees()[..], &[0, 1, 0, 0, 1, 0]);
        assert_eq!(&store.col_degrees()[..], &[1, 0, 0, 1]);
    }

    #[test]
    fn degrees_are_memoized_per_store() {
        let store = MatrixStore::csr(sample());
        let a = store.row_degrees();
        let b = store.row_degrees();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn symmetric_store_shares_its_row_view_as_transpose() {
        let sym = Csr::from_sorted_tuples(
            3,
            3,
            vec![(0, 1, 5i32), (1, 0, 5), (1, 2, -7), (2, 1, -7), (2, 2, 1)],
        );
        let store = MatrixStore::csr(sym);
        assert!(store.is_symmetric());
        let r = store.row_csr();
        let c = store.col_csr();
        assert!(
            Arc::ptr_eq(&r, &c),
            "transpose of a symmetric value is free"
        );
    }

    #[test]
    fn asymmetry_is_detected() {
        // degree-symmetric but value-asymmetric: the probe must catch it
        let pat = Csr::from_sorted_tuples(2, 2, vec![(0, 1, 1i32), (1, 0, 2)]);
        let store = MatrixStore::csr(pat);
        assert!(!store.is_symmetric());
        // structurally asymmetric: rejected by the degree pre-filter
        let tri = MatrixStore::csr(sample());
        assert!(!tri.is_symmetric());
        // non-square is never symmetric
        let rect = MatrixStore::csr(Csr::from_sorted_tuples(2, 3, vec![(0, 0, 1i32)]));
        assert!(!rect.is_symmetric());
    }

    #[test]
    fn float_symmetry_is_bitwise() {
        // 0.0 vs -0.0 are IEEE-equal but bitwise distinct: not symmetric
        let zeros = Csr::from_sorted_tuples(2, 2, vec![(0, 1, 0.0f64), (1, 0, -0.0)]);
        assert!(!MatrixStore::csr(zeros).is_symmetric());
        // NaNs with the same payload are bitwise equal: symmetric
        let nans = Csr::from_sorted_tuples(2, 2, vec![(0, 1, f64::NAN), (1, 0, f64::NAN)]);
        assert!(MatrixStore::csr(nans).is_symmetric());
    }

    #[test]
    fn migration_carries_property_caches() {
        let store = MatrixStore::csr(sample());
        let deg = store.row_degrees();
        let bitmap = store.into_format(Format::Bitmap);
        assert!(Arc::ptr_eq(&deg, &bitmap.row_degrees()));
    }
}
