//! Dense-bitmap matrix storage: a presence bitmap plus a value array.
//!
//! For matrices whose stored fraction is a few percent or more, CSR's
//! per-element column indices cost more than they save: probes need a
//! binary search and row merges branch per element. The bitmap layout
//! spends `nrows*ncols` bits on presence (one cache line covers 512
//! positions) and a dense value slot per position, giving O(1) probes
//! and branch-light row sweeps via word iteration.
//!
//! Absent elements stay *undefined*, not zero: a cleared presence bit
//! means "no stored tuple", exactly as in the CSR layer — the value slot
//! under a cleared bit is never observed. The bitmap is a representation
//! of the same set `L(A) = {(i, j, A_ij)}`, not a densification of it.

use crate::index::Index;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;

/// Bitmap matrix storage: row-major presence bits + value slots.
#[derive(Debug, Clone)]
pub struct Bitmap<T> {
    nrows: Index,
    ncols: Index,
    /// 64-bit presence words per row (`ncols.div_ceil(64)` of them).
    words_per_row: usize,
    /// Presence bits, row-major: bit `j % 64` of word
    /// `i * words_per_row + j / 64` is set iff `(i, j)` is stored.
    bits: Vec<u64>,
    /// Value slots, row-major (`None` under every cleared bit).
    vals: Vec<Option<T>>,
    /// Number of set bits (stored elements).
    nvals: usize,
}

impl<T: Scalar> Bitmap<T> {
    /// An empty bitmap of the given shape.
    pub fn empty(nrows: Index, ncols: Index) -> Self {
        let words_per_row = ncols.div_ceil(64);
        Bitmap {
            nrows,
            ncols,
            words_per_row,
            bits: vec![0; nrows * words_per_row],
            vals: vec![None; nrows * ncols],
            nvals: 0,
        }
    }

    /// Convert from CSR (one pass over the stored tuples).
    pub fn from_csr(csr: &Csr<T>) -> Self {
        let mut b = Bitmap::empty(csr.nrows(), csr.ncols());
        for (i, j, v) in csr.iter() {
            b.bits[i * b.words_per_row + j / 64] |= 1u64 << (j % 64);
            b.vals[i * b.ncols + j] = Some(v.clone());
        }
        b.nvals = csr.nvals();
        b
    }

    /// Convert to CSR (row-major sweep of the set bits).
    pub fn to_csr(&self) -> Csr<T> {
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx = Vec::with_capacity(self.nvals);
        let mut vals = Vec::with_capacity(self.nvals);
        for i in 0..self.nrows {
            for (j, v) in self.row_iter(i) {
                col_idx.push(j);
                vals.push(v.clone());
            }
            row_ptr[i + 1] = col_idx.len();
        }
        Csr::from_parts(self.nrows, self.ncols, row_ptr, col_idx, vals)
    }

    #[inline]
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored elements.
    #[inline]
    pub fn nvals(&self) -> usize {
        self.nvals
    }

    /// O(1) probe: `Some(&v)` iff `(i, j)` is stored.
    #[inline]
    pub fn get(&self, i: Index, j: Index) -> Option<&T> {
        if self.bits[i * self.words_per_row + j / 64] >> (j % 64) & 1 == 1 {
            self.vals[i * self.ncols + j].as_ref()
        } else {
            None
        }
    }

    /// The presence words of row `i`.
    #[inline]
    pub fn row_bits(&self, i: Index) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// The value slots of row `i` (indexed by column; only slots under a
    /// set presence bit hold `Some`).
    #[inline]
    pub fn row_vals(&self, i: Index) -> &[Option<T>] {
        &self.vals[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Iterate the stored `(j, &v)` pairs of row `i` in column order,
    /// walking presence words and clearing trailing bits — no per-element
    /// search.
    pub fn row_iter(&self, i: Index) -> impl Iterator<Item = (Index, &T)> + '_ {
        let vals = self.row_vals(i);
        self.row_bits(i)
            .iter()
            .enumerate()
            .flat_map(move |(w, &word)| {
                let base = w * 64;
                std::iter::successors((word != 0).then_some(word), |&rem| {
                    let next = rem & (rem - 1);
                    (next != 0).then_some(next)
                })
                .map(move |rem| {
                    let j = base + rem.trailing_zeros() as usize;
                    (j, vals[j].as_ref().expect("set bit has a value"))
                })
            })
    }

    /// Iterate all stored tuples `(i, j, &v)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, &T)> + '_ {
        (0..self.nrows).flat_map(move |i| self.row_iter(i).map(move |(j, v)| (i, j, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<i32> {
        // [ 1 . 2 ]
        // [ . . . ]
        // [ 3 4 . ]
        Csr::from_sorted_tuples(3, 3, vec![(0, 0, 1), (0, 2, 2), (2, 0, 3), (2, 1, 4)])
    }

    #[test]
    fn round_trip_preserves_tuples() {
        let csr = sample();
        let b = Bitmap::from_csr(&csr);
        assert_eq!(b.nvals(), 4);
        assert_eq!(b.to_csr(), csr);
    }

    #[test]
    fn probe_distinguishes_stored_from_undefined() {
        let b = Bitmap::from_csr(&sample());
        assert_eq!(b.get(0, 0), Some(&1));
        assert_eq!(b.get(0, 1), None); // undefined, not zero
        assert_eq!(b.get(1, 1), None);
        assert_eq!(b.get(2, 1), Some(&4));
    }

    #[test]
    fn row_iter_matches_csr_rows() {
        let csr = sample();
        let b = Bitmap::from_csr(&csr);
        for i in 0..3 {
            let from_bitmap: Vec<(usize, i32)> = b.row_iter(i).map(|(j, v)| (j, *v)).collect();
            let (cols, vals) = csr.row(i);
            let from_csr: Vec<(usize, i32)> =
                cols.iter().copied().zip(vals.iter().copied()).collect();
            assert_eq!(from_bitmap, from_csr, "row {i}");
        }
    }

    #[test]
    fn wide_rows_span_multiple_words() {
        // columns straddling the 64-bit word boundary
        let csr = Csr::from_sorted_tuples(
            2,
            130,
            vec![(0, 0, 1), (0, 63, 2), (0, 64, 3), (0, 129, 4), (1, 65, 5)],
        );
        let b = Bitmap::from_csr(&csr);
        assert_eq!(b.get(0, 63), Some(&2));
        assert_eq!(b.get(0, 64), Some(&3));
        assert_eq!(b.get(0, 129), Some(&4));
        assert_eq!(b.get(1, 64), None);
        assert_eq!(b.to_csr(), csr);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::<f64>::empty(4, 7);
        assert_eq!(b.nvals(), 0);
        assert_eq!(b.iter().count(), 0);
        assert_eq!(b.to_csr(), Csr::empty(4, 7));
    }
}
