//! Hypersparse matrix storage: CSR over the non-empty rows only.
//!
//! A plain CSR row-pointer array is `nrows + 1` words regardless of
//! content, so a 10M-vertex graph slice holding a thousand edges pays
//! 80 MB just to say "mostly empty" — and every kernel sweep touches all
//! of it. The hypersparse layout (SuiteSparse's `GxB_HYPERSPARSE`,
//! "GraphBLAS Mathematical Opportunities" §hypersparse) keeps a sorted
//! list of the non-empty rows and row pointers over *that list*, making
//! storage and whole-matrix sweeps O(nnz + #nonempty-rows), independent
//! of `nrows`.

use crate::index::Index;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;

/// Hypersparse matrix storage: a compressed non-empty-row list over CSR
/// row slices.
#[derive(Debug, Clone)]
pub struct Hyper<T> {
    nrows: Index,
    ncols: Index,
    /// Sorted row indices that hold at least one stored element.
    rows: Vec<Index>,
    /// `row_ptr[k]..row_ptr[k+1]` is the slice of `rows[k]`; length
    /// `rows.len() + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, strictly increasing within each row slice.
    col_idx: Vec<Index>,
    /// Values, parallel to `col_idx`.
    vals: Vec<T>,
}

impl<T: Scalar> Hyper<T> {
    /// An empty hypersparse matrix — O(1) space, unlike `Csr::empty`.
    pub fn empty(nrows: Index, ncols: Index) -> Self {
        Hyper {
            nrows,
            ncols,
            rows: Vec::new(),
            row_ptr: vec![0],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Assemble from per-row slices that are already sorted by row, with
    /// sorted columns inside each and no empty slices.
    pub fn from_row_slices(
        nrows: Index,
        ncols: Index,
        slices: impl IntoIterator<Item = (Index, Vec<Index>, Vec<T>)>,
    ) -> Self {
        let mut h = Hyper::empty(nrows, ncols);
        for (i, cols, vals) in slices {
            debug_assert!(i < nrows);
            debug_assert!(!cols.is_empty());
            debug_assert_eq!(cols.len(), vals.len());
            debug_assert!(h.rows.last().is_none_or(|&p| p < i), "rows not sorted");
            debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} not sorted");
            debug_assert!(cols.iter().all(|&j| j < ncols));
            h.rows.push(i);
            h.col_idx.extend(cols);
            h.vals.extend(vals);
            h.row_ptr.push(h.col_idx.len());
        }
        h
    }

    /// Convert from CSR, dropping the empty-row pointers.
    pub fn from_csr(csr: &Csr<T>) -> Self {
        let mut h = Hyper::empty(csr.nrows(), csr.ncols());
        for i in 0..csr.nrows() {
            let (cols, vals) = csr.row(i);
            if !cols.is_empty() {
                h.rows.push(i);
                h.col_idx.extend_from_slice(cols);
                h.vals.extend_from_slice(vals);
                h.row_ptr.push(h.col_idx.len());
            }
        }
        h
    }

    /// Convert to CSR (materializes the full `nrows + 1` row-pointer
    /// array).
    pub fn to_csr(&self) -> Csr<T> {
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for (k, &i) in self.rows.iter().enumerate() {
            row_ptr[i + 1] = self.row_ptr[k + 1] - self.row_ptr[k];
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr::from_parts(
            self.nrows,
            self.ncols,
            row_ptr,
            self.col_idx.clone(),
            self.vals.clone(),
        )
    }

    #[inline]
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored elements.
    #[inline]
    pub fn nvals(&self) -> usize {
        self.col_idx.len()
    }

    /// The sorted non-empty row indices.
    #[inline]
    pub fn nonempty_rows(&self) -> &[Index] {
        &self.rows
    }

    /// The `k`-th non-empty row as `(row index, columns, values)`.
    #[inline]
    pub fn row_by_pos(&self, k: usize) -> (Index, &[Index], &[T]) {
        let lo = self.row_ptr[k];
        let hi = self.row_ptr[k + 1];
        (self.rows[k], &self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// The stored row `i` as `(columns, values)` — empty slices if row
    /// `i` holds nothing. O(log #nonempty-rows).
    pub fn row(&self, i: Index) -> (&[Index], &[T]) {
        match self.rows.binary_search(&i) {
            Ok(k) => {
                let (_, cols, vals) = self.row_by_pos(k);
                (cols, vals)
            }
            Err(_) => (&[], &[]),
        }
    }

    /// Probe `(i, j)`: `Some(&v)` iff stored.
    pub fn get(&self, i: Index, j: Index) -> Option<&T> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|k| &vals[k])
    }

    /// Iterate all stored tuples `(i, j, &v)` in row-major order —
    /// touches only non-empty rows.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, &T)> + '_ {
        (0..self.rows.len()).flat_map(move |k| {
            let (i, cols, vals) = self.row_by_pos(k);
            cols.iter().zip(vals).map(move |(&j, v)| (i, j, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<i32> {
        // 6 rows, only rows 1 and 4 occupied
        Csr::from_sorted_tuples(6, 4, vec![(1, 0, 10), (1, 3, 11), (4, 2, 12)])
    }

    #[test]
    fn round_trip_preserves_tuples() {
        let csr = sample();
        let h = Hyper::from_csr(&csr);
        assert_eq!(h.nvals(), 3);
        assert_eq!(h.nonempty_rows(), &[1, 4]);
        assert_eq!(h.to_csr(), csr);
    }

    #[test]
    fn row_access_covers_empty_and_occupied() {
        let h = Hyper::from_csr(&sample());
        assert_eq!(h.row(1), (&[0, 3][..], &[10, 11][..]));
        assert_eq!(h.row(0), (&[][..], &[][..]));
        assert_eq!(h.row(5), (&[][..], &[][..]));
        assert_eq!(h.get(4, 2), Some(&12));
        assert_eq!(h.get(4, 1), None);
        assert_eq!(h.get(2, 2), None);
    }

    #[test]
    fn iteration_is_row_major() {
        let h = Hyper::from_csr(&sample());
        let tuples: Vec<(usize, usize, i32)> = h.iter().map(|(i, j, v)| (i, j, *v)).collect();
        assert_eq!(tuples, vec![(1, 0, 10), (1, 3, 11), (4, 2, 12)]);
    }

    #[test]
    fn from_row_slices_assembles() {
        let h = Hyper::from_row_slices(
            10,
            5,
            vec![(2, vec![1, 4], vec![7, 8]), (9, vec![0], vec![9])],
        );
        assert_eq!(h.nvals(), 3);
        assert_eq!(h.get(2, 4), Some(&8));
        assert_eq!(h.get(9, 0), Some(&9));
        assert_eq!(h.to_csr().nvals(), 3);
    }

    #[test]
    fn empty_is_constant_space() {
        let h = Hyper::<i64>::empty(1_000_000, 1_000_000);
        assert_eq!(h.nvals(), 0);
        assert_eq!(h.nonempty_rows().len(), 0);
        assert_eq!(h.row_ptr.len(), 1);
    }
}
