//! Tuple assembly: the substrate of `GrB_Matrix_build` /
//! `GrB_Vector_build`.
//!
//! `build` copies elements from user tuple arrays into a collection,
//! combining duplicates with a caller-supplied binary operator (the BC
//! example passes `GrB_PLUS_INT32` "in case there are any duplicate
//! entries", Fig. 3 line 28).

use crate::algebra::binary::BinaryOp;
use crate::error::{Error, Result};
use crate::index::Index;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

/// Assemble CSR storage from unordered `(row, col, value)` tuples,
/// combining duplicates with `dup`. Fails with `InvalidIndex` on any
/// out-of-bounds index (an API error: the target is left untouched by the
/// caller).
pub fn build_matrix<T: Scalar, F: BinaryOp<T, T, T>>(
    nrows: Index,
    ncols: Index,
    rows: &[Index],
    cols: &[Index],
    vals: &[T],
    dup: &F,
) -> Result<Csr<T>> {
    if rows.len() != cols.len() || rows.len() != vals.len() {
        return Err(Error::InvalidValue(format!(
            "tuple arrays have mismatched lengths: {} rows, {} cols, {} vals",
            rows.len(),
            cols.len(),
            vals.len()
        )));
    }
    for (&i, &j) in rows.iter().zip(cols) {
        if i >= nrows || j >= ncols {
            return Err(Error::InvalidIndex(format!(
                "tuple ({i}, {j}) out of bounds for {nrows}x{ncols} matrix"
            )));
        }
    }
    // Sort tuple order stably by (row, col) so duplicate combination is
    // deterministic and left-to-right in input order.
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by_key(|&k| (rows[k], cols[k]));

    let mut row_ptr = vec![0usize; nrows + 1];
    let mut col_idx: Vec<Index> = Vec::with_capacity(order.len());
    let mut out_vals: Vec<T> = Vec::with_capacity(order.len());
    let mut last: Option<(Index, Index)> = None;
    for &k in &order {
        let key = (rows[k], cols[k]);
        if last == Some(key) {
            let v = out_vals.last_mut().expect("duplicate follows a value");
            *v = dup.apply(v, &vals[k]);
        } else {
            row_ptr[key.0 + 1] += 1;
            col_idx.push(key.1);
            out_vals.push(vals[k].clone());
            last = Some(key);
        }
    }
    for i in 0..nrows {
        row_ptr[i + 1] += row_ptr[i];
    }
    if let Some(e) = dup.poll_error() {
        return Err(e);
    }
    Ok(Csr::from_parts(nrows, ncols, row_ptr, col_idx, out_vals))
}

/// Assemble sparse-vector storage from unordered `(index, value)` tuples,
/// combining duplicates with `dup`.
pub fn build_vector<T: Scalar, F: BinaryOp<T, T, T>>(
    n: Index,
    indices: &[Index],
    vals: &[T],
    dup: &F,
) -> Result<SparseVec<T>> {
    if indices.len() != vals.len() {
        return Err(Error::InvalidValue(format!(
            "tuple arrays have mismatched lengths: {} indices, {} vals",
            indices.len(),
            vals.len()
        )));
    }
    for &i in indices {
        if i >= n {
            return Err(Error::InvalidIndex(format!(
                "index {i} out of bounds for vector of size {n}"
            )));
        }
    }
    let mut order: Vec<usize> = (0..indices.len()).collect();
    order.sort_by_key(|&k| indices[k]);

    let mut out_idx: Vec<Index> = Vec::with_capacity(order.len());
    let mut out_vals: Vec<T> = Vec::with_capacity(order.len());
    for &k in &order {
        if out_idx.last() == Some(&indices[k]) {
            let v = out_vals.last_mut().expect("duplicate follows a value");
            *v = dup.apply(v, &vals[k]);
        } else {
            out_idx.push(indices[k]);
            out_vals.push(vals[k].clone());
        }
    }
    if let Some(e) = dup.poll_error() {
        return Err(e);
    }
    Ok(SparseVec::from_sorted_parts(n, out_idx, out_vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::binary::{First, Plus};

    #[test]
    fn build_sorts_unordered_tuples() {
        let m = build_matrix(
            3,
            3,
            &[2, 0, 1],
            &[1, 2, 0],
            &[30, 10, 20],
            &Plus::<i32>::new(),
        )
        .unwrap();
        assert_eq!(m.to_tuples(), vec![(0, 2, 10), (1, 0, 20), (2, 1, 30)]);
    }

    #[test]
    fn duplicates_combined_with_dup_op_in_input_order() {
        let m = build_matrix(
            2,
            2,
            &[0, 0, 0],
            &[1, 1, 1],
            &[1, 2, 4],
            &Plus::<i32>::new(),
        )
        .unwrap();
        assert_eq!(m.get(0, 1), Some(&7));
        assert_eq!(m.nvals(), 1);

        // First keeps the earliest tuple in input order
        let m = build_matrix(2, 2, &[0, 0], &[1, 1], &[9, 5], &First::<i32>::new()).unwrap();
        assert_eq!(m.get(0, 1), Some(&9));
    }

    #[test]
    fn out_of_bounds_is_invalid_index() {
        let e = build_matrix(2, 2, &[0, 5], &[1, 0], &[1, 2], &Plus::<i32>::new()).unwrap_err();
        assert!(matches!(e, Error::InvalidIndex(_)));
        let e = build_matrix(2, 2, &[0], &[2], &[1], &Plus::<i32>::new()).unwrap_err();
        assert!(matches!(e, Error::InvalidIndex(_)));
    }

    #[test]
    fn mismatched_arrays_are_invalid_value() {
        let e = build_matrix(2, 2, &[0, 1], &[1], &[1, 2], &Plus::<i32>::new()).unwrap_err();
        assert!(matches!(e, Error::InvalidValue(_)));
    }

    #[test]
    fn vector_build_with_duplicates() {
        let v = build_vector(5, &[3, 1, 3], &[10, 20, 5], &Plus::<i32>::new()).unwrap();
        assert_eq!(v.to_tuples(), vec![(1, 20), (3, 15)]);
        assert_eq!(v.nvals(), 2);
    }

    #[test]
    fn vector_out_of_bounds() {
        let e = build_vector(2, &[2], &[1], &Plus::<i32>::new()).unwrap_err();
        assert!(matches!(e, Error::InvalidIndex(_)));
    }

    #[test]
    fn checked_dup_overflow_is_execution_error() {
        use crate::algebra::binary::CheckedPlus;
        let e = build_vector(2, &[0, 0], &[i8::MAX, 1], &CheckedPlus::<i8>::new()).unwrap_err();
        assert!(e.is_execution_error());
    }

    #[test]
    fn empty_build() {
        let m = build_matrix::<i32, _>(3, 4, &[], &[], &[], &Plus::new()).unwrap();
        assert_eq!(m.nvals(), 0);
        assert_eq!(m.nrows(), 3);
    }
}
