//! mmap-backed **cold tiles**: read-only tile blobs served from a
//! file mapping instead of heap allocations (feature `mmap-cold`,
//! unix only).
//!
//! The hot [`Tiled`](super::Tiled) grid keeps every tile on the heap;
//! for graphs larger than RAM (or larger than an rlimit-capped heap)
//! the same 2D grid can instead be **built streaming** — one stripe of
//! tiles in memory at a time — into an on-disk blob file, then
//! traversed through a shared read-only mapping. File-backed
//! `MAP_SHARED` pages are not charged to the process's data segment
//! (`RLIMIT_DATA`), and the kernel pages tiles in and out on demand,
//! so a BFS touches only the frontier's stripes' working set.
//!
//! The file is a host-endian cache, not an interchange format:
//!
//! ```text
//! header   magic, nrows, ncols, grid_rows, grid_cols, value size, dir offset
//! blobs    per non-empty tile, 8-byte aligned:
//!            row_ptr  (tile_rows + 1) × u64
//!            vals     nnz × V          (omitted when V is zero-sized)
//!            cols     nnz × u32        (tile-local column indices)
//! dir      per tile: (blob offset | EMPTY, nnz) × u64
//! ```
//!
//! `row_ptr` lands 8-aligned because blobs are 8-aligned; `vals` and
//! `cols` stay self-aligned because every supported `V` is 0, 4, or 8
//! bytes wide. That makes every access a zero-copy slice straight into
//! the mapping.
//!
//! No external crate: the two syscalls this module needs are declared
//! directly against the platform C ABI.

use std::ffi::c_void;
use std::fs::File;
use std::io::{self, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::mem::{align_of, size_of};
use std::os::unix::io::AsRawFd;
use std::path::Path;

use crate::index::Index;

mod ffi {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_SHARED: i32 = 0x01;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

const MAGIC: u64 = 0x4742_5443_4f4c_4431; // "GBTCOLD1"
const HEADER_LEN: u64 = 56;
/// Directory sentinel for a tile with no stored entries.
const EMPTY: u64 = u64::MAX;

/// Marker for fixed-width value types a cold tile can serve zero-copy
/// from raw file bytes.
///
/// # Safety
///
/// Implementors must be `Copy`, contain no padding, be valid for every
/// bit pattern, and have an alignment of at most 8 that divides their
/// size (so slices stay self-aligned inside a blob).
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for () {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

fn as_bytes<T: Pod>(s: &[T]) -> &[u8] {
    // Pod guarantees no padding and no invalid bytes.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// Streaming builder: feed rows in order, hold at most one stripe of
/// tiles in memory, and get a [`ColdTiled`]-openable file out.
pub struct ColdTiledWriter<V: Pod> {
    file: File,
    nrows: usize,
    ncols: usize,
    grid_rows: usize,
    grid_cols: usize,
    tile_nrows: usize,
    tile_ncols: usize,
    /// Current stripe's buffered tiles, one per tile column.
    stripe: Vec<TileBuf<V>>,
    stripe_rows: usize,
    next_row: usize,
    /// Per-tile `(blob offset | EMPTY, nnz)`, row-major.
    dir: Vec<(u64, u64)>,
    pos: u64,
}

struct TileBuf<V> {
    row_ptr: Vec<u64>,
    cols: Vec<u32>,
    vals: Vec<V>,
}

impl<V> TileBuf<V> {
    fn new() -> Self {
        TileBuf {
            row_ptr: vec![0],
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }
}

impl<V: Pod> ColdTiledWriter<V> {
    /// Start a cold build at `path` (truncating). The grid is clamped
    /// to the matrix dimensions exactly like the hot grid.
    pub fn create(
        path: &Path,
        nrows: usize,
        ncols: usize,
        grid: (usize, usize),
    ) -> io::Result<Self> {
        let (grid_rows, grid_cols) = super::clamp_grid(nrows, ncols, grid);
        let mut file = File::create(path)?;
        // header placeholder; patched by finish()
        file.write_all(&[0u8; HEADER_LEN as usize])?;
        Ok(ColdTiledWriter {
            file,
            nrows,
            ncols,
            grid_rows,
            grid_cols,
            tile_nrows: nrows.div_ceil(grid_rows),
            tile_ncols: ncols.div_ceil(grid_cols),
            stripe: (0..grid_cols).map(|_| TileBuf::new()).collect(),
            stripe_rows: 0,
            next_row: 0,
            dir: Vec::new(),
            pos: HEADER_LEN,
        })
    }

    /// Append the next row (global row `self.next_row`). `cols` must be
    /// sorted ascending; `vals` runs parallel to it.
    pub fn push_row(&mut self, cols: &[Index], vals: &[V]) -> io::Result<()> {
        assert!(self.next_row < self.nrows, "more rows than the matrix has");
        assert_eq!(cols.len(), vals.len());
        let mut p = 0;
        for (tj, buf) in self.stripe.iter_mut().enumerate() {
            let hi = ((tj + 1) * self.tile_ncols).min(self.ncols);
            let start = p;
            while p < cols.len() && cols[p] < hi {
                buf.cols.push((cols[p] - tj * self.tile_ncols) as u32);
                p += 1;
            }
            buf.vals.extend_from_slice(&vals[start..p]);
            buf.row_ptr.push(buf.cols.len() as u64);
        }
        assert_eq!(p, cols.len(), "column index out of range");
        self.next_row += 1;
        self.stripe_rows += 1;
        if self.stripe_rows == self.tile_nrows || self.next_row == self.nrows {
            self.flush_stripe()?;
        }
        Ok(())
    }

    fn flush_stripe(&mut self) -> io::Result<()> {
        for buf in &mut self.stripe {
            if buf.cols.is_empty() {
                self.dir.push((EMPTY, 0));
            } else {
                // 8-align the blob start
                let pad = self.pos.next_multiple_of(8) - self.pos;
                self.file.write_all(&[0u8; 8][..pad as usize])?;
                self.pos += pad;
                self.dir.push((self.pos, buf.cols.len() as u64));
                self.file.write_all(as_bytes(&buf.row_ptr))?;
                self.file.write_all(as_bytes(&buf.vals))?;
                self.file.write_all(as_bytes(&buf.cols))?;
                self.pos += (buf.row_ptr.len() * 8
                    + buf.vals.len() * size_of::<V>()
                    + buf.cols.len() * 4) as u64;
            }
            *buf = TileBuf::new();
        }
        self.stripe_rows = 0;
        Ok(())
    }

    /// Write the directory and header; the file is now openable.
    pub fn finish(mut self) -> io::Result<()> {
        assert_eq!(self.next_row, self.nrows, "not every row was pushed");
        debug_assert_eq!(self.dir.len(), self.grid_rows * self.grid_cols);
        let pad = self.pos.next_multiple_of(8) - self.pos;
        self.file.write_all(&[0u8; 8][..pad as usize])?;
        let dir_offset = self.pos + pad;
        let flat: Vec<u64> = self.dir.iter().flat_map(|&(off, nnz)| [off, nnz]).collect();
        self.file.write_all(as_bytes(&flat))?;
        let header: [u64; 7] = [
            MAGIC,
            self.nrows as u64,
            self.ncols as u64,
            self.grid_rows as u64,
            self.grid_cols as u64,
            size_of::<V>() as u64,
            dir_offset,
        ];
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(as_bytes(&header))?;
        self.file.sync_all()
    }
}

/// An owned read-only mapping; unmapped on drop.
struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// The mapping is immutable for its whole lifetime.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    fn map(file: &File) -> io::Result<Self> {
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty file"));
        }
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// A typed slice at byte offset `off` (must be `T`-aligned; the
    /// writer's layout guarantees it for every slice we read back).
    fn slice<T: Pod>(&self, off: usize, len: usize) -> &[T] {
        let end = off + len * size_of::<T>();
        assert!(end <= self.len, "slice beyond the mapping");
        let ptr = unsafe { (self.ptr as *const u8).add(off) };
        assert_eq!(
            ptr as usize % align_of::<T>().max(1),
            0,
            "misaligned cold-tile slice"
        );
        unsafe { std::slice::from_raw_parts(ptr.cast::<T>(), len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        unsafe {
            ffi::munmap(self.ptr, self.len);
        }
    }
}

/// A read-only 2D tile grid served from a file mapping. Opened from a
/// file written by [`ColdTiledWriter`]; every row read is a zero-copy
/// slice into the mapping.
pub struct ColdTiled<V: Pod> {
    map: Mmap,
    nrows: usize,
    ncols: usize,
    grid_rows: usize,
    grid_cols: usize,
    tile_nrows: usize,
    tile_ncols: usize,
    /// Per-tile `(blob offset | EMPTY, nnz)`, row-major (small: 16
    /// bytes per tile, copied out of the mapping once).
    dir: Vec<(u64, u64)>,
    nvals: usize,
    _v: PhantomData<V>,
}

impl<V: Pod> ColdTiled<V> {
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg);
        if map.len < HEADER_LEN as usize {
            return Err(bad("truncated header"));
        }
        let h: &[u64] = map.slice(0, 7);
        if h[0] != MAGIC {
            return Err(bad("not a cold-tile file"));
        }
        if h[5] as usize != size_of::<V>() {
            return Err(bad("value width does not match the requested type"));
        }
        let (nrows, ncols) = (h[1] as usize, h[2] as usize);
        let (grid_rows, grid_cols) = (h[3] as usize, h[4] as usize);
        let dir_offset = h[6] as usize;
        let ntiles = grid_rows * grid_cols;
        if dir_offset + ntiles * 16 > map.len {
            return Err(bad("truncated directory"));
        }
        let flat: &[u64] = map.slice(dir_offset, ntiles * 2);
        let dir: Vec<(u64, u64)> = flat.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let nvals = dir.iter().map(|&(_, nnz)| nnz as usize).sum();
        Ok(ColdTiled {
            map,
            nrows,
            ncols,
            grid_rows,
            grid_cols,
            tile_nrows: nrows.div_ceil(grid_rows),
            tile_ncols: ncols.div_ceil(grid_cols),
            dir,
            nvals,
            _v: PhantomData,
        })
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nvals(&self) -> usize {
        self.nvals
    }

    pub fn grid(&self) -> (usize, usize) {
        (self.grid_rows, self.grid_cols)
    }

    /// One tile-local row: `(cols, vals)` slices into the mapping.
    /// `local` is relative to the tile's stripe.
    pub fn tile_row(&self, ti: usize, tj: usize, local: usize) -> (&[u32], &[V]) {
        let (off, nnz) = self.dir[ti * self.grid_cols + tj];
        if off == EMPTY {
            return (&[], &[]);
        }
        let rows = (self.nrows - ti * self.tile_nrows).min(self.tile_nrows);
        debug_assert!(local < rows);
        let row_ptr: &[u64] = self.map.slice(off as usize, rows + 1);
        let (lo, hi) = (row_ptr[local] as usize, row_ptr[local + 1] as usize);
        let vals_off = off as usize + (rows + 1) * 8;
        let cols_off = vals_off + nnz as usize * size_of::<V>();
        let vals: &[V] = self.map.slice(vals_off, nnz as usize);
        let cols: &[u32] = self.map.slice(cols_off, nnz as usize);
        (&cols[lo..hi], &vals[lo..hi])
    }

    /// Visit global row `i`'s segments left-to-right: `f(col_offset,
    /// tile_local_cols, vals)` — ascending global column order, like
    /// [`OrientedTiles::for_row`](super::OrientedTiles::for_row).
    pub fn for_row(&self, i: usize, f: &mut impl FnMut(usize, &[u32], &[V])) {
        let ti = i / self.tile_nrows;
        let local = i - ti * self.tile_nrows;
        for tj in 0..self.grid_cols {
            let (cols, vals) = self.tile_row(ti, tj, local);
            if !cols.is_empty() {
                f(tj * self.tile_ncols, cols, vals);
            }
        }
    }

    /// Level-synchronous BFS over the cold grid (rows as adjacency;
    /// `u32::MAX` marks unreached). Heap use is `O(nrows)` — levels and
    /// frontier only; the graph itself stays in the mapping.
    pub fn bfs_levels(&self, src: usize) -> Vec<u32> {
        let mut levels = vec![u32::MAX; self.nrows];
        let mut frontier = vec![src];
        levels[src] = 0;
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                self.for_row(u, &mut |off, cols, _vals| {
                    for &c in cols {
                        let v = off + c as usize;
                        if levels[v] == u32::MAX {
                            levels[v] = level;
                            next.push(v);
                        }
                    }
                });
            }
            frontier = next;
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::super::Tiled;
    use super::*;
    use crate::storage::csr::Csr;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gb-cold-{name}-{}", std::process::id()));
        p
    }

    fn write_csr(path: &Path, csr: &Csr<f64>, grid: (usize, usize)) {
        let mut w = ColdTiledWriter::<f64>::create(path, csr.nrows(), csr.ncols(), grid).unwrap();
        for i in 0..csr.nrows() {
            let (cols, vals) = csr.row(i);
            w.push_row(cols, vals).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn roundtrip_matches_hot_tiles() {
        let mut tuples: Vec<(usize, usize, f64)> = (0..400)
            .map(|k| ((k * 13) % 37, (k * 7) % 23, k as f64 * 0.5))
            .collect();
        tuples.sort_by_key(|&(i, j, _)| (i, j));
        tuples.dedup_by_key(|&mut (i, j, _)| (i, j));
        let csr = Csr::from_sorted_tuples(37, 23, tuples);
        for grid in [(1, 1), (3, 3), (5, 2), (37, 23)] {
            let path = tmp(&format!("rt-{}-{}", grid.0, grid.1));
            write_csr(&path, &csr, grid);
            let cold = ColdTiled::<f64>::open(&path).unwrap();
            assert_eq!(cold.nvals(), csr.nvals());
            assert_eq!(cold.grid(), super::super::clamp_grid(37, 23, grid));
            for i in 0..csr.nrows() {
                let (rc, rv) = csr.row(i);
                let mut cols = Vec::new();
                let mut vals = Vec::new();
                cold.for_row(i, &mut |off, cs, vs| {
                    cols.extend(cs.iter().map(|&c| off + c as usize));
                    vals.extend_from_slice(vs);
                });
                assert_eq!(cols, rc, "row {i} grid {grid:?}");
                assert_eq!(vals, rv, "row {i} grid {grid:?}");
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn pattern_only_bfs_matches_in_memory_reference() {
        // ring + chords: connected, known eccentricity structure
        let n = 200usize;
        let mut tuples: Vec<(usize, usize, ())> = Vec::new();
        for i in 0..n {
            tuples.push((i, (i + 1) % n, ()));
            tuples.push((i, (i + 7) % n, ()));
        }
        tuples.sort_by_key(|&(i, j, _)| (i, j));
        tuples.dedup_by_key(|&mut (i, j, _)| (i, j));
        let csr = Csr::from_sorted_tuples(n, n, tuples);
        let path = tmp("bfs");
        let mut w = ColdTiledWriter::<()>::create(&path, n, n, (4, 4)).unwrap();
        for i in 0..n {
            let (cols, vals) = csr.row(i);
            w.push_row(cols, vals).unwrap();
        }
        w.finish().unwrap();
        let cold = ColdTiled::<()>::open(&path).unwrap();

        // reference BFS straight off the Csr
        let mut want = vec![u32::MAX; n];
        let mut frontier = vec![0usize];
        want[0] = 0;
        let mut level = 0;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                let (cols, _) = csr.row(u);
                for &v in cols {
                    if want[v] == u32::MAX {
                        want[v] = level;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        assert_eq!(cold.bfs_levels(0), want);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hot_and_cold_grids_agree_tilewise() {
        let mut t: Vec<(usize, usize, f64)> = (0..300)
            .map(|k| ((k * 17) % 50, (k * 11) % 40, k as f64))
            .collect();
        t.sort_by_key(|&(i, j, _)| (i, j));
        t.dedup_by_key(|&mut (i, j, _)| (i, j));
        let csr = Csr::from_sorted_tuples(50, 40, t);
        let hot = Tiled::from_csr(&csr, (4, 4));
        let path = tmp("hotcold");
        write_csr(&path, &csr, (4, 4));
        let cold = ColdTiled::<f64>::open(&path).unwrap();
        assert_eq!(cold.grid(), hot.grid());
        assert_eq!(cold.nvals(), hot.nvals());
        let _ = std::fs::remove_file(&path);
    }
}
