//! Sparse storage substrate: CSR matrices, sorted sparse vectors, the
//! tuple-assembly (`build`) routines, the pending-update delta logs, and
//! MVCC snapshots over them.

pub mod coo;
pub mod csr;
pub mod delta;
pub mod engine;
pub mod snapshot;
pub mod tiled;
pub mod vec;

pub use coo::{build_matrix, build_vector};
pub use csr::Csr;
pub use delta::{DeltaEntry, DeltaLog, DeltaOp, DeltaStats};
pub use engine::{Bitmap, Format, FormatPolicy, Hyper, Layout, MatrixStore};
pub use snapshot::{snapshot_stats, MatrixSnapshot, SnapshotStats, VectorSnapshot};
pub use tiled::Tiled;
pub use vec::SparseVec;
