//! Sparse storage substrate: CSR matrices, sorted sparse vectors, and the
//! tuple-assembly (`build`) routines.

pub mod coo;
pub mod csr;
pub mod delta;
pub mod engine;
pub mod vec;

pub use coo::{build_matrix, build_vector};
pub use csr::Csr;
pub use delta::{DeltaEntry, DeltaLog, DeltaOp};
pub use engine::{Bitmap, Format, FormatPolicy, Hyper, Layout, MatrixStore};
pub use vec::SparseVec;
