//! Sparse vector storage.
//!
//! A GraphBLAS vector `v = <D, N, {(i, v_i)}>` (paper §III-A) stores its
//! content as sorted `(index, value)` pairs. As with matrices, absent
//! elements are undefined, not zero.

use crate::index::Index;
use crate::scalar::Scalar;

/// Sorted sparse vector storage: the content of a GraphBLAS vector.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec<T> {
    n: Index,
    /// Strictly increasing stored indices.
    idx: Vec<Index>,
    /// Values, parallel to `idx`.
    vals: Vec<T>,
}

impl<T: Scalar> SparseVec<T> {
    /// An empty vector (no stored elements) of size `n`.
    pub fn empty(n: Index) -> Self {
        SparseVec {
            n,
            idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Assemble from sorted, duplicate-free parts.
    pub fn from_sorted_parts(n: Index, idx: Vec<Index>, vals: Vec<T>) -> Self {
        debug_assert_eq!(idx.len(), vals.len());
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]), "indices not sorted");
        debug_assert!(idx.iter().all(|&i| i < n), "index out of range");
        SparseVec { n, idx, vals }
    }

    /// A fully dense vector holding `value` at every index.
    pub fn full(n: Index, value: T) -> Self {
        SparseVec {
            n,
            idx: (0..n).collect(),
            vals: vec![value; n],
        }
    }

    /// Build from a dense slice, storing every element (including zeros:
    /// GraphBLAS has no implied zero to elide).
    pub fn from_dense(vals: &[T]) -> Self {
        SparseVec {
            n: vals.len(),
            idx: (0..vals.len()).collect(),
            vals: vals.to_vec(),
        }
    }

    /// Size `N` of the vector (`GrB_Vector_size`).
    #[inline]
    pub fn size(&self) -> Index {
        self.n
    }

    /// Number of stored elements (`GrB_Vector_nvals`).
    #[inline]
    pub fn nvals(&self) -> usize {
        self.idx.len()
    }

    #[inline]
    pub fn indices(&self) -> &[Index] {
        &self.idx
    }

    #[inline]
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    #[inline]
    pub fn vals_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// `v(i)`: a reference to the stored value, or `None` if undefined.
    pub fn get(&self, i: Index) -> Option<&T> {
        self.idx.binary_search(&i).ok().map(|k| &self.vals[k])
    }

    /// Insert or overwrite element `i` (`GrB_Vector_setElement`).
    pub fn set(&mut self, i: Index, v: T) {
        match self.idx.binary_search(&i) {
            Ok(k) => self.vals[k] = v,
            Err(k) => {
                self.idx.insert(k, i);
                self.vals.insert(k, v);
            }
        }
    }

    /// Remove element `i` if stored (`GrB_Vector_removeElement`); returns
    /// whether an element was removed.
    pub fn remove(&mut self, i: Index) -> bool {
        match self.idx.binary_search(&i) {
            Ok(k) => {
                self.idx.remove(k);
                self.vals.remove(k);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterate over stored `(i, &v)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, &T)> + '_ {
        self.idx.iter().copied().zip(self.vals.iter())
    }

    /// Extract all tuples (`GrB_Vector_extractTuples`).
    pub fn to_tuples(&self) -> Vec<(Index, T)> {
        self.iter().map(|(i, v)| (i, v.clone())).collect()
    }

    /// Apply `f` to every stored value, keeping the pattern.
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(&T) -> U) -> SparseVec<U> {
        SparseVec {
            n: self.n,
            idx: self.idx.clone(),
            vals: self.vals.iter().map(&mut f).collect(),
        }
    }

    /// Keep only stored elements satisfying the predicate.
    pub fn filter(&self, mut keep: impl FnMut(Index, &T) -> bool) -> SparseVec<T> {
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (i, v) in self.iter() {
            if keep(i, v) {
                idx.push(i);
                vals.push(v.clone());
            }
        }
        SparseVec {
            n: self.n,
            idx,
            vals,
        }
    }

    /// Dense rendering with `None` for absent elements (test helper).
    pub fn to_dense(&self) -> Vec<Option<T>> {
        let mut d = vec![None; self.n];
        for (i, v) in self.iter() {
            d[i] = Some(v.clone());
        }
        d
    }
}

impl<T> crate::exec::node::StorageMeta for SparseVec<T> {
    fn trace_shape(&self) -> (usize, usize) {
        (self.n, 1)
    }
    fn trace_nvals(&self) -> usize {
        self.idx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let v = SparseVec::<i32>::empty(5);
        assert_eq!(v.size(), 5);
        assert_eq!(v.nvals(), 0);
        let f = SparseVec::full(3, 1.0f32);
        assert_eq!(f.nvals(), 3);
        assert_eq!(f.get(2), Some(&1.0));
    }

    #[test]
    fn set_get_remove() {
        let mut v = SparseVec::empty(10);
        v.set(7, 70);
        v.set(2, 20);
        v.set(7, 77); // overwrite
        assert_eq!(v.get(7), Some(&77));
        assert_eq!(v.get(2), Some(&20));
        assert_eq!(v.get(3), None);
        assert_eq!(v.nvals(), 2);
        assert!(v.remove(2));
        assert!(!v.remove(2));
        assert_eq!(v.nvals(), 1);
        assert_eq!(v.to_tuples(), vec![(7, 77)]);
    }

    #[test]
    fn insertion_keeps_sorted_order() {
        let mut v = SparseVec::empty(6);
        for i in [5, 0, 3, 1] {
            v.set(i, i as i64);
        }
        assert_eq!(v.indices(), &[0, 1, 3, 5]);
    }

    #[test]
    fn from_dense_stores_everything() {
        let v = SparseVec::from_dense(&[0, 1, 0, 2]);
        // zeros are stored values, not absent: no implied zero
        assert_eq!(v.nvals(), 4);
        assert_eq!(v.get(0), Some(&0));
    }

    #[test]
    fn map_and_filter() {
        let v = SparseVec::from_sorted_parts(4, vec![0, 2, 3], vec![1, 2, 3]);
        let m = v.map(|x| x * 10);
        assert_eq!(m.to_tuples(), vec![(0, 10), (2, 20), (3, 30)]);
        let f = v.filter(|_, x| x % 2 == 1);
        assert_eq!(f.to_tuples(), vec![(0, 1), (3, 3)]);
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn to_dense_roundtrip() {
        let v = SparseVec::from_sorted_parts(4, vec![1, 3], vec![9, 8]);
        assert_eq!(v.to_dense(), vec![None, Some(9), None, Some(8)]);
    }
}
