//! Compressed-sparse-row storage.
//!
//! The opaque [`Matrix`](crate::object::Matrix) stores its content
//! `L(A) = {(i, j, A_ij)}` (paper §III-A) in CSR form: a row-pointer
//! array, sorted column indices per row, and values. Absent elements are
//! *undefined* — there is no implied zero anywhere in this layer; kernels
//! operate on stored-index sets only, exactly as in the paper's
//! set-notation definition of the operations.

use crate::index::Index;
use crate::scalar::Scalar;

/// CSR sparse matrix storage: the content of a GraphBLAS matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    nrows: Index,
    ncols: Index,
    /// `row_ptr[i]..row_ptr[i+1]` is the slice of row `i`; length `nrows+1`.
    row_ptr: Vec<usize>,
    /// Column indices, strictly increasing within each row.
    col_idx: Vec<Index>,
    /// Values, parallel to `col_idx`.
    vals: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// An empty matrix (no stored elements) of the given shape.
    pub fn empty(nrows: Index, ncols: Index) -> Self {
        Csr {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Assemble from raw parts. Invariants (checked in debug builds):
    /// `row_ptr` is monotone with `row_ptr[0] == 0` and
    /// `row_ptr[nrows] == col_idx.len() == vals.len()`; column indices are
    /// strictly increasing within each row and `< ncols`.
    pub fn from_parts(
        nrows: Index,
        ncols: Index,
        row_ptr: Vec<usize>,
        col_idx: Vec<Index>,
        vals: Vec<T>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(*row_ptr.first().unwrap_or(&0), 0);
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        debug_assert_eq!(col_idx.len(), vals.len());
        #[cfg(debug_assertions)]
        for i in 0..nrows {
            let r = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            debug_assert!(r.windows(2).all(|w| w[0] < w[1]), "row {i} not sorted");
            debug_assert!(r.iter().all(|&j| j < ncols), "row {i} col out of range");
        }
        Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Build from tuples that are already sorted by `(row, col)` with no
    /// duplicates.
    pub fn from_sorted_tuples(
        nrows: Index,
        ncols: Index,
        tuples: impl IntoIterator<Item = (Index, Index, T)>,
    ) -> Self {
        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        #[cfg(debug_assertions)]
        let mut last: Option<(Index, Index)> = None;
        for (i, j, v) in tuples {
            debug_assert!(i < nrows && j < ncols);
            #[cfg(debug_assertions)]
            {
                debug_assert!(
                    last.is_none_or(|l| l < (i, j)),
                    "tuples not strictly sorted by (row, col) at ({i}, {j})"
                );
                last = Some((i, j));
            }
            row_ptr[i + 1] += 1;
            col_idx.push(j);
            vals.push(v);
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr::from_parts(nrows, ncols, row_ptr, col_idx, vals)
    }

    #[inline]
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored elements (`GrB_Matrix_nvals`).
    #[inline]
    pub fn nvals(&self) -> usize {
        self.col_idx.len()
    }

    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    #[inline]
    pub fn col_idx(&self) -> &[Index] {
        &self.col_idx
    }

    #[inline]
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    #[inline]
    pub fn vals_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// The stored row `i` as `(column indices, values)`.
    #[inline]
    pub fn row(&self, i: Index) -> (&[Index], &[T]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Number of stored elements in row `i`.
    #[inline]
    pub fn row_nvals(&self, i: Index) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// `A(i, j)`: a reference to the stored value, or `None` if the element
    /// is not stored (the paper's "undefined").
    pub fn get(&self, i: Index, j: Index) -> Option<&T> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|k| &vals[k])
    }

    /// Iterate over all stored tuples `(i, j, &v)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, &T)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, v)| (i, j, v))
        })
    }

    /// Extract all tuples (`GrB_Matrix_extractTuples`), row-major.
    pub fn to_tuples(&self) -> Vec<(Index, Index, T)> {
        self.iter().map(|(i, j, v)| (i, j, v.clone())).collect()
    }

    /// The transpose `A^T = <D, N, M, {(j, i, A_ij)}>` (paper §III-A),
    /// via counting sort — O(nvals + nrows + ncols).
    pub fn transpose(&self) -> Csr<T> {
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &j in &self.col_idx {
            row_ptr[j + 1] += 1;
        }
        for j in 0..self.ncols {
            row_ptr[j + 1] += row_ptr[j];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0 as Index; self.nvals()];
        let mut vals: Vec<Option<T>> = vec![None; self.nvals()];
        for i in 0..self.nrows {
            let (cols, v) = self.row(i);
            for (k, &j) in cols.iter().enumerate() {
                let p = cursor[j];
                cursor[j] += 1;
                col_idx[p] = i;
                vals[p] = Some(v[k].clone());
            }
        }
        let vals = vals.into_iter().map(|o| o.expect("filled")).collect();
        Csr::from_parts(self.ncols, self.nrows, row_ptr, col_idx, vals)
    }

    /// Apply `f` to every stored value, producing a new storage with the
    /// same pattern (the `apply` kernel's core).
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(&T) -> U) -> Csr<U> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            vals: self.vals.iter().map(&mut f).collect(),
        }
    }

    /// Keep only stored elements satisfying the predicate (pattern and
    /// values), preserving order.
    pub fn filter(&self, mut keep: impl FnMut(Index, Index, &T) -> bool) -> Csr<T> {
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for i in 0..self.nrows {
            let (cols, v) = self.row(i);
            for (k, &j) in cols.iter().enumerate() {
                if keep(i, j, &v[k]) {
                    col_idx.push(j);
                    vals.push(v[k].clone());
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Insert or overwrite element `(i, j)` (`GrB_Matrix_setElement`).
    /// O(nvals) worst case — CSR favors bulk `build` over point updates.
    pub fn set_element(&mut self, i: Index, j: Index, v: T) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.vals[lo + k] = v,
            Err(k) => {
                self.col_idx.insert(lo + k, j);
                self.vals.insert(lo + k, v);
                for p in &mut self.row_ptr[i + 1..] {
                    *p += 1;
                }
            }
        }
    }

    /// Remove element `(i, j)` if stored (`GrB_Matrix_removeElement`);
    /// returns whether an element was removed.
    pub fn remove_element(&mut self, i: Index, j: Index) -> bool {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => {
                self.col_idx.remove(lo + k);
                self.vals.remove(lo + k);
                for p in &mut self.row_ptr[i + 1..] {
                    *p -= 1;
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Dense row-major rendering with `None` for absent elements
    /// (test/debug helper; absent ≠ zero, so the dense form is `Option`al).
    pub fn to_dense(&self) -> Vec<Vec<Option<T>>> {
        let mut d = vec![vec![None; self.ncols]; self.nrows];
        for (i, j, v) in self.iter() {
            d[i][j] = Some(v.clone());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<i32> {
        // [ 1 . 2 ]
        // [ . . . ]
        // [ 3 4 . ]
        Csr::from_sorted_tuples(3, 3, vec![(0, 0, 1), (0, 2, 2), (2, 0, 3), (2, 1, 4)])
    }

    #[test]
    fn empty_has_no_values() {
        let m = Csr::<f32>::empty(4, 5);
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 5);
        assert_eq!(m.nvals(), 0);
        assert_eq!(m.get(2, 3), None);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn zero_dimension_storage_is_representable() {
        // The object layer rejects M == 0 || N == 0 per the spec; storage
        // itself stays total.
        let m = Csr::<i32>::empty(0, 0);
        assert_eq!(m.nvals(), 0);
    }

    #[test]
    fn get_distinguishes_stored_from_undefined() {
        let m = sample();
        assert_eq!(m.get(0, 0), Some(&1));
        assert_eq!(m.get(0, 1), None); // undefined, not zero
        assert_eq!(m.get(2, 1), Some(&4));
        assert_eq!(m.get(1, 1), None);
    }

    #[test]
    fn rows_and_iteration() {
        let m = sample();
        assert_eq!(m.row(0), (&[0, 2][..], &[1, 2][..]));
        assert_eq!(m.row(1), (&[][..], &[][..]));
        assert_eq!(m.row_nvals(2), 2);
        assert_eq!(
            m.to_tuples(),
            vec![(0, 0, 1), (0, 2, 2), (2, 0, 3), (2, 1, 4)]
        );
    }

    #[test]
    fn transpose_swaps_tuples() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 3);
        assert_eq!(
            t.to_tuples(),
            vec![(0, 0, 1), (0, 2, 3), (1, 2, 4), (2, 0, 2)]
        );
        // involution
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let m = Csr::from_sorted_tuples(2, 4, vec![(0, 3, 10), (1, 0, 20)]);
        let t = m.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(3, 0), Some(&10));
        assert_eq!(t.get(0, 1), Some(&20));
    }

    #[test]
    fn map_preserves_pattern() {
        let m = sample();
        let d = m.map(|v| *v as f64 * 0.5);
        assert_eq!(d.nvals(), m.nvals());
        assert_eq!(d.get(2, 1), Some(&2.0));
        assert_eq!(d.get(1, 1), None);
    }

    #[test]
    fn filter_drops_entries() {
        let m = sample();
        let f = m.filter(|_, _, v| *v % 2 == 1);
        assert_eq!(f.to_tuples(), vec![(0, 0, 1), (2, 0, 3)]);
        assert_eq!(f.nrows(), 3);
    }

    #[test]
    fn set_and_remove_elements() {
        let mut m = sample();
        m.set_element(1, 1, 99); // into an empty row
        assert_eq!(m.get(1, 1), Some(&99));
        assert_eq!(m.nvals(), 5);
        m.set_element(0, 0, 7); // overwrite
        assert_eq!(m.get(0, 0), Some(&7));
        assert_eq!(m.nvals(), 5);
        m.set_element(0, 1, 8); // insert mid-row
        assert_eq!(m.row(0), (&[0, 1, 2][..], &[7, 8, 2][..]));
        assert!(m.remove_element(0, 1));
        assert!(!m.remove_element(0, 1));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(2, 0), Some(&3)); // later rows intact
    }

    #[test]
    fn to_dense_uses_option() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[0][0], Some(1));
        assert_eq!(d[0][1], None);
        assert_eq!(d[2][1], Some(4));
    }
}
