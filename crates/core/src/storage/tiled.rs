//! 2D-tiled hypersparse storage: a grid of independently formatted
//! blocks behind one [`MatrixStore`].
//!
//! A single-slab store caps graph scale at one allocation and gives the
//! kernels one flat row partition to chunk over. The tiled layout (the
//! "parallel hypersparse" direction of GraphBLAS Mathematical
//! Opportunities, and the 2D decompositions of the CombBLAS line of
//! work) splits the index space into a `grid_rows × grid_cols` grid of
//! *local-indexed* blocks, each an ordinary [`MatrixStore`] whose layout
//! the existing [`FormatPolicy::Auto`] picks per block — a dense corner
//! goes bitmap while an empty fringe stays hypersparse, inside one
//! logical matrix. The tile is also the unit of everything else:
//!
//! * **property caches** — each tile memoizes its own row/col degrees
//!   and views, so a flush that touches one tile leaves every other
//!   tile's caches (and `Arc` identity) intact;
//! * **delta flush** — pending runs are partitioned per tile and only
//!   dirty tiles are re-merged ([`crate::kernel::merge::merge_into_store`]);
//! * **kernel scheduling** — tile tasks ride the shared pool as ordinary
//!   chunk work with deterministic in-order merges, so tiled output is
//!   bitwise identical to slab output at any parallelism degree;
//! * **out-of-core residency** — the feature-gated `cold` module keeps
//!   read-only tiles in an mmap'd file for graphs larger than RAM.
//!
//! **Determinism contract.** Within one logical row (in either
//! orientation) tiles are visited left-to-right, so concatenated tile
//! segments enumerate stored entries in ascending global index order —
//! exactly the order every slab kernel reads a CSR row in. Any kernel
//! that folds a row's entries left-to-right therefore produces bitwise
//! identical results through [`OrientedTiles`] and through an assembled
//! slab.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

use crate::index::Index;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::engine::{FormatPolicy, MatrixStore};

#[cfg(feature = "mmap-cold")]
pub mod cold;

/// A 2D grid of local-indexed storage blocks holding one matrix value.
#[derive(Debug)]
pub struct Tiled<T> {
    nrows: Index,
    ncols: Index,
    grid_rows: usize,
    grid_cols: usize,
    /// Row span of every stripe but possibly the last (`⌈nrows/grid_rows⌉`).
    tile_nrows: Index,
    /// Column span of every tile column but possibly the last.
    tile_ncols: Index,
    /// `grid_rows * grid_cols` blocks, row-major; `None` = empty tile
    /// (no storage at all — the hypersparse idea applied to the grid).
    tiles: Vec<Option<Arc<MatrixStore<T>>>>,
    nvals: usize,
}

impl<T> Clone for Tiled<T> {
    fn clone(&self) -> Self {
        Tiled {
            nrows: self.nrows,
            ncols: self.ncols,
            grid_rows: self.grid_rows,
            grid_cols: self.grid_cols,
            tile_nrows: self.tile_nrows,
            tile_ncols: self.tile_ncols,
            tiles: self.tiles.clone(),
            nvals: self.nvals,
        }
    }
}

/// Clamp a requested grid to the shape: at least one tile per axis, and
/// never more tiles than rows/columns.
pub fn clamp_grid(nrows: Index, ncols: Index, grid: (usize, usize)) -> (usize, usize) {
    (
        grid.0.max(1).min(nrows.max(1)),
        grid.1.max(1).min(ncols.max(1)),
    )
}

impl<T: Scalar> Tiled<T> {
    /// Partition a CSR slab into a `grid` of blocks, each stored under
    /// [`FormatPolicy::Auto`] — per-tile format autonomy.
    pub fn from_csr(csr: &Csr<T>, grid: (usize, usize)) -> Self {
        let (nrows, ncols) = (csr.nrows(), csr.ncols());
        let (gr, gc) = clamp_grid(nrows, ncols, grid);
        let tile_nrows = nrows.div_ceil(gr);
        let tile_ncols = ncols.div_ceil(gc);
        let mut tiles: Vec<Option<Arc<MatrixStore<T>>>> = Vec::with_capacity(gr * gc);
        let mut nvals = 0usize;
        for ti in 0..gr {
            let r0 = (ti * tile_nrows).min(nrows);
            let r1 = ((ti + 1) * tile_nrows).min(nrows);
            let local_rows = r1 - r0;
            // one pass over the stripe's rows splits each sorted row into
            // per-tile local-column segments, preserving order
            let mut parts: Vec<(Vec<usize>, Vec<Index>, Vec<T>)> = (0..gc)
                .map(|_| (vec![0usize], Vec::new(), Vec::new()))
                .collect();
            for r in r0..r1 {
                let (cols, vals) = csr.row(r);
                for (j, v) in cols.iter().zip(vals) {
                    let tj = j / tile_ncols;
                    let part = &mut parts[tj];
                    part.1.push(j - tj * tile_ncols);
                    part.2.push(v.clone());
                }
                for part in parts.iter_mut() {
                    part.0.push(part.1.len());
                }
            }
            for (tj, (row_ptr, col_idx, vals)) in parts.into_iter().enumerate() {
                if col_idx.is_empty() {
                    tiles.push(None);
                    continue;
                }
                let c0 = tj * tile_ncols;
                let c1 = ((tj + 1) * tile_ncols).min(ncols);
                nvals += col_idx.len();
                let block = Csr::from_parts(local_rows, c1 - c0, row_ptr, col_idx, vals);
                tiles.push(Some(Arc::new(MatrixStore::from_csr(
                    block,
                    FormatPolicy::Auto,
                ))));
            }
        }
        Tiled {
            nrows,
            ncols,
            grid_rows: gr,
            grid_cols: gc,
            tile_nrows,
            tile_ncols,
            tiles,
            nvals,
        }
    }

    /// Assemble from an existing grid of blocks (the tile-granular flush
    /// path: clean tiles keep their `Arc` — and with it every memoized
    /// view and property cache).
    pub fn from_tiles(
        nrows: Index,
        ncols: Index,
        grid: (usize, usize),
        tiles: Vec<Option<Arc<MatrixStore<T>>>>,
    ) -> Self {
        let (gr, gc) = clamp_grid(nrows, ncols, grid);
        debug_assert_eq!(tiles.len(), gr * gc);
        let nvals = tiles.iter().flatten().map(|t| t.nvals()).sum();
        Tiled {
            nrows,
            ncols,
            grid_rows: gr,
            grid_cols: gc,
            tile_nrows: nrows.div_ceil(gr),
            tile_ncols: ncols.div_ceil(gc),
            tiles,
            nvals,
        }
    }

    #[inline]
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    #[inline]
    pub fn nvals(&self) -> usize {
        self.nvals
    }

    /// `(grid_rows, grid_cols)`.
    #[inline]
    pub fn grid(&self) -> (usize, usize) {
        (self.grid_rows, self.grid_cols)
    }

    /// `(tile_nrows, tile_ncols)`: the span of every non-edge tile.
    #[inline]
    pub fn tile_span(&self) -> (Index, Index) {
        (self.tile_nrows, self.tile_ncols)
    }

    /// The block at grid position `(ti, tj)`, if it holds any elements.
    #[inline]
    pub fn tile(&self, ti: usize, tj: usize) -> Option<&Arc<MatrixStore<T>>> {
        self.tiles[ti * self.grid_cols + tj].as_ref()
    }

    /// All blocks, row-major over the grid (the flush path's input).
    #[inline]
    pub fn tiles(&self) -> &[Option<Arc<MatrixStore<T>>>] {
        &self.tiles
    }

    /// Global index bounds `(r0, r1, c0, c1)` of tile `(ti, tj)`.
    pub fn tile_bounds(&self, ti: usize, tj: usize) -> (Index, Index, Index, Index) {
        (
            (ti * self.tile_nrows).min(self.nrows),
            ((ti + 1) * self.tile_nrows).min(self.nrows),
            (tj * self.tile_ncols).min(self.ncols),
            ((tj + 1) * self.tile_ncols).min(self.ncols),
        )
    }

    /// The stripe (tile row) holding global row `i`.
    #[inline]
    pub fn stripe_of(&self, i: Index) -> usize {
        i / self.tile_nrows
    }

    /// The tile column holding global column `j`.
    #[inline]
    pub fn tile_col_of(&self, j: Index) -> usize {
        j / self.tile_ncols
    }

    /// Point probe in tile-local coordinates.
    pub fn get(&self, i: Index, j: Index) -> Option<&T> {
        let (ti, tj) = (self.stripe_of(i), self.tile_col_of(j));
        self.tile(ti, tj)?
            .get(i - ti * self.tile_nrows, j - tj * self.tile_ncols)
    }

    /// Reassemble the single-slab CSR: per global row, concatenate the
    /// stripe's tile rows left-to-right with column offsets — ascending
    /// global column order by construction.
    pub fn to_csr(&self) -> Csr<T> {
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx = Vec::with_capacity(self.nvals);
        let mut vals = Vec::with_capacity(self.nvals);
        for ti in 0..self.grid_rows {
            let (r0, r1, _, _) = self.tile_bounds(ti, 0);
            let views: Vec<(Index, Arc<Csr<T>>)> = (0..self.grid_cols)
                .filter_map(|tj| {
                    self.tile(ti, tj)
                        .map(|s| (tj * self.tile_ncols, s.row_csr()))
                })
                .collect();
            for r in r0..r1 {
                for (offset, view) in &views {
                    let (cols, vv) = view.row(r - r0);
                    col_idx.extend(cols.iter().map(|j| offset + j));
                    vals.extend_from_slice(vv);
                }
                row_ptr[r + 1] = col_idx.len();
            }
        }
        Csr::from_parts(self.nrows, self.ncols, row_ptr, col_idx, vals)
    }

    /// Per-row stored-element counts, summed from each tile's own
    /// memoized cache — a flush that swaps one tile recomputes only that
    /// tile's contribution.
    pub fn row_degrees_sum(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.nrows];
        for ti in 0..self.grid_rows {
            let r0 = (ti * self.tile_nrows).min(self.nrows);
            for tj in 0..self.grid_cols {
                if let Some(t) = self.tile(ti, tj) {
                    for (k, d) in t.row_degrees().iter().enumerate() {
                        deg[r0 + k] += d;
                    }
                }
            }
        }
        deg
    }

    /// Per-column stored-element counts; same per-tile aggregation as
    /// [`Tiled::row_degrees_sum`].
    pub fn col_degrees_sum(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.ncols];
        for tj in 0..self.grid_cols {
            let c0 = (tj * self.tile_ncols).min(self.ncols);
            for ti in 0..self.grid_rows {
                if let Some(t) = self.tile(ti, tj) {
                    for (k, d) in t.col_degrees().iter().enumerate() {
                        deg[c0 + k] += d;
                    }
                }
            }
        }
        deg
    }
}

/// Lazy per-tile CSR views of one orientation over a [`Tiled`] value —
/// the tile-grid analog of [`MatrixStore::row_csr`]/`col_csr`. Rows of
/// the *logical* oriented matrix are served as ascending-offset segments
/// drawn from the tiles that intersect them; a tile's view materializes
/// the first time any row touches it (and only then — a push step over a
/// narrow frontier transposes only the tile columns the frontier hits).
pub struct OrientedTiles<'a, T> {
    t: &'a Tiled<T>,
    /// `true`: logical rows are A's columns (the reverse orientation).
    transposed: bool,
    views: Vec<OnceLock<Arc<Csr<T>>>>,
}

impl<'a, T: Scalar> OrientedTiles<'a, T> {
    pub fn new(t: &'a Tiled<T>, transposed: bool) -> Self {
        OrientedTiles {
            t,
            transposed,
            views: (0..t.grid_rows * t.grid_cols)
                .map(|_| OnceLock::new())
                .collect(),
        }
    }

    /// Number of logical rows in this orientation.
    pub fn nrows(&self) -> Index {
        if self.transposed {
            self.t.ncols
        } else {
            self.t.nrows
        }
    }

    /// Visit logical row `i`'s segments in ascending global-index order:
    /// `f(index_offset, local_indices, values)` per intersecting
    /// non-empty tile.
    pub fn for_row(&self, i: Index, f: &mut impl FnMut(Index, &[Index], &[T])) {
        let t = self.t;
        if self.transposed {
            let tj = t.tile_col_of(i);
            let local = i - tj * t.tile_ncols;
            for ti in 0..t.grid_rows {
                if let Some(tile) = t.tile(ti, tj) {
                    let view = self.views[ti * t.grid_cols + tj].get_or_init(|| tile.col_csr());
                    let (cols, vals) = view.row(local);
                    if !cols.is_empty() {
                        f(ti * t.tile_nrows, cols, vals);
                    }
                }
            }
        } else {
            let ti = t.stripe_of(i);
            let local = i - ti * t.tile_nrows;
            for tj in 0..t.grid_cols {
                if let Some(tile) = t.tile(ti, tj) {
                    let view = self.views[ti * t.grid_cols + tj].get_or_init(|| tile.row_csr());
                    let (cols, vals) = view.row(local);
                    if !cols.is_empty() {
                        f(tj * t.tile_ncols, cols, vals);
                    }
                }
            }
        }
    }

    /// A stripe-caching cursor for walks that visit rows in ascending
    /// (or at least stripe-clustered) order — the SpMSpV shape. It
    /// resolves a stripe's tile views once and serves every row in the
    /// stripe by direct slice, instead of paying an atomic view lookup
    /// per tile per row. Materialization is identical to
    /// [`OrientedTiles::for_row`]: any row visit resolves exactly its
    /// stripe's non-empty tiles.
    pub fn cursor(&self) -> RowCursor<'_, 'a, T> {
        RowCursor {
            ot: self,
            stripe: usize::MAX,
            segs: Vec::new(),
        }
    }

    /// Grid coordinates of the tiles whose views this traversal
    /// materialized (or reused) — drained into the execution trace.
    pub fn touched(&self) -> Vec<(u32, u32)> {
        let gc = self.t.grid_cols;
        self.views
            .iter()
            .enumerate()
            .filter(|(_, v)| v.get().is_some())
            .map(|(k, _)| ((k / gc) as u32, (k % gc) as u32))
            .collect()
    }
}

/// See [`OrientedTiles::cursor`]. Each parallel chunk owns its own
/// cursor; the underlying views are shared through the `OrientedTiles`.
pub struct RowCursor<'o, 'a, T> {
    ot: &'o OrientedTiles<'a, T>,
    /// Stripe whose views `segs` caches (`usize::MAX` = none yet).
    stripe: usize,
    /// `(index offset, oriented view)` per non-empty tile in the stripe.
    segs: Vec<(Index, &'o Csr<T>)>,
}

impl<'o, 'a, T: Scalar> RowCursor<'o, 'a, T> {
    fn load_stripe(&mut self, s: usize) {
        self.segs.clear();
        let ot = self.ot;
        let t = ot.t;
        if ot.transposed {
            for ti in 0..t.grid_rows {
                if let Some(tile) = t.tile(ti, s) {
                    let view = ot.views[ti * t.grid_cols + s].get_or_init(|| tile.col_csr());
                    self.segs.push((ti * t.tile_nrows, &**view));
                }
            }
        } else {
            for tj in 0..t.grid_cols {
                if let Some(tile) = t.tile(s, tj) {
                    let view = ot.views[s * t.grid_cols + tj].get_or_init(|| tile.row_csr());
                    self.segs.push((tj * t.tile_ncols, &**view));
                }
            }
        }
        self.stripe = s;
    }

    /// [`OrientedTiles::for_row`], served from the cached stripe.
    pub fn for_row(&mut self, i: Index, f: &mut impl FnMut(Index, &[Index], &[T])) {
        let t = self.ot.t;
        let (s, local) = if self.ot.transposed {
            let tj = t.tile_col_of(i);
            (tj, i - tj * t.tile_ncols)
        } else {
            let ti = t.stripe_of(i);
            (ti, i - ti * t.tile_nrows)
        };
        if s != self.stripe {
            self.load_stripe(s);
        }
        for &(off, view) in &self.segs {
            let (cols, vals) = view.row(local);
            if !cols.is_empty() {
                f(off, cols, vals);
            }
        }
    }
}

thread_local! {
    /// Tile coordinates touched by kernels/flushes on this thread since
    /// the last [`take_tiles`]; the scheduler drains it into the trace.
    static TOUCHED_TILES: RefCell<Vec<(u32, u32)>> = const { RefCell::new(Vec::new()) };
}

/// Record tile coordinates touched by the current operation.
pub fn note_tiles(coords: impl IntoIterator<Item = (u32, u32)>) {
    TOUCHED_TILES.with(|t| t.borrow_mut().extend(coords));
}

/// Drain the tile coordinates noted on this thread since the last call.
pub fn take_tiles() -> Vec<(u32, u32)> {
    TOUCHED_TILES.with(|t| {
        let mut v = t.borrow_mut();
        let mut out = std::mem::take(&mut *v);
        out.sort_unstable();
        out.dedup();
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::engine::Format;

    fn sample(n: Index, m: Index, step: usize) -> Csr<i64> {
        let mut tuples = Vec::new();
        for k in (0..n * m).step_by(step) {
            tuples.push((k / m, k % m, k as i64));
        }
        Csr::from_sorted_tuples(n, m, tuples)
    }

    #[test]
    fn roundtrip_preserves_content() {
        for grid in [(1, 1), (2, 2), (3, 4), (7, 7), (100, 100)] {
            let csr = sample(7, 9, 3);
            let t = Tiled::from_csr(&csr, grid);
            assert_eq!(t.nvals(), csr.nvals(), "{grid:?}");
            assert_eq!(t.to_csr(), csr, "{grid:?}");
        }
    }

    #[test]
    fn grid_is_clamped_to_shape() {
        let csr = sample(3, 2, 1);
        let t = Tiled::from_csr(&csr, (100, 100));
        assert_eq!(t.grid(), (3, 2));
        let t = Tiled::from_csr(&csr, (0, 0));
        assert_eq!(t.grid(), (1, 1));
    }

    #[test]
    fn point_probes_hit_the_right_tile() {
        let csr = sample(6, 6, 1);
        let t = Tiled::from_csr(&csr, (2, 3));
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(t.get(i, j), csr.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn empty_tiles_hold_no_storage() {
        // content confined to the top-left quadrant
        let csr = Csr::from_sorted_tuples(8, 8, vec![(0, 0, 1i64), (1, 3, 2), (3, 1, 3)]);
        let t = Tiled::from_csr(&csr, (2, 2));
        assert!(t.tile(0, 0).is_some());
        assert!(t.tile(0, 1).is_none());
        assert!(t.tile(1, 0).is_none());
        assert!(t.tile(1, 1).is_none());
    }

    #[test]
    fn tiles_pick_their_own_formats() {
        // a dense 4x4 corner and one far-away element: the corner tile
        // goes bitmap under Auto while the sparse tile stays compressed
        let mut tuples = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                tuples.push((i, j, (i * 4 + j) as i64));
            }
        }
        tuples.push((63, 63, -1));
        let csr = Csr::from_sorted_tuples(64, 64, tuples);
        let t = Tiled::from_csr(&csr, (8, 8));
        assert_eq!(t.tile(0, 0).unwrap().format(), Format::Bitmap);
        assert_ne!(t.tile(7, 7).unwrap().format(), Format::Bitmap);
    }

    #[test]
    fn degree_sums_match_slab() {
        let csr = sample(10, 7, 2);
        let t = Tiled::from_csr(&csr, (3, 3));
        let slab = MatrixStore::csr(csr);
        assert_eq!(t.row_degrees_sum(), slab.row_degrees().to_vec());
        assert_eq!(t.col_degrees_sum(), slab.col_degrees().to_vec());
    }

    #[test]
    fn oriented_rows_enumerate_in_ascending_global_order() {
        let csr = sample(9, 9, 2);
        let t = Tiled::from_csr(&csr, (2, 4));
        let fwd = OrientedTiles::new(&t, false);
        for i in 0..9 {
            let mut got = Vec::new();
            fwd.for_row(i, &mut |off, cols, vals| {
                got.extend(cols.iter().zip(vals).map(|(j, v)| (off + j, *v)));
            });
            let (cols, vals) = csr.row(i);
            let want: Vec<(Index, i64)> = cols.iter().zip(vals).map(|(j, v)| (*j, *v)).collect();
            assert_eq!(got, want, "row {i}");
        }
        let rev = OrientedTiles::new(&t, true);
        let tr = csr.transpose();
        for j in 0..9 {
            let mut got = Vec::new();
            rev.for_row(j, &mut |off, cols, vals| {
                got.extend(cols.iter().zip(vals).map(|(i, v)| (off + i, *v)));
            });
            let (rows, vals) = tr.row(j);
            let want: Vec<(Index, i64)> = rows.iter().zip(vals).map(|(i, v)| (*i, *v)).collect();
            assert_eq!(got, want, "col {j}");
        }
    }

    #[test]
    fn touched_reports_only_materialized_tiles() {
        let csr = sample(8, 8, 1);
        let t = Tiled::from_csr(&csr, (2, 2));
        let fwd = OrientedTiles::new(&t, false);
        assert!(fwd.touched().is_empty());
        fwd.for_row(0, &mut |_, _, _| {});
        let mut got = fwd.touched();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 0), (0, 1)]);
    }
}
