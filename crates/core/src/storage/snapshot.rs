//! MVCC snapshot isolation over the delta logs (ROADMAP: streaming
//! ingest-while-query).
//!
//! A reader takes an **epoch-versioned snapshot** of a handle in O(1):
//! the Arc'd backing value node plus Arc clones of the sealed delta
//! runs at that epoch ([`crate::storage::delta::DeltaLog::runs_snapshot`]
//! — nothing is drained, nothing is copied). The snapshot is immutable
//! forever: writers keep appending to the log's unsorted tail, the
//! background flusher keeps merging runs into new base nodes, and
//! compaction keeps rewriting the *log's* run vector — none of which
//! can touch the snapshot's pinned node or its cloned run Arcs. Readers
//! never drain a writer's log and writers never wait for a reader.
//!
//! Reads against a snapshot come in two strengths:
//!
//! * **point probes** ([`MatrixSnapshot::get`]) — binary-search the runs
//!   newest-first (runs are seq-disjoint, so the youngest run holding
//!   the key is the program-order-latest mutation), falling back to the
//!   base value; no merge is materialized.
//! * **bulk reads and kernel capture** ([`MatrixSnapshot::nvals`],
//!   [`MatrixSnapshot::extract_tuples`], [`MatrixSnapshot::to_matrix`])
//!   — force the snapshot's *overlay node*, a deferred DAG node that
//!   k-way merges `(base, runs)` with the flush kernel
//!   ([`crate::kernel::merge`]). The object layer memoizes one overlay
//!   node per epoch, so concurrent readers at the same epoch share a
//!   single merge.
//!
//! The module also hosts the **background flusher** — a lazily-spawned
//! daemon that applies the time/size-windowed auto-flush policy (the
//! replacement for "every completion-forcing read drains the log"): the
//! object layer queues a job when a log crosses the size threshold or
//! the configured time window, and the flusher resolves + forces the
//! flush node, whose merge fans out over the shared worker pool like
//! any other kernel. It also aggregates process-wide telemetry
//! ([`snapshot_stats`]) for the server's `STATS` surface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::error::{Error, Result};
use crate::exec::{force, Completable};
use crate::index::Index;
use crate::object::matrix::MatrixNode;
use crate::object::vector::VectorNode;
use crate::object::{Matrix, Vector};
use crate::scalar::Scalar;
use crate::storage::delta::{DeltaOp, Run};
use crate::storage::engine::{FormatPolicy, MatrixStore};
use crate::storage::vec::SparseVec;

// ----- flush-window configuration -----

/// Default auto-flush time window (milliseconds). Once a log holds
/// [`crate::storage::delta::AUTOFLUSH_MIN_PENDING`] entries, a
/// background flush is queued this far in the future.
pub const DEFAULT_FLUSH_WINDOW_MS: u64 = 200;

/// Sentinel meaning "no session override".
const WINDOW_UNSET: u64 = u64::MAX;

/// Session override for the flush window; set by the capi
/// `Config::flush_window_ms` knob, restored by `finalize`. `Some(0)`
/// disables time-windowed auto-flush entirely.
static SESSION_WINDOW: AtomicU64 = AtomicU64::new(WINDOW_UNSET);

/// Set (or clear, with `None`) the process-wide flush-window override.
pub fn set_session_flush_window_ms(ms: Option<u64>) {
    SESSION_WINDOW.store(ms.unwrap_or(WINDOW_UNSET), Ordering::Relaxed);
}

/// The session flush-window override, if one is configured.
pub fn session_flush_window_ms() -> Option<u64> {
    match SESSION_WINDOW.load(Ordering::Relaxed) {
        WINDOW_UNSET => None,
        ms => Some(ms),
    }
}

fn env_flush_window_ms() -> Option<u64> {
    static CACHE: OnceLock<Option<u64>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("GRB_FLUSH_WINDOW_MS")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
    })
}

/// The effective auto-flush time window: session knob
/// (`Config::flush_window_ms`) > `GRB_FLUSH_WINDOW_MS` env >
/// [`DEFAULT_FLUSH_WINDOW_MS`]; a value of `0` (either source) disables
/// the time trigger (`None`). The size trigger is never disabled.
pub fn flush_window() -> Option<Duration> {
    let ms = session_flush_window_ms()
        .or_else(env_flush_window_ms)
        .unwrap_or(DEFAULT_FLUSH_WINDOW_MS);
    (ms > 0).then(|| Duration::from_millis(ms))
}

// ----- process-wide telemetry -----

static SNAPSHOTS_TAKEN: AtomicU64 = AtomicU64::new(0);
static SNAPSHOTS_ACTIVE: AtomicU64 = AtomicU64::new(0);
static LAST_EPOCH: AtomicU64 = AtomicU64::new(0);
static COMPACTIONS: AtomicU64 = AtomicU64::new(0);
static COMPACTED_ENTRIES: AtomicU64 = AtomicU64::new(0);
static COMPACTED_BYTES: AtomicU64 = AtomicU64::new(0);
static BACKGROUND_FLUSHES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the process-wide snapshot/compaction
/// counters (the server's `STATS` observability surface).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Snapshots ever taken.
    pub snapshots_taken: u64,
    /// Snapshots currently alive (taken minus dropped).
    pub snapshots_active: u64,
    /// Epoch of the most recently taken snapshot.
    pub last_read_epoch: u64,
    /// Run-compaction passes performed across all delta logs.
    pub compactions: u64,
    /// Entries consumed by those compactions.
    pub compacted_entries: u64,
    /// Approximate bytes merged by those compactions.
    pub compacted_bytes: u64,
    /// Delta flushes completed by the background flusher.
    pub background_flushes: u64,
}

/// Read the process-wide snapshot/compaction counters.
pub fn snapshot_stats() -> SnapshotStats {
    SnapshotStats {
        snapshots_taken: SNAPSHOTS_TAKEN.load(Ordering::Relaxed),
        snapshots_active: SNAPSHOTS_ACTIVE.load(Ordering::Relaxed),
        last_read_epoch: LAST_EPOCH.load(Ordering::Relaxed),
        compactions: COMPACTIONS.load(Ordering::Relaxed),
        compacted_entries: COMPACTED_ENTRIES.load(Ordering::Relaxed),
        compacted_bytes: COMPACTED_BYTES.load(Ordering::Relaxed),
        background_flushes: BACKGROUND_FLUSHES.load(Ordering::Relaxed),
    }
}

pub(crate) fn note_compaction(entries: usize, bytes: usize) {
    COMPACTIONS.fetch_add(1, Ordering::Relaxed);
    COMPACTED_ENTRIES.fetch_add(entries as u64, Ordering::Relaxed);
    COMPACTED_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

pub(crate) fn note_background_flush() {
    BACKGROUND_FLUSHES.fetch_add(1, Ordering::Relaxed);
}

fn note_snapshot(epoch: u64) -> ActiveGuard {
    SNAPSHOTS_TAKEN.fetch_add(1, Ordering::Relaxed);
    SNAPSHOTS_ACTIVE.fetch_add(1, Ordering::Relaxed);
    LAST_EPOCH.fetch_max(epoch, Ordering::Relaxed);
    ActiveGuard
}

/// RAII decrement of the active-snapshot gauge.
#[derive(Debug)]
struct ActiveGuard;

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        SNAPSHOTS_ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

// ----- the background flusher -----

struct FlushJob {
    due: Instant,
    run: Box<dyn FnOnce() + Send>,
}

/// Queue `run` to execute on the flusher daemon no earlier than `delay`
/// from now. Jobs execute in queue order on one thread — the *merges*
/// they trigger still fan row chunks onto the shared worker pool, so a
/// single flusher thread does not serialize the actual work.
pub(crate) fn schedule_flush(delay: Duration, run: Box<dyn FnOnce() + Send>) {
    static SENDER: OnceLock<Mutex<mpsc::Sender<FlushJob>>> = OnceLock::new();
    let sender = SENDER.get_or_init(|| {
        let (tx, rx) = mpsc::channel::<FlushJob>();
        std::thread::Builder::new()
            .name("grb-flusher".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    let now = Instant::now();
                    if job.due > now {
                        std::thread::sleep(job.due - now);
                    }
                    (job.run)();
                }
            })
            .expect("spawn background flusher");
        Mutex::new(tx)
    });
    let job = FlushJob {
        due: Instant::now() + delay,
        run,
    };
    let _ = sender.lock().unwrap_or_else(|e| e.into_inner()).send(job);
}

// ----- snapshot handles -----

/// Probe `runs` for `key`, newest run first. `Some(op)` is the
/// program-order-latest pending mutation of that key at the snapshot's
/// epoch; `None` means the base value stands.
fn probe_runs<K: Copy + Ord, T: Clone>(runs: &[Run<K, T>], key: K) -> Option<DeltaOp<T>> {
    for run in runs.iter().rev() {
        if let Ok(pos) = run.binary_search_by(|e| e.key.cmp(&key)) {
            return Some(run[pos].op.clone());
        }
    }
    None
}

/// An immutable, epoch-versioned read view of a [`Matrix`] — the
/// `GxB`-style snapshot handle. Cheap to take (Arc clones only), safe to
/// hold across any amount of concurrent writing, flushing, and
/// compaction on the source handle.
pub struct MatrixSnapshot<T: Scalar> {
    nrows: Index,
    ncols: Index,
    epoch: u64,
    base: Arc<MatrixNode<T>>,
    runs: Vec<Run<(Index, Index), T>>,
    /// The epoch's overlay node (`base` itself when no updates were
    /// pending) — shared with every other snapshot and kernel capture at
    /// this epoch through the handle's overlay memo.
    node: Arc<MatrixNode<T>>,
    policy: FormatPolicy,
    _guard: ActiveGuard,
}

impl<T: Scalar> MatrixSnapshot<T> {
    pub(crate) fn new(
        nrows: Index,
        ncols: Index,
        epoch: u64,
        base: Arc<MatrixNode<T>>,
        runs: Vec<Run<(Index, Index), T>>,
        node: Arc<MatrixNode<T>>,
        policy: FormatPolicy,
    ) -> Self {
        let guard = note_snapshot(epoch);
        MatrixSnapshot {
            nrows,
            ncols,
            epoch,
            base,
            runs,
            node,
            policy,
            _guard: guard,
        }
    }

    /// Row count of the snapshotted matrix.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Column count of the snapshotted matrix.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// The delta-log epoch this snapshot pinned. Two snapshots of one
    /// object with equal epochs are views of the identical value.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sealed runs pinned by this snapshot (observability).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The snapshot's value, overlay-merged and memoized. Forces the
    /// overlay node (and the base cone under it) — never the source
    /// handle's log.
    fn store(&self) -> Result<Arc<MatrixStore<T>>> {
        force(&(self.node.clone() as Arc<dyn Completable>))?;
        self.node.ready_storage()
    }

    /// Stored-element count at the snapshot's epoch.
    pub fn nvals(&self) -> Result<usize> {
        Ok(self.store()?.nvals())
    }

    /// Point probe at the snapshot's epoch: pending runs first (newest
    /// wins), then the base value. Never materializes the overlay merge.
    pub fn get(&self, i: Index, j: Index) -> Result<Option<T>> {
        if i >= self.nrows || j >= self.ncols {
            return Err(Error::InvalidIndex(format!(
                "({i}, {j}) out of bounds for {}x{} matrix snapshot",
                self.nrows, self.ncols
            )));
        }
        match probe_runs(&self.runs, (i, j)) {
            Some(DeltaOp::Put(v)) => Ok(Some(v)),
            Some(DeltaOp::Del) => Ok(None),
            None => {
                force(&(self.base.clone() as Arc<dyn Completable>))?;
                Ok(self.base.ready_storage()?.get(i, j).cloned())
            }
        }
    }

    /// All stored tuples at the snapshot's epoch, row-major.
    pub fn extract_tuples(&self) -> Result<Vec<(Index, Index, T)>> {
        Ok(self.store()?.to_tuples())
    }

    /// Per-row stored-element counts **at the snapshot's epoch**. The
    /// overlay merge materializes its own store, so this memoizes on
    /// the snapshot's value and can never observe degrees cached after
    /// a later drain of the source handle (and vice versa) — the
    /// property-cache half of snapshot isolation.
    pub fn row_degrees(&self) -> Result<Arc<[usize]>> {
        Ok(self.store()?.row_degrees())
    }

    /// Per-column stored-element counts at the snapshot's epoch; see
    /// [`MatrixSnapshot::row_degrees`].
    pub fn col_degrees(&self) -> Result<Arc<[usize]>> {
        Ok(self.store()?.col_degrees())
    }

    /// A fresh [`Matrix`] handle whose value *is* this snapshot — the
    /// bridge into every kernel and algorithm that takes `&Matrix<T>`
    /// (the server runs BFS/PageRank on these). O(1): the handle wraps
    /// the shared overlay node; nothing is merged until a kernel forces
    /// it, and the merge is shared with every other view of this epoch.
    pub fn to_matrix(&self) -> Matrix<T> {
        Matrix::from_shared_node(self.nrows, self.ncols, self.node.clone(), self.policy)
    }
}

impl<T: Scalar> std::fmt::Debug for MatrixSnapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MatrixSnapshot<{}x{}@{}>",
            self.nrows, self.ncols, self.epoch
        )
    }
}

/// An immutable, epoch-versioned read view of a [`Vector`]; see
/// [`MatrixSnapshot`].
pub struct VectorSnapshot<T: Scalar> {
    n: Index,
    epoch: u64,
    base: Arc<VectorNode<T>>,
    runs: Vec<Run<Index, T>>,
    node: Arc<VectorNode<T>>,
    _guard: ActiveGuard,
}

impl<T: Scalar> VectorSnapshot<T> {
    pub(crate) fn new(
        n: Index,
        epoch: u64,
        base: Arc<VectorNode<T>>,
        runs: Vec<Run<Index, T>>,
        node: Arc<VectorNode<T>>,
    ) -> Self {
        let guard = note_snapshot(epoch);
        VectorSnapshot {
            n,
            epoch,
            base,
            runs,
            node,
            _guard: guard,
        }
    }

    /// Size of the snapshotted vector.
    pub fn size(&self) -> Index {
        self.n
    }

    /// The delta-log epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sealed runs pinned by this snapshot (observability).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    fn store(&self) -> Result<Arc<SparseVec<T>>> {
        force(&(self.node.clone() as Arc<dyn Completable>))?;
        self.node.ready_storage()
    }

    /// Stored-element count at the snapshot's epoch.
    pub fn nvals(&self) -> Result<usize> {
        Ok(self.store()?.nvals())
    }

    /// Point probe at the snapshot's epoch; see [`MatrixSnapshot::get`].
    pub fn get(&self, i: Index) -> Result<Option<T>> {
        if i >= self.n {
            return Err(Error::InvalidIndex(format!(
                "index {i} out of bounds for vector snapshot of size {}",
                self.n
            )));
        }
        match probe_runs(&self.runs, i) {
            Some(DeltaOp::Put(v)) => Ok(Some(v)),
            Some(DeltaOp::Del) => Ok(None),
            None => {
                force(&(self.base.clone() as Arc<dyn Completable>))?;
                Ok(self.base.ready_storage()?.get(i).cloned())
            }
        }
    }

    /// All stored tuples at the snapshot's epoch.
    pub fn extract_tuples(&self) -> Result<Vec<(Index, T)>> {
        Ok(self.store()?.to_tuples())
    }

    /// A fresh [`Vector`] handle whose value is this snapshot; see
    /// [`MatrixSnapshot::to_matrix`].
    pub fn to_vector(&self) -> Vector<T> {
        Vector::from_shared_node(self.n, self.node.clone())
    }
}

impl<T: Scalar> std::fmt::Debug for VectorSnapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VectorSnapshot<{}@{}>", self.n, self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_window_session_override_wins_and_clears() {
        // no env override in the test environment: default applies
        let base = flush_window();
        set_session_flush_window_ms(Some(7));
        assert_eq!(flush_window(), Some(Duration::from_millis(7)));
        set_session_flush_window_ms(Some(0));
        assert_eq!(flush_window(), None, "0 disables the time trigger");
        set_session_flush_window_ms(None);
        assert_eq!(flush_window(), base);
    }

    #[test]
    fn flusher_runs_jobs_after_their_delay() {
        let (tx, rx) = mpsc::channel();
        let t0 = Instant::now();
        schedule_flush(
            Duration::from_millis(10),
            Box::new(move || {
                let _ = tx.send(t0.elapsed());
            }),
        );
        let elapsed = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("flusher ran the job");
        assert!(
            elapsed >= Duration::from_millis(10),
            "ran early: {elapsed:?}"
        );
    }

    #[test]
    fn telemetry_counters_accumulate() {
        let before = snapshot_stats();
        note_compaction(100, 1600);
        note_background_flush();
        let g = note_snapshot(42);
        let mid = snapshot_stats();
        assert!(mid.compactions > before.compactions);
        assert!(mid.compacted_entries >= before.compacted_entries + 100);
        assert!(mid.background_flushes > before.background_flushes);
        assert!(mid.snapshots_taken > before.snapshots_taken);
        assert!(mid.last_read_epoch >= 42);
        drop(g);
        // active gauge decremented on drop (other tests may hold their
        // own guards concurrently, so compare against `mid`)
        assert!(snapshot_stats().snapshots_active < mid.snapshots_active + 1);
    }
}
