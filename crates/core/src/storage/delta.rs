//! Pending-update buffers: the deferral of `setElement` /
//! `removeElement` that §IV of the paper explicitly licenses.
//!
//! A [`DeltaLog`] is an LSM-style log of point mutations against an
//! object's backing storage. [`DeltaLog::push`] is O(1) amortized: a
//! mutation lands in an unsorted tail, and when the tail reaches the
//! run cap ([`run_cap`]) it is *sealed* into a sorted, per-key-
//! deduplicated run (last write wins within the run — the log's
//! dup-combining policy). Flushes — background auto-flushes
//! ([`crate::storage::snapshot`]) or handle-level completion-forcing
//! reads — drain the runs and merge them into the backing storage with
//! the k-way merge kernel (`crate::kernel::merge`); across runs, the
//! entry with the highest [`DeltaEntry::seq`] wins, so the merged value
//! is exactly what eager per-call application would have produced.
//! Readers that only need a consistent view never drain: they clone the
//! sealed runs ([`DeltaLog::runs_snapshot`]) at an [`DeltaLog::epoch`]
//! and overlay-merge on their own side.
//!
//! When sealing pushes the sealed-run count past [`MAX_RUNS`] the log
//! *compacts*, LSM-style: the adjacent pair of runs with the smallest
//! combined length is merged into one (runs are seq-disjoint and
//! oldest-first, so a pairwise merge of neighbours preserves cross-run
//! last-write-wins exactly). A size-ratio guard keeps compaction from
//! repeatedly rewriting a large run to absorb its small neighbours —
//! pairs whose larger side exceeds [`SIZE_RATIO`]× the smaller are
//! skipped until the run count reaches [`MAX_RUNS`]` + 2`, at which
//! point the guard is waived so the count stays hard-bounded at
//! `MAX_RUNS + 2`. Compaction bounds the k of every later k-way merge —
//! and of every snapshot overlay probe — without ever touching the
//! backing storage, and with write amplification linear (not quadratic)
//! in the number of sealed runs.
//!
//! Keys are generic: matrices log `(row, col)` (row-major order, the
//! order the CSR merge consumes), vectors log plain indices.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Default tail length at which a delta log seals its unsorted tail into
/// a sorted run. Sealing is O(cap · log cap) every `cap` pushes, so
/// pushes stay O(log cap) ≈ O(1) amortized regardless of object size.
/// The effective cap is resolved per push by [`run_cap`].
pub const RUN_CAP: usize = 4096;

/// Sealed-run count above which a log compacts neighbouring runs. With
/// the [`SIZE_RATIO`] guard the count may float up to `MAX_RUNS + 2`
/// before a merge is forced.
pub const MAX_RUNS: usize = 8;

/// Compaction size-ratio guard: an adjacent pair is only merged when the
/// larger run is at most this many times the smaller one (or when the
/// run count has reached `MAX_RUNS + 2` and a merge must be forced).
/// Without the guard, a steady trickle of small sealed runs next to one
/// large run makes every compaction rewrite the large run — quadratic
/// total write amplification in the number of seals.
pub const SIZE_RATIO: usize = 4;

/// Pending-entry floor before a *time-windowed* background flush is
/// armed. Programs doing a handful of point updates (the unit-test
/// shape) stay strictly deferred-until-read; streaming ingest crosses
/// this within microseconds.
pub const AUTOFLUSH_MIN_PENDING: usize = 64;

/// Pending length (in units of the effective run cap) that triggers an
/// immediate background flush regardless of the time window — the size
/// half of the time/size auto-flush policy.
pub const AUTOFLUSH_RUN_FACTOR: usize = 4;

/// Session override for the run cap; 0 = unset. Set by the capi
/// `Config::delta_run_cap` knob, restored by `finalize`.
static SESSION_RUN_CAP: AtomicUsize = AtomicUsize::new(0);

/// Set (or clear, with `None`) the process-wide run-cap override.
pub fn set_session_run_cap(cap: Option<usize>) {
    SESSION_RUN_CAP.store(cap.unwrap_or(0), Ordering::Relaxed);
}

/// The session run-cap override, if one is configured.
pub fn session_run_cap() -> Option<usize> {
    match SESSION_RUN_CAP.load(Ordering::Relaxed) {
        0 => None,
        k => Some(k),
    }
}

fn env_run_cap() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("GRB_DELTA_RUN_CAP")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&k| k > 0)
    })
}

/// The effective tail-seal cap: session knob (`Config::delta_run_cap`) >
/// `GRB_DELTA_RUN_CAP` env > [`RUN_CAP`].
pub fn run_cap() -> usize {
    session_run_cap()
        .or_else(env_run_cap)
        .unwrap_or(RUN_CAP)
        .max(1)
}

/// One pending point mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp<T> {
    /// `setElement`: insert or overwrite with this value.
    Put(T),
    /// `removeElement`: delete if stored (no-op on an absent element,
    /// as the C API specifies).
    Del,
}

/// One entry of the log: a key, the global arrival number (for
/// last-write-wins ordering across runs), and the operation.
#[derive(Debug, Clone)]
pub struct DeltaEntry<K, T> {
    pub key: K,
    /// Monotone per-log arrival counter; among entries for the same key
    /// the highest `seq` is the program-order-latest and wins the merge.
    pub seq: u64,
    pub op: DeltaOp<T>,
}

/// A sealed, key-sorted, per-key-deduplicated batch of pending updates.
pub type Run<K, T> = Arc<[DeltaEntry<K, T>]>;

/// Introspection snapshot of one handle's pending-update state
/// (`Matrix::delta_stats` / `Vector::delta_stats`; the server's `STATS`
/// sealed-run gauge sums `run_count` over its graphs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Pending entries (post-dedup within sealed runs).
    pub pending_len: usize,
    /// Sealed sorted runs held (tail not counted until sealed).
    pub run_count: usize,
    /// The log's current epoch.
    pub epoch: u64,
}

/// The pending-update buffer carried by each `Matrix`/`Vector` handle
/// group (shared by handle clones, like every other object property).
#[derive(Debug)]
pub struct DeltaLog<K, T> {
    next_seq: u64,
    /// Unsorted recent pushes, sealed into `runs` at [`run_cap`].
    tail: Vec<DeltaEntry<K, T>>,
    /// Sealed sorted runs, oldest first.
    runs: Vec<Run<K, T>>,
    /// Total entries across `tail` and `runs`.
    len: usize,
    /// A background flush for the current pending set is already queued
    /// (cleared on drain/clear, and by the flusher before it resolves).
    flush_scheduled: bool,
    /// Lifetime total of entries rewritten by this log's compactions
    /// (inputs to pairwise merges) — the per-log write-amplification
    /// meter the regression tests assert against.
    compacted_entries: usize,
    /// Same, in bytes (`compacted_entries × size_of::<DeltaEntry>`).
    compacted_bytes: usize,
}

impl<K, T> Default for DeltaLog<K, T> {
    fn default() -> Self {
        DeltaLog {
            next_seq: 0,
            tail: Vec::new(),
            runs: Vec::new(),
            len: 0,
            flush_scheduled: false,
            compacted_entries: 0,
            compacted_bytes: 0,
        }
    }
}

impl<K: Copy + Ord, T: Clone> DeltaLog<K, T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// The log's *epoch*: the arrival number the next push will take.
    /// Strictly monotone over the log's lifetime, so (epoch, emptiness)
    /// uniquely identifies a pending set — the key the object layer
    /// memoizes snapshot overlays under.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.next_seq
    }

    /// Number of sealed runs currently held (observability; the tail,
    /// if any, is not counted until sealed).
    #[inline]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// `true` when no updates are pending (the fast path of every
    /// completion-forcing read).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pending entries (post-dedup within sealed runs) —
    /// reported as `pending_len` on flush trace events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Append one pending mutation. O(1) amortized.
    pub fn push(&mut self, key: K, op: DeltaOp<T>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tail.push(DeltaEntry { key, seq, op });
        self.len += 1;
        if self.tail.len() >= run_cap() {
            self.seal();
        }
    }

    /// Sort the tail by key and deduplicate it (keep the latest entry
    /// per key — last write wins), then append it as a sealed run;
    /// compact if the run count outgrew [`MAX_RUNS`].
    fn seal(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.tail);
        self.len -= batch.len();
        // Stable by key: ties keep push order, so "last per key" below
        // is the program-order-latest. (`seq` is push order, but the
        // stable sort lets us dedup without comparing it.)
        batch.sort_by_key(|e| e.key);
        let mut dedup: Vec<DeltaEntry<K, T>> = Vec::with_capacity(batch.len());
        for e in batch {
            match dedup.last_mut() {
                Some(last) if last.key == e.key => *last = e,
                _ => dedup.push(e),
            }
        }
        self.len += dedup.len();
        self.runs.push(dedup.into());
        self.compact();
    }

    /// Tiered compaction: while more than [`MAX_RUNS`] runs are held,
    /// merge the adjacent pair with the smallest combined length into
    /// one run — but only pairs whose size ratio is within
    /// [`SIZE_RATIO`], so a big run is never rewritten just to absorb a
    /// tiny neighbour. If no pair qualifies the count is allowed to
    /// float, and once it exceeds `MAX_RUNS + 2` the guard is waived so
    /// the count stays hard-bounded. Runs are seq-disjoint and
    /// oldest-first, so in a neighbouring pair every right-run entry
    /// outranks every left-run entry — the pairwise merge keeps
    /// cross-run last-write-wins (and the original `seq` values)
    /// exactly.
    fn compact(&mut self) {
        while self.runs.len() > MAX_RUNS {
            let force = self.runs.len() > MAX_RUNS + 2;
            let candidate = (0..self.runs.len() - 1)
                .filter(|&i| {
                    let (a, b) = (self.runs[i].len(), self.runs[i + 1].len());
                    force || a.max(b) <= SIZE_RATIO * a.min(b).max(1)
                })
                .min_by_key(|&i| self.runs[i].len() + self.runs[i + 1].len());
            let Some(i) = candidate else {
                break; // every pair is lopsided; wait for the forced tier
            };
            let (old, new) = {
                let (a, b) = (&self.runs[i], &self.runs[i + 1]);
                let merged = merge_adjacent(a, b);
                ((a.len(), b.len()), merged)
            };
            let entries_in = old.0 + old.1;
            self.len -= entries_in;
            self.len += new.len();
            let bytes = entries_in * std::mem::size_of::<DeltaEntry<K, T>>();
            self.compacted_entries += entries_in;
            self.compacted_bytes += bytes;
            super::snapshot::note_compaction(entries_in, bytes);
            self.runs[i] = new;
            self.runs.remove(i + 1);
        }
    }

    /// Take every pending update as sealed sorted runs (oldest first),
    /// leaving the log empty. The caller hands the runs to the merge
    /// kernel.
    pub fn drain(&mut self) -> Vec<Run<K, T>> {
        self.seal();
        self.len = 0;
        self.flush_scheduled = false;
        std::mem::take(&mut self.runs)
    }

    /// Clone every pending update as sealed sorted runs (oldest first)
    /// **without draining**: the log keeps its entries and writers keep
    /// appending; the returned `Arc` runs are immutable forever. This is
    /// the O(1)-ish read side of snapshot isolation — the only non-
    /// constant cost is sealing the current tail, work the next seal
    /// would have done anyway.
    pub fn runs_snapshot(&mut self) -> Vec<Run<K, T>> {
        self.seal();
        self.runs.clone()
    }

    /// Discard every pending update (the object's value was overwritten
    /// wholesale — `clear`, or an operation writing the whole output —
    /// so the buffered point updates are dead by program order).
    pub fn clear(&mut self) {
        self.tail.clear();
        self.runs.clear();
        self.len = 0;
        self.flush_scheduled = false;
    }

    /// Auto-flush trigger, consulted by the object layer after each
    /// push: `Some(delay)` when a background flush should be queued
    /// (marking it queued), `None` otherwise. Size first — a pending set
    /// of [`AUTOFLUSH_RUN_FACTOR`] × cap flushes immediately; otherwise,
    /// once [`AUTOFLUSH_MIN_PENDING`] entries are pending and a time
    /// window is configured, flush after that window.
    pub fn autoflush_due(&mut self, window: Option<Duration>) -> Option<Duration> {
        if self.flush_scheduled {
            return None;
        }
        let due = if self.len >= AUTOFLUSH_RUN_FACTOR * run_cap() {
            Some(Duration::ZERO)
        } else if self.len >= AUTOFLUSH_MIN_PENDING {
            window
        } else {
            None
        };
        self.flush_scheduled = due.is_some();
        due
    }

    /// Clear the queued-flush mark (the flusher calls this right before
    /// resolving, so pushes arriving during the merge re-arm the next
    /// flush).
    pub fn clear_flush_scheduled(&mut self) {
        self.flush_scheduled = false;
    }

    /// Lifetime entries rewritten by compaction (merge inputs) — the
    /// write-amplification meter. Unlike the process-wide telemetry in
    /// `storage::snapshot`, this counter is per-log and race-free.
    #[inline]
    pub fn compacted_entries(&self) -> usize {
        self.compacted_entries
    }

    /// Lifetime bytes rewritten by compaction.
    #[inline]
    pub fn compacted_bytes(&self) -> usize {
        self.compacted_bytes
    }

    /// Introspection snapshot: pending length, sealed-run count, epoch.
    pub fn stats(&self) -> DeltaStats {
        DeltaStats {
            pending_len: self.len,
            run_count: self.runs.len(),
            epoch: self.next_seq,
        }
    }
}

/// Merge two adjacent sealed runs (each key-sorted and per-key unique;
/// every `b` entry younger than every `a` entry) into one.
fn merge_adjacent<K: Copy + Ord, T: Clone>(a: &Run<K, T>, b: &Run<K, T>) -> Run<K, T> {
    let mut out: Vec<DeltaEntry<K, T>> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) if x.key < y.key => {
                out.push(x.clone());
                i += 1;
            }
            (Some(x), Some(y)) if x.key == y.key => {
                out.push(y.clone()); // younger run wins the key
                i += 1;
                j += 1;
            }
            (_, Some(y)) => {
                out.push(y.clone());
                j += 1;
            }
            (Some(x), None) => {
                out.push(x.clone());
                i += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out.into()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn puts(log: &mut DeltaLog<usize, i32>, keys: &[usize]) {
        for &k in keys {
            log.push(k, DeltaOp::Put(k as i32));
        }
    }

    #[test]
    fn empty_log() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert!(log.drain().is_empty());
    }

    #[test]
    fn drain_returns_sorted_runs() {
        let mut log = DeltaLog::new();
        puts(&mut log, &[5, 1, 3]);
        log.push(1, DeltaOp::Del);
        assert_eq!(log.len(), 4);
        let runs = log.drain();
        assert!(log.is_empty());
        assert_eq!(runs.len(), 1);
        let keys: Vec<usize> = runs[0].iter().map(|e| e.key).collect();
        // dedup kept only the latest entry for key 1 (the Del)
        assert_eq!(keys, vec![1, 3, 5]);
        assert!(matches!(runs[0][0].op, DeltaOp::Del));
    }

    #[test]
    fn dedup_is_last_write_wins() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        log.push(7, DeltaOp::Put(1));
        log.push(7, DeltaOp::Del);
        log.push(7, DeltaOp::Put(3));
        let runs = log.drain();
        assert_eq!(runs[0].len(), 1);
        assert!(matches!(runs[0][0].op, DeltaOp::Put(3)));
    }

    #[test]
    fn seq_is_monotone_across_runs() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        for i in 0..(RUN_CAP + 10) {
            log.push(i % 7, DeltaOp::Put(i as i32));
        }
        let runs = log.drain();
        assert!(runs.len() >= 2, "tail sealed at RUN_CAP plus remainder");
        // every entry of a later run outranks every entry of an earlier
        // one — the cross-run LWW tiebreak the merge kernel relies on
        let max_first = runs[0].iter().map(|e| e.seq).max().unwrap();
        let min_last = runs.last().unwrap().iter().map(|e| e.seq).min().unwrap();
        assert!(max_first < min_last);
    }

    #[test]
    fn len_tracks_dedup() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        for _ in 0..RUN_CAP {
            log.push(0, DeltaOp::Put(1)); // all the same key
        }
        // sealed into a single-entry run
        assert_eq!(log.len(), 1);
        log.push(1, DeltaOp::Put(2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn compaction_bounds_run_count_and_preserves_lww() {
        let cap = run_cap();
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        // Fill MAX_RUNS + 4 full runs, revisiting key 0 in every run so
        // cross-run last-write-wins is actually exercised by compaction.
        let rounds = MAX_RUNS + 4;
        for r in 0..rounds {
            log.push(0, DeltaOp::Put(r as i32));
            for k in 0..cap - 1 {
                log.push(1 + r * cap + k, DeltaOp::Put(-1));
            }
        }
        assert!(
            log.run_count() <= MAX_RUNS,
            "compaction must bound runs, got {}",
            log.run_count()
        );
        // The surviving entry for key 0 must be the youngest write.
        let runs = log.drain();
        let survivors: Vec<&DeltaEntry<usize, i32>> = runs
            .iter()
            .flat_map(|r| r.iter())
            .filter(|e| e.key == 0)
            .collect();
        let youngest = survivors.iter().max_by_key(|e| e.seq).unwrap();
        assert!(matches!(youngest.op, DeltaOp::Put(v) if v == rounds as i32 - 1));
    }

    /// Push `len` entries with keys disjoint from every other run and
    /// seal them into one sorted run (sizes stay below the default
    /// [`RUN_CAP`], so no implicit seal interferes).
    fn sealed_run(log: &mut DeltaLog<usize, i32>, base: usize, len: usize) {
        for k in 0..len {
            log.push(base + k, DeltaOp::Put(k as i32));
        }
        log.seal();
    }

    #[test]
    fn lopsided_pairs_are_skipped_until_forced() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        // Alternate tiny/big so every adjacent pair violates the
        // SIZE_RATIO guard — the old compactor would rewrite a 64-entry
        // run to absorb each 4-entry neighbour.
        let (tiny, big) = (4usize, 64usize);
        for r in 0..MAX_RUNS + 1 {
            let len = if r % 2 == 0 { tiny } else { big };
            sealed_run(&mut log, r * 1000, len);
        }
        // One over MAX_RUNS, but no qualifying pair: the count floats
        // and nothing has been rewritten.
        assert_eq!(log.run_count(), MAX_RUNS + 1);
        assert_eq!(log.compacted_entries(), 0);

        sealed_run(&mut log, 9_000, tiny);
        sealed_run(&mut log, 10_000, big);
        // Past MAX_RUNS + 2 the guard is waived; the hard bound holds.
        assert!(
            log.run_count() <= MAX_RUNS + 2,
            "forced compaction must bound runs, got {}",
            log.run_count()
        );
        assert!(log.compacted_entries() > 0, "a forced merge happened");
        // Nothing was lost: all keys are disjoint, so every pushed
        // entry must survive the merges.
        let total: usize = log.drain().iter().map(|r| r.len()).sum();
        assert_eq!(total, 6 * tiny + 5 * big);
    }

    #[test]
    fn compaction_write_amplification_is_bounded() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        // Adversarial stream for the unguarded compactor: a steady
        // alternation of small sealed runs and large ones. Without the
        // ratio guard every seal past MAX_RUNS rewrites a large run to
        // absorb a tiny neighbour; with it, merges happen within size
        // tiers and total rewritten entries stay within a small
        // constant of the data actually pushed.
        let (tiny, big, rounds) = (8usize, 512usize, 12usize);
        let mut pushed = 0usize;
        for r in 0..rounds {
            sealed_run(&mut log, r * 10_000, tiny);
            pushed += tiny;
            sealed_run(&mut log, r * 10_000 + 5_000, big);
            pushed += big;
        }
        assert!(
            log.run_count() <= MAX_RUNS + 2,
            "run count must stay bounded, got {}",
            log.run_count()
        );
        assert!(
            log.compacted_entries() <= 4 * pushed,
            "write amplification {} entries for {} pushed exceeds 4x",
            log.compacted_entries(),
            pushed
        );
        assert_eq!(
            log.compacted_bytes(),
            log.compacted_entries() * std::mem::size_of::<DeltaEntry<usize, i32>>()
        );
        // Disjoint keys: every entry survives compaction.
        let total: usize = log.drain().iter().map(|r| r.len()).sum();
        assert_eq!(total, pushed);
    }

    #[test]
    fn stats_reports_pending_runs_epoch() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        puts(&mut log, &[4, 2]);
        let s = log.stats();
        assert_eq!(s.pending_len, 2);
        assert_eq!(s.run_count, 0, "tail not sealed yet");
        assert_eq!(s.epoch, 2);
        let _ = log.runs_snapshot(); // seals the tail, keeps entries
        let s = log.stats();
        assert_eq!(s.pending_len, 2);
        assert_eq!(s.run_count, 1);
        assert_eq!(s.epoch, 2, "reads do not advance the epoch");
    }

    #[test]
    fn clear_discards_everything() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        puts(&mut log, &[1, 2, 3]);
        log.clear();
        assert!(log.is_empty());
        assert!(log.drain().is_empty());
        // pushes after clear still work and keep fresh seq numbers
        log.push(9, DeltaOp::Put(9));
        assert_eq!(log.len(), 1);
    }
}
