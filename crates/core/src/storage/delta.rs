//! Pending-update buffers: the deferral of `setElement` /
//! `removeElement` that §IV of the paper explicitly licenses.
//!
//! A [`DeltaLog`] is an LSM-style log of point mutations against an
//! object's backing storage. [`DeltaLog::push`] is O(1) amortized: a
//! mutation lands in an unsorted tail, and when the tail reaches
//! [`RUN_CAP`] entries it is *sealed* into a sorted, per-key-deduplicated
//! run (last write wins within the run — the log's dup-combining
//! policy). Completion-forcing reads drain the runs and merge them into
//! the backing storage with the k-way merge kernel
//! (`crate::kernel::merge`); across runs, the entry with the highest
//! [`DeltaEntry::seq`] wins, so the merged value is exactly what eager
//! per-call application would have produced.
//!
//! Keys are generic: matrices log `(row, col)` (row-major order, the
//! order the CSR merge consumes), vectors log plain indices.

use std::sync::Arc;

/// Tail length at which a delta log seals its unsorted tail into a
/// sorted run. Sealing is O(cap · log cap) every `cap` pushes, so pushes
/// stay O(log cap) ≈ O(1) amortized regardless of object size.
pub const RUN_CAP: usize = 4096;

/// One pending point mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp<T> {
    /// `setElement`: insert or overwrite with this value.
    Put(T),
    /// `removeElement`: delete if stored (no-op on an absent element,
    /// as the C API specifies).
    Del,
}

/// One entry of the log: a key, the global arrival number (for
/// last-write-wins ordering across runs), and the operation.
#[derive(Debug, Clone)]
pub struct DeltaEntry<K, T> {
    pub key: K,
    /// Monotone per-log arrival counter; among entries for the same key
    /// the highest `seq` is the program-order-latest and wins the merge.
    pub seq: u64,
    pub op: DeltaOp<T>,
}

/// A sealed, key-sorted, per-key-deduplicated batch of pending updates.
pub type Run<K, T> = Arc<[DeltaEntry<K, T>]>;

/// The pending-update buffer carried by each `Matrix`/`Vector` handle
/// group (shared by handle clones, like every other object property).
#[derive(Debug)]
pub struct DeltaLog<K, T> {
    next_seq: u64,
    /// Unsorted recent pushes, sealed into `runs` at [`RUN_CAP`].
    tail: Vec<DeltaEntry<K, T>>,
    /// Sealed sorted runs, oldest first.
    runs: Vec<Run<K, T>>,
    /// Total entries across `tail` and `runs`.
    len: usize,
}

impl<K, T> Default for DeltaLog<K, T> {
    fn default() -> Self {
        DeltaLog {
            next_seq: 0,
            tail: Vec::new(),
            runs: Vec::new(),
            len: 0,
        }
    }
}

impl<K: Copy + Ord, T> DeltaLog<K, T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no updates are pending (the fast path of every
    /// completion-forcing read).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pending entries (post-dedup within sealed runs) —
    /// reported as `pending_len` on flush trace events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Append one pending mutation. O(1) amortized.
    pub fn push(&mut self, key: K, op: DeltaOp<T>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tail.push(DeltaEntry { key, seq, op });
        self.len += 1;
        if self.tail.len() >= RUN_CAP {
            self.seal();
        }
    }

    /// Sort the tail by key and deduplicate it (keep the latest entry
    /// per key — last write wins), then append it as a sealed run.
    fn seal(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.tail);
        self.len -= batch.len();
        // Stable by key: ties keep push order, so "last per key" below
        // is the program-order-latest. (`seq` is push order, but the
        // stable sort lets us dedup without comparing it.)
        batch.sort_by_key(|e| e.key);
        let mut dedup: Vec<DeltaEntry<K, T>> = Vec::with_capacity(batch.len());
        for e in batch {
            match dedup.last_mut() {
                Some(last) if last.key == e.key => *last = e,
                _ => dedup.push(e),
            }
        }
        self.len += dedup.len();
        self.runs.push(dedup.into());
    }

    /// Take every pending update as sealed sorted runs (oldest first),
    /// leaving the log empty. The caller hands the runs to the merge
    /// kernel.
    pub fn drain(&mut self) -> Vec<Run<K, T>> {
        self.seal();
        self.len = 0;
        std::mem::take(&mut self.runs)
    }

    /// Discard every pending update (the object's value was overwritten
    /// wholesale — `clear`, or an operation writing the whole output —
    /// so the buffered point updates are dead by program order).
    pub fn clear(&mut self) {
        self.tail.clear();
        self.runs.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn puts(log: &mut DeltaLog<usize, i32>, keys: &[usize]) {
        for &k in keys {
            log.push(k, DeltaOp::Put(k as i32));
        }
    }

    #[test]
    fn empty_log() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert!(log.drain().is_empty());
    }

    #[test]
    fn drain_returns_sorted_runs() {
        let mut log = DeltaLog::new();
        puts(&mut log, &[5, 1, 3]);
        log.push(1, DeltaOp::Del);
        assert_eq!(log.len(), 4);
        let runs = log.drain();
        assert!(log.is_empty());
        assert_eq!(runs.len(), 1);
        let keys: Vec<usize> = runs[0].iter().map(|e| e.key).collect();
        // dedup kept only the latest entry for key 1 (the Del)
        assert_eq!(keys, vec![1, 3, 5]);
        assert!(matches!(runs[0][0].op, DeltaOp::Del));
    }

    #[test]
    fn dedup_is_last_write_wins() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        log.push(7, DeltaOp::Put(1));
        log.push(7, DeltaOp::Del);
        log.push(7, DeltaOp::Put(3));
        let runs = log.drain();
        assert_eq!(runs[0].len(), 1);
        assert!(matches!(runs[0][0].op, DeltaOp::Put(3)));
    }

    #[test]
    fn seq_is_monotone_across_runs() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        for i in 0..(RUN_CAP + 10) {
            log.push(i % 7, DeltaOp::Put(i as i32));
        }
        let runs = log.drain();
        assert!(runs.len() >= 2, "tail sealed at RUN_CAP plus remainder");
        // every entry of a later run outranks every entry of an earlier
        // one — the cross-run LWW tiebreak the merge kernel relies on
        let max_first = runs[0].iter().map(|e| e.seq).max().unwrap();
        let min_last = runs.last().unwrap().iter().map(|e| e.seq).min().unwrap();
        assert!(max_first < min_last);
    }

    #[test]
    fn len_tracks_dedup() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        for _ in 0..RUN_CAP {
            log.push(0, DeltaOp::Put(1)); // all the same key
        }
        // sealed into a single-entry run
        assert_eq!(log.len(), 1);
        log.push(1, DeltaOp::Put(2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn clear_discards_everything() {
        let mut log: DeltaLog<usize, i32> = DeltaLog::new();
        puts(&mut log, &[1, 2, 3]);
        log.clear();
        assert!(log.is_empty());
        assert!(log.drain().is_empty());
        // pushes after clear still work and keep fresh seq numbers
        log.push(9, DeltaOp::Put(9));
        assert_eq!(log.len(), 1);
    }
}
