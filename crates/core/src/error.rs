//! The GraphBLAS error model (paper, Section V).
//!
//! Every GraphBLAS method reports its outcome through a value of type
//! [`Error`] (the Rust rendering of the C API's `GrB_Info` failure codes;
//! success is the `Ok` arm of [`Result`]). Errors fall into two classes:
//!
//! * **API errors** — the method was called with arguments that violate its
//!   rules (dimension mismatch, invalid index, null output, …). These are
//!   detected *eagerly*, before any computation, in both execution modes,
//!   and the method returns without modifying its arguments.
//! * **Execution errors** — something went wrong while carrying out a legal
//!   invocation (overflow under checked arithmetic, an injected fault, an
//!   out-of-memory condition). In blocking mode these surface from the call
//!   itself; in nonblocking mode they may surface later, from
//!   [`Context::wait`](crate::exec::Context::wait) or from any method that
//!   forces completion of an object. An object whose deferred computation
//!   failed is *invalid*, and methods consuming it report
//!   [`Error::InvalidObject`].

use std::fmt;

/// A failure code returned by a GraphBLAS method.
///
/// The variants mirror the `GrB_Info` error values listed in the paper's
/// Figure 2 ("Return Values") plus the remaining API-error codes of the C
/// specification that our methods can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    // ----- API errors (detected eagerly, arguments untouched) -----
    /// An object handle was used before being initialized / after being
    /// cleared by a failed context.
    UninitializedObject(String),
    /// The output object pointer was null (only reachable from the
    /// dynamically-typed `graphblas-capi` facade; the typed core cannot
    /// express a null handle).
    NullPointer,
    /// An index or dimension argument was invalid (zero dimension,
    /// out-of-bounds index in an index list, …).
    InvalidValue(String),
    /// An index was outside the bounds of the target object.
    InvalidIndex(String),
    /// Collection dimensions are incompatible with the requested operation.
    DimensionMismatch(String),
    /// Object domains are incompatible with the operator / accumulator /
    /// mask domains (only reachable from `graphblas-capi`; the typed core
    /// turns these into compile errors).
    DomainMismatch(String),
    /// The output object aliases an input in a way the method forbids.
    OutputNotEmpty(String),

    // ----- Execution errors (may surface at `wait` / completion) -----
    /// Memory could not be allocated for the operation.
    OutOfMemory(String),
    /// An input object is in an invalid state because one of the methods
    /// that defined its value failed.
    InvalidObject(String),
    /// Arithmetic failure under a checked operator (e.g. integer overflow).
    Arithmetic(String),
    /// Unknown internal error.
    Panic(String),
    /// Deliberate fault from the test-only failure injector.
    InjectedFault(String),
}

impl Error {
    /// `true` for the API-error class: argument-rule violations detected
    /// before any computation takes place.
    pub fn is_api_error(&self) -> bool {
        matches!(
            self,
            Error::UninitializedObject(_)
                | Error::NullPointer
                | Error::InvalidValue(_)
                | Error::InvalidIndex(_)
                | Error::DimensionMismatch(_)
                | Error::DomainMismatch(_)
                | Error::OutputNotEmpty(_)
        )
    }

    /// `true` for the execution-error class: failures during the execution
    /// of a legal invocation.
    pub fn is_execution_error(&self) -> bool {
        !self.is_api_error()
    }

    /// The short code name, matching the spelling of the C API's
    /// `GrB_Info` constants.
    pub fn code_name(&self) -> &'static str {
        match self {
            Error::UninitializedObject(_) => "GrB_UNINITIALIZED_OBJECT",
            Error::NullPointer => "GrB_NULL_POINTER",
            Error::InvalidValue(_) => "GrB_INVALID_VALUE",
            Error::InvalidIndex(_) => "GrB_INVALID_INDEX",
            Error::DimensionMismatch(_) => "GrB_DIMENSION_MISMATCH",
            Error::DomainMismatch(_) => "GrB_DOMAIN_MISMATCH",
            Error::OutputNotEmpty(_) => "GrB_OUTPUT_NOT_EMPTY",
            Error::OutOfMemory(_) => "GrB_OUT_OF_MEMORY",
            Error::InvalidObject(_) => "GrB_INVALID_OBJECT",
            Error::Arithmetic(_) => "GrB_ARITHMETIC_ERROR",
            Error::Panic(_) => "GrB_PANIC",
            Error::InjectedFault(_) => "GrB_PANIC(injected)",
        }
    }

    /// The detail message (what `GrB_error()` would append).
    pub fn detail(&self) -> &str {
        match self {
            Error::NullPointer => "output pointer was null",
            Error::UninitializedObject(m)
            | Error::InvalidValue(m)
            | Error::InvalidIndex(m)
            | Error::DimensionMismatch(m)
            | Error::DomainMismatch(m)
            | Error::OutputNotEmpty(m)
            | Error::OutOfMemory(m)
            | Error::InvalidObject(m)
            | Error::Arithmetic(m)
            | Error::Panic(m)
            | Error::InjectedFault(m) => m,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code_name(), self.detail())
    }
}

impl std::error::Error for Error {}

/// Result alias used by every GraphBLAS method.
pub type Result<T> = std::result::Result<T, Error>;

/// Helper for the ubiquitous dimension check.
pub(crate) fn dim_check(ok: bool, what: impl FnOnce() -> String) -> Result<()> {
    if ok {
        Ok(())
    } else {
        Err(Error::DimensionMismatch(what()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_vs_execution_classes_partition_all_variants() {
        let api = [
            Error::UninitializedObject("x".into()),
            Error::NullPointer,
            Error::InvalidValue("x".into()),
            Error::InvalidIndex("x".into()),
            Error::DimensionMismatch("x".into()),
            Error::DomainMismatch("x".into()),
            Error::OutputNotEmpty("x".into()),
        ];
        let exec = [
            Error::OutOfMemory("x".into()),
            Error::InvalidObject("x".into()),
            Error::Arithmetic("x".into()),
            Error::Panic("x".into()),
            Error::InjectedFault("x".into()),
        ];
        for e in &api {
            assert!(e.is_api_error(), "{e}");
            assert!(!e.is_execution_error(), "{e}");
        }
        for e in &exec {
            assert!(e.is_execution_error(), "{e}");
            assert!(!e.is_api_error(), "{e}");
        }
    }

    #[test]
    fn display_contains_code_and_detail() {
        let e = Error::DimensionMismatch("2x3 vs 4x5".into());
        let s = e.to_string();
        assert!(s.contains("GrB_DIMENSION_MISMATCH"));
        assert!(s.contains("2x3 vs 4x5"));
    }

    #[test]
    fn dim_check_passes_and_fails() {
        assert!(dim_check(true, || unreachable!()).is_ok());
        let e = dim_check(false, || "bad".into()).unwrap_err();
        assert_eq!(e, Error::DimensionMismatch("bad".into()));
    }
}
