//! Accumulators: the optional `accum` argument of every operation.
//!
//! Table II writes each operation as `C ⊙= ...`: when an accumulator
//! binary operator `⊙` is supplied, the operation's internal result **T**
//! is combined with the existing content of **C** to form
//! `Z(i,j) = C(i,j) ⊙ T(i,j)` on the pattern `ind(C) ∪ ind(T)`
//! (elements present in only one of the two pass through unchanged).
//! Without an accumulator (`GrB_NULL` in C), `Z = T` and old values of
//! **C** are not consulted (Figure 2's `accum` parameter).
//!
//! [`NoAccum`] and [`Accum`] make the two cases zero-cost in Rust: the
//! kernels monomorphize over [`Accumulate`] and the `NoAccum` paths
//! compile down to plain assignment.

use crate::algebra::binary::BinaryOp;
use crate::error::Error;
use crate::scalar::Scalar;

/// The accumulation strategy for an operation's output.
pub trait Accumulate<T: Scalar>: Send + Sync + Clone + 'static {
    /// `true` when an accumulator operator is present (`Z` has pattern
    /// `ind(C) ∪ ind(T)`), `false` for assignment (`Z = T`).
    const IS_ACCUM: bool;

    /// Combine an existing output element with a computed element.
    /// Only called when `IS_ACCUM` is `true`.
    fn combine(&self, old: &T, new: &T) -> T;

    /// Out-of-band execution-error channel (see
    /// [`BinaryOp::poll_error`]).
    fn poll_error(&self) -> Option<Error> {
        None
    }
}

/// No accumulator (`accum = GrB_NULL`): plain assignment, `Z = T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAccum;

impl<T: Scalar> Accumulate<T> for NoAccum {
    const IS_ACCUM: bool = false;

    #[inline]
    fn combine(&self, _old: &T, new: &T) -> T {
        new.clone()
    }
}

/// Accumulate with the wrapped binary operator: `Z = C ⊙ T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accum<F>(pub F);

impl<T: Scalar, F: BinaryOp<T, T, T>> Accumulate<T> for Accum<F> {
    const IS_ACCUM: bool = true;

    #[inline]
    fn combine(&self, old: &T, new: &T) -> T {
        self.0.apply(old, new)
    }

    fn poll_error(&self) -> Option<Error> {
        self.0.poll_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::binary::{CheckedPlus, Plus};

    #[test]
    fn no_accum_assigns() {
        const { assert!(!<NoAccum as Accumulate<i32>>::IS_ACCUM) };
        assert_eq!(Accumulate::<i32>::combine(&NoAccum, &5, &9), 9);
    }

    #[test]
    fn accum_combines() {
        let a = Accum(Plus::<i32>::new());
        const { assert!(<Accum<Plus<i32>> as Accumulate<i32>>::IS_ACCUM) };
        assert_eq!(a.combine(&5, &9), 14);
    }

    #[test]
    fn accum_propagates_checked_errors() {
        let a = Accum(CheckedPlus::<i8>::new());
        assert!(Accumulate::<i8>::poll_error(&a).is_none());
        a.combine(&120, &120);
        assert!(Accumulate::<i8>::poll_error(&a).is_some());
    }
}
