//! The output-write pipeline shared by every operation (paper, Figure 2
//! and Section VI):
//!
//! 1. the operation computes an internal result **T**;
//! 2. if an accumulator ⊙ is present, `Z = C ⊙ T` on the pattern
//!    `ind(C) ∪ ind(T)`; otherwise `Z = T`;
//! 3. the write mask selects which elements of **Z** reach **C**:
//!    * **Replace mode** (`GrB_REPLACE`): `C = Z ∩ mask` — old values of
//!      `C` are deleted first;
//!    * **Merge mode** (default): admitted positions become exactly `Z`
//!      there (including deletions where `Z` is absent), positions outside
//!      the mask keep their old `C` values.

use crate::accum::Accumulate;
use crate::index::Index;
use crate::kernel::util::{assemble_rows, map_rows};
use crate::mask::{MaskCsr, MaskRow, MaskVec};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

/// Monotone membership cursor over a sorted mask row: queries must come
/// with non-decreasing `j`, giving O(nnz(mask row)) total instead of a
/// binary search per query.
struct MaskCursor<'a> {
    cols: Option<&'a [Index]>,
    complement: bool,
    pos: usize,
}

impl<'a> MaskCursor<'a> {
    fn new(row: MaskRow<'a>) -> Self {
        let (cols, complement) = row.raw();
        MaskCursor {
            cols,
            complement,
            pos: 0,
        }
    }

    #[inline]
    fn admits(&mut self, j: Index) -> bool {
        match self.cols {
            None => true,
            Some(cols) => {
                while self.pos < cols.len() && cols[self.pos] < j {
                    self.pos += 1;
                }
                let stored = self.pos < cols.len() && cols[self.pos] == j;
                stored != self.complement
            }
        }
    }
}

/// One row (or one whole vector) of the accumulate-and-mask pipeline.
/// `c` is the old output content, `t` the operation's internal result.
#[allow(clippy::too_many_arguments)]
fn write_row<T: Scalar, Ac: Accumulate<T>>(
    c_idx: &[Index],
    c_vals: &[T],
    t_idx: &[Index],
    t_vals: &[T],
    accum: &Ac,
    mask_row: MaskRow<'_>,
    replace: bool,
    out_idx: &mut Vec<Index>,
    out_vals: &mut Vec<T>,
) {
    let mut mask = MaskCursor::new(mask_row);
    let (mut ci, mut ti) = (0usize, 0usize);
    loop {
        // next candidate position j with its Z-value (if any) and C-value
        let (j, z, c): (Index, Option<T>, Option<&T>) = match (c_idx.get(ci), t_idx.get(ti)) {
            (None, None) => break,
            (Some(&cj), None) => {
                let z = if Ac::IS_ACCUM {
                    Some(c_vals[ci].clone())
                } else {
                    None
                };
                let r = (cj, z, Some(&c_vals[ci]));
                ci += 1;
                r
            }
            (None, Some(&tj)) => {
                let r = (tj, Some(t_vals[ti].clone()), None);
                ti += 1;
                r
            }
            (Some(&cj), Some(&tj)) => {
                if cj < tj {
                    let z = if Ac::IS_ACCUM {
                        Some(c_vals[ci].clone())
                    } else {
                        None
                    };
                    let r = (cj, z, Some(&c_vals[ci]));
                    ci += 1;
                    r
                } else if tj < cj {
                    let r = (tj, Some(t_vals[ti].clone()), None);
                    ti += 1;
                    r
                } else {
                    let z = if Ac::IS_ACCUM {
                        accum.combine(&c_vals[ci], &t_vals[ti])
                    } else {
                        t_vals[ti].clone()
                    };
                    let r = (cj, Some(z), Some(&c_vals[ci]));
                    ci += 1;
                    ti += 1;
                    r
                }
            }
        };
        if mask.admits(j) {
            if let Some(zv) = z {
                out_idx.push(j);
                out_vals.push(zv);
            }
            // admitted but Z absent: element deleted (stays absent)
        } else if !replace {
            if let Some(cv) = c {
                out_idx.push(j);
                out_vals.push(cv.clone());
            }
        }
        // not admitted + replace: deleted
    }
}

/// Full pipeline for matrices: `C ⊙=<mask, replace> T`.
pub fn write_matrix<T: Scalar, Ac: Accumulate<T>>(
    c_old: &Csr<T>,
    t: Csr<T>,
    accum: &Ac,
    mask: &MaskCsr,
    replace: bool,
) -> Csr<T> {
    debug_assert_eq!(c_old.nrows(), t.nrows());
    debug_assert_eq!(c_old.ncols(), t.ncols());
    // Fast path: no mask and no accumulator — C becomes exactly T
    // (replace and merge coincide because every position is admitted).
    if mask.admits_all() && !Ac::IS_ACCUM {
        return t;
    }
    let rows = map_rows(c_old.nrows(), c_old.nvals() + t.nvals(), |i| {
        let (cc, cv) = c_old.row(i);
        let (tc, tv) = t.row(i);
        let mut idx = Vec::with_capacity(cc.len() + tc.len());
        let mut vals = Vec::with_capacity(cc.len() + tc.len());
        write_row(
            cc,
            cv,
            tc,
            tv,
            accum,
            mask.row(i),
            replace,
            &mut idx,
            &mut vals,
        );
        (idx, vals)
    });
    assemble_rows(c_old.nrows(), c_old.ncols(), rows)
}

/// Full pipeline for vectors: `w ⊙=<mask, replace> t`.
pub fn write_vector<T: Scalar, Ac: Accumulate<T>>(
    w_old: &SparseVec<T>,
    t: SparseVec<T>,
    accum: &Ac,
    mask: &MaskVec,
    replace: bool,
) -> SparseVec<T> {
    debug_assert_eq!(w_old.size(), t.size());
    if mask.admits_all() && !Ac::IS_ACCUM {
        return t;
    }
    let mut idx = Vec::with_capacity(w_old.nvals() + t.nvals());
    let mut vals = Vec::with_capacity(w_old.nvals() + t.nvals());
    write_row(
        w_old.indices(),
        w_old.vals(),
        t.indices(),
        t.vals(),
        accum,
        mask.as_row(),
        replace,
        &mut idx,
        &mut vals,
    );
    SparseVec::from_sorted_parts(w_old.size(), idx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::{Accum, NoAccum};
    use crate::algebra::binary::Plus;

    fn c_old() -> Csr<i32> {
        // [ 1 2 . ]
        // [ . 3 . ]
        Csr::from_sorted_tuples(2, 3, vec![(0, 0, 1), (0, 1, 2), (1, 1, 3)])
    }

    fn t_new() -> Csr<i32> {
        // [ 10 .  20 ]
        // [ .  30 .  ]
        Csr::from_sorted_tuples(2, 3, vec![(0, 0, 10), (0, 2, 20), (1, 1, 30)])
    }

    fn mask_01_and_11() -> MaskCsr {
        // admit (0,1) and (1,1) only
        let m = Csr::from_sorted_tuples(2, 3, vec![(0, 1, true), (1, 1, true)]);
        MaskCsr::from_csr(&m, false, false)
    }

    #[test]
    fn no_mask_no_accum_is_assignment() {
        let r = write_matrix(&c_old(), t_new(), &NoAccum, &MaskCsr::All, false);
        assert_eq!(r, t_new());
        // old C(0,1)=2 is gone: assignment replaces the full content
        assert_eq!(r.get(0, 1), None);
    }

    #[test]
    fn no_mask_accum_is_union() {
        let r = write_matrix(
            &c_old(),
            t_new(),
            &Accum(Plus::<i32>::new()),
            &MaskCsr::All,
            false,
        );
        assert_eq!(
            r.to_tuples(),
            vec![(0, 0, 11), (0, 1, 2), (0, 2, 20), (1, 1, 33)]
        );
    }

    #[test]
    fn merge_mode_keeps_unmasked_old_values() {
        let r = write_matrix(&c_old(), t_new(), &NoAccum, &mask_01_and_11(), false);
        // (0,1): admitted, T absent -> deleted; (1,1): admitted -> 30
        // (0,0): not admitted -> old 1 kept; (0,2): not admitted -> absent
        assert_eq!(r.to_tuples(), vec![(0, 0, 1), (1, 1, 30)]);
    }

    #[test]
    fn replace_mode_clears_unmasked_positions() {
        let r = write_matrix(&c_old(), t_new(), &NoAccum, &mask_01_and_11(), true);
        assert_eq!(r.to_tuples(), vec![(1, 1, 30)]);
    }

    #[test]
    fn merge_with_accum_under_mask() {
        let r = write_matrix(
            &c_old(),
            t_new(),
            &Accum(Plus::<i32>::new()),
            &mask_01_and_11(),
            false,
        );
        // (0,1): admitted, Z = old 2 (T absent, accum keeps C) -> 2
        // (1,1): admitted, Z = 3+30
        // (0,0): not admitted -> old 1; (0,2) not admitted -> absent
        assert_eq!(r.to_tuples(), vec![(0, 0, 1), (0, 1, 2), (1, 1, 33)]);
    }

    #[test]
    fn complemented_mask_flips_selection() {
        let m = Csr::from_sorted_tuples(2, 3, vec![(0, 1, true), (1, 1, true)]);
        let scmp = MaskCsr::from_csr(&m, false, true);
        let r = write_matrix(&c_old(), t_new(), &NoAccum, &scmp, true);
        // admitted = everything except (0,1),(1,1)
        assert_eq!(r.to_tuples(), vec![(0, 0, 10), (0, 2, 20)]);
    }

    #[test]
    fn masked_vector_write() {
        let w = SparseVec::from_sorted_parts(4, vec![0, 2], vec![1, 2]);
        let t = SparseVec::from_sorted_parts(4, vec![1, 2], vec![10, 20]);
        let msrc = SparseVec::from_sorted_parts(4, vec![1, 3], vec![true, true]);
        let mask = MaskVec::from_vec(&msrc, false, false);
        // merge: 1 admitted -> 10; 0,2 not admitted -> old kept
        let r = write_vector(&w, t.clone(), &NoAccum, &mask, false);
        assert_eq!(r.to_tuples(), vec![(0, 1), (1, 10), (2, 2)]);
        // replace: only admitted survive
        let r = write_vector(&w, t, &NoAccum, &mask, true);
        assert_eq!(r.to_tuples(), vec![(1, 10)]);
    }

    #[test]
    fn empty_t_with_mask_deletes_admitted_region() {
        let t = Csr::empty(2, 3);
        let r = write_matrix(&c_old(), t, &NoAccum, &mask_01_and_11(), false);
        // (0,1) admitted and Z empty -> deleted; others kept
        assert_eq!(r.to_tuples(), vec![(0, 0, 1)]);
    }

    #[test]
    fn write_is_exhaustive_against_model() {
        // brute-force model check on a 1x4 row over all patterns
        use crate::mask::MaskRow;
        let n = 4usize;
        for c_pat in 0u32..16 {
            for t_pat in 0u32..16 {
                for m_pat in 0u32..16 {
                    for &(comp, repl, acc) in &[
                        (false, false, false),
                        (false, true, false),
                        (true, false, false),
                        (true, true, false),
                        (false, false, true),
                        (true, true, true),
                    ] {
                        let bits = |p: u32| (0..n).filter(move |k| p & (1 << k) != 0);
                        let c_idx: Vec<_> = bits(c_pat).collect();
                        let c_vals: Vec<i32> = c_idx.iter().map(|&k| k as i32 + 1).collect();
                        let t_idx: Vec<_> = bits(t_pat).collect();
                        let t_vals: Vec<i32> = t_idx.iter().map(|&k| 10 * (k as i32 + 1)).collect();
                        let m_idx: Vec<_> = bits(m_pat).collect();
                        let mrow = MaskRow::from_cols(&m_idx, comp);

                        let mut got_i = Vec::new();
                        let mut got_v = Vec::new();
                        if acc {
                            write_row(
                                &c_idx,
                                &c_vals,
                                &t_idx,
                                &t_vals,
                                &Accum(Plus::<i32>::new()),
                                mrow,
                                repl,
                                &mut got_i,
                                &mut got_v,
                            );
                        } else {
                            write_row(
                                &c_idx, &c_vals, &t_idx, &t_vals, &NoAccum, mrow, repl, &mut got_i,
                                &mut got_v,
                            );
                        }

                        // model
                        let mut want: Vec<(usize, i32)> = Vec::new();
                        for j in 0..n {
                            let cv = c_idx.iter().position(|&x| x == j).map(|p| c_vals[p]);
                            let tv = t_idx.iter().position(|&x| x == j).map(|p| t_vals[p]);
                            let z = if acc {
                                match (cv, tv) {
                                    (Some(c), Some(t)) => Some(c + t),
                                    (Some(c), None) => Some(c),
                                    (None, Some(t)) => Some(t),
                                    (None, None) => None,
                                }
                            } else {
                                tv
                            };
                            let admitted = (m_idx.contains(&j)) != comp;
                            let out = if admitted {
                                z
                            } else if repl {
                                None
                            } else {
                                cv
                            };
                            if let Some(v) = out {
                                want.push((j, v));
                            }
                        }
                        let got: Vec<(usize, i32)> = got_i.into_iter().zip(got_v).collect();
                        assert_eq!(got, want,
                            "c={c_pat:04b} t={t_pat:04b} m={m_pat:04b} comp={comp} repl={repl} acc={acc}");
                    }
                }
            }
        }
    }
}
