//! `extract` kernels (Table II): `T = A(i, j)` — gather a subcollection
//! selected by index lists. Index lists arrive already resolved and
//! bounds-checked by the operation layer; duplicates are allowed (the
//! same source element may land in several output positions).

use crate::index::Index;
use crate::kernel::util::{assemble_rows, map_rows_init};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

/// `T(k, l) = A(rows[k], cols[l])` for stored elements.
pub fn extract_matrix<T: Scalar>(a: &Csr<T>, rows: &[Index], cols: &[Index]) -> Csr<T> {
    let identity_cols = cols.len() == a.ncols() && cols.iter().enumerate().all(|(l, &j)| l == j);
    let out_rows = map_rows_init(
        rows.len(),
        a.nvals(),
        || (vec![None::<T>; a.ncols()], Vec::<Index>::new()),
        |(ws, touched), k| {
            let (src_cols, src_vals) = a.row(rows[k]);
            if identity_cols {
                return (src_cols.to_vec(), src_vals.to_vec());
            }
            // scatter the source row, then gather in output-column order
            for (j, v) in src_cols.iter().zip(src_vals) {
                ws[*j] = Some(v.clone());
                touched.push(*j);
            }
            let mut out_c = Vec::new();
            let mut out_v = Vec::new();
            for (l, &j) in cols.iter().enumerate() {
                if let Some(v) = &ws[j] {
                    out_c.push(l);
                    out_v.push(v.clone());
                }
            }
            for &j in touched.iter() {
                ws[j] = None;
            }
            touched.clear();
            (out_c, out_v)
        },
    );
    assemble_rows(rows.len(), cols.len(), out_rows)
}

/// `t(k) = u(indices[k])` for stored elements.
pub fn extract_vector<T: Scalar>(u: &SparseVec<T>, indices: &[Index]) -> SparseVec<T> {
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for (k, &i) in indices.iter().enumerate() {
        if let Some(v) = u.get(i) {
            idx.push(k);
            vals.push(v.clone());
        }
    }
    SparseVec::from_sorted_parts(indices.len(), idx, vals)
}

/// Column extract (`GrB_Col_extract`): `t(k) = A(rows[k], j)`.
pub fn extract_matrix_col<T: Scalar>(a: &Csr<T>, rows: &[Index], j: Index) -> SparseVec<T> {
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for (k, &i) in rows.iter().enumerate() {
        if let Some(v) = a.get(i, j) {
            idx.push(k);
            vals.push(v.clone());
        }
    }
    SparseVec::from_sorted_parts(rows.len(), idx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Csr<i32> {
        // [ 1 2 . ]
        // [ . 3 4 ]
        // [ 5 . 6 ]
        Csr::from_sorted_tuples(
            3,
            3,
            vec![
                (0, 0, 1),
                (0, 1, 2),
                (1, 1, 3),
                (1, 2, 4),
                (2, 0, 5),
                (2, 2, 6),
            ],
        )
    }

    #[test]
    fn extract_submatrix() {
        let t = extract_matrix(&a(), &[0, 2], &[0, 2]);
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.to_tuples(), vec![(0, 0, 1), (1, 0, 5), (1, 1, 6)]);
    }

    #[test]
    fn extract_permutes_and_duplicates() {
        let t = extract_matrix(&a(), &[1, 1], &[2, 1, 2]);
        // both output rows are source row 1: [., 3, 4] gathered as cols [2,1,2]
        assert_eq!(
            t.to_tuples(),
            vec![
                (0, 0, 4),
                (0, 1, 3),
                (0, 2, 4),
                (1, 0, 4),
                (1, 1, 3),
                (1, 2, 4)
            ]
        );
    }

    #[test]
    fn extract_identity_cols_fast_path() {
        let t = extract_matrix(&a(), &[2, 0], &[0, 1, 2]);
        assert_eq!(
            t.to_tuples(),
            vec![(0, 0, 5), (0, 2, 6), (1, 0, 1), (1, 1, 2)]
        );
    }

    #[test]
    fn extract_missing_elements_stay_undefined() {
        let t = extract_matrix(&a(), &[1], &[0]);
        assert_eq!(t.nvals(), 0);
    }

    #[test]
    fn extract_vector_gather() {
        let u = SparseVec::from_sorted_parts(5, vec![1, 3], vec![10, 30]);
        let t = extract_vector(&u, &[3, 0, 1, 3]);
        assert_eq!(t.to_tuples(), vec![(0, 30), (2, 10), (3, 30)]);
        assert_eq!(t.size(), 4);
    }

    #[test]
    fn extract_column() {
        let t = extract_matrix_col(&a(), &[0, 1, 2], 1);
        assert_eq!(t.to_tuples(), vec![(0, 2), (1, 3)]);
        // Fig. 3 line 33 shape: extract columns of A^T selected by source
        // vertices = rows of A
        let at = a().transpose();
        let fr = extract_matrix(&at, &[0, 1, 2], &[1]);
        assert_eq!(fr.ncols(), 1);
        assert_eq!(fr.to_tuples(), vec![(1, 0, 3), (2, 0, 4)]);
    }
}
