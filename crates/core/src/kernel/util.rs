//! Shared kernel infrastructure: row-parallel mapping over the shared
//! worker pool (see [`crate::kernel::par`]) and CSR assembly from
//! per-row results.

use crate::index::Index;
#[cfg(feature = "parallel")]
use crate::kernel::par;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;

/// Map `f` over `0..nrows`, preserving order; rows are chunked onto the
/// shared pool when the cost model says the operation is big enough.
/// `work` is the kernel's work estimate (stored elements touched),
/// feeding the nnz half of the cost model.
pub(crate) fn map_rows<R, F>(nrows: usize, work: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    if let Some(plan) = par::plan(nrows, work) {
        return par::run_chunks(nrows, plan, |start, end| {
            (start..end).map(&f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect();
    }
    let _ = work;
    (0..nrows).map(f).collect()
}

/// Map `f` over `0..nrows` with a scratch state created by `init` — one
/// state per chunk in parallel (each worker's private accumulator), one
/// state total on the serial path.
pub(crate) fn map_rows_init<S, R, I, F>(nrows: usize, work: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    if let Some(plan) = par::plan(nrows, work) {
        return par::run_chunks(nrows, plan, |start, end| {
            let mut s = init();
            (start..end).map(|i| f(&mut s, i)).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect();
    }
    let _ = work;
    let mut s = init();
    (0..nrows).map(|i| f(&mut s, i)).collect()
}

/// Assemble a CSR matrix from independently computed rows. Each row's
/// column indices must already be sorted and duplicate-free.
pub(crate) fn assemble_rows<T: Scalar>(
    nrows: Index,
    ncols: Index,
    rows: Vec<(Vec<Index>, Vec<T>)>,
) -> Csr<T> {
    debug_assert_eq!(rows.len(), nrows);
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut total = 0usize;
    for (cols, vals) in &rows {
        debug_assert_eq!(cols.len(), vals.len());
        total += cols.len();
        row_ptr.push(total);
    }
    let mut col_idx = Vec::with_capacity(total);
    let mut out_vals = Vec::with_capacity(total);
    for (cols, vals) in rows {
        col_idx.extend(cols);
        out_vals.extend(vals);
    }
    Csr::from_parts(nrows, ncols, row_ptr, col_idx, out_vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rows_preserves_order() {
        let v = map_rows(1000, 1 << 20, |i| i * 2);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn map_rows_matches_serial_bitwise_at_any_degree() {
        let serial = par::with_parallelism(1, || map_rows(5000, 1 << 20, |i| (i as f64).sqrt()));
        for k in [2, 8] {
            let parallel =
                par::with_parallelism(k, || map_rows(5000, 1 << 20, |i| (i as f64).sqrt()));
            assert!(serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn map_rows_init_threads_scratch() {
        let v = map_rows_init(
            500,
            0,
            || vec![0u8; 16],
            |scratch, i| {
                scratch[0] = scratch[0].wrapping_add(1);
                i + 1
            },
        );
        assert_eq!(v[499], 500);
    }

    #[test]
    fn assemble_from_rows() {
        let rows = vec![
            (vec![1, 3], vec![10, 30]),
            (vec![], vec![]),
            (vec![0], vec![99]),
        ];
        let m = assemble_rows(3, 4, rows);
        assert_eq!(m.nvals(), 3);
        assert_eq!(m.get(0, 3), Some(&30));
        assert_eq!(m.get(2, 0), Some(&99));
        assert_eq!(m.row_nvals(1), 0);
    }
}
