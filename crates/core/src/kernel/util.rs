//! Shared kernel infrastructure: row-parallel mapping (rayon-backed when
//! the `parallel` feature is on) and CSR assembly from per-row results.

use crate::index::Index;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;

/// Rows below this count run sequentially even with `parallel` enabled —
/// the rayon fork/join overhead dominates on tiny operands.
#[cfg(feature = "parallel")]
pub(crate) const PAR_ROW_THRESHOLD: usize = 128;

/// Map `f` over `0..nrows`, in parallel when beneficial, preserving order.
pub(crate) fn map_rows<R, F>(nrows: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    #[cfg(feature = "parallel")]
    {
        if nrows >= PAR_ROW_THRESHOLD {
            use rayon::prelude::*;
            return (0..nrows).into_par_iter().map(f).collect();
        }
    }
    (0..nrows).map(f).collect()
}

/// Map `f` over `0..nrows` with a per-worker scratch state created by
/// `init` (rayon `map_init`; a single state sequentially).
pub(crate) fn map_rows_init<S, R, I, F>(nrows: usize, init: I, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    I: Fn() -> S + Send + Sync,
    F: Fn(&mut S, usize) -> R + Send + Sync,
{
    #[cfg(feature = "parallel")]
    {
        if nrows >= PAR_ROW_THRESHOLD {
            use rayon::prelude::*;
            return (0..nrows)
                .into_par_iter()
                .map_init(&init, |s, i| f(s, i))
                .collect();
        }
    }
    let mut s = init();
    (0..nrows).map(|i| f(&mut s, i)).collect()
}

/// Assemble a CSR matrix from independently computed rows. Each row's
/// column indices must already be sorted and duplicate-free.
pub(crate) fn assemble_rows<T: Scalar>(
    nrows: Index,
    ncols: Index,
    rows: Vec<(Vec<Index>, Vec<T>)>,
) -> Csr<T> {
    debug_assert_eq!(rows.len(), nrows);
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut total = 0usize;
    for (cols, vals) in &rows {
        debug_assert_eq!(cols.len(), vals.len());
        total += cols.len();
        row_ptr.push(total);
    }
    let mut col_idx = Vec::with_capacity(total);
    let mut out_vals = Vec::with_capacity(total);
    for (cols, vals) in rows {
        col_idx.extend(cols);
        out_vals.extend(vals);
    }
    Csr::from_parts(nrows, ncols, row_ptr, col_idx, out_vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rows_preserves_order() {
        let v = map_rows(1000, |i| i * 2);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn map_rows_init_threads_scratch() {
        let v = map_rows_init(
            500,
            || vec![0u8; 16],
            |scratch, i| {
                scratch[0] = scratch[0].wrapping_add(1);
                i + 1
            },
        );
        assert_eq!(v[499], 500);
    }

    #[test]
    fn assemble_from_rows() {
        let rows = vec![
            (vec![1, 3], vec![10, 30]),
            (vec![], vec![]),
            (vec![0], vec![99]),
        ];
        let m = assemble_rows(3, 4, rows);
        assert_eq!(m.nvals(), 3);
        assert_eq!(m.get(0, 3), Some(&30));
        assert_eq!(m.get(2, 0), Some(&99));
        assert_eq!(m.row_nvals(1), 0);
    }
}
