//! Direction-optimized SpMSpV: one dispatch point for `vxm`/`mxv` that
//! picks, per operation, between three bitwise-identical evaluation
//! strategies:
//!
//! * **push** — a sparse-accumulator scatter from the stored entries of
//!   the input vector through the forward-oriented CSR (the SpMSpV of
//!   the "parallel hypersparse" line of work): work is proportional to
//!   the frontier's outgoing edges, not the matrix;
//! * **pull** — a merge-walk per *admitted* output index over the
//!   reverse-oriented CSR (or the bitmap fast path), with
//!   complement-structural-mask awareness so masked-out rows are never
//!   expanded;
//! * **dense** — the pre-existing kernels in [`crate::kernel::mxv`],
//!   kept verbatim as the baseline and as the choice for dense inputs.
//!
//! The choice is driven by the per-store property cache
//! ([`MatrixStore::row_degrees`] / [`MatrixStore::col_degrees`]): the
//! push cost is the *exact* number of products (the sum of cached
//! forward degrees over the frontier), the pull cost is the admitted
//! fraction of the matrix plus a one-time conversion penalty when the
//! reverse view is not yet materialized. This is the LAGraph-style
//! direction switch: push on sparse frontiers, pull near the dense peak.
//!
//! **Determinism contract.** All three strategies accumulate each output
//! element's contributions in ascending input-index order with the same
//! left-fold association, and the parallel push path merges its chunk
//! results in chunk (= frontier) order — so push ≡ pull ≡ dense
//! *bitwise* (NaN payloads, signed zeros and all) at every parallelism
//! degree, the same contract the chunked kernels already honor.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::algebra::binary::BinaryOp;
use crate::algebra::semiring::Semiring;
use crate::index::Index;
#[cfg(feature = "parallel")]
use crate::kernel::par;
use crate::kernel::util::{map_rows, map_rows_init};
use crate::mask::MaskVec;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::engine::{Bitmap, Layout, MatrixStore};
use crate::storage::tiled::{self, OrientedTiles, RowCursor, Tiled};
use crate::storage::vec::SparseVec;

/// Evaluation strategy for one matrix–vector product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Let the cost model decide (the default).
    Auto,
    /// Force the sparse-accumulator push (scatter) path.
    Push,
    /// Force the per-output merge-walk pull path.
    Pull,
    /// Force the pre-direction-optimization dense kernels.
    Dense,
}

/// Process-wide direction override, `0 = Auto`. A global (not a
/// thread-local) on purpose: kernels run on the scheduler's worker
/// threads, and the equivalence tests and the E12 baseline need the
/// forced direction to reach them.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn encode(d: Direction) -> u8 {
    match d {
        Direction::Auto => 0,
        Direction::Push => 1,
        Direction::Pull => 2,
        Direction::Dense => 3,
    }
}

/// The currently forced direction, if any.
pub fn direction_override() -> Direction {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Direction::Push,
        2 => Direction::Pull,
        3 => Direction::Dense,
        _ => Direction::Auto,
    }
}

/// Run `f` with the direction forced process-wide (restored on exit,
/// panic included). Intended for tests and benchmarks; concurrent
/// callers forcing *different* directions race and must serialize
/// themselves.
pub fn with_direction<R>(d: Direction, f: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE.swap(encode(d), Ordering::Relaxed);
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(prev);
    f()
}

thread_local! {
    /// Direction taken by the most recent dispatch on this thread; the
    /// scheduler drains it into the trace after each node compute.
    static CHOSEN: std::cell::Cell<Option<&'static str>> =
        const { std::cell::Cell::new(None) };
}

fn note_direction(d: &'static str) {
    CHOSEN.with(|c| c.set(Some(d)));
}

/// Drain the direction note accumulated on this thread since the last
/// call (the scheduler calls this right after each node compute).
pub fn take_direction() -> Option<&'static str> {
    CHOSEN.with(|c| c.take())
}

/// `w^T = v^T ⊕.⊗ op(A)` with direction optimization; `transposed`
/// selects `op(A) = A^T` (the `GrB_TRAN` descriptor).
pub fn vxm<D1, D2, D3, S>(
    sr: &S,
    v: &SparseVec<D1>,
    store: &MatrixStore<D2>,
    transposed: bool,
    mask: &MaskVec,
) -> SparseVec<D3>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    S: Semiring<D1, D2, D3>,
{
    let add = sr.add();
    let mul = sr.mul();
    // core closures take (matrix value, vector value); vxm multiplies
    // vector-first per Table II
    let mulf = |a: &D2, x: &D1| mul.apply(x, a);
    let addf = |x: &D3, y: &D3| add.apply(x, y);
    let out_size = if transposed {
        store.nrows()
    } else {
        store.ncols()
    };
    // forward view: rows indexed by the input dimension
    let fwd_deg = if transposed {
        store.col_degrees()
    } else {
        store.row_degrees()
    };
    let bitmap_pull = transposed && matches!(store.layout(), Layout::Bitmap(_));
    let dir = choose(
        store,
        v,
        transposed,
        &fwd_deg,
        mask,
        out_size,
        bitmap_pull,
        true,
    );
    match dir {
        Chosen::Push => {
            note_direction("push");
            // tiled stores push through per-tile views instead of an
            // assembled slab — same frontier walk, segmented rows
            if let Layout::Tiled(t) = store.layout() {
                return push_tiled(t, transposed, v, mask, out_size, &fwd_deg, &mulf, &addf);
            }
            let fwd = oriented(store, transposed);
            push(&fwd, v, mask, out_size, &mulf, &addf)
        }
        Chosen::Pull => {
            note_direction("pull");
            // reverse view: rows indexed by the output dimension. When
            // the transpose descriptor is set the output dimension is
            // A's native row dimension, so a bitmap store pulls
            // directly from its presence words.
            if transposed {
                if let Layout::Bitmap(b) = store.layout() {
                    return pull_bitmap(b, v, mask, &mulf, &addf);
                }
            }
            if let Layout::Tiled(t) = store.layout() {
                if !wide_pull(mask, out_size) && !store.csr_view_ready(!transposed) {
                    return pull_tiled(t, !transposed, v, mask, &mulf, &addf);
                }
            }
            let rev = oriented(store, !transposed);
            pull(&rev, v, mask, &mulf, &addf)
        }
        Chosen::Dense => {
            note_direction("dense");
            let fwd = oriented(store, transposed);
            crate::kernel::mxv::vxm(sr, v, &fwd, mask)
        }
    }
}

/// `w = op(A) ⊕.⊗ v` with direction optimization; `transposed` selects
/// `op(A) = A^T`.
pub fn mxv<D1, D2, D3, S>(
    sr: &S,
    store: &MatrixStore<D1>,
    v: &SparseVec<D2>,
    transposed: bool,
    mask: &MaskVec,
) -> SparseVec<D3>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    S: Semiring<D1, D2, D3>,
{
    let add = sr.add();
    let mul = sr.mul();
    // mxv multiplies matrix-first per Table II
    let mulf = |a: &D1, x: &D2| mul.apply(a, x);
    let addf = |x: &D3, y: &D3| add.apply(x, y);
    let out_size = if transposed {
        store.ncols()
    } else {
        store.nrows()
    };
    // forward view for mxv: rows indexed by the *input* dimension, i.e.
    // A's columns when untransposed
    let fwd_deg = if transposed {
        store.row_degrees()
    } else {
        store.col_degrees()
    };
    // the reverse (pull) orientation is A's native row orientation when
    // untransposed — where the bitmap fast path applies
    let bitmap_pull = !transposed && matches!(store.layout(), Layout::Bitmap(_));
    let dir = choose(
        store,
        v,
        !transposed,
        &fwd_deg,
        mask,
        out_size,
        bitmap_pull,
        false,
    );
    match dir {
        Chosen::Push => {
            note_direction("push");
            if let Layout::Tiled(t) = store.layout() {
                return push_tiled(t, !transposed, v, mask, out_size, &fwd_deg, &mulf, &addf);
            }
            let fwd = oriented(store, !transposed);
            push(&fwd, v, mask, out_size, &mulf, &addf)
        }
        Chosen::Pull | Chosen::Dense => {
            // the pre-PR mxv already pulled (with the bitmap fast
            // path), so Dense and Pull share an implementation here
            note_direction(if dir == Chosen::Pull { "pull" } else { "dense" });
            if !transposed {
                if let Layout::Bitmap(b) = store.layout() {
                    return pull_bitmap(b, v, mask, &mulf, &addf);
                }
            }
            if let Layout::Tiled(t) = store.layout() {
                if !wide_pull(mask, out_size) && !store.csr_view_ready(transposed) {
                    return pull_tiled(t, transposed, v, mask, &mulf, &addf);
                }
            }
            let rev = oriented(store, transposed);
            pull(&rev, v, mask, &mulf, &addf)
        }
    }
}

/// Whether a pull would walk at least half the output dimension — the
/// full-sweep shape (O(1) from the mask). A *wide* pull over a tiled
/// store re-pays the per-segment gather overhead on most rows every
/// call, so it is served from the store's memoized assembled reverse
/// view instead (one slab assembly per store — the same conversion
/// penalty a slab store pays for its missing orientation — then
/// slab-speed merge-walks for the store's lifetime). Narrow pulls keep
/// the native tile walk and never force assembly. Both routes fold in
/// ascending stored-index order, so the choice is bitwise invisible
/// (`tests/tiled_equivalence.rs`).
fn wide_pull(mask: &MaskVec, out_size: Index) -> bool {
    let admitted = match mask {
        MaskVec::All => out_size,
        MaskVec::Pattern {
            indices,
            complement: false,
        } => indices.len(),
        MaskVec::Pattern {
            indices,
            complement: true,
        } => out_size.saturating_sub(indices.len()),
    };
    admitted * 2 >= out_size
}

/// The CSR view with rows indexed by A's columns (`col_side = true`) or
/// rows (`false`).
fn oriented<T: Scalar>(store: &MatrixStore<T>, col_side: bool) -> Arc<Csr<T>> {
    if col_side {
        store.col_csr()
    } else {
        store.row_csr()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chosen {
    Push,
    Pull,
    Dense,
}

/// The direction heuristic. `fwd_col_side` names the orientation whose
/// CSR the push path needs (`true` = A's column orientation), so the
/// conversion penalties land on the right side of the comparison;
/// `bitmap_pull` marks a pull path that reads the bitmap directly and
/// needs no CSR at all; `dense_on_fwd` says which orientation the
/// Dense fallback reads (`vxm`'s legacy kernel walks the forward view,
/// `mxv`'s is the reverse merge-walk).
#[allow(clippy::too_many_arguments)] // two callers, both internal dispatchers
fn choose<A: Scalar, V: Scalar>(
    store: &MatrixStore<A>,
    v: &SparseVec<V>,
    fwd_col_side: bool,
    fwd_deg: &Arc<[usize]>,
    mask: &MaskVec,
    out_size: Index,
    bitmap_pull: bool,
    dense_on_fwd: bool,
) -> Chosen {
    match direction_override() {
        Direction::Push => return Chosen::Push,
        Direction::Pull => return Chosen::Pull,
        Direction::Dense => return Chosen::Dense,
        Direction::Auto => {}
    }
    let v_nnz = v.nvals();
    if v_nnz == 0 {
        // nothing to scatter; push is the trivially empty plan
        return Chosen::Push;
    }
    let nnz = store.nvals();
    // exact number of products the push path will form
    let push_products: usize = v.indices().iter().map(|&i| fwd_deg[i]).sum();
    // a view is free when it is already materialized — or when the row
    // view is and the value is (bitwise) symmetric, because `col_csr`
    // then *shares* the row view instead of transposing. The symmetry
    // probe only runs when the row view is itself free, so costing a
    // plan never triggers the very conversion being costed. A tiled
    // store serves both orientations through per-tile views (a touched
    // tile transposes lazily, amortized per tile), so neither side pays
    // the whole-slab conversion penalty.
    let is_tiled = matches!(store.layout(), Layout::Tiled(_));
    let fwd_ready = is_tiled
        || store.csr_view_ready(fwd_col_side)
        || (store.csr_view_ready(false) && store.is_symmetric());
    let fwd_penalty = if fwd_ready { 0 } else { nnz + out_size };
    // the sparse accumulator sorts and reduces what it gathers — charge
    // the products twice; the dense accumulator instead pays an
    // O(out_size) scatter plane, which is why near-dense inputs
    // (PageRank's iterate, peak BFS frontiers without a usable mask)
    // fall back to the pre-PR kernels
    let push_cost = push_products.saturating_mul(2).saturating_add(fwd_penalty);
    // the complement-structural-mask-aware part: only admitted outputs
    // are ever expanded, so the pull cost scales with the admitted
    // fraction, not the matrix
    let admitted = match mask {
        MaskVec::All => out_size,
        MaskVec::Pattern {
            indices,
            complement: false,
        } => indices.len(),
        MaskVec::Pattern {
            indices,
            complement: true,
        } => out_size.saturating_sub(indices.len()),
    };
    // the reverse view is free when it is already materialized, when
    // the pull path reads the bitmap directly, or via the same symmetry
    // sharing as the forward side
    let rev_ready = bitmap_pull
        || is_tiled
        || store.csr_view_ready(!fwd_col_side)
        || (store.csr_view_ready(false) && store.is_symmetric());
    let rev_penalty = if rev_ready { 0 } else { nnz + out_size };
    let pull_cost = v_nnz
        .saturating_add(admitted)
        .saturating_add(
            nnz.checked_div(out_size)
                .unwrap_or(0)
                .saturating_mul(admitted),
        )
        .saturating_add(rev_penalty);
    let dense_cost = push_products
        .saturating_add(out_size)
        .saturating_add(if dense_on_fwd {
            fwd_penalty
        } else {
            rev_penalty
        });
    if pull_cost < push_cost && pull_cost < dense_cost {
        Chosen::Pull
    } else if push_cost <= dense_cost {
        Chosen::Push
    } else {
        Chosen::Dense
    }
}

/// Sparse-accumulator push over frontier positions `lo..hi`: gather
/// `(output index, product)` pairs in frontier order, stable-sort by
/// output index (preserving frontier order within each), and reduce
/// adjacent duplicates left-to-right — ascending-input-index
/// accumulation, same as every other path.
#[allow(clippy::too_many_arguments)] // chunk-span shape, mirrors kernel::par callees
fn push_gather<A, V, D3, M, R>(
    fwd: &Csr<A>,
    vi: &[Index],
    vv: &[V],
    mask: &MaskVec,
    lo: usize,
    hi: usize,
    mulf: &M,
    addf: &R,
) -> (Vec<Index>, Vec<D3>)
where
    A: Scalar,
    V: Scalar,
    D3: Scalar,
    M: Fn(&A, &V) -> D3,
    R: Fn(&D3, &D3) -> D3,
{
    let mut pairs: Vec<(Index, D3)> = Vec::new();
    for p in lo..hi {
        let (cols, vals) = fwd.row(vi[p]);
        for (j, a) in cols.iter().zip(vals) {
            // mask first: masked-out outputs never form a product, the
            // same contract the dense kernel keeps
            if !mask.admits(*j) {
                continue;
            }
            pairs.push((*j, mulf(a, &vv[p])));
        }
    }
    reduce_pairs(pairs, addf)
}

/// Stable-sort gathered `(output index, product)` pairs and reduce
/// adjacent duplicates left-to-right — the shared tail of the slab and
/// tiled push gathers. Stability keeps frontier order within each
/// output index, so accumulation stays in ascending input-index order.
fn reduce_pairs<D3, R>(mut pairs: Vec<(Index, D3)>, addf: &R) -> (Vec<Index>, Vec<D3>)
where
    D3: Scalar,
    R: Fn(&D3, &D3) -> D3,
{
    pairs.sort_by_key(|&(j, _)| j); // stable sort: frontier order survives
    let mut idx: Vec<Index> = Vec::new();
    let mut out: Vec<D3> = Vec::new();
    for (j, prod) in pairs {
        if idx.last() == Some(&j) {
            let last = out.last_mut().expect("non-empty with last index");
            *last = addf(last, &prod);
        } else {
            idx.push(j);
            out.push(prod);
        }
    }
    (idx, out)
}

/// The tiled analog of [`push_gather`]: each frontier row's entries are
/// drawn from the stripe's tiles left-to-right, so pairs are gathered in
/// ascending global output order within each frontier position — the
/// same order a slab row yields.
#[allow(clippy::too_many_arguments)] // chunk-span shape, mirrors push_gather
fn push_gather_tiled<A, V, D3, M, R>(
    ot: &OrientedTiles<'_, A>,
    vi: &[Index],
    vv: &[V],
    mask: &MaskVec,
    lo: usize,
    hi: usize,
    mulf: &M,
    addf: &R,
) -> (Vec<Index>, Vec<D3>)
where
    A: Scalar,
    V: Scalar,
    D3: Scalar,
    M: Fn(&A, &V) -> D3,
    R: Fn(&D3, &D3) -> D3,
{
    let mut pairs: Vec<(Index, D3)> = Vec::new();
    // frontier indices are sorted, so the cursor's stripe cache hits
    let mut cur = ot.cursor();
    for p in lo..hi {
        cur.for_row(vi[p], &mut |off, cols, vals| {
            for (j, a) in cols.iter().zip(vals) {
                let g = off + j;
                if !mask.admits(g) {
                    continue;
                }
                pairs.push((g, mulf(a, &vv[p])));
            }
        });
    }
    reduce_pairs(pairs, addf)
}

/// Push over a tiled store: the frontier walk of [`push`], reading rows
/// through lazily materialized per-tile views (`col_side` picks the
/// orientation) — only tiles the frontier actually touches convert.
#[allow(clippy::too_many_arguments)] // dispatch-shape, mirrors push
fn push_tiled<A, V, D3, M, R>(
    t: &Tiled<A>,
    col_side: bool,
    v: &SparseVec<V>,
    mask: &MaskVec,
    out_size: Index,
    fwd_deg: &[usize],
    mulf: &M,
    addf: &R,
) -> SparseVec<D3>
where
    A: Scalar,
    V: Scalar,
    D3: Scalar,
    M: Fn(&A, &V) -> D3 + Sync,
    R: Fn(&D3, &D3) -> D3 + Sync,
{
    let vi = v.indices();
    let vv = v.vals();
    let ot = OrientedTiles::new(t, col_side);
    #[cfg(not(feature = "parallel"))]
    let _ = fwd_deg;
    #[cfg(feature = "parallel")]
    {
        let work: usize = vi.iter().map(|&i| fwd_deg[i]).sum();
        if let Some(plan) = par::plan(vi.len(), work) {
            let parts = par::run_chunks(vi.len(), plan, |lo, hi| {
                push_gather_tiled(&ot, vi, vv, mask, lo, hi, mulf, addf)
            });
            let merged = parts
                .into_iter()
                .reduce(|a, b| merge_sorted(a, b, addf))
                .unwrap_or_default();
            tiled::note_tiles(ot.touched());
            return SparseVec::from_sorted_parts(out_size, merged.0, merged.1);
        }
    }
    let (idx, vals) = push_gather_tiled(&ot, vi, vv, mask, 0, vi.len(), mulf, addf);
    tiled::note_tiles(ot.touched());
    SparseVec::from_sorted_parts(out_size, idx, vals)
}

/// Merge two sorted per-chunk results; `a` comes from earlier frontier
/// positions, so duplicates combine as `addf(a, b)` — chunk order is
/// frontier order is input-index order.
fn merge_sorted<D3, R>(
    a: (Vec<Index>, Vec<D3>),
    b: (Vec<Index>, Vec<D3>),
    addf: &R,
) -> (Vec<Index>, Vec<D3>)
where
    D3: Scalar,
    R: Fn(&D3, &D3) -> D3,
{
    let (ai, av) = a;
    let (bi, bv) = b;
    let mut idx = Vec::with_capacity(ai.len() + bi.len());
    let mut out = Vec::with_capacity(av.len() + bv.len());
    let mut ap = ai.iter().zip(av).peekable();
    let mut bp = bi.iter().zip(bv).peekable();
    loop {
        match (ap.peek(), bp.peek()) {
            (Some((&x, _)), Some((&y, _))) => {
                if x < y {
                    let (_, v) = ap.next().expect("peeked");
                    idx.push(x);
                    out.push(v);
                } else if y < x {
                    let (_, v) = bp.next().expect("peeked");
                    idx.push(y);
                    out.push(v);
                } else {
                    let (_, va) = ap.next().expect("peeked");
                    let (_, vb) = bp.next().expect("peeked");
                    idx.push(x);
                    out.push(addf(&va, &vb));
                }
            }
            (Some(_), None) => {
                let (&x, v) = ap.next().expect("peeked");
                idx.push(x);
                out.push(v);
            }
            (None, Some(_)) => {
                let (&y, v) = bp.next().expect("peeked");
                idx.push(y);
                out.push(v);
            }
            (None, None) => break,
        }
    }
    (idx, out)
}

fn push<A, V, D3, M, R>(
    fwd: &Csr<A>,
    v: &SparseVec<V>,
    mask: &MaskVec,
    out_size: Index,
    mulf: &M,
    addf: &R,
) -> SparseVec<D3>
where
    A: Scalar,
    V: Scalar,
    D3: Scalar,
    M: Fn(&A, &V) -> D3 + Sync,
    R: Fn(&D3, &D3) -> D3 + Sync,
{
    let vi = v.indices();
    let vv = v.vals();
    #[cfg(feature = "parallel")]
    {
        let work: usize = vi.iter().map(|&i| fwd.row_nvals(i)).sum();
        if let Some(plan) = par::plan(vi.len(), work) {
            let parts = par::run_chunks(vi.len(), plan, |lo, hi| {
                push_gather(fwd, vi, vv, mask, lo, hi, mulf, addf)
            });
            // left-fold in chunk order: identical association to the
            // serial frontier walk
            let merged = parts
                .into_iter()
                .reduce(|a, b| merge_sorted(a, b, addf))
                .unwrap_or_default();
            return SparseVec::from_sorted_parts(out_size, merged.0, merged.1);
        }
    }
    let (idx, vals) = push_gather(fwd, vi, vv, mask, 0, vi.len(), mulf, addf);
    SparseVec::from_sorted_parts(out_size, idx, vals)
}

/// One reverse-oriented row against the dense-scattered input: O(1)
/// probes per stored entry, accumulating in ascending stored-index
/// order — the same left fold as push and the dense kernels.
fn probe_row<A, V, D3, M, R>(
    cols: &[Index],
    vals: &[A],
    v_dense: &[Option<&V>],
    mulf: &M,
    addf: &R,
) -> Option<D3>
where
    A: Scalar,
    V: Scalar,
    D3: Scalar,
    M: Fn(&A, &V) -> D3,
    R: Fn(&D3, &D3) -> D3,
{
    let mut acc: Option<D3> = None;
    for (i, a) in cols.iter().zip(vals) {
        if let Some(x) = v_dense[*i] {
            let prod = mulf(a, x);
            acc = Some(match acc {
                Some(y) => addf(&y, &prod),
                None => prod,
            });
        }
    }
    acc
}

fn pull<A, V, D3, M, R>(
    rev: &Csr<A>,
    v: &SparseVec<V>,
    mask: &MaskVec,
    mulf: &M,
    addf: &R,
) -> SparseVec<D3>
where
    A: Scalar,
    V: Scalar,
    D3: Scalar,
    M: Fn(&A, &V) -> D3 + Sync,
    R: Fn(&D3, &D3) -> D3 + Sync,
{
    let out_size = rev.nrows();
    // dense scatter of the input: one O(size) pass, O(1) probes after
    let mut v_dense: Vec<Option<&V>> = vec![None; v.size()];
    for (k, val) in v.iter() {
        v_dense[k] = Some(val);
    }
    let v_dense = &v_dense;
    // non-complement pattern: expand *only* the admitted outputs — the
    // mask's indices are sorted, so the result assembles in order
    if let MaskVec::Pattern {
        indices,
        complement: false,
    } = mask
    {
        let eval = |lo: usize, hi: usize| {
            let mut idx = Vec::new();
            let mut out = Vec::new();
            for &j in &indices[lo..hi] {
                let (cols, vals) = rev.row(j);
                if let Some(acc) = probe_row(cols, vals, v_dense, mulf, addf) {
                    idx.push(j);
                    out.push(acc);
                }
            }
            (idx, out)
        };
        #[cfg(feature = "parallel")]
        {
            let work: usize = rev.nvals().min(indices.len().saturating_mul(8)) + v.nvals();
            if let Some(plan) = par::plan(indices.len(), work) {
                let parts = par::run_chunks(indices.len(), plan, eval);
                let mut idx = Vec::new();
                let mut out = Vec::new();
                for (i, o) in parts {
                    idx.extend(i);
                    out.extend(o);
                }
                return SparseVec::from_sorted_parts(out_size, idx, out);
            }
        }
        let (idx, out) = eval(0, indices.len());
        return SparseVec::from_sorted_parts(out_size, idx, out);
    }
    // All or complement-pattern mask: walk rows with the admits()
    // early-exit so masked-out rows are never expanded
    let results = map_rows(out_size, rev.nvals() + v.nvals(), |j| {
        if !mask.admits(j) {
            return None;
        }
        let (cols, vals) = rev.row(j);
        probe_row(cols, vals, v_dense, mulf, addf)
    });
    let mut idx = Vec::new();
    let mut out = Vec::new();
    for (j, r) in results.into_iter().enumerate() {
        if let Some(val) = r {
            idx.push(j);
            out.push(val);
        }
    }
    SparseVec::from_sorted_parts(out_size, idx, out)
}

/// One reverse-oriented *tiled* row against the dense-scattered input:
/// tile segments arrive in ascending global stored-index order, so the
/// left fold is bitwise identical to [`probe_row`] over a slab row.
fn probe_row_tiled<A, V, D3, M, R>(
    cur: &mut RowCursor<'_, '_, A>,
    j: Index,
    v_dense: &[Option<&V>],
    mulf: &M,
    addf: &R,
) -> Option<D3>
where
    A: Scalar,
    V: Scalar,
    D3: Scalar,
    M: Fn(&A, &V) -> D3,
    R: Fn(&D3, &D3) -> D3,
{
    let mut acc: Option<D3> = None;
    cur.for_row(j, &mut |off, cols, vals| {
        for (i, a) in cols.iter().zip(vals) {
            if let Some(x) = v_dense[off + i] {
                let prod = mulf(a, x);
                acc = Some(match acc.take() {
                    Some(y) => addf(&y, &prod),
                    None => prod,
                });
            }
        }
    });
    acc
}

/// Pull over a tiled store: the per-admitted-output merge-walk of
/// [`pull`], probing rows through lazily materialized per-tile views
/// (`col_side` picks the reverse orientation).
fn pull_tiled<A, V, D3, M, R>(
    t: &Tiled<A>,
    col_side: bool,
    v: &SparseVec<V>,
    mask: &MaskVec,
    mulf: &M,
    addf: &R,
) -> SparseVec<D3>
where
    A: Scalar,
    V: Scalar,
    D3: Scalar,
    M: Fn(&A, &V) -> D3 + Sync,
    R: Fn(&D3, &D3) -> D3 + Sync,
{
    let ot = OrientedTiles::new(t, col_side);
    let out_size = ot.nrows();
    let mut v_dense: Vec<Option<&V>> = vec![None; v.size()];
    for (k, val) in v.iter() {
        v_dense[k] = Some(val);
    }
    let v_dense = &v_dense;
    if let MaskVec::Pattern {
        indices,
        complement: false,
    } = mask
    {
        let eval = |lo: usize, hi: usize| {
            let mut cur = ot.cursor();
            let mut idx = Vec::new();
            let mut out = Vec::new();
            for &j in &indices[lo..hi] {
                if let Some(acc) = probe_row_tiled(&mut cur, j, v_dense, mulf, addf) {
                    idx.push(j);
                    out.push(acc);
                }
            }
            (idx, out)
        };
        #[cfg(feature = "parallel")]
        {
            let work: usize = t.nvals().min(indices.len().saturating_mul(8)) + v.nvals();
            if let Some(plan) = par::plan(indices.len(), work) {
                let parts = par::run_chunks(indices.len(), plan, eval);
                let mut idx = Vec::new();
                let mut out = Vec::new();
                for (i, o) in parts {
                    idx.extend(i);
                    out.extend(o);
                }
                tiled::note_tiles(ot.touched());
                return SparseVec::from_sorted_parts(out_size, idx, out);
            }
        }
        let (idx, out) = eval(0, indices.len());
        tiled::note_tiles(ot.touched());
        return SparseVec::from_sorted_parts(out_size, idx, out);
    }
    let results = map_rows_init(
        out_size,
        t.nvals() + v.nvals(),
        || ot.cursor(),
        |cur, j| {
            if !mask.admits(j) {
                return None;
            }
            probe_row_tiled(cur, j, v_dense, mulf, addf)
        },
    );
    let mut idx = Vec::new();
    let mut out = Vec::new();
    for (j, r) in results.into_iter().enumerate() {
        if let Some(val) = r {
            idx.push(j);
            out.push(val);
        }
    }
    tiled::note_tiles(ot.touched());
    SparseVec::from_sorted_parts(out_size, idx, out)
}

/// Pull over a bitmap store's native row orientation (the dense-frontier
/// fast path of BFS/BC pull steps), closure-parameterized so both `mxv`
/// and transposed `vxm` can use it.
fn pull_bitmap<A, V, D3, M, R>(
    b: &Bitmap<A>,
    v: &SparseVec<V>,
    mask: &MaskVec,
    mulf: &M,
    addf: &R,
) -> SparseVec<D3>
where
    A: Scalar,
    V: Scalar,
    D3: Scalar,
    M: Fn(&A, &V) -> D3 + Sync,
    R: Fn(&D3, &D3) -> D3 + Sync,
{
    let mut v_dense: Vec<Option<&V>> = vec![None; v.size()];
    for (k, val) in v.iter() {
        v_dense[k] = Some(val);
    }
    let v_dense = &v_dense;
    let results = map_rows(b.nrows(), b.nvals() + v.nvals(), |i| {
        if !mask.admits(i) {
            return None;
        }
        let mut acc: Option<D3> = None;
        for (j, aij) in b.row_iter(i) {
            if let Some(vj) = v_dense[j] {
                let prod = mulf(aij, vj);
                acc = Some(match acc {
                    Some(x) => addf(&x, &prod),
                    None => prod,
                });
            }
        }
        acc
    });
    let mut idx = Vec::new();
    let mut out = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        if let Some(val) = r {
            idx.push(i);
            out.push(val);
        }
    }
    SparseVec::from_sorted_parts(b.nrows(), idx, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::semiring::{lor_land, plus_times};
    use crate::storage::engine::{Format, FormatPolicy};

    fn store() -> MatrixStore<i32> {
        // [ 1 2 . ]
        // [ . 3 4 ]
        // [ 5 . 6 ]
        MatrixStore::csr(Csr::from_sorted_tuples(
            3,
            3,
            vec![
                (0, 0, 1),
                (0, 1, 2),
                (1, 1, 3),
                (1, 2, 4),
                (2, 0, 5),
                (2, 2, 6),
            ],
        ))
    }

    fn all_directions() -> [Direction; 3] {
        [Direction::Push, Direction::Pull, Direction::Dense]
    }

    #[test]
    fn directions_agree_for_vxm_and_mxv() {
        let sr = plus_times::<i32>();
        let v = SparseVec::from_sorted_parts(3, vec![0, 2], vec![10, 30]);
        for transposed in [false, true] {
            for fmt in [
                Format::Csr,
                Format::Csc,
                Format::Bitmap,
                Format::Hyper,
                Format::Tiled,
            ] {
                let st = store().into_format(fmt);
                let masks = [
                    MaskVec::All,
                    MaskVec::Pattern {
                        indices: vec![1, 2],
                        complement: false,
                    },
                    MaskVec::Pattern {
                        indices: vec![0],
                        complement: true,
                    },
                ];
                for mask in &masks {
                    let base: SparseVec<i32> =
                        with_direction(Direction::Dense, || vxm(&sr, &v, &st, transposed, mask));
                    for d in all_directions() {
                        let got = with_direction(d, || vxm(&sr, &v, &st, transposed, mask));
                        assert_eq!(got, base, "vxm {fmt:?} t={transposed} {d:?}");
                    }
                    let base: SparseVec<i32> =
                        with_direction(Direction::Dense, || mxv(&sr, &st, &v, transposed, mask));
                    for d in all_directions() {
                        let got = with_direction(d, || mxv(&sr, &st, &v, transposed, mask));
                        assert_eq!(got, base, "mxv {fmt:?} t={transposed} {d:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn push_matches_legacy_vxm() {
        let sr = plus_times::<i32>();
        let st = store();
        let v = SparseVec::from_dense(&[10, 20, 30]);
        let legacy = crate::kernel::mxv::vxm(&sr, &v, &st.row_csr(), &MaskVec::All);
        let got: SparseVec<i32> =
            with_direction(Direction::Push, || vxm(&sr, &v, &st, false, &MaskVec::All));
        assert_eq!(got, legacy);
    }

    #[test]
    fn empty_frontier_pushes_nothing() {
        let sr = lor_land();
        let st = MatrixStore::from_csr(
            Csr::from_sorted_tuples(4, 4, vec![(0, 1, true), (2, 3, true)]),
            FormatPolicy::Force(Format::Csr),
        );
        let v = SparseVec::<bool>::empty(4);
        let w: SparseVec<bool> = vxm(&sr, &v, &st, false, &MaskVec::All);
        assert_eq!(w.nvals(), 0);
        assert_eq!(take_direction(), Some("push"));
    }

    #[test]
    fn heuristic_pushes_sparse_frontiers_and_pulls_dense_ones() {
        // an undirected ring: every vertex has degree 2, and the value
        // is symmetric so the pull side's transpose is free
        let n = 512;
        let mut edges: Vec<(usize, usize, bool)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n, true), ((i + 1) % n, i, true)])
            .collect();
        edges.sort_unstable_by_key(|&(i, j, _)| (i, j));
        let st = MatrixStore::csr(Csr::from_sorted_tuples(n, n, edges));
        let sr = lor_land();
        // one-vertex frontier: push, and never touch the transpose
        let v = SparseVec::from_sorted_parts(n, vec![0], vec![true]);
        let _: SparseVec<bool> = vxm(&sr, &v, &st, false, &MaskVec::All);
        assert_eq!(take_direction(), Some("push"));
        assert!(
            !st.csr_view_ready(true),
            "push must not build the transpose"
        );
        // half-full frontier against a nearly-exhausted complement mask:
        // pull once the admitted set is small
        let frontier: Vec<Index> = (0..n / 2).collect();
        let vals = vec![true; n / 2];
        let v = SparseVec::from_sorted_parts(n, frontier, vals);
        let visited: Vec<Index> = (0..n - 4).collect();
        let mask = MaskVec::Pattern {
            indices: visited,
            complement: true,
        };
        let _: SparseVec<bool> = vxm(&sr, &v, &st, false, &mask);
        assert_eq!(take_direction(), Some("pull"));
    }

    #[test]
    fn dense_inputs_take_the_dense_kernel() {
        let sr = plus_times::<i32>();
        let st = store();
        let v = SparseVec::from_dense(&[10, 20, 30]);
        let _: SparseVec<i32> = vxm(&sr, &v, &st, false, &MaskVec::All);
        assert_eq!(take_direction(), Some("dense"));
    }

    #[test]
    fn override_restores_on_exit() {
        assert_eq!(direction_override(), Direction::Auto);
        with_direction(Direction::Pull, || {
            assert_eq!(direction_override(), Direction::Pull);
        });
        assert_eq!(direction_override(), Direction::Auto);
    }
}
