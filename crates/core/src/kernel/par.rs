//! Intra-kernel data parallelism: row-partitioned execution of the hot
//! kernels on the scheduler's shared worker pool
//! ([`crate::exec::sched`]'s pool — there is no second pool).
//!
//! The paper's opaque-object design (§II) licenses this freely: the
//! implementation controls physical execution as long as each
//! operation's Table II semantics are preserved. Preservation here is
//! *bitwise*: a kernel splits its output rows into chunks, each chunk is
//! evaluated independently (per-row results never depend on chunk
//! boundaries), and the chunk results are concatenated **in row order**
//! — so the assembled output is identical to the serial path's for every
//! worker count and interleaving, floats included.
//!
//! A cost model keeps tiny operations serial: an operation goes parallel
//! only when its output rows and estimated work both clear thresholds
//! (overridable via [`with_cost_model`], which tests use to force
//! chunking on small fixtures).
//!
//! The effective degree — how many chunks an operation fans out — is
//! resolved as: [`with_parallelism`] override on the current thread,
//! else the global [`set_default_parallelism`] knob (the C API's
//! `Config::parallelism`), else `GRB_TEST_THREADS` / `GRB_THREADS`,
//! else the hardware's parallelism.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(feature = "parallel")]
use crate::exec::sched::workers::{self, BatchState, TaskKind};

/// Default cost-model floor on output rows for going parallel.
pub const MIN_PAR_ROWS: usize = 128;
/// Default cost-model floor on estimated work (stored elements touched).
pub const MIN_PAR_WORK: usize = 1 << 13;
/// Rows per chunk never drop below this under the default cost model —
/// a span small enough to stay cache-resident, large enough that queue
/// traffic stays negligible next to the row work.
#[cfg(feature = "parallel")]
const MIN_SPAN: usize = 64;

/// Global default degree; 0 = auto (env, then hardware).
static DEFAULT_DEGREE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread degree override; 0 = no override.
    static DEGREE_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Per-thread `(min_rows, min_work)` cost-model override.
    static COST_OVERRIDE: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
    /// Chunking observed on this thread since the last [`take_stats`] —
    /// the scheduler drains it into the trace after each node compute.
    static STATS: Cell<ParStats> = const { Cell::new(ParStats::ZERO) };
}

/// Set the process-wide default parallelism degree (`None` = auto).
/// This is the `capi::Config::parallelism` knob.
pub fn set_default_parallelism(k: Option<usize>) {
    DEFAULT_DEGREE.store(k.unwrap_or(0), Ordering::Relaxed);
}

/// The process-wide default degree, if one was configured.
pub fn default_parallelism() -> Option<usize> {
    match DEFAULT_DEGREE.load(Ordering::Relaxed) {
        0 => None,
        k => Some(k),
    }
}

/// Run `f` with the intra-kernel degree forced to `k` on this thread
/// (`0` restores auto). `k = 1` forces the serial path; determinism
/// tests rely on `with_parallelism(1, …) == with_parallelism(8, …)`
/// bitwise.
pub fn with_parallelism<R>(k: usize, f: impl FnOnce() -> R) -> R {
    let prev = DEGREE_OVERRIDE.with(|c| c.replace(k));
    let _restore = Restore(&DEGREE_OVERRIDE, prev);
    f()
}

/// Run `f` with the cost-model thresholds overridden on this thread —
/// `(1, 0)` makes every multi-row kernel chunk, however small.
pub fn with_cost_model<R>(min_rows: usize, min_work: usize, f: impl FnOnce() -> R) -> R {
    let prev = COST_OVERRIDE.with(|c| c.replace(Some((min_rows, min_work))));
    let _restore = RestoreCost(prev);
    f()
}

struct Restore(&'static std::thread::LocalKey<Cell<usize>>, usize);
impl Drop for Restore {
    fn drop(&mut self) {
        let v = self.1;
        self.0.with(|c| c.set(v));
    }
}

struct RestoreCost(Option<(usize, usize)>);
impl Drop for RestoreCost {
    fn drop(&mut self) {
        let v = self.0;
        COST_OVERRIDE.with(|c| c.set(v));
    }
}

fn env_degree() -> Option<usize> {
    for key in ["GRB_TEST_THREADS", "GRB_THREADS"] {
        if let Ok(s) = std::env::var(key) {
            if let Ok(k) = s.trim().parse::<usize>() {
                if k > 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// Degree before any thread-local override: knob > env > hardware.
/// Also decides the worker pool's width at first use.
pub(crate) fn resolved_degree() -> usize {
    default_parallelism()
        .or_else(env_degree)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// The degree kernels on this thread will fan out to.
pub fn effective_parallelism() -> usize {
    match DEGREE_OVERRIDE.with(|c| c.get()) {
        0 => resolved_degree(),
        k => k,
    }
}

/// Chunking decision for one kernel invocation.
#[cfg(feature = "parallel")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Plan {
    pub(crate) chunks: usize,
    pub(crate) span: usize,
}

/// Decide whether a kernel over `rows` output rows with `work` estimated
/// element touches should go parallel, and how to chunk it. `None` means
/// take the serial path (tiny op or degree 1).
#[cfg(feature = "parallel")]
pub(crate) fn plan(rows: usize, work: usize) -> Option<Plan> {
    {
        let overridden = COST_OVERRIDE.with(|c| c.get());
        let (min_rows, min_work) = overridden.unwrap_or((MIN_PAR_ROWS, MIN_PAR_WORK));
        if rows < min_rows.max(2) || work < min_work {
            return None;
        }
        let k = effective_parallelism();
        if k <= 1 {
            return None;
        }
        // ~4 chunks per worker for load balance; spans never smaller
        // than MIN_SPAN unless a test's cost override asks for it.
        let min_span = if overridden.is_some() { 1 } else { MIN_SPAN };
        let span = rows.div_ceil(k * 4).max(min_span);
        let chunks = rows.div_ceil(span);
        if chunks <= 1 {
            return None;
        }
        Some(Plan { chunks, span })
    }
}

/// Chunking performed on this thread, for the scheduler's trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Row chunks fanned out to the pool.
    pub par_chunks: usize,
    /// Output rows covered by those chunks.
    pub chunk_rows: usize,
    /// Most distinct workers observed executing one batch.
    pub par_workers: usize,
}

impl ParStats {
    const ZERO: ParStats = ParStats {
        par_chunks: 0,
        chunk_rows: 0,
        par_workers: 0,
    };
}

/// Drain the chunking stats accumulated on this thread since the last
/// call (the scheduler calls this right after each node compute).
pub fn take_stats() -> ParStats {
    STATS.with(|s| s.replace(ParStats::ZERO))
}

#[cfg(feature = "parallel")]
fn note_stats(chunks: usize, rows: usize, distinct_workers: usize) {
    STATS.with(|s| {
        let mut st = s.get();
        st.par_chunks += chunks;
        st.chunk_rows += rows;
        st.par_workers = st.par_workers.max(distinct_workers);
        s.set(st);
    });
}

/// Evaluate `eval(start, end)` over the planned row chunks of
/// `0..rows` on the shared pool and return the chunk results **in chunk
/// order** — the deterministic merge that makes parallel output bitwise
/// equal to serial output.
#[cfg(feature = "parallel")]
pub(crate) fn run_chunks<C, F>(rows: usize, plan: Plan, eval: F) -> Vec<C>
where
    C: Send,
    F: Fn(usize, usize) -> C + Sync,
{
    let Plan { chunks, span } = plan;
    let slots: Vec<parking_lot::Mutex<Option<(usize, C)>>> =
        (0..chunks).map(|_| parking_lot::Mutex::new(None)).collect();
    let run = |_b: &BatchState, idx: usize, worker: usize| {
        let start = idx * span;
        let end = rows.min(start + span);
        let out = eval(start, end);
        *slots[idx].lock() = Some((worker, out));
    };
    let initial: Vec<usize> = (0..chunks).collect();
    workers::pool().run_batch(TaskKind::Chunk, chunks, &initial, &run);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(chunks);
    for slot in slots {
        let (worker, c) = slot.into_inner().expect("every chunk executed");
        seen.insert(worker);
        out.push(c);
    }
    note_stats(chunks, rows, seen.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_override_wins_and_restores() {
        let outer = effective_parallelism();
        with_parallelism(3, || {
            assert_eq!(effective_parallelism(), 3);
            with_parallelism(1, || assert_eq!(effective_parallelism(), 1));
            assert_eq!(effective_parallelism(), 3);
        });
        assert_eq!(effective_parallelism(), outer);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn cost_model_keeps_tiny_ops_serial() {
        with_parallelism(8, || {
            assert_eq!(plan(4, 1 << 20), None); // too few rows
            assert_eq!(plan(1 << 20, 4), None); // too little work
            assert!(plan(1 << 16, 1 << 20).is_some());
        });
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn degree_one_is_always_serial() {
        with_parallelism(1, || {
            assert_eq!(plan(1 << 20, 1 << 20), None);
        });
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn cost_override_forces_chunking_on_small_inputs() {
        with_parallelism(4, || {
            with_cost_model(1, 0, || {
                let p = plan(5, 0).expect("forced parallel");
                assert!(p.chunks >= 2);
                assert!(p.span * p.chunks >= 5);
            })
        });
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn chunk_results_come_back_in_row_order() {
        with_parallelism(4, || {
            with_cost_model(1, 0, || {
                let rows = 1000;
                let p = plan(rows, rows).unwrap();
                let parts = run_chunks(rows, p, |s, e| (s..e).collect::<Vec<_>>());
                let flat: Vec<usize> = parts.into_iter().flatten().collect();
                assert_eq!(flat, (0..rows).collect::<Vec<_>>());
                let st = take_stats();
                assert_eq!(st.par_chunks, p.chunks);
                assert_eq!(st.chunk_rows, rows);
                assert!(st.par_workers >= 1);
            })
        });
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn spans_have_a_floor_under_the_default_model() {
        with_parallelism(64, || {
            let p = plan(1 << 10, 1 << 20).unwrap();
            assert!(p.span >= 64, "span {} below floor", p.span);
        });
    }
}
