//! Element-wise kernels: the set-union (`eWiseAdd`) and set-intersection
//! (`eWiseMult`) merges of Table II.
//!
//! `eWiseAdd`'s ⊕ is applied only where *both* operands store an element;
//! elements stored in exactly one operand pass through unchanged — no
//! implied zero is ever fabricated (paper §II's set-notation semantics).
//! `eWiseMult`'s ⊗ is applied on the intersection of the stored patterns,
//! which is why it may take operands of different domains.

use crate::algebra::binary::BinaryOp;
use crate::index::Index;
use crate::kernel::util::{assemble_rows, map_rows};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

/// Union-merge two sorted index/value slices: ⊕ on matches, pass-through
/// otherwise. The shared primitive behind `eWiseAdd` and accumulation.
pub fn union_merge<T: Scalar, F: BinaryOp<T, T, T>>(
    a_idx: &[Index],
    a_vals: &[T],
    b_idx: &[Index],
    b_vals: &[T],
    add: &F,
    out_idx: &mut Vec<Index>,
    out_vals: &mut Vec<T>,
) {
    let (mut i, mut j) = (0, 0);
    while i < a_idx.len() && j < b_idx.len() {
        match a_idx[i].cmp(&b_idx[j]) {
            std::cmp::Ordering::Less => {
                out_idx.push(a_idx[i]);
                out_vals.push(a_vals[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out_idx.push(b_idx[j]);
                out_vals.push(b_vals[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out_idx.push(a_idx[i]);
                out_vals.push(add.apply(&a_vals[i], &b_vals[j]));
                i += 1;
                j += 1;
            }
        }
    }
    for k in i..a_idx.len() {
        out_idx.push(a_idx[k]);
        out_vals.push(a_vals[k].clone());
    }
    for k in j..b_idx.len() {
        out_idx.push(b_idx[k]);
        out_vals.push(b_vals[k].clone());
    }
}

/// Intersection-merge two sorted index/value slices: ⊗ on matches only.
pub fn intersect_merge<A, B, C, F>(
    a_idx: &[Index],
    a_vals: &[A],
    b_idx: &[Index],
    b_vals: &[B],
    mul: &F,
    out_idx: &mut Vec<Index>,
    out_vals: &mut Vec<C>,
) where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    F: BinaryOp<A, B, C>,
{
    let (mut i, mut j) = (0, 0);
    while i < a_idx.len() && j < b_idx.len() {
        match a_idx[i].cmp(&b_idx[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out_idx.push(a_idx[i]);
                out_vals.push(mul.apply(&a_vals[i], &b_vals[j]));
                i += 1;
                j += 1;
            }
        }
    }
}

/// `T = A ⊕ B` on matrices (the internal result of `eWiseAdd`, before
/// accumulation and masking).
pub fn ewise_add_matrix<T: Scalar, F: BinaryOp<T, T, T>>(
    a: &Csr<T>,
    b: &Csr<T>,
    add: &F,
) -> Csr<T> {
    debug_assert_eq!(a.nrows(), b.nrows());
    debug_assert_eq!(a.ncols(), b.ncols());
    let rows = map_rows(a.nrows(), a.nvals() + b.nvals(), |i| {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let mut idx = Vec::with_capacity(ac.len() + bc.len());
        let mut vals = Vec::with_capacity(ac.len() + bc.len());
        union_merge(ac, av, bc, bv, add, &mut idx, &mut vals);
        (idx, vals)
    });
    assemble_rows(a.nrows(), a.ncols(), rows)
}

/// `T = A ⊗ B` on matrices (the internal result of `eWiseMult`).
pub fn ewise_mult_matrix<A, B, C, F>(a: &Csr<A>, b: &Csr<B>, mul: &F) -> Csr<C>
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    F: BinaryOp<A, B, C>,
{
    debug_assert_eq!(a.nrows(), b.nrows());
    debug_assert_eq!(a.ncols(), b.ncols());
    let rows = map_rows(a.nrows(), a.nvals() + b.nvals(), |i| {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let mut idx = Vec::with_capacity(ac.len().min(bc.len()));
        let mut vals = Vec::with_capacity(ac.len().min(bc.len()));
        intersect_merge(ac, av, bc, bv, mul, &mut idx, &mut vals);
        (idx, vals)
    });
    assemble_rows(a.nrows(), a.ncols(), rows)
}

/// `t = u ⊕ v` on vectors.
pub fn ewise_add_vector<T: Scalar, F: BinaryOp<T, T, T>>(
    u: &SparseVec<T>,
    v: &SparseVec<T>,
    add: &F,
) -> SparseVec<T> {
    debug_assert_eq!(u.size(), v.size());
    let mut idx = Vec::with_capacity(u.nvals() + v.nvals());
    let mut vals = Vec::with_capacity(u.nvals() + v.nvals());
    union_merge(
        u.indices(),
        u.vals(),
        v.indices(),
        v.vals(),
        add,
        &mut idx,
        &mut vals,
    );
    SparseVec::from_sorted_parts(u.size(), idx, vals)
}

/// `t = u ⊗ v` on vectors.
pub fn ewise_mult_vector<A, B, C, F>(u: &SparseVec<A>, v: &SparseVec<B>, mul: &F) -> SparseVec<C>
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    F: BinaryOp<A, B, C>,
{
    debug_assert_eq!(u.size(), v.size());
    let mut idx = Vec::with_capacity(u.nvals().min(v.nvals()));
    let mut vals = Vec::with_capacity(u.nvals().min(v.nvals()));
    intersect_merge(
        u.indices(),
        u.vals(),
        v.indices(),
        v.vals(),
        mul,
        &mut idx,
        &mut vals,
    );
    SparseVec::from_sorted_parts(u.size(), idx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::binary::{Plus, Times};

    fn a() -> Csr<i32> {
        Csr::from_sorted_tuples(2, 3, vec![(0, 0, 1), (0, 2, 2), (1, 1, 3)])
    }

    fn b() -> Csr<i32> {
        Csr::from_sorted_tuples(2, 3, vec![(0, 0, 10), (0, 1, 20), (1, 1, 30)])
    }

    #[test]
    fn add_is_union_with_passthrough() {
        let c = ewise_add_matrix(&a(), &b(), &Plus::new());
        assert_eq!(
            c.to_tuples(),
            vec![(0, 0, 11), (0, 1, 20), (0, 2, 2), (1, 1, 33)]
        );
    }

    #[test]
    fn mult_is_intersection_only() {
        let c = ewise_mult_matrix(&a(), &b(), &Times::new());
        assert_eq!(c.to_tuples(), vec![(0, 0, 10), (1, 1, 90)]);
    }

    #[test]
    fn mult_mixed_domains() {
        use crate::algebra::binary::binary_fn;
        let flags = Csr::from_sorted_tuples(2, 3, vec![(0, 0, true), (1, 1, false)]);
        let gate = binary_fn(|x: &i32, keep: &bool| if *keep { *x as f64 } else { 0.0 });
        let c: Csr<f64> = ewise_mult_matrix(&a(), &flags, &gate);
        assert_eq!(c.to_tuples(), vec![(0, 0, 1.0), (1, 1, 0.0)]);
    }

    #[test]
    fn add_with_empty_operand_is_identity_copy() {
        let e = Csr::<i32>::empty(2, 3);
        let c = ewise_add_matrix(&a(), &e, &Plus::new());
        assert_eq!(c, a());
        let c = ewise_add_matrix(&e, &a(), &Plus::new());
        assert_eq!(c, a());
    }

    #[test]
    fn mult_with_empty_operand_is_empty() {
        let e = Csr::<i32>::empty(2, 3);
        let c = ewise_mult_matrix(&a(), &e, &Times::new());
        assert_eq!(c.nvals(), 0);
    }

    #[test]
    fn vector_union_and_intersection() {
        let u = SparseVec::from_sorted_parts(5, vec![0, 2, 4], vec![1, 2, 3]);
        let v = SparseVec::from_sorted_parts(5, vec![2, 3], vec![10, 20]);
        let s = ewise_add_vector(&u, &v, &Plus::new());
        assert_eq!(s.to_tuples(), vec![(0, 1), (2, 12), (3, 20), (4, 3)]);
        let p = ewise_mult_vector(&u, &v, &Times::new());
        assert_eq!(p.to_tuples(), vec![(2, 20)]);
    }

    #[test]
    fn large_parallel_merge_matches_sequential_semantics() {
        let n = 1000;
        let a = Csr::from_sorted_tuples(n, n, (0..n).map(|i| (i, i, 1i64)));
        let b = Csr::from_sorted_tuples(n, n, (0..n).map(|i| (i, (i + 1) % n, 2i64)));
        let c = ewise_add_matrix(&a, &b, &Plus::new());
        assert_eq!(c.nvals(), 2 * n);
        assert_eq!(c.get(0, 0), Some(&1));
        assert_eq!(c.get(0, 1), Some(&2));
    }
}
