//! Matrix–vector kernels: `mxv` (`w = A ⊕.⊗ v`, pull/row-wise) and `vxm`
//! (`w^T = v^T ⊕.⊗ A`, push/scatter) — Table II rows 2–3.
//!
//! `mxv` walks each row of `A` against the sorted sparse vector — the
//! "pull" direction; `vxm` scatters each stored `v(i)` through row
//! `A(i,:)` — the "push" direction. Together they give the push/pull pair
//! that direction-optimizing traversals (BFS and friends) are built from.

use crate::algebra::binary::BinaryOp;
use crate::algebra::semiring::Semiring;
use crate::index::Index;
use crate::kernel::util::map_rows;
use crate::mask::MaskVec;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::engine::Bitmap;
use crate::storage::vec::SparseVec;

/// `t = A ⊕.⊗ v` (pull): `t(i) = ⊕_{k ∈ ind(A(i,:)) ∩ ind(v)}
/// A(i,k) ⊗ v(k)`, restricted to mask-admitted output indices.
pub fn mxv<D1, D2, D3, S>(sr: &S, a: &Csr<D1>, v: &SparseVec<D2>, mask: &MaskVec) -> SparseVec<D3>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    S: Semiring<D1, D2, D3>,
{
    debug_assert_eq!(a.ncols(), v.size());
    let add = sr.add();
    let mul = sr.mul();
    let vi = v.indices();
    let vv = v.vals();
    let results = map_rows(a.nrows(), a.nvals() + v.nvals(), |i| {
        if !mask.admits(i) {
            return None;
        }
        let (ac, av) = a.row(i);
        // merge-walk the stored-index intersection
        let (mut p, mut q) = (0usize, 0usize);
        let mut acc: Option<D3> = None;
        while p < ac.len() && q < vi.len() {
            match ac[p].cmp(&vi[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    let prod = mul.apply(&av[p], &vv[q]);
                    acc = Some(match acc {
                        Some(x) => add.apply(&x, &prod),
                        None => prod,
                    });
                    p += 1;
                    q += 1;
                }
            }
        }
        acc
    });
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        if let Some(val) = r {
            idx.push(i);
            vals.push(val);
        }
    }
    SparseVec::from_sorted_parts(a.nrows(), idx, vals)
}

/// `t = A ⊕.⊗ v` (pull) over a bitmap-stored `A` — the dense-frontier
/// fast path of BFS/BC pull steps. The vector is scattered into dense
/// slots once, then each row is a branch-light walk of `A`'s presence
/// words with O(1) probes into the scattered vector, instead of the CSR
/// kernel's per-element merge-walk compare.
pub fn mxv_bitmap<D1, D2, D3, S>(
    sr: &S,
    a: &Bitmap<D1>,
    v: &SparseVec<D2>,
    mask: &MaskVec,
) -> SparseVec<D3>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    S: Semiring<D1, D2, D3>,
{
    debug_assert_eq!(a.ncols(), v.size());
    let add = sr.add();
    let mul = sr.mul();
    // dense scatter of the vector: one O(size) pass, O(1) probes after
    let mut v_dense: Vec<Option<&D2>> = vec![None; v.size()];
    for (k, val) in v.iter() {
        v_dense[k] = Some(val);
    }
    let v_dense = &v_dense;
    let results = map_rows(a.nrows(), a.nvals() + v.nvals(), |i| {
        if !mask.admits(i) {
            return None;
        }
        let mut acc: Option<D3> = None;
        for (j, aij) in a.row_iter(i) {
            if let Some(vj) = v_dense[j] {
                let prod = mul.apply(aij, vj);
                acc = Some(match acc {
                    Some(x) => add.apply(&x, &prod),
                    None => prod,
                });
            }
        }
        acc
    });
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        if let Some(val) = r {
            idx.push(i);
            vals.push(val);
        }
    }
    SparseVec::from_sorted_parts(a.nrows(), idx, vals)
}

/// `t^T = v^T ⊕.⊗ A` (push): `t(j) = ⊕_{i ∈ ind(v) ∩ ind(A(:,j))}
/// v(i) ⊗ A(i,j)`, restricted to mask-admitted output indices.
pub fn vxm<D1, D2, D3, S>(sr: &S, v: &SparseVec<D1>, a: &Csr<D2>, mask: &MaskVec) -> SparseVec<D3>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    S: Semiring<D1, D2, D3>,
{
    debug_assert_eq!(v.size(), a.nrows());
    let add = sr.add();
    let mul = sr.mul();
    let ncols = a.ncols();
    let mut acc: Vec<Option<D3>> = vec![None; ncols];
    let mut touched: Vec<Index> = Vec::new();
    for (i, vi) in v.iter() {
        let (ac, av) = a.row(i);
        for (j, aij) in ac.iter().zip(av) {
            if !mask.admits(*j) {
                continue;
            }
            let prod = mul.apply(vi, aij);
            match &mut acc[*j] {
                Some(x) => *x = add.apply(x, &prod),
                slot @ None => {
                    *slot = Some(prod);
                    touched.push(*j);
                }
            }
        }
    }
    touched.sort_unstable();
    let mut idx = Vec::with_capacity(touched.len());
    let mut vals = Vec::with_capacity(touched.len());
    for j in touched {
        idx.push(j);
        vals.push(acc[j].take().expect("touched slot"));
    }
    SparseVec::from_sorted_parts(ncols, idx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::semiring::{lor_land, min_plus, plus_times};
    use crate::storage::vec::SparseVec;

    fn a() -> Csr<i32> {
        // [ 1 2 . ]
        // [ . 3 4 ]
        // [ 5 . 6 ]
        Csr::from_sorted_tuples(
            3,
            3,
            vec![
                (0, 0, 1),
                (0, 1, 2),
                (1, 1, 3),
                (1, 2, 4),
                (2, 0, 5),
                (2, 2, 6),
            ],
        )
    }

    #[test]
    fn mxv_plus_times() {
        let v = SparseVec::from_dense(&[10, 20, 30]);
        let w = mxv(&plus_times::<i32>(), &a(), &v, &MaskVec::All);
        assert_eq!(w.to_tuples(), vec![(0, 50), (1, 180), (2, 230)]);
    }

    #[test]
    fn mxv_sparse_vector_undefined_elements_skipped() {
        // v has only index 1 stored: rows with no stored A(i,1) give no output
        let v = SparseVec::from_sorted_parts(3, vec![1], vec![10]);
        let w = mxv(&plus_times::<i32>(), &a(), &v, &MaskVec::All);
        assert_eq!(w.to_tuples(), vec![(0, 20), (1, 30)]);
        assert_eq!(w.get(2), None); // A(2,1) undefined -> no contribution
    }

    #[test]
    fn vxm_is_transposed_mxv() {
        let v = SparseVec::from_dense(&[10, 20, 30]);
        let w1 = vxm(&plus_times::<i32>(), &v, &a(), &MaskVec::All);
        let w2 = mxv(&plus_times::<i32>(), &a().transpose(), &v, &MaskVec::All);
        assert_eq!(w1, w2);
    }

    #[test]
    fn vxm_push_from_sparse_frontier() {
        // BFS-style frontier push over lor_land
        let adj = Csr::from_sorted_tuples(4, 4, vec![(0, 1, true), (0, 2, true), (2, 3, true)]);
        let frontier = SparseVec::from_sorted_parts(4, vec![0], vec![true]);
        let next = vxm(&lor_land(), &frontier, &adj, &MaskVec::All);
        assert_eq!(next.to_tuples(), vec![(1, true), (2, true)]);
    }

    #[test]
    fn masked_mxv_skips_rows() {
        let v = SparseVec::from_dense(&[10, 20, 30]);
        let msrc = SparseVec::from_sorted_parts(3, vec![1], vec![true]);
        let mask = MaskVec::from_vec(&msrc, false, false);
        let w = mxv(&plus_times::<i32>(), &a(), &v, &mask);
        assert_eq!(w.to_tuples(), vec![(1, 180)]);
    }

    #[test]
    fn masked_vxm_skips_columns() {
        let v = SparseVec::from_dense(&[10, 20, 30]);
        let msrc = SparseVec::from_sorted_parts(3, vec![0], vec![true]);
        let mask = MaskVec::from_vec(&msrc, false, true); // complement: skip col 0
        let w = vxm(&plus_times::<i32>(), &v, &a(), &mask);
        assert_eq!(w.get(0), None);
        assert!(w.get(1).is_some());
    }

    #[test]
    fn min_plus_relaxation_step() {
        // one Bellman-Ford relaxation: dist' = dist min.+ A
        let adj = Csr::from_sorted_tuples(3, 3, vec![(0, 1, 2i64), (0, 2, 10), (1, 2, 3)]);
        let dist = SparseVec::from_sorted_parts(3, vec![0], vec![0i64]);
        let relaxed = vxm(&min_plus::<i64>(), &dist, &adj, &MaskVec::All);
        assert_eq!(relaxed.to_tuples(), vec![(1, 2), (2, 10)]);
    }

    #[test]
    fn bitmap_kernel_matches_csr_kernel() {
        let v = SparseVec::from_dense(&[10, 20, 30]);
        let ab = Bitmap::from_csr(&a());
        let reference = mxv(&plus_times::<i32>(), &a(), &v, &MaskVec::All);
        assert_eq!(
            mxv_bitmap(&plus_times::<i32>(), &ab, &v, &MaskVec::All),
            reference
        );
        // sparse vector: undefined v elements contribute nothing
        let vs = SparseVec::from_sorted_parts(3, vec![1], vec![10]);
        let reference = mxv(&plus_times::<i32>(), &a(), &vs, &MaskVec::All);
        assert_eq!(
            mxv_bitmap(&plus_times::<i32>(), &ab, &vs, &MaskVec::All),
            reference
        );
        // masked
        let msrc = SparseVec::from_sorted_parts(3, vec![1], vec![true]);
        let mask = MaskVec::from_vec(&msrc, false, false);
        let reference = mxv(&plus_times::<i32>(), &a(), &v, &mask);
        assert_eq!(mxv_bitmap(&plus_times::<i32>(), &ab, &v, &mask), reference);
    }

    #[test]
    fn empty_vector_gives_empty_result() {
        let v = SparseVec::<i32>::empty(3);
        assert_eq!(
            mxv(&plus_times::<i32>(), &a(), &v, &MaskVec::All).nvals(),
            0
        );
        assert_eq!(
            vxm(&plus_times::<i32>(), &v, &a(), &MaskVec::All).nvals(),
            0
        );
    }
}
