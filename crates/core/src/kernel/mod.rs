//! The sparse compute kernels beneath the GraphBLAS operations: pure
//! functions from storage to storage, row-parallel where it pays
//! (`parallel` feature, on by default).
//!
//! The operation layer ([`crate::op`]) composes these with the shared
//! accumulate-and-mask write stage ([`mod@write`]) to realize the full
//! Figure 2 semantics.

pub mod apply;
pub mod assign;
pub mod ewise;
pub mod extract;
pub mod merge;
pub mod mxm;
pub mod mxv;
pub mod par;
pub mod reduce;
pub mod spmspv;
pub(crate) mod util;
pub mod write;

pub use mxm::MxmStrategy;
