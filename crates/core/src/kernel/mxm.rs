//! Sparse matrix–matrix multiply over a semiring (`GrB_mxm`'s compute
//! stage): `T(i,j) = ⊕_{k ∈ ind(A(i,:)) ∩ ind(B(:,j))} A(i,k) ⊗ B(k,j)`.
//!
//! Row-wise Gustavson SpGEMM, parallel over rows. Two accumulator
//! strategies (selectable for the ablation benches, `Auto` in production):
//!
//! * **Dense**: an `ncols`-wide scatter array per worker — best for rows
//!   whose result is a large fraction of the width;
//! * **Hash**: an open-addressing table sized to the row's flop estimate —
//!   best for hypersparse rows.
//!
//! The write mask is *pushed into the kernel*: positions the mask does not
//! admit are never accumulated (and with [`mxm_dot`], never even touched),
//! which is the optimization the GraphBLAS mask design exists to enable —
//! e.g. the BC example's `GrB_mxm(&frontier, numsp, … , desc_tsr)` prunes
//! already-discovered vertices *during* the multiply.

use crate::algebra::binary::BinaryOp;
use crate::algebra::monoid::Monoid;
use crate::algebra::semiring::Semiring;
use crate::index::Index;
use crate::kernel::util::{assemble_rows, map_rows, map_rows_init};
use crate::mask::{MaskCsr, Pattern};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::engine::Hyper;
use crate::storage::tiled::{self, OrientedTiles, Tiled};

/// Row-accumulator strategy for [`mxm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MxmStrategy {
    /// Choose per row: dense whenever the row width fits comfortably in
    /// cache (the per-worker scatter array is reused across rows, so it
    /// wins even on hypersparse rows — measured in the
    /// `ablation_spgemm` bench), hash only for genuinely wide rows with
    /// few expected entries.
    #[default]
    Auto,
    /// Force the hash accumulator.
    Hash,
    /// Force the dense accumulator.
    Dense,
}

/// Widths up to this always use the dense accumulator under `Auto`:
/// the reused scatter array stays cache-resident and beats hashing
/// (2× on both the sparse-ER and skewed-RMAT ablation workloads).
const DENSE_ALWAYS_WIDTH: usize = 1 << 15;

/// Per-worker scratch space, reused across the rows a worker processes.
struct Workspace<T> {
    dense: Vec<Option<T>>,
    touched: Vec<Index>,
    mask_ws: Vec<bool>,
    mask_touched: Vec<Index>,
}

impl<T: Scalar> Workspace<T> {
    fn new(ncols: Index) -> Self {
        Workspace {
            dense: vec![None; ncols],
            touched: Vec::new(),
            mask_ws: vec![false; ncols],
            mask_touched: Vec::new(),
        }
    }
}

/// Open-addressing accumulator for hypersparse rows.
struct HashAcc<T> {
    keys: Vec<Index>,
    vals: Vec<Option<T>>,
    mask: usize,
    len: usize,
}

const EMPTY: Index = Index::MAX;

impl<T: Scalar> HashAcc<T> {
    fn with_estimate(est: usize) -> Self {
        let cap = (est.max(4) * 2).next_power_of_two();
        HashAcc {
            keys: vec![EMPTY; cap],
            vals: vec![None; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    #[inline]
    fn slot(&self, j: Index) -> usize {
        // Fibonacci hashing on the column index
        (j.wrapping_mul(0x9E3779B97F4A7C15) >> 32) & self.mask
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; (self.mask + 1) * 2]);
        let old_vals = std::mem::replace(&mut self.vals, vec![None; (self.mask + 1) * 2]);
        self.mask = self.keys.len() - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert_raw(k, v.expect("occupied slot has a value"));
            }
        }
    }

    fn insert_raw(&mut self, j: Index, v: T) {
        let mut s = self.slot(j);
        loop {
            if self.keys[s] == EMPTY {
                self.keys[s] = j;
                self.vals[s] = Some(v);
                self.len += 1;
                return;
            }
            s = (s + 1) & self.mask;
        }
    }

    #[inline]
    fn accumulate<M: Monoid<T>>(&mut self, j: Index, v: T, add: &M) {
        if self.len * 2 > self.mask {
            self.grow();
        }
        let mut s = self.slot(j);
        loop {
            if self.keys[s] == j {
                let slot = self.vals[s].as_mut().expect("occupied");
                *slot = add.apply(slot, &v);
                return;
            }
            if self.keys[s] == EMPTY {
                self.keys[s] = j;
                self.vals[s] = Some(v);
                self.len += 1;
                return;
            }
            s = (s + 1) & self.mask;
        }
    }

    fn drain_sorted(mut self) -> (Vec<Index>, Vec<T>) {
        let mut pairs: Vec<(Index, T)> = Vec::with_capacity(self.len);
        for (k, v) in self.keys.iter().zip(self.vals.iter_mut()) {
            if *k != EMPTY {
                pairs.push((*k, v.take().expect("occupied")));
            }
        }
        pairs.sort_unstable_by_key(|&(j, _)| j);
        pairs.into_iter().unzip()
    }
}

/// Estimated multiply-add count for row `i` of `A·B` (the classic SpGEMM
/// upper bound on the row's result size).
#[inline]
fn row_flops<D1: Scalar, D2: Scalar>(a: &Csr<D1>, b: &Csr<D2>, i: Index) -> usize {
    let (cols, _) = a.row(i);
    cols.iter().map(|&k| b.row_nvals(k)).sum()
}

/// `T = A ⊕.⊗ B`, restricted to mask-admitted positions.
///
/// Dimensions must already be validated by the operation layer
/// (`ncols(A) == nrows(B)`).
pub fn mxm<D1, D2, D3, S>(
    sr: &S,
    a: &Csr<D1>,
    b: &Csr<D2>,
    mask: &MaskCsr,
    strategy: MxmStrategy,
) -> Csr<D3>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    S: Semiring<D1, D2, D3>,
{
    debug_assert_eq!(a.ncols(), b.nrows());
    let (nrows, ncols) = (a.nrows(), b.ncols());
    let rows = map_rows_init(
        nrows,
        a.nvals() + b.nvals(),
        || Workspace::<D3>::new(ncols),
        |ws, i| {
            let mrow = mask.row(i);
            if mrow.admits_nothing() || a.row_nvals(i) == 0 {
                return (Vec::new(), Vec::new());
            }
            let unmasked = mrow.admits_everything();
            // Scatter the mask row for O(1) admission tests during the
            // accumulation sweep.
            let mask_flag = if unmasked {
                true
            } else {
                mrow.scatter(&mut ws.mask_ws, &mut ws.mask_touched)
            };
            let admitted = |ws: &Workspace<D3>, j: Index| unmasked || (ws.mask_ws[j] != mask_flag);

            let flops = row_flops(a, b, i);
            let use_dense = match strategy {
                MxmStrategy::Dense => true,
                MxmStrategy::Hash => false,
                MxmStrategy::Auto => ncols <= DENSE_ALWAYS_WIDTH || flops >= ncols / 16,
            };
            let (ac, av) = a.row(i);
            let add = sr.add();
            let mul = sr.mul();

            let out = if use_dense {
                for (k, aik) in ac.iter().zip(av) {
                    let (bc, bv) = b.row(*k);
                    for (j, bkj) in bc.iter().zip(bv) {
                        if !admitted(ws, *j) {
                            continue;
                        }
                        let prod = mul.apply(aik, bkj);
                        match &mut ws.dense[*j] {
                            Some(acc) => *acc = add.apply(acc, &prod),
                            slot @ None => {
                                *slot = Some(prod);
                                ws.touched.push(*j);
                            }
                        }
                    }
                }
                ws.touched.sort_unstable();
                let mut cols = Vec::with_capacity(ws.touched.len());
                let mut vals = Vec::with_capacity(ws.touched.len());
                for &j in &ws.touched {
                    cols.push(j);
                    vals.push(ws.dense[j].take().expect("touched slot"));
                }
                ws.touched.clear();
                (cols, vals)
            } else {
                let mut acc = HashAcc::with_estimate(flops);
                for (k, aik) in ac.iter().zip(av) {
                    let (bc, bv) = b.row(*k);
                    for (j, bkj) in bc.iter().zip(bv) {
                        if !admitted(ws, *j) {
                            continue;
                        }
                        acc.accumulate(*j, mul.apply(aik, bkj), add);
                    }
                }
                acc.drain_sorted()
            };
            // reset mask workspace for the next row handled by this worker
            for &j in &ws.mask_touched {
                ws.mask_ws[j] = false;
            }
            ws.mask_touched.clear();
            out
        },
    );
    assemble_rows(nrows, ncols, rows)
}

/// Hypersparse SpGEMM: `T = A ⊕.⊗ B` where `A` is hypersparse, walking
/// **only** `A`'s non-empty rows and emitting hypersparse output
/// directly. Work and memory are `O(flops + #nonempty-rows)` —
/// independent of `nrows`, where the CSR kernel pays an `O(nrows)`
/// sweep/assembly and an `O(ncols)` per-worker scatter array regardless
/// of how empty the operand is. The hash accumulator keeps per-row state
/// proportional to the row's flop estimate.
pub fn mxm_hyper<D1, D2, D3, S>(sr: &S, a: &Hyper<D1>, b: &Csr<D2>, mask: &MaskCsr) -> Hyper<D3>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    S: Semiring<D1, D2, D3>,
{
    debug_assert_eq!(a.ncols(), b.nrows());
    let add = sr.add();
    let mul = sr.mul();
    let rows = map_rows(a.nonempty_rows().len(), a.nvals() + b.nvals(), |k| {
        let (i, ac, av) = a.row_by_pos(k);
        let mrow = mask.row(i);
        if mrow.admits_nothing() {
            return (i, Vec::new(), Vec::new());
        }
        let flops: usize = ac.iter().map(|&p| b.row_nvals(p)).sum();
        let mut acc = HashAcc::with_estimate(flops);
        for (p, aik) in ac.iter().zip(av) {
            let (bc, bv) = b.row(*p);
            for (j, bkj) in bc.iter().zip(bv) {
                if !mrow.admits(*j) {
                    continue;
                }
                acc.accumulate(*j, mul.apply(aik, bkj), add);
            }
        }
        let (cols, vals) = acc.drain_sorted();
        (i, cols, vals)
    });
    Hyper::from_row_slices(
        a.nrows(),
        b.ncols(),
        rows.into_iter().filter(|(_, cols, _)| !cols.is_empty()),
    )
}

/// Tiled SpGEMM: `T = A ⊕.⊗ B` where `A` is stored as a 2D tile grid.
/// Each logical row of `A` is gathered across its stripe's tiles
/// left-to-right — ascending global `k`, the same entry order the slab
/// kernel walks — and fed through the identical per-row accumulation,
/// so the result is bitwise-equal to [`mxm`] on the assembled slab.
/// Only the tiles in stripes that actually multiply are materialized as
/// row views; the touched set is recorded for the execution trace.
pub fn mxm_tiled<D1, D2, D3, S>(sr: &S, a: &Tiled<D1>, b: &Csr<D2>, mask: &MaskCsr) -> Csr<D3>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    S: Semiring<D1, D2, D3>,
{
    debug_assert_eq!(a.ncols(), b.nrows());
    let (nrows, ncols) = (a.nrows(), b.ncols());
    let ot = OrientedTiles::new(a, false);
    let rows = map_rows_init(
        nrows,
        a.nvals() + b.nvals(),
        || {
            (
                Workspace::<D3>::new(ncols),
                Vec::<Index>::new(),
                Vec::<D1>::new(),
                ot.cursor(),
            )
        },
        |(ws, ac, av, cur), i| {
            let mrow = mask.row(i);
            if mrow.admits_nothing() {
                return (Vec::new(), Vec::new());
            }
            // Gather A(i,:) across the stripe's tiles in ascending-k order.
            ac.clear();
            av.clear();
            cur.for_row(i, &mut |off, cols, vals| {
                for (c, v) in cols.iter().zip(vals) {
                    ac.push(off + c);
                    av.push(v.clone());
                }
            });
            if ac.is_empty() {
                return (Vec::new(), Vec::new());
            }
            let unmasked = mrow.admits_everything();
            let mask_flag = if unmasked {
                true
            } else {
                mrow.scatter(&mut ws.mask_ws, &mut ws.mask_touched)
            };
            let admitted = |ws: &Workspace<D3>, j: Index| unmasked || (ws.mask_ws[j] != mask_flag);

            let flops: usize = ac.iter().map(|&k| b.row_nvals(k)).sum();
            let use_dense = ncols <= DENSE_ALWAYS_WIDTH || flops >= ncols / 16;
            let add = sr.add();
            let mul = sr.mul();

            let out = if use_dense {
                for (k, aik) in ac.iter().zip(av.iter()) {
                    let (bc, bv) = b.row(*k);
                    for (j, bkj) in bc.iter().zip(bv) {
                        if !admitted(ws, *j) {
                            continue;
                        }
                        let prod = mul.apply(aik, bkj);
                        match &mut ws.dense[*j] {
                            Some(acc) => *acc = add.apply(acc, &prod),
                            slot @ None => {
                                *slot = Some(prod);
                                ws.touched.push(*j);
                            }
                        }
                    }
                }
                ws.touched.sort_unstable();
                let mut cols = Vec::with_capacity(ws.touched.len());
                let mut vals = Vec::with_capacity(ws.touched.len());
                for &j in &ws.touched {
                    cols.push(j);
                    vals.push(ws.dense[j].take().expect("touched slot"));
                }
                ws.touched.clear();
                (cols, vals)
            } else {
                let mut acc = HashAcc::with_estimate(flops);
                for (k, aik) in ac.iter().zip(av.iter()) {
                    let (bc, bv) = b.row(*k);
                    for (j, bkj) in bc.iter().zip(bv) {
                        if !admitted(ws, *j) {
                            continue;
                        }
                        acc.accumulate(*j, mul.apply(aik, bkj), add);
                    }
                }
                acc.drain_sorted()
            };
            for &j in &ws.mask_touched {
                ws.mask_ws[j] = false;
            }
            ws.mask_touched.clear();
            out
        },
    );
    tiled::note_tiles(ot.touched());
    assemble_rows(nrows, ncols, rows)
}

/// Masked dot-product SpGEMM: computes `T = A ⊕.⊗ B` **only** at the
/// positions of `pattern` (an effective, non-complemented mask), given
/// `B` in transposed form. Work is `O(Σ_{(i,j)∈mask} (nnz A(i,:) +
/// nnz B(:,j)))` — independent of the full product's flop count, which is
/// what makes strongly-masked products (triangle counting, BC frontier
/// pruning with sparse masks) cheap.
pub fn mxm_dot<D1, D2, D3, S>(sr: &S, a: &Csr<D1>, bt: &Csr<D2>, pattern: &Pattern) -> Csr<D3>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    S: Semiring<D1, D2, D3>,
{
    debug_assert_eq!(a.nrows(), pattern.nrows());
    debug_assert_eq!(bt.nrows(), pattern.ncols());
    let nrows = a.nrows();
    let ncols = bt.nrows();
    let add = sr.add();
    let mul = sr.mul();
    let rows = map_rows_init(
        nrows,
        a.nvals() + bt.nvals(),
        || (),
        |_, i| {
            let (ac, av) = a.row(i);
            if ac.is_empty() {
                return (Vec::new(), Vec::new());
            }
            let (mcols, _) = pattern.row(i);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            for &j in mcols {
                let (bc, bv) = bt.row(j);
                // merge-walk the intersection ind(A(i,:)) ∩ ind(B(:,j))
                let (mut p, mut q) = (0usize, 0usize);
                let mut acc: Option<D3> = None;
                while p < ac.len() && q < bc.len() {
                    match ac[p].cmp(&bc[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            let prod = mul.apply(&av[p], &bv[q]);
                            acc = Some(match acc {
                                Some(x) => add.apply(&x, &prod),
                                None => prod,
                            });
                            p += 1;
                            q += 1;
                        }
                    }
                }
                if let Some(v) = acc {
                    cols.push(j);
                    vals.push(v);
                }
            }
            (cols, vals)
        },
    );
    assemble_rows(nrows, ncols, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::semiring::{lor_land, min_plus, plus_times};

    fn a() -> Csr<i32> {
        // [ 1 2 . ]
        // [ . 3 4 ]
        Csr::from_sorted_tuples(2, 3, vec![(0, 0, 1), (0, 1, 2), (1, 1, 3), (1, 2, 4)])
    }

    fn b() -> Csr<i32> {
        // [ 5 . ]
        // [ 6 7 ]
        // [ . 8 ]
        Csr::from_sorted_tuples(3, 2, vec![(0, 0, 5), (1, 0, 6), (1, 1, 7), (2, 1, 8)])
    }

    #[test]
    fn plus_times_matches_dense_reference() {
        let c = mxm(
            &plus_times::<i32>(),
            &a(),
            &b(),
            &MaskCsr::All,
            MxmStrategy::Auto,
        );
        // [ 1*5+2*6  2*7      ] = [ 17 14 ]
        // [ 3*6      3*7+4*8  ]   [ 18 53 ]
        assert_eq!(
            c.to_tuples(),
            vec![(0, 0, 17), (0, 1, 14), (1, 0, 18), (1, 1, 53)]
        );
    }

    #[test]
    fn hash_and_dense_strategies_agree() {
        let c_hash = mxm(
            &plus_times::<i32>(),
            &a(),
            &b(),
            &MaskCsr::All,
            MxmStrategy::Hash,
        );
        let c_dense = mxm(
            &plus_times::<i32>(),
            &a(),
            &b(),
            &MaskCsr::All,
            MxmStrategy::Dense,
        );
        assert_eq!(c_hash, c_dense);
    }

    #[test]
    fn no_entry_where_intersection_empty() {
        // A row hits only B rows with no entries in some column ->
        // that output position stays undefined (never a fabricated zero).
        let a = Csr::from_sorted_tuples(1, 2, vec![(0, 0, 1)]);
        let b = Csr::from_sorted_tuples(2, 2, vec![(1, 1, 1)]);
        let c = mxm(
            &plus_times::<i32>(),
            &a,
            &b,
            &MaskCsr::All,
            MxmStrategy::Auto,
        );
        assert_eq!(c.nvals(), 0);
    }

    #[test]
    fn min_plus_semiring_shortest_hop() {
        let sr = min_plus::<i64>();
        // path weights: A(0,1)=1, A(1,2)=2; A^2 should give 0->2 = 3
        let a = Csr::from_sorted_tuples(3, 3, vec![(0, 1, 1i64), (1, 2, 2)]);
        let c = mxm(&sr, &a, &a, &MaskCsr::All, MxmStrategy::Auto);
        assert_eq!(c.to_tuples(), vec![(0, 2, 3)]);
    }

    #[test]
    fn boolean_reachability() {
        let sr = lor_land();
        let a = Csr::from_sorted_tuples(3, 3, vec![(0, 1, true), (1, 0, true), (1, 2, true)]);
        let c = mxm(&sr, &a, &a, &MaskCsr::All, MxmStrategy::Auto);
        assert_eq!(
            c.to_tuples(),
            vec![(0, 0, true), (0, 2, true), (1, 1, true)]
        );
    }

    #[test]
    fn masked_mxm_only_produces_admitted_positions() {
        let m = Csr::from_sorted_tuples(2, 2, vec![(0, 1, true), (1, 0, true)]);
        let mask = MaskCsr::from_csr(&m, false, false);
        let c = mxm(&plus_times::<i32>(), &a(), &b(), &mask, MxmStrategy::Auto);
        assert_eq!(c.to_tuples(), vec![(0, 1, 14), (1, 0, 18)]);
    }

    #[test]
    fn complemented_mask_in_kernel() {
        let m = Csr::from_sorted_tuples(2, 2, vec![(0, 1, true), (1, 0, true)]);
        let mask = MaskCsr::from_csr(&m, false, true);
        let c = mxm(&plus_times::<i32>(), &a(), &b(), &mask, MxmStrategy::Auto);
        assert_eq!(c.to_tuples(), vec![(0, 0, 17), (1, 1, 53)]);
    }

    #[test]
    fn stored_false_mask_values_do_not_admit() {
        let m = Csr::from_sorted_tuples(2, 2, vec![(0, 0, 1i32), (0, 1, 0)]);
        let mask = MaskCsr::from_csr(&m, false, false);
        let c = mxm(&plus_times::<i32>(), &a(), &b(), &mask, MxmStrategy::Auto);
        assert_eq!(c.to_tuples(), vec![(0, 0, 17)]);
    }

    #[test]
    fn dot_kernel_matches_scatter_kernel_under_mask() {
        let m = Csr::from_sorted_tuples(2, 2, vec![(0, 0, true), (1, 1, true)]);
        let mask = MaskCsr::from_csr(&m, false, false);
        let scatter = mxm(&plus_times::<i32>(), &a(), &b(), &mask, MxmStrategy::Auto);
        let pattern = match &mask {
            MaskCsr::Pattern { pattern, .. } => pattern.clone(),
            _ => unreachable!(),
        };
        let dot = mxm_dot(&plus_times::<i32>(), &a(), &b().transpose(), &pattern);
        assert_eq!(scatter, dot);
    }

    #[test]
    fn large_random_hash_vs_dense_vs_dot() {
        // deterministic pseudo-random pattern, big enough to hit the
        // parallel path and hash growth
        let n = 300usize;
        let mut tuples = Vec::new();
        let mut x = 12345u64;
        for i in 0..n {
            for _ in 0..5 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (x >> 33) as usize % n;
                tuples.push((i, j, ((x >> 17) % 10) as i64));
            }
        }
        tuples.sort_by_key(|&(i, j, _)| (i, j));
        tuples.dedup_by_key(|&mut (i, j, _)| (i, j));
        let a = Csr::from_sorted_tuples(n, n, tuples);
        let h = mxm(
            &plus_times::<i64>(),
            &a,
            &a,
            &MaskCsr::All,
            MxmStrategy::Hash,
        );
        let d = mxm(
            &plus_times::<i64>(),
            &a,
            &a,
            &MaskCsr::All,
            MxmStrategy::Dense,
        );
        assert_eq!(h, d);
        // dot against the full pattern of the product
        let full_pattern = h.map(|_| ());
        let dot = mxm_dot(&plus_times::<i64>(), &a, &a.transpose(), &full_pattern);
        assert_eq!(dot, h);
    }

    #[test]
    fn hyper_kernel_matches_csr_kernel() {
        // 1000 rows, only a handful occupied
        let n = 1000usize;
        let tuples = vec![
            (3usize, 7usize, 2i64),
            (3, 900, 5),
            (500, 3, 1),
            (998, 500, 4),
        ];
        let a_csr = Csr::from_sorted_tuples(n, n, tuples);
        let a_hyper = Hyper::from_csr(&a_csr);
        let dense = mxm(
            &plus_times::<i64>(),
            &a_csr,
            &a_csr,
            &MaskCsr::All,
            MxmStrategy::Auto,
        );
        let hyper = mxm_hyper(&plus_times::<i64>(), &a_hyper, &a_csr, &MaskCsr::All);
        assert_eq!(hyper.to_csr(), dense);
        assert!(hyper.nonempty_rows().len() <= 3);
    }

    #[test]
    fn hyper_kernel_respects_mask() {
        let a_csr = Csr::from_sorted_tuples(10, 10, vec![(1, 2, 2i32), (2, 3, 3), (9, 1, 7)]);
        let a_hyper = Hyper::from_csr(&a_csr);
        let m = Csr::from_sorted_tuples(10, 10, vec![(1, 3, true)]);
        let mask = MaskCsr::from_csr(&m, false, false);
        let masked = mxm_hyper(&plus_times::<i32>(), &a_hyper, &a_csr, &mask);
        let reference = mxm(
            &plus_times::<i32>(),
            &a_csr,
            &a_csr,
            &mask,
            MxmStrategy::Auto,
        );
        assert_eq!(masked.to_csr(), reference);
        assert_eq!(masked.nvals(), 1); // only (1,3) admitted
    }

    #[test]
    fn tiled_kernel_matches_csr_kernel_bitwise() {
        let n = 300usize;
        let mut tuples = Vec::new();
        let mut x = 424242u64;
        for i in 0..n {
            for _ in 0..4 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (x >> 33) as usize % n;
                tuples.push((i, j, ((x >> 17) % 1000) as f64 / 7.0));
            }
        }
        tuples.sort_by_key(|&(i, j, _)| (i, j));
        tuples.dedup_by_key(|&mut (i, j, _)| (i, j));
        let a_csr = Csr::from_sorted_tuples(n, n, tuples);
        let slab = mxm(
            &plus_times::<f64>(),
            &a_csr,
            &a_csr,
            &MaskCsr::All,
            MxmStrategy::Auto,
        );
        for grid in [(1, 1), (2, 2), (4, 4), (7, 3)] {
            let a_tiled = Tiled::from_csr(&a_csr, grid);
            let tiled = mxm_tiled(&plus_times::<f64>(), &a_tiled, &a_csr, &MaskCsr::All);
            // f64 plus is not associative under reordering — equality here
            // proves the tiled gather preserves the slab's fold order.
            assert_eq!(tiled, slab, "grid {grid:?}");
        }
        let _ = tiled::take_tiles();
    }

    #[test]
    fn tiled_kernel_respects_mask() {
        let a_csr = Csr::from_sorted_tuples(10, 10, vec![(1, 2, 2i32), (2, 3, 3), (9, 1, 7)]);
        let a_tiled = Tiled::from_csr(&a_csr, (3, 3));
        let m = Csr::from_sorted_tuples(10, 10, vec![(1, 3, true)]);
        let mask = MaskCsr::from_csr(&m, false, false);
        let masked = mxm_tiled(&plus_times::<i32>(), &a_tiled, &a_csr, &mask);
        let reference = mxm(
            &plus_times::<i32>(),
            &a_csr,
            &a_csr,
            &mask,
            MxmStrategy::Auto,
        );
        assert_eq!(masked, reference);
        assert_eq!(masked.nvals(), 1);
        let _ = tiled::take_tiles();
    }

    #[test]
    fn empty_mask_skips_all_work() {
        let mask = MaskCsr::from_csr(&Csr::<bool>::empty(2, 2), false, false);
        let c = mxm(&plus_times::<i32>(), &a(), &b(), &mask, MxmStrategy::Auto);
        assert_eq!(c.nvals(), 0);
    }
}
