//! `reduce` kernels (Table II row "reduce (row)"): fold the stored
//! elements of each matrix row into a vector entry with a monoid, or fold
//! a whole collection to a scalar.
//!
//! A row with no stored elements produces **no** output entry (there is no
//! implied zero to return); scalar reduction of an empty collection yields
//! the monoid identity, matching the C specification of
//! `GrB_Matrix_reduce_TYPE`.

use crate::algebra::monoid::Monoid;
use crate::kernel::util::map_rows;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

/// `t(i) = ⊕_j A(i,j)` over stored elements.
pub fn reduce_rows<T: Scalar, M: Monoid<T>>(a: &Csr<T>, monoid: &M) -> SparseVec<T> {
    let per_row = map_rows(a.nrows(), a.nvals(), |i| {
        let (_, vals) = a.row(i);
        let mut it = vals.iter();
        it.next().map(|first| {
            let mut acc = first.clone();
            for v in it {
                if monoid.is_terminal(&acc) {
                    break; // absorbing: further folding cannot change acc
                }
                acc = monoid.apply(&acc, v);
            }
            acc
        })
    });
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for (i, r) in per_row.into_iter().enumerate() {
        if let Some(v) = r {
            idx.push(i);
            vals.push(v);
        }
    }
    SparseVec::from_sorted_parts(a.nrows(), idx, vals)
}

/// `s = ⊕_{(i,j)} A(i,j)` over all stored elements; identity if empty.
pub fn reduce_matrix_scalar<T: Scalar, M: Monoid<T>>(a: &Csr<T>, monoid: &M) -> T {
    fold_all(a.vals(), monoid)
}

/// `s = ⊕_i u(i)` over all stored elements; identity if empty.
pub fn reduce_vector_scalar<T: Scalar, M: Monoid<T>>(u: &SparseVec<T>, monoid: &M) -> T {
    fold_all(u.vals(), monoid)
}

/// Fixed chunk width for the two-level fold. The chunking is part of the
/// *result definition*, not a scheduling detail: above the threshold the
/// serial path folds the same 4096-element chunks in the same order as
/// the parallel path, so the association — and therefore the float
/// result — is bitwise-identical at every worker count.
const FOLD_CHUNK: usize = 4096;

fn fold_all<T: Scalar, M: Monoid<T>>(vals: &[T], monoid: &M) -> T {
    let fold_chunk = |chunk: &[T]| -> T {
        let mut acc = monoid.identity();
        for v in chunk {
            if monoid.is_terminal(&acc) {
                break; // absorbing: the chunk fold is already decided
            }
            acc = monoid.apply(&acc, v);
        }
        acc
    };
    if vals.len() <= FOLD_CHUNK {
        return fold_chunk(vals);
    }
    let chunks = vals.len().div_ceil(FOLD_CHUNK);
    #[cfg(feature = "parallel")]
    let partials: Vec<T> = {
        use crate::kernel::par;
        match par::plan(chunks, vals.len()) {
            Some(mut plan) => {
                // one task per fixed-width chunk — the plan's own span
                // would merge chunks and change the association
                plan.chunks = chunks;
                plan.span = 1;
                par::run_chunks(chunks, plan, |start, end| {
                    (start..end)
                        .map(|c| {
                            fold_chunk(&vals[c * FOLD_CHUNK..vals.len().min((c + 1) * FOLD_CHUNK)])
                        })
                        .collect::<Vec<T>>()
                })
                .into_iter()
                .flatten()
                .collect()
            }
            None => vals.chunks(FOLD_CHUNK).map(fold_chunk).collect(),
        }
    };
    #[cfg(not(feature = "parallel"))]
    let partials: Vec<T> = vals.chunks(FOLD_CHUNK).map(fold_chunk).collect();
    let _ = chunks;
    let mut acc = monoid.identity();
    for v in &partials {
        if monoid.is_terminal(&acc) {
            break;
        }
        acc = monoid.apply(&acc, v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::monoid::{MaxMonoid, MinMonoid, PlusMonoid};

    fn a() -> Csr<i32> {
        // [ 1 2 . ]
        // [ . . . ]
        // [ 3 . 4 ]
        Csr::from_sorted_tuples(3, 3, vec![(0, 0, 1), (0, 1, 2), (2, 0, 3), (2, 2, 4)])
    }

    #[test]
    fn row_reduce_skips_empty_rows() {
        let w = reduce_rows(&a(), &PlusMonoid::<i32>::new());
        assert_eq!(w.to_tuples(), vec![(0, 3), (2, 7)]);
        assert_eq!(w.get(1), None); // empty row -> no entry, not zero
    }

    #[test]
    fn row_reduce_with_min_max() {
        let w = reduce_rows(&a(), &MinMonoid::<i32>::new());
        assert_eq!(w.to_tuples(), vec![(0, 1), (2, 3)]);
        let w = reduce_rows(&a(), &MaxMonoid::<i32>::new());
        assert_eq!(w.to_tuples(), vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn scalar_reduce() {
        assert_eq!(reduce_matrix_scalar(&a(), &PlusMonoid::<i32>::new()), 10);
        assert_eq!(reduce_matrix_scalar(&a(), &MaxMonoid::<i32>::new()), 4);
        let empty = Csr::<i32>::empty(3, 3);
        assert_eq!(reduce_matrix_scalar(&empty, &PlusMonoid::<i32>::new()), 0);
        assert_eq!(
            reduce_matrix_scalar(&empty, &MinMonoid::<i32>::new()),
            i32::MAX
        );
    }

    #[test]
    fn vector_scalar_reduce() {
        let u = SparseVec::from_sorted_parts(5, vec![1, 4], vec![7, 9]);
        assert_eq!(reduce_vector_scalar(&u, &PlusMonoid::<i32>::new()), 16);
        let e = SparseVec::<i32>::empty(5);
        assert_eq!(reduce_vector_scalar(&e, &PlusMonoid::<i32>::new()), 0);
    }

    #[test]
    fn parallel_reduce_with_nan_matches_sequential() {
        // Regression: Min/Max were not commutative for NaN, so the
        // chunked tree reduction (len >= 4096) could disagree with the
        // sequential fold depending on where the NaNs landed in the
        // chunking. With fmin/fmax semantics the result is
        // schedule-independent.
        let n = 20_000usize;
        let vals: Vec<f64> = (0..n)
            .map(|j| {
                if j % 977 == 0 {
                    f64::NAN
                } else {
                    (j as f64) * 0.25 - 1000.0
                }
            })
            .collect();
        let m = Csr::from_sorted_tuples(1, n, (0..n).map(|j| (0, j, vals[j])));

        // ground truth via a sequential fold over the same operator
        let min_op = crate::algebra::binary::Min::<f64>::new();
        let max_op = crate::algebra::binary::Max::<f64>::new();
        let seq_min = vals.iter().fold(f64::INFINITY, |a, v| {
            crate::algebra::binary::BinaryOp::apply(&min_op, &a, v)
        });
        let seq_max = vals.iter().fold(f64::NEG_INFINITY, |a, v| {
            crate::algebra::binary::BinaryOp::apply(&max_op, &a, v)
        });

        let par_min = reduce_matrix_scalar(&m, &MinMonoid::<f64>::new());
        let par_max = reduce_matrix_scalar(&m, &MaxMonoid::<f64>::new());
        assert_eq!(par_min, seq_min);
        assert_eq!(par_max, seq_max);
        assert!(!par_min.is_nan() && !par_max.is_nan());

        // An all-NaN collection folds from the monoid identity (±∞), and
        // under fmin/fmax the NaNs lose to it — the identity comes back,
        // identically under any schedule (the point of the fix).
        let all_nan = Csr::from_sorted_tuples(1, 5000, (0..5000).map(|j| (0, j, f64::NAN)));
        assert_eq!(
            reduce_matrix_scalar(&all_nan, &MinMonoid::<f64>::new()),
            f64::INFINITY
        );
        assert_eq!(
            reduce_matrix_scalar(&all_nan, &MaxMonoid::<f64>::new()),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn large_parallel_reduce_matches() {
        let n = 20_000usize;
        let m = Csr::from_sorted_tuples(1, n, (0..n).map(|j| (0, j, 1i64)));
        assert_eq!(
            reduce_matrix_scalar(&m, &PlusMonoid::<i64>::new()),
            n as i64
        );
    }
}
