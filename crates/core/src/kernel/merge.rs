//! Flush kernel: k-way merge of pending-update runs
//! ([`crate::storage::delta`]) into backing storage.
//!
//! The merge is row-partitioned onto the shared worker pool under the
//! same cost model and deterministic in-order chunk concatenation as
//! every other kernel ([`crate::kernel::par`]): each chunk covers a
//! contiguous row range, run slices are located by binary search, and a
//! chunk's output never depends on chunk boundaries — so flushed storage
//! is bitwise identical at every worker degree.
//!
//! Last-write-wins ordering: within a sealed run duplicates are already
//! combined (the log's dup policy); across runs the entry with the
//! highest [`DeltaEntry::seq`] — the program-order-latest mutation —
//! wins. A `Del` of an absent element merges to nothing, matching the
//! C API's no-op semantics for `GrB_*_removeElement`.

use std::cell::Cell;
use std::sync::Arc;

use crate::index::Index;
use crate::kernel::par;
use crate::scalar::Scalar;
use crate::storage::delta::{DeltaEntry, DeltaOp, Run};
use crate::storage::engine::{FormatPolicy, Layout, MatrixStore};
use crate::storage::tiled::{self, Tiled};
use crate::storage::{Csr, SparseVec};

/// Flush work observed on this thread since the last
/// [`take_flush_stats`] — the scheduler drains it into `flush` trace
/// events, alongside [`par::take_stats`] for the chunk fan-out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Pending entries merged (post-dedup, summed over runs).
    pub pending_len: usize,
    /// Distinct output rows (vector: indices) the pending entries touched.
    pub merged_rows: usize,
}

impl FlushStats {
    const ZERO: FlushStats = FlushStats {
        pending_len: 0,
        merged_rows: 0,
    };
}

thread_local! {
    static FLUSH_STATS: Cell<FlushStats> = const { Cell::new(FlushStats::ZERO) };
}

/// Drain the flush stats accumulated on this thread since the last call.
pub fn take_flush_stats() -> FlushStats {
    FLUSH_STATS.with(|s| s.replace(FlushStats::ZERO))
}

fn note_flush(pending_len: usize, merged_rows: usize) {
    FLUSH_STATS.with(|s| {
        let mut st = s.get();
        st.pending_len += pending_len;
        st.merged_rows += merged_rows;
        s.set(st);
    });
}

/// Merge one row range `[start, end)`: k-way combine the run slices
/// (highest `seq` wins per key), then two-pointer merge with the base
/// rows. Returns the chunk's output tuples and the count of distinct
/// rows the deltas touched.
fn merge_matrix_rows<T: Scalar>(
    base: &Csr<T>,
    runs: &[Run<(Index, Index), T>],
    start: Index,
    end: Index,
) -> (Vec<(Index, Index, T)>, usize) {
    let slices: Vec<&[DeltaEntry<(Index, Index), T>]> = runs
        .iter()
        .map(|r| {
            let lo = r.partition_point(|e| e.key.0 < start);
            let hi = r.partition_point(|e| e.key.0 < end);
            &r[lo..hi]
        })
        .collect();
    // Cross-run k-way merge into one LWW-deduplicated delta list. Each
    // run is internally deduplicated, so each holds at most one entry
    // per key; among runs sharing the min key, the highest seq wins.
    let mut cursors = vec![0usize; slices.len()];
    let mut delta: Vec<(Index, Index, DeltaOp<T>)> = Vec::new();
    let mut touched_rows = 0usize;
    loop {
        let mut min_key: Option<(Index, Index)> = None;
        for (s, &c) in slices.iter().zip(&cursors) {
            if let Some(e) = s.get(c) {
                min_key = Some(min_key.map_or(e.key, |m: (Index, Index)| m.min(e.key)));
            }
        }
        let Some(key) = min_key else { break };
        let mut best: Option<&DeltaEntry<(Index, Index), T>> = None;
        for (s, c) in slices.iter().zip(cursors.iter_mut()) {
            if let Some(e) = s.get(*c) {
                if e.key == key {
                    if best.is_none_or(|b| e.seq > b.seq) {
                        best = Some(e);
                    }
                    *c += 1;
                }
            }
        }
        if delta.last().is_none_or(|d| d.0 != key.0) {
            touched_rows += 1;
        }
        delta.push((key.0, key.1, best.expect("min key has an entry").op.clone()));
    }
    // Two-pointer merge of each base row with its delta span.
    let mut out = Vec::with_capacity(base.row_ptr()[end] - base.row_ptr()[start] + delta.len());
    let mut d = 0usize;
    for i in start..end {
        let (cols, vals) = base.row(i);
        let mut b = 0usize;
        loop {
            let pending = (d < delta.len() && delta[d].0 == i).then(|| delta[d].1);
            match (cols.get(b), pending) {
                (Some(&bc), Some(dc)) if dc < bc => {
                    if let DeltaOp::Put(v) = &delta[d].2 {
                        out.push((i, dc, v.clone()));
                    }
                    d += 1;
                }
                (Some(&bc), Some(dc)) if dc == bc => {
                    if let DeltaOp::Put(v) = &delta[d].2 {
                        out.push((i, dc, v.clone()));
                    }
                    d += 1;
                    b += 1;
                }
                (Some(&bc), _) => {
                    out.push((i, bc, vals[b].clone()));
                    b += 1;
                }
                (None, Some(dc)) => {
                    if let DeltaOp::Put(v) = &delta[d].2 {
                        out.push((i, dc, v.clone()));
                    }
                    d += 1;
                }
                (None, None) => break,
            }
        }
    }
    (out, touched_rows)
}

/// Merge pending runs into a CSR base, producing the flushed storage —
/// exactly what eager per-call application of every pending mutation (in
/// `seq` order) would have produced. Row-parallel when the cost model
/// approves; bitwise identical either way.
pub fn merge_matrix<T: Scalar>(base: &Csr<T>, runs: &[Run<(Index, Index), T>]) -> Csr<T> {
    let pending: usize = runs.iter().map(|r| r.len()).sum();
    let (nrows, ncols) = (base.nrows(), base.ncols());
    #[cfg(feature = "parallel")]
    if let Some(plan) = par::plan(nrows, base.nvals() + pending) {
        let parts = par::run_chunks(nrows, plan, |s, e| merge_matrix_rows(base, runs, s, e));
        let merged_rows = parts.iter().map(|p| p.1).sum();
        note_flush(pending, merged_rows);
        return Csr::from_sorted_tuples(nrows, ncols, parts.into_iter().flat_map(|p| p.0));
    }
    let (tuples, merged_rows) = merge_matrix_rows(base, runs, 0, nrows);
    note_flush(pending, merged_rows);
    Csr::from_sorted_tuples(nrows, ncols, tuples)
}

/// Merge pending runs into a *store* under `policy` — the flush entry
/// point of [`crate::object::Matrix`]'s overlay and flush nodes.
///
/// When the store is tiled and the policy keeps the same grid, the
/// merge is **tile-granular**: runs are partitioned per tile (keys
/// localized, `seq` order preserved), only dirty tiles are re-merged —
/// as chunk tasks on the shared pool, in deterministic grid order — and
/// every clean tile keeps its `Arc` identity, so its memoized views and
/// degree caches survive the flush untouched. Otherwise this is the
/// classic whole-slab merge re-stored under the policy.
pub fn merge_into_store<T: Scalar>(
    store: &MatrixStore<T>,
    runs: &[Run<(Index, Index), T>],
    policy: FormatPolicy,
) -> MatrixStore<T> {
    if let (Layout::Tiled(t), Some(grid)) = (store.layout(), policy.tile_grid()) {
        if t.grid() == tiled::clamp_grid(store.nrows(), store.ncols(), grid) {
            return merge_tiled(t, runs);
        }
    }
    MatrixStore::from_csr(merge_matrix(store.row_csr().as_ref(), runs), policy)
}

/// Localize each run to the tiles it touches, merge the dirty tiles
/// (pool-parallel, in-order), and share every clean tile's `Arc`.
fn merge_tiled<T: Scalar>(t: &Tiled<T>, runs: &[Run<(Index, Index), T>]) -> MatrixStore<T> {
    let (gr, gc) = t.grid();
    let (_, span_c) = t.tile_span();
    let pending: usize = runs.iter().map(|r| r.len()).sum();
    // Per-tile runs: a row-range slice (binary search on the row-major
    // key order) split by tile column. The split is order-preserving
    // and per-run, so each local list is still a sorted, deduplicated
    // run and cross-run LWW-by-seq semantics carry over unchanged.
    let mut tile_runs: Vec<Vec<Run<(Index, Index), T>>> = vec![Vec::new(); gr * gc];
    for run in runs {
        for ti in 0..gr {
            let (r0, r1, _, _) = t.tile_bounds(ti, 0);
            let lo = run.partition_point(|e| e.key.0 < r0);
            let hi = run.partition_point(|e| e.key.0 < r1);
            if lo == hi {
                continue;
            }
            let mut parts: Vec<Vec<DeltaEntry<(Index, Index), T>>> = vec![Vec::new(); gc];
            for e in &run[lo..hi] {
                let tj = e.key.1 / span_c;
                parts[tj].push(DeltaEntry {
                    key: (e.key.0 - r0, e.key.1 - tj * span_c),
                    seq: e.seq,
                    op: e.op.clone(),
                });
            }
            for (tj, part) in parts.into_iter().enumerate() {
                if !part.is_empty() {
                    tile_runs[ti * gc + tj].push(Run::from(part));
                }
            }
        }
    }
    let dirty: Vec<usize> = (0..gr * gc).filter(|&k| !tile_runs[k].is_empty()).collect();
    let merge_one = |k: usize| -> (Option<Arc<MatrixStore<T>>>, usize) {
        let idx = dirty[k];
        let (ti, tj) = (idx / gc, idx % gc);
        let (r0, r1, c0, c1) = t.tile_bounds(ti, tj);
        let base = match t.tiles()[idx].as_ref() {
            Some(s) => s.row_csr(),
            None => Arc::new(Csr::empty(r1 - r0, c1 - c0)),
        };
        let (tuples, merged_rows) = merge_matrix_rows(&base, &tile_runs[idx], 0, r1 - r0);
        let block = (!tuples.is_empty()).then(|| {
            Arc::new(MatrixStore::from_csr(
                Csr::from_sorted_tuples(r1 - r0, c1 - c0, tuples),
                FormatPolicy::Auto,
            ))
        });
        (block, merged_rows)
    };
    let work = pending
        + dirty
            .iter()
            .map(|&k| t.tiles()[k].as_ref().map_or(0, |s| s.nvals()))
            .sum::<usize>();
    let results: Vec<(Option<Arc<MatrixStore<T>>>, usize)>;
    #[cfg(feature = "parallel")]
    {
        results = match par::plan(dirty.len(), work) {
            Some(plan) => par::run_chunks(dirty.len(), plan, |lo, hi| {
                (lo..hi).map(merge_one).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect(),
            None => (0..dirty.len()).map(merge_one).collect(),
        };
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = work;
        results = (0..dirty.len()).map(merge_one).collect();
    }
    let mut tiles = t.tiles().to_vec();
    let mut merged_rows = 0usize;
    for (&idx, (block, rows)) in dirty.iter().zip(results) {
        tiles[idx] = block;
        merged_rows += rows;
    }
    note_flush(pending, merged_rows);
    tiled::note_tiles(dirty.iter().map(|&k| ((k / gc) as u32, (k % gc) as u32)));
    MatrixStore::tiled(Tiled::from_tiles(t.nrows(), t.ncols(), (gr, gc), tiles))
}

/// The vector analogue of [`merge_matrix_rows`] over the index range
/// `[start, end)`.
fn merge_vector_span<T: Scalar>(
    base: &SparseVec<T>,
    runs: &[Run<Index, T>],
    start: Index,
    end: Index,
) -> (Vec<(Index, T)>, usize) {
    let slices: Vec<&[DeltaEntry<Index, T>]> = runs
        .iter()
        .map(|r| {
            let lo = r.partition_point(|e| e.key < start);
            let hi = r.partition_point(|e| e.key < end);
            &r[lo..hi]
        })
        .collect();
    let mut cursors = vec![0usize; slices.len()];
    let mut delta: Vec<(Index, DeltaOp<T>)> = Vec::new();
    loop {
        let mut min_key: Option<Index> = None;
        for (s, &c) in slices.iter().zip(&cursors) {
            if let Some(e) = s.get(c) {
                min_key = Some(min_key.map_or(e.key, |m| m.min(e.key)));
            }
        }
        let Some(key) = min_key else { break };
        let mut best: Option<&DeltaEntry<Index, T>> = None;
        for (s, c) in slices.iter().zip(cursors.iter_mut()) {
            if let Some(e) = s.get(*c) {
                if e.key == key {
                    if best.is_none_or(|b| e.seq > b.seq) {
                        best = Some(e);
                    }
                    *c += 1;
                }
            }
        }
        delta.push((key, best.expect("min key has an entry").op.clone()));
    }
    let touched = delta.len();
    let base_lo = base.indices().partition_point(|&i| i < start);
    let base_hi = base.indices().partition_point(|&i| i < end);
    let (bidx, bvals) = (
        &base.indices()[base_lo..base_hi],
        &base.vals()[base_lo..base_hi],
    );
    let mut out = Vec::with_capacity(bidx.len() + delta.len());
    let (mut b, mut d) = (0usize, 0usize);
    loop {
        match (bidx.get(b), delta.get(d)) {
            (Some(&bi), Some(&(di, ref op))) if di < bi => {
                if let DeltaOp::Put(v) = op {
                    out.push((di, v.clone()));
                }
                d += 1;
            }
            (Some(&bi), Some(&(di, ref op))) if di == bi => {
                if let DeltaOp::Put(v) = op {
                    out.push((di, v.clone()));
                }
                d += 1;
                b += 1;
            }
            (Some(&bi), _) => {
                out.push((bi, bvals[b].clone()));
                b += 1;
            }
            (None, Some(&(di, ref op))) => {
                if let DeltaOp::Put(v) = op {
                    out.push((di, v.clone()));
                }
                d += 1;
            }
            (None, None) => break,
        }
    }
    (out, touched)
}

/// Merge pending runs into a sparse-vector base; index-partitioned onto
/// the pool under the same cost model as the matrix flush.
pub fn merge_vector<T: Scalar>(base: &SparseVec<T>, runs: &[Run<Index, T>]) -> SparseVec<T> {
    let pending: usize = runs.iter().map(|r| r.len()).sum();
    let n = base.size();
    #[cfg(feature = "parallel")]
    if let Some(plan) = par::plan(n, base.nvals() + pending) {
        let parts = par::run_chunks(n, plan, |s, e| merge_vector_span(base, runs, s, e));
        let merged_rows = parts.iter().map(|p| p.1).sum();
        note_flush(pending, merged_rows);
        let (idx, vals) = parts.into_iter().flat_map(|p| p.0).unzip();
        return SparseVec::from_sorted_parts(n, idx, vals);
    }
    let (tuples, merged_rows) = merge_vector_span(base, runs, 0, n);
    note_flush(pending, merged_rows);
    let (idx, vals) = tuples.into_iter().unzip();
    SparseVec::from_sorted_parts(n, idx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::delta::DeltaLog;

    fn eager_apply(
        base: &Csr<i64>,
        ops: &[(Index, Index, Option<i64>)], // None = remove
    ) -> Csr<i64> {
        let mut m = base.clone();
        for &(i, j, v) in ops {
            match v {
                Some(v) => m.set_element(i, j, v),
                None => {
                    m.remove_element(i, j);
                }
            }
        }
        m
    }

    fn log_of(ops: &[(Index, Index, Option<i64>)]) -> DeltaLog<(Index, Index), i64> {
        let mut log = DeltaLog::new();
        for &(i, j, v) in ops {
            log.push(
                (i, j),
                match v {
                    Some(v) => DeltaOp::Put(v),
                    None => DeltaOp::Del,
                },
            );
        }
        log
    }

    #[test]
    fn empty_runs_reproduce_base() {
        let base = Csr::from_sorted_tuples(3, 3, vec![(0, 1, 5i64), (2, 2, 7)]);
        let out = merge_matrix(&base, &[]);
        assert_eq!(out, base);
        let st = take_flush_stats();
        assert_eq!(st.pending_len, 0);
        assert_eq!(st.merged_rows, 0);
    }

    #[test]
    fn put_del_and_del_of_absent() {
        let base = Csr::from_sorted_tuples(4, 4, vec![(0, 0, 1i64), (1, 2, 2), (3, 3, 3)]);
        let ops = [
            (0, 0, Some(10)), // overwrite
            (1, 2, None),     // delete stored
            (2, 1, Some(20)), // insert into empty row
            (3, 0, None),     // delete absent: no-op
            (0, 3, Some(30)), // insert into stored row
        ];
        let out = merge_matrix(&base, &log_of(&ops).drain());
        assert_eq!(out, eager_apply(&base, &ops));
        let st = take_flush_stats();
        assert_eq!(st.pending_len, 5);
        assert_eq!(st.merged_rows, 4); // rows 0, 1, 2, 3 all touched
    }

    #[test]
    fn last_write_wins_across_runs() {
        let base = Csr::<i64>::empty(2, 2);
        let mut log = DeltaLog::new();
        log.push((0, 0), DeltaOp::Put(1i64));
        let mut runs = log.drain(); // run 1 holds the Put(1)
        log.push((0, 0), DeltaOp::Put(2));
        log.push((1, 1), DeltaOp::Put(9));
        runs.extend(log.drain()); // run 2 holds Put(2) with higher seq
        let out = merge_matrix(&base, &runs);
        assert_eq!(out.get(0, 0), Some(&2));
        assert_eq!(out.get(1, 1), Some(&9));
        take_flush_stats();
    }

    #[test]
    fn del_in_later_run_erases_put_in_earlier() {
        let base = Csr::<i64>::empty(2, 2);
        let mut log = DeltaLog::new();
        log.push((0, 1), DeltaOp::Put(5i64));
        let mut runs = log.drain();
        log.push((0, 1), DeltaOp::Del);
        runs.extend(log.drain());
        let out = merge_matrix(&base, &runs);
        assert_eq!(out.nvals(), 0);
        take_flush_stats();
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn chunked_merge_is_bitwise_serial() {
        let base = Csr::from_sorted_tuples(64, 8, (0..64usize).map(|i| (i, i % 8, i as i64)));
        let ops: Vec<(Index, Index, Option<i64>)> = (0..200)
            .map(|k| {
                let i = (k * 13) % 64;
                let j = (k * 7) % 8;
                (i, j, if k % 5 == 0 { None } else { Some(k as i64) })
            })
            .collect();
        let runs = log_of(&ops).drain();
        let serial = par::with_parallelism(1, || merge_matrix(&base, &runs));
        take_flush_stats();
        let parallel = par::with_parallelism(4, || {
            par::with_cost_model(1, 0, || merge_matrix(&base, &runs))
        });
        let st = take_flush_stats();
        assert_eq!(serial, parallel);
        assert_eq!(st.pending_len, runs.iter().map(|r| r.len()).sum::<usize>());
        let pst = par::take_stats();
        assert!(pst.par_chunks >= 2, "merge did not chunk");
    }

    #[test]
    fn tiled_merge_matches_slab_merge() {
        let base =
            Csr::from_sorted_tuples(16, 16, (0..16usize).map(|i| (i, (i * 5) % 16, i as i64)));
        let ops: Vec<(Index, Index, Option<i64>)> = (0..60)
            .map(|k| {
                let i = (k * 11) % 16;
                let j = (k * 3) % 16;
                (
                    i,
                    j,
                    if k % 4 == 0 {
                        None
                    } else {
                        Some(100 + k as i64)
                    },
                )
            })
            .collect();
        let runs = log_of(&ops).drain();
        let slab = merge_matrix(&base, &runs);
        take_flush_stats();
        for grid in [(1, 1), (2, 2), (4, 4), (3, 5)] {
            let policy = FormatPolicy::Tiled {
                rows: grid.0,
                cols: grid.1,
            };
            let store = MatrixStore::from_csr(base.clone(), policy);
            let out = merge_into_store(&store, &runs, policy);
            assert_eq!(out.row_csr().as_ref(), &slab, "grid {grid:?}");
            take_flush_stats();
            let _ = tiled::take_tiles();
        }
    }

    /// Satellite regression: a drain that only dirties one tile must
    /// leave every other tile's storage (and therefore its memoized
    /// degree caches) shared by pointer with the pre-flush store —
    /// tile-granular flush may not invalidate per-store property caches
    /// wholesale.
    #[test]
    fn tiled_merge_keeps_clean_tiles_and_their_caches() {
        use std::sync::Arc;
        let base = Csr::from_sorted_tuples(
            8,
            8,
            vec![
                (0, 0, 1i64),
                (1, 6, 2), // tile (0,1)
                (5, 1, 3), // tile (1,0)
                (6, 6, 4), // tile (1,1)
                (7, 2, 5), // tile (1,0)
            ],
        );
        let policy = FormatPolicy::Tiled { rows: 2, cols: 2 };
        let store = MatrixStore::from_csr(base, policy);
        let Layout::Tiled(before) = store.layout() else {
            panic!("expected tiled layout");
        };
        // warm each tile's degree cache
        let warmed: Vec<Option<std::sync::Arc<[usize]>>> = (0..2)
            .flat_map(|ti| (0..2).map(move |tj| (ti, tj)))
            .map(|(ti, tj)| before.tile(ti, tj).map(|t| t.row_degrees()))
            .collect();

        // dirty only tile (0,0): keys in rows 0..4, cols 0..4
        let mut log = DeltaLog::new();
        log.push((1usize, 2usize), DeltaOp::Put(9i64));
        log.push((0, 0), DeltaOp::Del);
        let out = merge_into_store(&store, &log.drain(), policy);
        let st = take_flush_stats();
        assert_eq!(st.pending_len, 2);
        assert_eq!(tiled::take_tiles(), vec![(0, 0)]);

        let Layout::Tiled(after) = out.layout() else {
            panic!("merge changed the layout");
        };
        // the dirty tile was rebuilt …
        assert_eq!(out.get(1, 2), Some(&9));
        assert_eq!(out.get(0, 0), None);
        // … and every clean tile is the same Arc as before the flush,
        // so its warmed degree cache survives by pointer identity.
        for (ti, tj) in [(0usize, 1usize), (1, 0), (1, 1)] {
            let b = before.tile(ti, tj).expect("tile occupied before");
            let a = after.tile(ti, tj).expect("tile occupied after");
            assert!(Arc::ptr_eq(b, a), "tile ({ti},{tj}) was rebuilt");
            let cached = warmed[ti * 2 + tj].as_ref().expect("warmed");
            assert!(
                Arc::ptr_eq(cached, &a.row_degrees()),
                "tile ({ti},{tj}) lost its degree cache"
            );
        }
        let b = before.tile(0, 0).expect("dirty tile occupied before");
        let a = after.tile(0, 0).expect("dirty tile occupied after");
        assert!(!Arc::ptr_eq(b, a), "dirty tile must be rebuilt");
    }

    #[test]
    fn vector_merge_matches_eager() {
        let base = SparseVec::from_sorted_parts(10, vec![1, 4, 7], vec![1.0f64, 4.0, 7.0]);
        let mut log = DeltaLog::new();
        log.push(4, DeltaOp::Del);
        log.push(2, DeltaOp::Put(2.5f64));
        log.push(7, DeltaOp::Put(-7.0));
        log.push(9, DeltaOp::Del); // absent: no-op
        let out = merge_vector(&base, &log.drain());
        assert_eq!(out.to_tuples(), vec![(1, 1.0), (2, 2.5), (7, -7.0)]);
        let st = take_flush_stats();
        assert_eq!(st.pending_len, 4);
        assert_eq!(st.merged_rows, 4);
    }
}
