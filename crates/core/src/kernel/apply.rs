//! `apply` kernels: `T = F_u(A)` / `t = F_u(u)` — element-wise unary map
//! over the stored values, pattern preserved (Table II).

use crate::algebra::unary::UnaryOp;
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

/// Map `f` over the stored values, chunked onto the shared pool when
/// the value count clears the cost model. The value array plays the
/// "rows" role: each chunk maps a contiguous span and the spans are
/// concatenated in order, so output is identical to the serial map.
fn map_vals<T: Scalar, U: Scalar, F: UnaryOp<T, U>>(vals: &[T], f: &F) -> Vec<U> {
    #[cfg(feature = "parallel")]
    if let Some(plan) = crate::kernel::par::plan(vals.len(), vals.len()) {
        return crate::kernel::par::run_chunks(vals.len(), plan, |start, end| {
            vals[start..end]
                .iter()
                .map(|v| f.apply(v))
                .collect::<Vec<U>>()
        })
        .into_iter()
        .flatten()
        .collect();
    }
    vals.iter().map(|v| f.apply(v)).collect()
}

/// `T = F_u(A)`.
pub fn apply_matrix<T: Scalar, U: Scalar, F: UnaryOp<T, U>>(a: &Csr<T>, f: &F) -> Csr<U> {
    let vals = map_vals(a.vals(), f);
    Csr::from_parts(
        a.nrows(),
        a.ncols(),
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        vals,
    )
}

/// `t = F_u(u)`.
pub fn apply_vector<T: Scalar, U: Scalar, F: UnaryOp<T, U>>(
    u: &SparseVec<T>,
    f: &F,
) -> SparseVec<U> {
    SparseVec::from_sorted_parts(u.size(), u.indices().to_vec(), map_vals(u.vals(), f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::unary::{unary_fn, Cast, Identity, Minv};

    #[test]
    fn apply_preserves_pattern() {
        let a = Csr::from_sorted_tuples(2, 2, vec![(0, 0, 2.0f32), (1, 1, 4.0)]);
        let inv = apply_matrix(&a, &Minv::<f32>::new());
        assert_eq!(inv.to_tuples(), vec![(0, 0, 0.5), (1, 1, 0.25)]);
    }

    #[test]
    fn identity_bool_cast_like_fig3_line41() {
        // GrB_apply(&sigmas[d], ..., GrB_IDENTITY_BOOL, frontier, ...):
        // int -> bool via the cast operator
        let frontier = Csr::from_sorted_tuples(2, 2, vec![(0, 1, 3i32), (1, 0, 1)]);
        let b: Csr<bool> = apply_matrix(&frontier, &Cast::<i32, bool>::new());
        assert_eq!(b.to_tuples(), vec![(0, 1, true), (1, 0, true)]);
        let same = apply_matrix(&b, &Identity::<bool>::new());
        assert_eq!(same, b);
    }

    #[test]
    fn apply_vector_with_closure() {
        let u = SparseVec::from_sorted_parts(4, vec![1, 3], vec![2, 5]);
        let sq = apply_vector(&u, &unary_fn(|x: &i32| x * x));
        assert_eq!(sq.to_tuples(), vec![(1, 4), (3, 25)]);
    }

    #[test]
    fn large_parallel_map() {
        let n = 10_000usize;
        let a = Csr::from_sorted_tuples(1, n, (0..n).map(|j| (0, j, j as i64)));
        let d = apply_matrix(&a, &unary_fn(|x: &i64| x * 2));
        assert_eq!(d.nvals(), n);
        assert_eq!(d.get(0, 777), Some(&1554));
    }
}
