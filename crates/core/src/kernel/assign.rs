//! `assign` kernels (Table II): `Z = C` with the subregion
//! `C(rows, cols)` overwritten (or accumulated) from a source collection
//! or a single scalar. The result is the pre-mask internal object **Z**;
//! masking/replace are applied afterwards by the shared write stage (the
//! assign mask covers the *whole* output, per the C specification).
//!
//! Semantics inside the region, mirroring `GrB_assign`:
//! * without an accumulator, the region becomes exactly the source —
//!   existing `C` elements at region positions the source does not store
//!   are **deleted**;
//! * with an accumulator, region positions stored by both are combined,
//!   and positions stored by only one pass through.
//!
//! Index lists arrive resolved, bounds-checked, and duplicate-free (the
//! operation layer rejects duplicate output indices, where the C spec
//! leaves the outcome undefined).

use crate::accum::Accumulate;
use crate::index::Index;
use crate::kernel::util::{assemble_rows, map_rows};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

/// Merge one output row: `c_row` is the old content, `new_pairs` the
/// region's new content for this row (sorted by target column),
/// `in_region(j)` tells whether column `j` belongs to the assigned region.
fn assign_row<T: Scalar, Ac: Accumulate<T>>(
    c_cols: &[Index],
    c_vals: &[T],
    new_pairs: &[(Index, T)],
    in_region: impl Fn(Index) -> bool,
    accum: &Ac,
) -> (Vec<Index>, Vec<T>) {
    let mut out_c = Vec::with_capacity(c_cols.len() + new_pairs.len());
    let mut out_v = Vec::with_capacity(c_cols.len() + new_pairs.len());
    let (mut ci, mut ni) = (0usize, 0usize);
    loop {
        match (c_cols.get(ci), new_pairs.get(ni)) {
            (None, None) => break,
            (Some(&cj), None) => {
                if !in_region(cj) || Ac::IS_ACCUM {
                    out_c.push(cj);
                    out_v.push(c_vals[ci].clone());
                }
                ci += 1;
            }
            (None, Some((nj, nv))) => {
                out_c.push(*nj);
                out_v.push(nv.clone());
                ni += 1;
            }
            (Some(&cj), Some((nj, nv))) => {
                if cj < *nj {
                    if !in_region(cj) || Ac::IS_ACCUM {
                        out_c.push(cj);
                        out_v.push(c_vals[ci].clone());
                    }
                    ci += 1;
                } else if *nj < cj {
                    out_c.push(*nj);
                    out_v.push(nv.clone());
                    ni += 1;
                } else {
                    out_c.push(cj);
                    out_v.push(if Ac::IS_ACCUM {
                        accum.combine(&c_vals[ci], nv)
                    } else {
                        nv.clone()
                    });
                    ci += 1;
                    ni += 1;
                }
            }
        }
    }
    (out_c, out_v)
}

/// `Z = C; Z(rows, cols) ⊙= A`.
pub fn assign_matrix<T: Scalar, Ac: Accumulate<T>>(
    c: &Csr<T>,
    a: &Csr<T>,
    rows: &[Index],
    cols: &[Index],
    accum: &Ac,
) -> Csr<T> {
    debug_assert_eq!(a.nrows(), rows.len());
    debug_assert_eq!(a.ncols(), cols.len());
    // target row -> source row
    let mut row_src: Vec<Option<Index>> = vec![None; c.nrows()];
    for (k, &i) in rows.iter().enumerate() {
        row_src[i] = Some(k);
    }
    let mut col_region = vec![false; c.ncols()];
    for &j in cols {
        col_region[j] = true;
    }
    // source col l -> target col cols[l], sorted by target for merge order
    let mut col_map: Vec<(Index, Index)> = cols.iter().copied().enumerate().collect(); // (l, tj)
    col_map.sort_unstable_by_key(|&(_, tj)| tj);

    let out = map_rows(c.nrows(), c.nvals() + a.nvals(), |i| {
        let (cc, cv) = c.row(i);
        match row_src[i] {
            None => (cc.to_vec(), cv.to_vec()),
            Some(k) => {
                let new_pairs: Vec<(Index, T)> = col_map
                    .iter()
                    .filter_map(|&(l, tj)| a.get(k, l).map(|v| (tj, v.clone())))
                    .collect();
                assign_row(cc, cv, &new_pairs, |j| col_region[j], accum)
            }
        }
    });
    assemble_rows(c.nrows(), c.ncols(), out)
}

/// `Z = C; Z(rows, cols) ⊙= value` — the scalar-fill variant used at
/// Fig. 3 lines 61 and 77 (`GrB_assign(&bcu, …, 1.0f, GrB_ALL, …)`).
/// Every region position receives the scalar (the region pattern is
/// dense).
pub fn assign_scalar_matrix<T: Scalar, Ac: Accumulate<T>>(
    c: &Csr<T>,
    value: &T,
    rows: &[Index],
    cols: &[Index],
    accum: &Ac,
) -> Csr<T> {
    let mut row_region = vec![false; c.nrows()];
    for &i in rows {
        row_region[i] = true;
    }
    let mut sorted_cols = cols.to_vec();
    sorted_cols.sort_unstable();
    let mut col_region = vec![false; c.ncols()];
    for &j in cols {
        col_region[j] = true;
    }

    let fill = rows.len().saturating_mul(cols.len());
    let out = map_rows(c.nrows(), c.nvals().saturating_add(fill), |i| {
        let (cc, cv) = c.row(i);
        if !row_region[i] {
            return (cc.to_vec(), cv.to_vec());
        }
        let new_pairs: Vec<(Index, T)> =
            sorted_cols.iter().map(|&tj| (tj, value.clone())).collect();
        assign_row(cc, cv, &new_pairs, |j| col_region[j], accum)
    });
    assemble_rows(c.nrows(), c.ncols(), out)
}

/// `z = w; z(indices) ⊙= u`.
pub fn assign_vector<T: Scalar, Ac: Accumulate<T>>(
    w: &SparseVec<T>,
    u: &SparseVec<T>,
    indices: &[Index],
    accum: &Ac,
) -> SparseVec<T> {
    debug_assert_eq!(u.size(), indices.len());
    let mut region = vec![false; w.size()];
    for &i in indices {
        region[i] = true;
    }
    let mut new_pairs: Vec<(Index, T)> = indices
        .iter()
        .copied()
        .enumerate()
        .filter_map(|(k, ti)| u.get(k).map(|v| (ti, v.clone())))
        .collect();
    new_pairs.sort_unstable_by_key(|&(ti, _)| ti);
    let (idx, vals) = assign_row(w.indices(), w.vals(), &new_pairs, |i| region[i], accum);
    SparseVec::from_sorted_parts(w.size(), idx, vals)
}

/// `z = w; z(indices) ⊙= value`.
pub fn assign_scalar_vector<T: Scalar, Ac: Accumulate<T>>(
    w: &SparseVec<T>,
    value: &T,
    indices: &[Index],
    accum: &Ac,
) -> SparseVec<T> {
    let mut region = vec![false; w.size()];
    for &i in indices {
        region[i] = true;
    }
    let mut sorted = indices.to_vec();
    sorted.sort_unstable();
    let new_pairs: Vec<(Index, T)> = sorted.iter().map(|&ti| (ti, value.clone())).collect();
    let (idx, vals) = assign_row(w.indices(), w.vals(), &new_pairs, |i| region[i], accum);
    SparseVec::from_sorted_parts(w.size(), idx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::{Accum, NoAccum};
    use crate::algebra::binary::Plus;

    fn c() -> Csr<i32> {
        // [ 1 2 . ]
        // [ . 3 . ]
        // [ 4 . 5 ]
        Csr::from_sorted_tuples(
            3,
            3,
            vec![(0, 0, 1), (0, 1, 2), (1, 1, 3), (2, 0, 4), (2, 2, 5)],
        )
    }

    #[test]
    fn assign_replaces_region_exactly() {
        // assign A into region rows {0,1} x cols {0,1}
        let a = Csr::from_sorted_tuples(2, 2, vec![(0, 0, 10)]);
        let z = assign_matrix(&c(), &a, &[0, 1], &[0, 1], &NoAccum);
        // (0,0) -> 10; (0,1) was 2, region but A lacks (0,1) -> deleted;
        // (1,1) was 3, region but A lacks (1,1) -> deleted;
        // row 2 untouched
        assert_eq!(z.to_tuples(), vec![(0, 0, 10), (2, 0, 4), (2, 2, 5)]);
    }

    #[test]
    fn assign_with_accum_keeps_region_survivors() {
        let a = Csr::from_sorted_tuples(2, 2, vec![(0, 0, 10)]);
        let z = assign_matrix(&c(), &a, &[0, 1], &[0, 1], &Accum(Plus::<i32>::new()));
        assert_eq!(
            z.to_tuples(),
            vec![(0, 0, 11), (0, 1, 2), (1, 1, 3), (2, 0, 4), (2, 2, 5)]
        );
    }

    #[test]
    fn assign_with_permuted_indices() {
        // target rows [2,0], cols [1]: A(0,0) -> C(2,1); A(1,0) -> C(0,1)
        let a = Csr::from_sorted_tuples(2, 1, vec![(0, 0, 70), (1, 0, 90)]);
        let z = assign_matrix(&c(), &a, &[2, 0], &[1], &NoAccum);
        assert_eq!(z.get(2, 1), Some(&70));
        assert_eq!(z.get(0, 1), Some(&90));
        // out-of-region entries untouched
        assert_eq!(z.get(0, 0), Some(&1));
        assert_eq!(z.get(1, 1), Some(&3)); // row 1 not in region
    }

    #[test]
    fn scalar_fill_like_fig3_line61() {
        // GrB_assign(&bcu, ..., 1.0f, GrB_ALL, n, GrB_ALL, nsver, ...)
        let empty = Csr::<i32>::empty(2, 3);
        let all_r: Vec<Index> = (0..2).collect();
        let all_c: Vec<Index> = (0..3).collect();
        let z = assign_scalar_matrix(&empty, &1, &all_r, &all_c, &NoAccum);
        assert_eq!(z.nvals(), 6);
        assert!(z.iter().all(|(_, _, v)| *v == 1));
    }

    #[test]
    fn scalar_fill_subregion_with_accum() {
        let z = assign_scalar_matrix(&c(), &100, &[0], &[0, 2], &Accum(Plus::<i32>::new()));
        assert_eq!(z.get(0, 0), Some(&101));
        assert_eq!(z.get(0, 2), Some(&100)); // was absent: passes through
        assert_eq!(z.get(0, 1), Some(&2)); // not in col region
    }

    #[test]
    fn vector_assign() {
        let w = SparseVec::from_sorted_parts(5, vec![0, 2, 4], vec![1, 2, 3]);
        let u = SparseVec::from_sorted_parts(2, vec![0], vec![50]);
        // region = indices {2, 3}: w(2) region-deleted unless accum, u(0)->w(2)
        let z = assign_vector(&w, &u, &[2, 3], &NoAccum);
        assert_eq!(z.to_tuples(), vec![(0, 1), (2, 50), (4, 3)]);
        let z = assign_vector(&w, &u, &[3, 2], &NoAccum);
        // u(0)->w(3), u(1) absent so w(2) deleted
        assert_eq!(z.to_tuples(), vec![(0, 1), (3, 50), (4, 3)]);
    }

    #[test]
    fn vector_scalar_fill() {
        // Fig. 3 line 77: fill delta with -nsver
        let w = SparseVec::<f32>::empty(4);
        let all: Vec<Index> = (0..4).collect();
        let z = assign_scalar_vector(&w, &-3.0f32, &all, &NoAccum);
        assert_eq!(z.nvals(), 4);
        assert!(z.vals().iter().all(|&v| v == -3.0));
    }
}
