//! Descriptors (paper, Section III-C; Table V; Figure 2).
//!
//! A descriptor is a lightweight control object pairing modifier flags
//! with the arguments of a GraphBLAS method: the output (`GrB_OUTP`), the
//! mask (`GrB_MASK`), and the two inputs (`GrB_INP0`, `GrB_INP1`). The BC
//! example builds one as
//!
//! ```c
//! GrB_Descriptor_set(desc_tsr, GrB_INP0, GrB_TRAN);   // transpose A
//! GrB_Descriptor_set(desc_tsr, GrB_MASK, GrB_SCMP);   // complement mask
//! GrB_Descriptor_set(desc_tsr, GrB_OUTP, GrB_REPLACE);// clear C first
//! ```
//!
//! which in this binding is
//! `Descriptor::default().transpose_first().complement_mask().replace()`.

/// Fields of a descriptor — which argument a flag applies to (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// `GrB_OUTP`: the output collection.
    Output,
    /// `GrB_MASK`: the write mask.
    Mask,
    /// `GrB_INP0`: the first input collection.
    Input0,
    /// `GrB_INP1`: the second input collection.
    Input1,
}

/// Values settable on a descriptor field (Table V, plus the final
/// specification's `GrB_STRUCTURE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// `GrB_REPLACE` (on `Output`): clear the output before the masked
    /// result is stored.
    Replace,
    /// `GrB_SCMP` (on `Mask`): use the structural complement of the mask.
    Scmp,
    /// `GrB_STRUCTURE` (on `Mask`): use only the mask's structure,
    /// ignoring stored values (extension from the released C spec).
    Structure,
    /// `GrB_TRAN` (on `Input0`/`Input1`): use the transpose of the input.
    Tran,
}

/// An operation descriptor (`GrB_Descriptor`).
///
/// `Descriptor::default()` is the behaviour of passing `GrB_NULL`:
/// merge-mode output, mask used as-is (values cast to bool), inputs not
/// transposed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Descriptor {
    replace: bool,
    mask_complement: bool,
    mask_structure: bool,
    transpose_first: bool,
    transpose_second: bool,
}

impl Descriptor {
    /// `GrB_Descriptor_new()`: an empty descriptor (all defaults).
    pub fn new() -> Self {
        Descriptor::default()
    }

    /// `GrB_Descriptor_set(desc, field, value)`.
    ///
    /// Setting a flag is idempotent, as in the C API; flags cannot be
    /// unset (create a new descriptor instead).
    pub fn set(&mut self, field: Field, value: Value) -> crate::error::Result<()> {
        match (field, value) {
            (Field::Output, Value::Replace) => self.replace = true,
            (Field::Mask, Value::Scmp) => self.mask_complement = true,
            (Field::Mask, Value::Structure) => self.mask_structure = true,
            (Field::Input0, Value::Tran) => self.transpose_first = true,
            (Field::Input1, Value::Tran) => self.transpose_second = true,
            (f, v) => {
                return Err(crate::error::Error::InvalidValue(format!(
                    "descriptor value {v:?} is not valid for field {f:?}"
                )))
            }
        }
        Ok(())
    }

    // --- builder-style constructors ---

    /// `GrB_OUTP = GrB_REPLACE`.
    pub fn replace(mut self) -> Self {
        self.replace = true;
        self
    }

    /// `GrB_MASK = GrB_SCMP`.
    pub fn complement_mask(mut self) -> Self {
        self.mask_complement = true;
        self
    }

    /// `GrB_MASK = GrB_STRUCTURE`.
    pub fn structural_mask(mut self) -> Self {
        self.mask_structure = true;
        self
    }

    /// `GrB_INP0 = GrB_TRAN`.
    pub fn transpose_first(mut self) -> Self {
        self.transpose_first = true;
        self
    }

    /// `GrB_INP1 = GrB_TRAN`.
    pub fn transpose_second(mut self) -> Self {
        self.transpose_second = true;
        self
    }

    // --- queries used by the operation layer ---

    pub fn is_replace(&self) -> bool {
        self.replace
    }

    pub fn is_mask_complemented(&self) -> bool {
        self.mask_complement
    }

    pub fn is_mask_structural(&self) -> bool {
        self.mask_structure
    }

    pub fn is_first_transposed(&self) -> bool {
        self.transpose_first
    }

    pub fn is_second_transposed(&self) -> bool {
        self.transpose_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_grb_null_behaviour() {
        let d = Descriptor::default();
        assert!(!d.is_replace());
        assert!(!d.is_mask_complemented());
        assert!(!d.is_mask_structural());
        assert!(!d.is_first_transposed());
        assert!(!d.is_second_transposed());
    }

    #[test]
    fn builder_matches_set_calls() {
        // the BC example's desc_tsr
        let built = Descriptor::new()
            .transpose_first()
            .complement_mask()
            .replace();
        let mut set = Descriptor::new();
        set.set(Field::Input0, Value::Tran).unwrap();
        set.set(Field::Mask, Value::Scmp).unwrap();
        set.set(Field::Output, Value::Replace).unwrap();
        assert_eq!(built, set);
        assert!(built.is_first_transposed());
        assert!(!built.is_second_transposed());
    }

    #[test]
    fn invalid_field_value_pairs_rejected() {
        let mut d = Descriptor::new();
        assert!(d.set(Field::Output, Value::Tran).is_err());
        assert!(d.set(Field::Mask, Value::Replace).is_err());
        assert!(d.set(Field::Input0, Value::Scmp).is_err());
    }

    #[test]
    fn set_is_idempotent() {
        let mut d = Descriptor::new();
        d.set(Field::Mask, Value::Scmp).unwrap();
        d.set(Field::Mask, Value::Scmp).unwrap();
        assert!(d.is_mask_complemented());
    }
}
