//! Deferred-evaluation nodes and the forcing engine.
//!
//! In nonblocking mode (paper §IV) an operation installs a *pending node*
//! holding a thunk and its dependency snapshots instead of computing
//! immediately. Nodes are immutable once complete and never mutated in
//! place — a handle swap publishes each new value — so the pending graph
//! is an acyclic persistent DAG and program-order semantics fall out of
//! snapshotting.
//!
//! [`force`] completes a node with an **iterative** topological walk: a
//! BFS-style algorithm can defer a chain whose length is the graph
//! diameter (O(n) on a path), which would overflow the stack if forced
//! recursively.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::exec::fuse::FuseHook;
use crate::exec::sched::TraceMeta;

/// Shape/occupancy reporting for node storage types, consumed by the
/// scheduler's execution trace (`exec::sched::trace`).
pub(crate) trait StorageMeta {
    /// `(rows, cols)`; vectors report `(size, 1)`.
    fn trace_shape(&self) -> (usize, usize);
    /// Number of stored elements.
    fn trace_nvals(&self) -> usize;
    /// Storage-format tag for the trace; matrix stores report their
    /// engine layout, everything else the generic `"sparse"`.
    fn trace_format(&self) -> &'static str {
        "sparse"
    }
    /// The format this value was migrated from by a policy conversion,
    /// if any — drives the trace's migration events.
    fn trace_migrated_from(&self) -> Option<&'static str> {
        None
    }
}

/// Type-erased interface to a node of the deferred DAG (implemented by
/// `MatrixNode<T>` and `VectorNode<T>` for every `T`).
#[doc(hidden)]
pub trait Completable: Send + Sync {
    /// `true` once the node holds a value or a failure.
    fn is_complete(&self) -> bool;
    /// Dependency snapshots of a pending node (empty once complete).
    fn dep_nodes(&self) -> Vec<Arc<dyn Completable>>;
    /// Evaluate the thunk. All dependencies must already be complete.
    /// Stores the value or the failure; never panics on data errors.
    fn compute(&self);
    /// The failure, if the node completed with an error.
    fn failure(&self) -> Option<Error>;
    /// Operation kind plus dims/nvals (dims reported once complete), for
    /// the scheduler's execution trace.
    fn trace_meta(&self) -> TraceMeta;
    /// Liveness for the fusion pass: `true` when this node's value can
    /// still be observed through a live handle (or liveness is unknown).
    /// The default is the conservative answer — observable — which makes
    /// the node ineligible for absorption.
    fn fuse_observable(&self) -> bool {
        true
    }
    /// Take this node's consumer-rewrite hook, if one was installed at
    /// submit time; the fusion pass runs it at most once.
    fn take_fuse_hook(&self) -> Option<FuseHook> {
        None
    }
}

/// The state machine shared by matrix and vector nodes. `S` is the
/// storage type (`Csr<T>` / `SparseVec<T>`).
pub(crate) enum NodeState<S> {
    /// Deferred: thunk + the nodes it reads.
    Pending {
        deps: Vec<Arc<dyn Completable>>,
        eval: Box<dyn FnOnce() -> Result<S> + Send>,
    },
    /// Complete with a value.
    Ready(Arc<S>),
    /// Complete with an execution error; consumers see `InvalidObject`.
    Failed(Error),
}

/// The fusion pass's per-node slots, populated at submit time by the
/// operation layer (see `exec::fuse`):
///
/// * `face` — the producer's recompute/compose closures, stored
///   type-erased (`MatProducer<T>` / `VecProducer<T>` behind `dyn Any`).
/// * `hook` — the consumer-side rewrite attempt, taken once per pass.
/// * `probe` — handle-liveness check: does some handle cell still point
///   at this node?
struct FuseSlots {
    face: Option<Arc<dyn Any + Send + Sync>>,
    hook: Option<FuseHook>,
    probe: Option<Box<dyn Fn() -> bool + Send + Sync>>,
}

/// Generic node: storage state plus the erased `Completable` face.
pub(crate) struct Node<S> {
    /// Operation kind that defined this node (Table II name, or
    /// `"value"` for nodes born complete) — shown in execution traces.
    kind: &'static str,
    state: Mutex<NodeState<S>>,
    fuse: Mutex<FuseSlots>,
    /// Set by `dup()`: a second handle aliases this value, so the probe
    /// alone can no longer prove it unobservable.
    pinned: AtomicBool,
}

impl<S: Send + Sync + 'static> Node<S> {
    fn slots() -> Mutex<FuseSlots> {
        Mutex::new(FuseSlots {
            face: None,
            hook: None,
            probe: None,
        })
    }

    pub(crate) fn ready(value: S) -> Arc<Self> {
        Arc::new(Node {
            kind: "value",
            state: Mutex::new(NodeState::Ready(Arc::new(value))),
            fuse: Self::slots(),
            pinned: AtomicBool::new(false),
        })
    }

    /// Pending node with the generic `"op"` kind — operations go through
    /// [`Node::pending_kind`] with their Table II name; this shorthand
    /// serves the engine's own tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pending(
        deps: Vec<Arc<dyn Completable>>,
        eval: Box<dyn FnOnce() -> Result<S> + Send>,
    ) -> Arc<Self> {
        Self::pending_kind("op", deps, eval)
    }

    pub(crate) fn pending_kind(
        kind: &'static str,
        deps: Vec<Arc<dyn Completable>>,
        eval: Box<dyn FnOnce() -> Result<S> + Send>,
    ) -> Arc<Self> {
        Arc::new(Node {
            kind,
            state: Mutex::new(NodeState::Pending { deps, eval }),
            fuse: Self::slots(),
            pinned: AtomicBool::new(false),
        })
    }

    // ----- fusion-pass plumbing (see `exec::fuse`) -----

    pub(crate) fn set_fuse_face(&self, face: Arc<dyn Any + Send + Sync>) {
        self.fuse.lock().face = Some(face);
    }

    pub(crate) fn fuse_face(&self) -> Option<Arc<dyn Any + Send + Sync>> {
        self.fuse.lock().face.clone()
    }

    pub(crate) fn set_fuse_hook(&self, hook: FuseHook) {
        self.fuse.lock().hook = Some(hook);
    }

    pub(crate) fn set_observe_probe(&self, probe: Box<dyn Fn() -> bool + Send + Sync>) {
        self.fuse.lock().probe = Some(probe);
    }

    /// Mark this node as aliased by an additional handle (`dup`), which
    /// keeps it observable regardless of what the probe reports.
    pub(crate) fn pin(&self) {
        self.pinned.store(true, Ordering::Relaxed);
    }

    /// Swap in a fused evaluator (and its adopted dependencies) — only
    /// while still pending; a completed node is immutable.
    pub(crate) fn replace_pending(
        &self,
        deps: Vec<Arc<dyn Completable>>,
        eval: Box<dyn FnOnce() -> Result<S> + Send>,
    ) -> bool {
        let mut guard = self.state.lock();
        if matches!(&*guard, NodeState::Pending { .. }) {
            *guard = NodeState::Pending { deps, eval };
            true
        } else {
            false
        }
    }

    /// The storage of a *complete* node. `Pending` here is an engine bug;
    /// a failed node surfaces as `InvalidObject` (paper §V: "at least one
    /// of the argument objects is in an invalid state — caused by a
    /// previous execution error"). The wrapping is idempotent — an
    /// already-invalid object propagates unchanged — so the reported
    /// message names the root cause regardless of how many invalidated
    /// consumers sit between it and the observation point. That depth is
    /// schedule- and fusion-dependent (a fused consumer reads the
    /// absorbed producer's inputs directly); the root cause is not.
    pub(crate) fn ready_storage(&self) -> Result<Arc<S>> {
        match &*self.state.lock() {
            NodeState::Ready(s) => Ok(s.clone()),
            NodeState::Failed(e @ Error::InvalidObject(_)) => Err(e.clone()),
            NodeState::Failed(e) => Err(Error::InvalidObject(format!(
                "object invalidated by a previous execution error: {e}"
            ))),
            NodeState::Pending { .. } => Err(Error::Panic(
                "internal: read of a pending node (forcing engine bug)".into(),
            )),
        }
    }
}

impl<S: StorageMeta + Send + Sync + 'static> Completable for Node<S> {
    fn is_complete(&self) -> bool {
        !matches!(&*self.state.lock(), NodeState::Pending { .. })
    }

    fn dep_nodes(&self) -> Vec<Arc<dyn Completable>> {
        match &*self.state.lock() {
            NodeState::Pending { deps, .. } => deps.clone(),
            _ => Vec::new(),
        }
    }

    fn compute(&self) {
        let mut guard = self.state.lock();
        if let NodeState::Pending { .. } = &*guard {
            let taken = std::mem::replace(
                &mut *guard,
                NodeState::Failed(Error::Panic("internal: node mid-compute".into())),
            );
            let NodeState::Pending { eval, .. } = taken else {
                unreachable!()
            };
            *guard = match eval() {
                Ok(s) => NodeState::Ready(Arc::new(s)),
                Err(e) => NodeState::Failed(e),
            };
            drop(guard);
            // The fusion slots only describe a *pending* node; clearing
            // them on completion releases the dependency Arcs they
            // capture (the §IV memory-release property) and keeps drops
            // of long completed chains shallow.
            let mut slots = self.fuse.lock();
            slots.face = None;
            slots.hook = None;
            slots.probe = None;
        }
    }

    fn failure(&self) -> Option<Error> {
        match &*self.state.lock() {
            NodeState::Failed(e) => Some(e.clone()),
            _ => None,
        }
    }

    fn trace_meta(&self) -> TraceMeta {
        let (shape, nvals, format, migrated_from) = match &*self.state.lock() {
            NodeState::Ready(s) => (
                s.trace_shape(),
                s.trace_nvals(),
                s.trace_format(),
                s.trace_migrated_from(),
            ),
            _ => ((0, 0), 0, "sparse", None),
        };
        TraceMeta {
            kind: self.kind,
            rows: shape.0,
            cols: shape.1,
            nvals,
            format,
            migrated_from,
        }
    }

    fn fuse_observable(&self) -> bool {
        if self.pinned.load(Ordering::Relaxed) {
            return true;
        }
        match &self.fuse.lock().probe {
            Some(p) => p(),
            // No probe installed (value node, or submitted with fusion
            // off): assume observable.
            None => true,
        }
    }

    fn take_fuse_hook(&self) -> Option<FuseHook> {
        self.fuse.lock().hook.take()
    }
}

/// Complete a node (and its pending cone) with an iterative topological
/// walk. Returns the node's failure, if any.
///
/// Used by blocking mode (single fresh node per call) and by per-object
/// forcing (`GrB_*_wait`, `nvals`, …). Whole-sequence completion at
/// `Context::wait` goes through the [`super::sched`] scheduler instead.
pub(crate) fn force(root: &Arc<dyn Completable>) -> Result<()> {
    if !root.is_complete() {
        // Expanded-set dedup: in a DAG an intermediate shared by several
        // pending consumers is reached once per in-edge; without the set
        // each arrival re-pushes its (shared) dependency cone, walking
        // the same region once per consumer. Identity is the node's
        // allocation address (data half of the fat pointer).
        let mut expanded_set: std::collections::HashSet<*const u8> =
            std::collections::HashSet::new();
        // (node, children_expanded)
        let mut stack: Vec<(Arc<dyn Completable>, bool)> = vec![(root.clone(), false)];
        while let Some((node, expanded)) = stack.pop() {
            if node.is_complete() {
                continue;
            }
            if expanded {
                node.compute();
            } else {
                if !expanded_set.insert(Arc::as_ptr(&node) as *const u8) {
                    continue;
                }
                let deps = node.dep_nodes();
                stack.push((node, true));
                for d in deps {
                    if !d.is_complete() {
                        stack.push((d, false));
                    }
                }
            }
        }
    }
    match root.failure() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Plain scalars stand in for storage in the engine's own tests.
#[cfg(test)]
mod test_storage_meta {
    macro_rules! impl_test_meta {
        ($($t:ty),*) => {$(
            impl super::StorageMeta for $t {
                fn trace_shape(&self) -> (usize, usize) {
                    (1, 1)
                }
                fn trace_nvals(&self) -> usize {
                    1
                }
            }
        )*};
    }
    impl_test_meta!(i32, i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as_completable<S: StorageMeta + Send + Sync + 'static>(
        n: &Arc<Node<S>>,
    ) -> Arc<dyn Completable> {
        n.clone() as Arc<dyn Completable>
    }

    #[test]
    fn ready_node_is_complete() {
        let n = Node::ready(42i32);
        assert!(n.is_complete());
        assert_eq!(*n.ready_storage().unwrap(), 42);
        assert!(n.failure().is_none());
    }

    #[test]
    fn pending_node_computes_on_force() {
        let n = Node::pending(vec![], Box::new(|| Ok(7i32)));
        assert!(!n.is_complete());
        force(&as_completable(&n)).unwrap();
        assert_eq!(*n.ready_storage().unwrap(), 7);
    }

    #[test]
    fn failure_propagates_as_invalid_object() {
        let bad: Arc<Node<i32>> =
            Node::pending(vec![], Box::new(|| Err(Error::Arithmetic("boom".into()))));
        let bad_dep = bad.clone();
        let dependent: Arc<Node<i32>> = Node::pending(
            vec![as_completable(&bad)],
            Box::new(move || bad_dep.ready_storage().map(|v| *v + 1)),
        );
        let err = force(&as_completable(&dependent)).unwrap_err();
        assert!(matches!(err, Error::InvalidObject(_)));
        // the root cause is preserved on the failing node itself
        assert!(matches!(bad.failure(), Some(Error::Arithmetic(_))));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // a 100k-deep chain would blow a recursive evaluator
        let mut prev: Arc<Node<i64>> = Node::ready(0);
        for _ in 0..100_000 {
            let p = prev.clone();
            prev = Node::pending(
                vec![as_completable(&prev)],
                Box::new(move || p.ready_storage().map(|v| *v + 1)),
            );
        }
        force(&as_completable(&prev)).unwrap();
        assert_eq!(*prev.ready_storage().unwrap(), 100_000);
    }

    #[test]
    fn diamond_dependencies_computed_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let base: Arc<Node<i32>> = Node::pending(
            vec![],
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(10)
            }),
        );
        let (b1, b2) = (base.clone(), base.clone());
        let left: Arc<Node<i32>> = Node::pending(
            vec![as_completable(&base)],
            Box::new(move || b1.ready_storage().map(|v| *v + 1)),
        );
        let right: Arc<Node<i32>> = Node::pending(
            vec![as_completable(&base)],
            Box::new(move || b2.ready_storage().map(|v| *v + 2)),
        );
        let (l, r) = (left.clone(), right.clone());
        let top: Arc<Node<i32>> = Node::pending(
            vec![as_completable(&left), as_completable(&right)],
            Box::new(move || Ok(*l.ready_storage()? + *r.ready_storage()?)),
        );
        force(&as_completable(&top)).unwrap();
        assert_eq!(*top.ready_storage().unwrap(), 23);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn force_is_idempotent() {
        let n = Node::pending(vec![], Box::new(|| Ok(1i32)));
        let c = as_completable(&n);
        force(&c).unwrap();
        force(&c).unwrap();
        assert_eq!(*n.ready_storage().unwrap(), 1);
    }
}
