//! `exec::fuse` — the DAG rewrite pass behind §IV's fusion latitude.
//!
//! Nonblocking mode may perform "deferral, chaining, fusion, and lazy
//! evaluation of method sequences" (paper §IV). The scheduler built in
//! earlier PRs executes the deferred DAG exactly as written; this module
//! cashes in the fusion latitude: at the top of [`Context::wait`]
//! (and at scalar-reduce forcing points), before the sched drivers drain
//! the DAG, `fuse_pass` rewrites eligible consumer nodes to absorb the
//! producers that feed them.
//!
//! Four rewrites are implemented (see DESIGN.md for the full legality
//! argument):
//!
//! 1. **apply∘apply chain fusion** — consecutive unary ops compose into
//!    one traversal of the input pattern.
//! 2. **apply-into-producer fusion** — a unary op folds into the output
//!    stage of the mxm/mxv/eWise node feeding it; the intermediate is
//!    never stored.
//! 3. **masked-mxm fusion** — an mxm whose only consumer is a masked
//!    write gets the write mask pushed into its row loop, so masked-out
//!    positions are never computed (the classic masked-SpGEMM win).
//! 4. **eWiseMult→reduce dot fusion** — a scalar reduce of an eWiseMult
//!    (or any producer exposing an emission form) folds element-by-element
//!    without materializing the product.
//!
//! **Legality.** A producer may be absorbed only when it is *exclusively
//! dead*: still pending, unobservable through any live handle (its
//! observe-probe reports that no handle cell points at it, and it was
//! never pinned by `dup`), and consumed by exactly one DAG edge. The
//! consumer adopts the producer's dependencies verbatim, so every other
//! node's in-edge multiset — and therefore every edge count the pass
//! consults — is invariant under rewrites; one pass suffices, no
//! fixpoint iteration. Rewrites never mutate the producer: it stays
//! pending and can still be forced independently (e.g. by an alien
//! context holding it), it is merely pruned from this wait's roots so
//! the scheduler never computes it.
//!
//! Blocking mode never fuses: every operation completes inline before
//! its call returns, so there is never a pending producer to absorb.
//!
//! [`Context::wait`]: crate::exec::Context::wait

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use crate::algebra::unary::UnaryOp;
use crate::error::Result;
use crate::exec::Completable;
use crate::index::Index;
use crate::mask::{MaskCsr, MaskVec};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

/// Whether `wait()` runs the fusion rewrite pass before scheduling
/// (nonblocking mode only; blocking mode never fuses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusePolicy {
    /// Run the rewrite pass (the default).
    #[default]
    On,
    /// Execute the DAG exactly as written — the ablation baseline.
    Off,
}

/// What a fusion rewrite did, as recorded in the execution trace: the
/// producer kind that was absorbed into the consumer kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedNote {
    /// Rewrite label: `"apply-chain"`, `"apply-into-producer"`,
    /// `"mask-pushdown"`, or `"dot-reduce"`.
    pub rewrite: &'static str,
    /// Table II kind of the absorbed producer.
    pub producer: &'static str,
    /// Table II kind of the consumer that absorbed it.
    pub consumer: &'static str,
}

/// A successful rewrite: the note for the trace plus the allocation
/// address of the absorbed producer (for pruning it from the roots).
#[doc(hidden)]
pub struct FusedEvent {
    pub(crate) note: FusedNote,
    pub(crate) absorbed: usize,
}

/// A consumer node's rewrite hook: given the pass's edge counts, attempt
/// the rewrite and report what happened. Installed at submit time, taken
/// (and run at most once) by [`fuse_pass`].
#[doc(hidden)]
pub type FuseHook = Box<dyn FnOnce(&FuseCtx) -> Option<FusedEvent> + Send>;

/// Per-pass context handed to rewrite hooks: consumer-edge counts over
/// the pending cone, keyed by node allocation address.
#[doc(hidden)]
pub struct FuseCtx {
    edges: HashMap<usize, usize>,
}

pub(crate) fn addr(n: &Arc<dyn Completable>) -> usize {
    Arc::as_ptr(n) as *const u8 as usize
}

impl FuseCtx {
    /// The legality gate: `p` may be absorbed iff it is still pending,
    /// unobservable through any live handle, and consumed by exactly one
    /// DAG edge (a count of ≥ 2 also rejects mask/old-output aliasing of
    /// the producer, where the consumer reads it twice).
    pub(crate) fn exclusively_dead(&self, p: &Arc<dyn Completable>) -> bool {
        !p.is_complete()
            && !p.fuse_observable()
            && self.edges.get(&addr(p)).copied().unwrap_or(0) == 1
    }
}

/// Run the rewrite pass over the pending cone reachable from `roots`.
///
/// Discovers the cone, counts consumer edges (with multiplicity), runs
/// each node's hook in dependency-first topological order — so a chain
/// `mxm → apply → apply` cascades into a single node in one pass — and
/// prunes absorbed producers from `roots`. Returns the rewrites
/// performed, in hook order.
pub(crate) fn fuse_pass(roots: &mut Vec<Arc<dyn Completable>>) -> Vec<FusedEvent> {
    // 1. Discover the pending cone and count in-edges per node.
    let mut edges: HashMap<usize, usize> = HashMap::new();
    let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut stack: Vec<Arc<dyn Completable>> = Vec::new();
    let mut cone: Vec<Arc<dyn Completable>> = Vec::new();
    for r in roots.iter() {
        if !r.is_complete() && seen.insert(addr(r)) {
            stack.push(r.clone());
        }
    }
    while let Some(n) = stack.pop() {
        for d in n.dep_nodes() {
            if d.is_complete() {
                continue;
            }
            *edges.entry(addr(&d)).or_insert(0) += 1;
            if seen.insert(addr(&d)) {
                stack.push(d);
            }
        }
        cone.push(n);
    }

    // 2. Dependency-first topological order (iterative post-order DFS).
    let mut order: Vec<Arc<dyn Completable>> = Vec::with_capacity(cone.len());
    let mut done: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut dfs: Vec<(Arc<dyn Completable>, bool)> = Vec::new();
    for n in cone.into_iter().rev() {
        dfs.push((n, false));
        while let Some((node, expanded)) = dfs.pop() {
            if expanded {
                order.push(node);
                continue;
            }
            if !done.insert(addr(&node)) {
                continue;
            }
            let deps = node.dep_nodes();
            dfs.push((node, true));
            for d in deps {
                if !d.is_complete() && !done.contains(&addr(&d)) {
                    dfs.push((d, false));
                }
            }
        }
    }

    // 3. Run hooks deps-first; edge counts stay valid because a rewrite
    //    transfers the producer's deps to the consumer one-for-one.
    let cx = FuseCtx { edges };
    let mut events = Vec::new();
    for node in &order {
        if let Some(hook) = node.take_fuse_hook() {
            if let Some(ev) = hook(&cx) {
                events.push(ev);
            }
        }
    }

    // 4. Absorbed producers leave this wait's schedule entirely.
    if !events.is_empty() {
        let absorbed: std::collections::HashSet<usize> =
            events.iter().map(|e| e.absorbed).collect();
        roots.retain(|r| !absorbed.contains(&addr(r)));
    }
    events
}

/// Emission form of a producer's stored elements, in row-major order:
/// calls the sink once per element without materializing the collection.
#[doc(hidden)]
pub type DotFn<T> = Arc<dyn Fn(&mut dyn FnMut(T)) -> Result<()> + Send + Sync>;

/// Evaluate a matrix producer under a write mask (`MaskCsr::All`
/// reproduces the unfused result exactly).
#[doc(hidden)]
pub type MaskedMatFn<T> = Arc<dyn Fn(&MaskCsr) -> Result<Csr<T>> + Send + Sync>;

/// Vector counterpart of [`MaskedMatFn`].
#[doc(hidden)]
pub type MaskedVecFn<T> = Arc<dyn Fn(&MaskVec) -> Result<SparseVec<T>> + Send + Sync>;

/// A pattern-plus-thunk rendering of a matrix result: the sparsity
/// structure is computed, values come from `val_at` on demand. Lets an
/// apply chain share one traversal of the pattern.
#[doc(hidden)]
pub struct LazyMat<T> {
    pub(crate) nrows: Index,
    pub(crate) ncols: Index,
    pub(crate) row_ptr: Vec<usize>,
    pub(crate) col_idx: Vec<Index>,
    pub(crate) val_at: Box<dyn Fn(usize) -> T + Send + Sync>,
}

impl<T: Scalar> LazyMat<T> {
    pub(crate) fn materialize(self) -> Csr<T> {
        let LazyMat {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            val_at,
        } = self;
        let vals = (0..col_idx.len()).map(&val_at).collect();
        Csr::from_parts(nrows, ncols, row_ptr, col_idx, vals)
    }
}

/// Vector counterpart of [`LazyMat`].
#[doc(hidden)]
pub struct LazyVec<T> {
    pub(crate) size: Index,
    pub(crate) indices: Vec<Index>,
    pub(crate) val_at: Box<dyn Fn(usize) -> T + Send + Sync>,
}

impl<T: Scalar> LazyVec<T> {
    pub(crate) fn materialize(self) -> SparseVec<T> {
        let LazyVec {
            size,
            indices,
            val_at,
        } = self;
        let vals = (0..indices.len()).map(&val_at).collect();
        SparseVec::from_sorted_parts(size, indices, vals)
    }
}

/// The fusable *face* of a pure matrix producer, installed on its node
/// at submit time and consumed by downstream rewrite hooks. "Pure" means
/// no accumulator and no mask on the producer itself, so its result is
/// exactly its internal T and can be recomputed under a different mask.
///
/// * `compute` — evaluate under a write mask (`MaskCsr::All` reproduces
///   the unfused result exactly). `maskable` says whether a non-trivial
///   mask is profitable/legal to push down (true for mxm).
/// * `lazy` — pattern-plus-thunk form for apply chains, when available.
/// * `dot` — row-major emission form for reduce fusion, when available.
#[doc(hidden)]
pub struct MatProducer<T: Scalar> {
    pub(crate) deps: Vec<Arc<dyn Completable>>,
    pub(crate) compute: MaskedMatFn<T>,
    pub(crate) maskable: bool,
    pub(crate) lazy: Option<Arc<dyn Fn() -> Result<LazyMat<T>> + Send + Sync>>,
    pub(crate) dot: Option<DotFn<T>>,
    pub(crate) kind: &'static str,
}

impl<T: Scalar> MatProducer<T> {
    /// Compose a unary op over this producer: the returned face computes
    /// `f(producer)` in the producer's own traversal, preserving the
    /// mask/lazy/dot capabilities. This is what makes apply-chain fusion
    /// cascade: the fused consumer re-installs the composed face.
    pub(crate) fn map<U: Scalar, F: UnaryOp<T, U>>(&self, f: &F) -> MatProducer<U> {
        let compute = {
            let (inner, f) = (self.compute.clone(), f.clone());
            Arc::new(move |m: &MaskCsr| -> Result<Csr<U>> { Ok(inner(m)?.map(|x| f.apply(x))) })
                as Arc<dyn Fn(&MaskCsr) -> Result<Csr<U>> + Send + Sync>
        };
        let lazy = self.lazy.clone().map(|inner| {
            let f = f.clone();
            Arc::new(move || -> Result<LazyMat<U>> {
                let lm = inner()?;
                let (val_at, f) = (lm.val_at, f.clone());
                Ok(LazyMat {
                    nrows: lm.nrows,
                    ncols: lm.ncols,
                    row_ptr: lm.row_ptr,
                    col_idx: lm.col_idx,
                    val_at: Box::new(move |k| f.apply(&val_at(k))),
                }) as Result<LazyMat<U>>
            }) as Arc<dyn Fn() -> Result<LazyMat<U>> + Send + Sync>
        });
        let dot = self.dot.clone().map(|inner| {
            let f = f.clone();
            Arc::new(move |emit: &mut dyn FnMut(U)| -> Result<()> {
                inner(&mut |x| emit(f.apply(&x)))
            }) as DotFn<U>
        });
        MatProducer {
            deps: self.deps.clone(),
            compute,
            maskable: self.maskable,
            lazy,
            dot,
            kind: self.kind,
        }
    }
}

/// Vector counterpart of [`MatProducer`].
#[doc(hidden)]
pub struct VecProducer<T: Scalar> {
    pub(crate) deps: Vec<Arc<dyn Completable>>,
    pub(crate) compute: MaskedVecFn<T>,
    pub(crate) maskable: bool,
    pub(crate) lazy: Option<Arc<dyn Fn() -> Result<LazyVec<T>> + Send + Sync>>,
    pub(crate) dot: Option<DotFn<T>>,
    pub(crate) kind: &'static str,
}

impl<T: Scalar> VecProducer<T> {
    pub(crate) fn map<U: Scalar, F: UnaryOp<T, U>>(&self, f: &F) -> VecProducer<U> {
        let compute = {
            let (inner, f) = (self.compute.clone(), f.clone());
            Arc::new(move |m: &MaskVec| -> Result<SparseVec<U>> {
                Ok(inner(m)?.map(|x| f.apply(x)))
            }) as Arc<dyn Fn(&MaskVec) -> Result<SparseVec<U>> + Send + Sync>
        };
        let lazy = self.lazy.clone().map(|inner| {
            let f = f.clone();
            Arc::new(move || -> Result<LazyVec<U>> {
                let lv = inner()?;
                let (val_at, f) = (lv.val_at, f.clone());
                Ok(LazyVec {
                    size: lv.size,
                    indices: lv.indices,
                    val_at: Box::new(move |k| f.apply(&val_at(k))),
                }) as Result<LazyVec<U>>
            }) as Arc<dyn Fn() -> Result<LazyVec<U>> + Send + Sync>
        });
        let dot = self.dot.clone().map(|inner| {
            let f = f.clone();
            Arc::new(move |emit: &mut dyn FnMut(U)| -> Result<()> {
                inner(&mut |x| emit(f.apply(&x)))
            }) as DotFn<U>
        });
        VecProducer {
            deps: self.deps.clone(),
            compute,
            maskable: self.maskable,
            lazy,
            dot,
            kind: self.kind,
        }
    }
}

/// Downcast helper for faces stored on nodes as `Arc<dyn Any>`.
pub(crate) fn face_as<P: Any + Send + Sync>(face: Arc<dyn Any + Send + Sync>) -> Option<Arc<P>> {
    face.downcast::<P>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::node::Node;

    fn c(n: &Arc<Node<i32>>) -> Arc<dyn Completable> {
        n.clone() as Arc<dyn Completable>
    }

    #[test]
    fn edge_counts_gate_exclusive_death() {
        // producer consumed by two nodes: not exclusively dead
        let p: Arc<Node<i32>> = Node::pending(vec![], Box::new(|| Ok(1)));
        let p1 = p.clone();
        let c1 = Node::pending(
            vec![c(&p)],
            Box::new(move || p1.ready_storage().map(|v| *v + 1)),
        );
        let p2 = p.clone();
        let c2 = Node::pending(
            vec![c(&p)],
            Box::new(move || p2.ready_storage().map(|v| *v + 2)),
        );
        // p has no probe -> conservatively observable; override via a
        // probe that reports dead so only the edge count is under test.
        p.set_observe_probe(Box::new(|| false));
        let mut roots = vec![c(&p), c(&c1), c(&c2)];
        let seen = std::sync::Arc::new(std::sync::Mutex::new(None));
        let s = seen.clone();
        let pd = c(&p);
        c1.set_fuse_hook(Box::new(move |cx| {
            *s.lock().unwrap() = Some(cx.exclusively_dead(&pd));
            None
        }));
        let events = fuse_pass(&mut roots);
        assert!(events.is_empty());
        assert_eq!(*seen.lock().unwrap(), Some(false), "two consumers");
        assert_eq!(roots.len(), 3, "nothing pruned");
    }

    #[test]
    fn single_dead_consumer_fuses_and_prunes() {
        let p: Arc<Node<i32>> = Node::pending(vec![], Box::new(|| Ok(5)));
        p.set_observe_probe(Box::new(|| false));
        let pk = p.clone();
        let cons = Node::pending(
            vec![c(&p)],
            Box::new(move || pk.ready_storage().map(|v| *v * 10)),
        );
        let mut roots = vec![c(&p), c(&cons)];
        let pd = c(&p);
        let me = Arc::downgrade(&cons);
        cons.set_fuse_hook(Box::new(move |cx| {
            if !cx.exclusively_dead(&pd) {
                return None;
            }
            let me = me.upgrade()?;
            let absorbed = addr(&pd);
            me.replace_pending(vec![], Box::new(|| Ok(50)));
            Some(FusedEvent {
                note: FusedNote {
                    rewrite: "apply-into-producer",
                    producer: "op",
                    consumer: "op",
                },
                absorbed,
            })
        }));
        let events = fuse_pass(&mut roots);
        assert_eq!(events.len(), 1);
        assert_eq!(roots.len(), 1, "producer pruned from roots");
        crate::exec::force(&roots[0]).unwrap();
        assert_eq!(*cons.ready_storage().unwrap(), 50);
        assert!(!p.is_complete(), "absorbed producer never computed");
    }

    #[test]
    fn pinned_nodes_stay_observable() {
        let p: Arc<Node<i32>> = Node::pending(vec![], Box::new(|| Ok(1)));
        p.set_observe_probe(Box::new(|| false));
        p.pin();
        let cx = FuseCtx {
            edges: std::iter::once((addr(&c(&p)), 1)).collect(),
        };
        assert!(!cx.exclusively_dead(&c(&p)), "pin wins over a dead probe");
    }

    #[test]
    fn hooks_run_deps_first_for_cascades() {
        // chain p -> m -> t; m absorbs p, then t sees m's hook already run
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let p: Arc<Node<i32>> = Node::pending(vec![], Box::new(|| Ok(1)));
        let pk = p.clone();
        let m = Node::pending(
            vec![c(&p)],
            Box::new(move || pk.ready_storage().map(|v| *v + 1)),
        );
        let mk = m.clone();
        let t = Node::pending(
            vec![c(&m)],
            Box::new(move || mk.ready_storage().map(|v| *v + 1)),
        );
        for (node, name) in [(&m, "m"), (&t, "t")] {
            let l = log.clone();
            node.set_fuse_hook(Box::new(move |_| {
                l.lock().unwrap().push(name);
                None
            }));
        }
        let mut roots = vec![c(&p), c(&m), c(&t)];
        fuse_pass(&mut roots);
        assert_eq!(*log.lock().unwrap(), vec!["m", "t"]);
    }
}
