//! The shared worker pool: one set of daemon threads and one work queue
//! serving *both* parallelism levels — DAG-node drains from the
//! scheduler's parallel driver ([`TaskKind::Node`]) and intra-kernel row
//! chunks from [`crate::kernel::par`] ([`TaskKind::Chunk`]). Sharing one
//! pool is the point: a wide DAG and a single huge `mxm` compete for the
//! same threads instead of oversubscribing the machine with two pools.
//!
//! ## Shape
//!
//! A *batch* is one logical drain: the submitting thread stack-allocates
//! a [`BatchState`] (a count of tasks still to run plus a type-erased
//! `run` closure), pushes the initially runnable task indices, and then
//! **helps** — executing queued tasks itself — until the count reaches
//! zero. Tasks may be submitted dynamically while the batch runs (the
//! DAG driver enqueues dependents as they become ready), as long as the
//! batch was created with the total task count up front.
//!
//! ## Why the raw pointers are sound
//!
//! `Task` carries a `*const BatchState` into the queue and `BatchState`
//! holds a `*const dyn Fn` into the submitter's frame. Both point into a
//! stack frame of `run_batch`, which does not return until `remaining`
//! reaches zero — and `remaining` is decremented (`AcqRel`) only *after*
//! a task's closure call finishes, so every dereference happens-before
//! the frame is popped. Nothing touches the batch after the final
//! decrement; the completion broadcast goes through the `'static` queue
//! state, not the batch.
//!
//! ## Why helping cannot deadlock
//!
//! A thread helping a `Chunk` batch steals **only chunk tasks**: chunk
//! closures are straight-line compute and never block, so any chunk it
//! picks up terminates. Stealing a `Node` task there would nest a full
//! node computation (which may itself fan out chunks and wait on them)
//! under a kernel — unbounded recursion and a stalled batch. The
//! top-level `Node` submitter and the daemon workers steal anything.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Floor on pool width: even on a single hardware thread the pool keeps
/// two daemon workers, so overlap (and an honest trace of it) exists
/// everywhere and `GRB_TEST_THREADS=1` exercises the queue machinery
/// rather than silently degrading to the serial path.
const MIN_WORKERS: usize = 2;

/// What a batch's tasks are, which decides queue placement and stealing
/// rules: chunks jump the queue (they block a kernel in flight) and are
/// the only thing a chunk batch may steal while helping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskKind {
    /// A DAG node drain from the scheduler's parallel driver.
    Node,
    /// An intra-kernel row chunk from `kernel::par`.
    Chunk,
}

/// Shared state of one in-flight batch, stack-pinned in `run_batch`.
pub(crate) struct BatchState {
    kind: TaskKind,
    /// The batch's task body, `(batch, task_index, worker_id)`. Raw to
    /// erase the submitter-frame lifetime; see the module docs for why
    /// every call happens before the frame is popped.
    run: *const (dyn Fn(&BatchState, usize, usize) + Sync),
    /// Tasks not yet finished executing (fixed total at creation).
    remaining: AtomicUsize,
    /// Set if any task body panicked; re-raised on the submitter.
    panicked: AtomicBool,
}

// SAFETY: `remaining`/`panicked` are atomics, `kind` is read-only, and
// `run` points to a `Sync` closure, so concurrent shared access from
// workers is safe.
unsafe impl Sync for BatchState {}

#[derive(Clone, Copy)]
struct Task {
    batch: *const BatchState,
    index: usize,
}

// SAFETY: the pointee is `Sync` (shared by design) and outlives the
// task (the `remaining` protocol above), so tasks may cross threads.
unsafe impl Send for Task {}

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    ready: Condvar,
}

/// Handle to the process-wide pool; obtain with [`pool`].
pub(crate) struct Pool {
    shared: &'static Shared,
    width: usize,
}

thread_local! {
    /// 1-based id on daemon workers, 0 on every other thread (so the
    /// sequential driver and plain callers trace as worker 0).
    static WORKER_ID: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Trace id of the current thread: `1..=width` on pool workers, else 0.
pub(crate) fn current_worker() -> usize {
    WORKER_ID.with(|w| w.get())
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, spawned on first use. Width is fixed at that
/// moment: `max(2, configured parallelism)` — the configured degree
/// (knob > env > hardware, see [`crate::kernel::par`]) decides how many
/// daemons exist; later degree changes only affect how finely kernels
/// chunk, not pool width.
pub(crate) fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let width = crate::kernel::par::resolved_degree().max(MIN_WORKERS);
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }));
        for id in 1..=width {
            std::thread::Builder::new()
                .name(format!("grb-worker-{id}"))
                .spawn(move || {
                    WORKER_ID.with(|w| w.set(id));
                    worker_loop(shared);
                })
                .expect("spawn pool worker");
        }
        Pool { shared, width }
    })
}

/// Load snapshot of the pool *without* forcing it to spawn: `(width,
/// queued)` where `queued` counts tasks sitting in the shared queue
/// (not ones mid-execution). `(0, 0)` before first use. The admission-
/// control observability hook behind [`super::pool_status`].
pub(crate) fn status() -> (usize, usize) {
    match POOL.get() {
        Some(p) => {
            let queued = p
                .shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len();
            (p.width, queued)
        }
        None => (0, 0),
    }
}

impl Pool {
    /// Number of daemon workers (excluding helping submitters).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Run one batch of `total` tasks to completion. `initial` holds the
    /// task indices runnable immediately; the rest must be published via
    /// [`Pool::submit`] from inside task bodies (dependency-counted DAG
    /// style). The calling thread helps execute tasks and returns once
    /// all `total` tasks have finished; a panicking task body poisons
    /// the batch and the panic is re-raised here.
    pub(crate) fn run_batch(
        &self,
        kind: TaskKind,
        total: usize,
        initial: &[usize],
        run: &(dyn Fn(&BatchState, usize, usize) + Sync),
    ) {
        debug_assert!(initial.len() <= total);
        if total == 0 {
            return;
        }
        // SAFETY: erases the closure borrow's lifetime so it can sit in
        // the `'static`-bounded raw field; the closure outlives every
        // dereference by the `remaining` protocol (module docs).
        let run: *const (dyn Fn(&BatchState, usize, usize) + Sync) =
            unsafe { std::mem::transmute(run) };
        let batch = BatchState {
            kind,
            run,
            remaining: AtomicUsize::new(total),
            panicked: AtomicBool::new(false),
        };
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            for &index in initial {
                let task = Task {
                    batch: &batch,
                    index,
                };
                match kind {
                    // Chunks block a kernel mid-node: front of the queue.
                    TaskKind::Chunk => q.push_front(task),
                    TaskKind::Node => q.push_back(task),
                }
            }
            // Broadcast: sleepers include chunk-restricted helpers that
            // must re-scan the queue, not just "one more task" waiters.
            self.shared.ready.notify_all();
        }
        self.help_until_done(&batch);
        if batch.panicked.load(Ordering::Acquire) {
            panic!("a pooled task panicked; batch result is poisoned");
        }
    }

    /// Publish one more runnable task of a batch currently inside
    /// [`Pool::run_batch`] (counted in its `total` up front).
    pub(crate) fn submit(&self, batch: &BatchState, index: usize) {
        let task = Task { batch, index };
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        match batch.kind {
            TaskKind::Chunk => q.push_front(task),
            TaskKind::Node => q.push_back(task),
        }
        self.shared.ready.notify_all();
    }

    /// Execute queued tasks until `batch` has none left anywhere. Inside
    /// a `Chunk` batch only chunk tasks are stolen (module docs).
    fn help_until_done(&self, batch: &BatchState) {
        let chunk_only = batch.kind == TaskKind::Chunk;
        loop {
            let task = {
                let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    let pos = if chunk_only {
                        q.iter()
                            // SAFETY: queued tasks point at live batches
                            // (the `remaining` protocol).
                            .position(|t| unsafe { (*t.batch).kind } == TaskKind::Chunk)
                    } else if q.is_empty() {
                        None
                    } else {
                        Some(0)
                    };
                    if let Some(p) = pos {
                        break Some(q.remove(p).expect("position in bounds"));
                    }
                    if batch.remaining.load(Ordering::Acquire) == 0 {
                        break None;
                    }
                    q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            match task {
                Some(t) => execute(self.shared, t),
                None => return,
            }
        }
    }
}

fn worker_loop(shared: &'static Shared) {
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        execute(shared, task);
    }
}

/// Run one task and retire it from its batch. The final decrement wakes
/// everyone through the (`'static`) queue lock — taking the lock orders
/// the broadcast after any helper that checked `remaining` and is about
/// to wait, so the completion wakeup cannot be lost.
fn execute(shared: &'static Shared, task: Task) {
    // SAFETY: the batch outlives its tasks (module docs).
    let batch = unsafe { &*task.batch };
    let run = unsafe { &*batch.run };
    let worker = current_worker();
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run(batch, task.index, worker)
    }))
    .is_err()
    {
        batch.panicked.store(true, Ordering::Release);
    }
    if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        let _q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        shared.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_executes_every_task_once() {
        let n = 257;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let run = |_b: &BatchState, i: usize, _w: usize| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        };
        let initial: Vec<usize> = (0..n).collect();
        pool().run_batch(TaskKind::Chunk, n, &initial, &run);
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn dynamic_submission_drains_a_chain() {
        // task i submits task i+1: exercises submit() + the completion
        // wakeup on a batch whose queue is empty most of the time
        let n = 500;
        let done = AtomicUsize::new(0);
        let run = |b: &BatchState, i: usize, _w: usize| {
            done.fetch_add(1, Ordering::SeqCst);
            if i + 1 < n {
                pool().submit(b, i + 1);
            }
        };
        pool().run_batch(TaskKind::Node, n, &[0], &run);
        assert_eq!(done.load(Ordering::SeqCst), n);
    }

    #[test]
    fn nested_chunk_batches_complete() {
        // a Node batch whose tasks each fan out a Chunk batch — the
        // two-level composition the scheduler + kernels rely on
        let total = AtomicUsize::new(0);
        let outer = |_b: &BatchState, _i: usize, _w: usize| {
            let inner = |_b: &BatchState, _j: usize, _w: usize| {
                total.fetch_add(1, Ordering::SeqCst);
            };
            let initial: Vec<usize> = (0..8).collect();
            pool().run_batch(TaskKind::Chunk, 8, &initial, &inner);
        };
        let initial: Vec<usize> = (0..6).collect();
        pool().run_batch(TaskKind::Node, 6, &initial, &outer);
        assert_eq!(total.load(Ordering::SeqCst), 48);
    }

    #[test]
    fn panicking_task_poisons_the_batch() {
        let run = |_b: &BatchState, i: usize, _w: usize| {
            if i == 3 {
                panic!("injected");
            }
        };
        let initial: Vec<usize> = (0..8).collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool().run_batch(TaskKind::Chunk, 8, &initial, &run);
        }));
        assert!(err.is_err());
    }

    #[test]
    fn pool_width_has_floor_of_two() {
        assert!(pool().width() >= 2);
    }
}
