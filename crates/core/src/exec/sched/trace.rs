//! Execution tracing for the scheduler.
//!
//! When tracing is enabled on a [`crate::exec::Context`], each node the
//! scheduler completes produces one [`TraceEvent`]: what kind of
//! operation it was, the shape/occupancy of its result, when it became
//! ready, when a worker picked it up and finished it, and which worker
//! ran it. Timestamps are nanoseconds relative to the start of the
//! `wait()` that executed the node, so events from one wait are directly
//! comparable and the trace doubles as a wall-clock profile of the DAG.

use std::time::Instant;

use parking_lot::Mutex;

/// Static description of a node for tracing: the operation kind that
/// defined it plus result dims/nvals (zeros until the node is complete).
/// Produced by `Completable::trace_meta`.
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub struct TraceMeta {
    pub kind: &'static str,
    pub rows: usize,
    pub cols: usize,
    pub nvals: usize,
    pub format: &'static str,
    pub migrated_from: Option<&'static str>,
}

/// One completed node, as observed by the scheduler.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Operation kind (Table II name such as `"mxm"`, or `"value"`).
    pub kind: &'static str,
    /// Result rows (a vector's size; 0 if the node failed).
    pub rows: usize,
    /// Result columns (1 for vectors; 0 if the node failed).
    pub cols: usize,
    /// Stored elements in the result (0 if the node failed).
    pub nvals: usize,
    /// Storage format chosen for the result (`"csr"`, `"csc"`,
    /// `"bitmap"`, `"hyper"` for matrix stores; `"sparse"` for vectors
    /// and `"sparse"`/empty shapes if the node failed).
    pub format: &'static str,
    /// `Some(from)` when the format policy migrated the result out of the
    /// layout it was produced in — the trace's migration event.
    pub migrated_from: Option<&'static str>,
    /// Program-order index within the waited sequence, if this node was
    /// submitted through the context (interior nodes reachable only as
    /// dependencies have `None`).
    pub seq: Option<usize>,
    /// When the node's last dependency completed (ns since wait start).
    pub ready_ns: u64,
    /// When a worker began computing it (ns since wait start).
    pub start_ns: u64,
    /// When the computation finished (ns since wait start).
    pub end_ns: u64,
    /// Index of the worker thread that ran it (0 = sequential driver or
    /// the waiting thread helping the pool).
    pub worker: usize,
    /// Intra-kernel row chunks this node's compute fanned out to the
    /// shared pool (0 when every kernel stayed on the serial path).
    pub par_chunks: usize,
    /// Output rows covered by those chunks.
    pub chunk_rows: usize,
    /// Most distinct workers observed executing one of those chunk
    /// batches — separates inter-op from intra-op parallelism in E8.
    pub par_workers: usize,
    /// For `kind == "flush"` nodes: pending delta entries merged into
    /// the backing store (0 for every other kind).
    pub pending_len: usize,
    /// For `kind == "flush"` nodes: distinct output rows (vector:
    /// indices) those entries touched.
    pub merged_rows: usize,
    /// `Some` only for synthetic `kind == "fused"` events emitted by the
    /// `exec::fuse` rewrite pass: which producer was absorbed into which
    /// consumer, and by which rewrite. Timings are zero for these events
    /// (the pass runs before the clock-bearing schedulers start).
    pub fused: Option<crate::exec::FusedNote>,
    /// For matrix–vector products: the direction the SpMSpV dispatch
    /// chose (`"push"`, `"pull"`, or `"dense"`); `None` for every other
    /// kind. This is the trace evidence that direction optimization
    /// actually switches mid-traversal.
    pub direction: Option<&'static str>,
    /// `Some(op_name)` when this node's kernels ran a runtime-registered
    /// operator (`algebra::udf`) — the erased kernel lane. `None` for
    /// every node that stayed on the monomorphized built-in lane.
    pub udf: Option<&'static str>,
    /// Tile coordinates `(stripe, tile_col)` this node's kernels touched
    /// in a tiled operand or output — materialized tile views during a
    /// multiply, or dirty tiles rebuilt by a tile-granular flush. Empty
    /// for slab stores. Sorted and deduplicated.
    pub tiles: Vec<(u32, u32)>,
}

impl TraceEvent {
    /// Time spent ready but waiting for a worker.
    pub fn queue_ns(&self) -> u64 {
        self.start_ns.saturating_sub(self.ready_ns)
    }

    /// Time spent computing.
    pub fn run_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Collects [`TraceEvent`]s from one scheduler run. Shared by reference
/// across workers; the vector is appended under a mutex only twice per
/// node (cheap next to any real kernel).
pub(crate) struct TraceSink {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    pub(crate) fn new() -> Self {
        TraceSink {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Nanoseconds since this sink's epoch (the start of the wait).
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    pub(crate) fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    pub(crate) fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_times() {
        let e = TraceEvent {
            kind: "mxm",
            rows: 2,
            cols: 2,
            nvals: 3,
            format: "csr",
            migrated_from: None,
            seq: Some(0),
            ready_ns: 100,
            start_ns: 150,
            end_ns: 400,
            worker: 1,
            par_chunks: 0,
            chunk_rows: 0,
            par_workers: 0,
            pending_len: 0,
            merged_rows: 0,
            fused: None,
            direction: None,
            udf: None,
            tiles: Vec::new(),
        };
        assert_eq!(e.queue_ns(), 50);
        assert_eq!(e.run_ns(), 250);
    }

    #[test]
    fn sink_collects_in_order_per_thread() {
        let sink = TraceSink::new();
        let t0 = sink.now_ns();
        sink.record(TraceEvent {
            kind: "value",
            rows: 1,
            cols: 1,
            nvals: 1,
            format: "sparse",
            migrated_from: None,
            seq: None,
            ready_ns: t0,
            start_ns: t0,
            end_ns: sink.now_ns(),
            worker: 0,
            par_chunks: 0,
            chunk_rows: 0,
            par_workers: 0,
            pending_len: 0,
            merged_rows: 0,
            fused: None,
            direction: None,
            udf: None,
            tiles: Vec::new(),
        });
        let ev = sink.into_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, "value");
    }
}
