//! Ready-queue drivers: sequential FIFO and the shared-pool driver.
//!
//! Both drain the same dependency-counted [`Dag`](super::queue::Dag):
//! pop a ready node, compute it, decrement each dependent's pending
//! count, and enqueue dependents that reach zero. Every DAG node is
//! computed — including consumers of failed nodes, whose thunks observe
//! the failure through `ready_storage()` and complete `Failed` with
//! `InvalidObject` (paper §V poisoning). Because node evaluation reads
//! only completed, immutable dependencies, results are identical under
//! any drain order; the drivers differ only in wall-clock shape.
//!
//! The parallel driver runs the drain as one [`workers`] batch on the
//! process-wide pool — the same pool intra-kernel chunks land on — so
//! the two parallelism levels compose in one queue instead of
//! oversubscribing the machine. Under either driver, a node whose
//! kernels fanned out row chunks reports that chunking
//! (`par_chunks`/`chunk_rows`/`par_workers`) on its trace event.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;

use super::queue::Dag;
use super::trace::{TraceEvent, TraceSink};
#[cfg(feature = "parallel")]
use super::workers::{self, TaskKind};
use crate::algebra::udf;
use crate::kernel::{merge, par, spmspv};
use crate::storage::tiled;

#[allow(clippy::too_many_arguments)] // internal plumbing: one call per driver
fn record(
    sink: Option<&TraceSink>,
    dag: &Dag,
    idx: usize,
    start_ns: u64,
    worker: usize,
    stats: par::ParStats,
    flush: merge::FlushStats,
    direction: Option<&'static str>,
    udf: Option<&'static str>,
    tiles: Vec<(u32, u32)>,
) {
    let Some(sink) = sink else { return };
    let end_ns = sink.now_ns();
    let dn = &dag.nodes[idx];
    let meta = dn.node.trace_meta();
    sink.record(TraceEvent {
        kind: meta.kind,
        rows: meta.rows,
        cols: meta.cols,
        nvals: meta.nvals,
        format: meta.format,
        migrated_from: meta.migrated_from,
        seq: dn.seq,
        ready_ns: dn.ready_ns.load(Ordering::Relaxed),
        start_ns,
        end_ns,
        worker,
        par_chunks: stats.par_chunks,
        chunk_rows: stats.chunk_rows,
        par_workers: stats.par_workers,
        pending_len: flush.pending_len,
        merged_rows: flush.merged_rows,
        fused: None,
        direction,
        udf,
        tiles,
    });
}

fn mark_ready(sink: Option<&TraceSink>, dag: &Dag, idx: usize) {
    if let Some(sink) = sink {
        dag.nodes[idx]
            .ready_ns
            .store(sink.now_ns(), Ordering::Relaxed);
    }
}

/// Compute one node and return its intra-kernel chunking, delta-flush,
/// SpMSpV-direction, erased-lane, and touched-tile stats. All five
/// thread-locals are drained *before* the compute too, so a stale
/// carry-over from non-scheduler kernel work on this thread can't be
/// attributed to the node.
type NodeStats = (
    par::ParStats,
    merge::FlushStats,
    Option<&'static str>,
    Option<&'static str>,
    Vec<(u32, u32)>,
);

fn compute_node(dag: &Dag, idx: usize) -> NodeStats {
    let _ = par::take_stats();
    let _ = merge::take_flush_stats();
    let _ = spmspv::take_direction();
    let _ = udf::take_udf();
    let _ = tiled::take_tiles();
    dag.nodes[idx].node.compute();
    (
        par::take_stats(),
        merge::take_flush_stats(),
        spmspv::take_direction(),
        udf::take_udf(),
        tiled::take_tiles(),
    )
}

/// Drain the DAG on the calling thread in FIFO ready order. This is the
/// `SchedPolicy::Sequential` path and the fallback when the `parallel`
/// feature is disabled; trace events carry worker id 0 (though kernels
/// may still fan row chunks out to the pool — that is the E8 "sched
/// seq, kernels parallel" configuration — and the chunking shows up in
/// the events' `par_*` fields).
pub(crate) fn run_sequential(dag: &Dag, sink: Option<&TraceSink>) {
    let mut queue: VecDeque<usize> = dag.initial_ready.iter().copied().collect();
    for &i in &dag.initial_ready {
        mark_ready(sink, dag, i);
    }
    while let Some(idx) = queue.pop_front() {
        let start_ns = sink.map_or(0, TraceSink::now_ns);
        let (stats, flush, direction, udf, tiles) = compute_node(dag, idx);
        record(
            sink, dag, idx, start_ns, 0, stats, flush, direction, udf, tiles,
        );
        for &dep in &dag.nodes[idx].dependents {
            if dag.nodes[dep].pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                mark_ready(sink, dag, dep);
                queue.push_back(dep);
            }
        }
    }
}

/// Drain the DAG as one `Node` batch on the shared worker pool.
///
/// Each task computes one node, then publishes dependents whose pending
/// count hit zero as new tasks of the same batch. The submitting thread
/// (the `wait()` caller, worker id 0) helps execute alongside the
/// daemon workers; `run_batch` returns once all `dag.len()` node tasks
/// have run. Termination: every node's pending count reaches zero
/// exactly once (the DAG is acyclic and edge counts are consistent by
/// construction), so exactly `dag.len()` tasks are submitted and the
/// batch's remaining count drains to zero.
#[cfg(feature = "parallel")]
pub(crate) fn run_parallel(dag: &Dag, sink: Option<&TraceSink>) {
    let n = dag.len();
    if n <= 1 {
        return run_sequential(dag, sink);
    }
    for &i in &dag.initial_ready {
        mark_ready(sink, dag, i);
    }
    let pool = workers::pool();
    let run = |batch: &workers::BatchState, idx: usize, worker: usize| {
        let start_ns = sink.map_or(0, TraceSink::now_ns);
        let (stats, flush, direction, udf, tiles) = compute_node(dag, idx);
        record(
            sink, dag, idx, start_ns, worker, stats, flush, direction, udf, tiles,
        );
        for &dep in &dag.nodes[idx].dependents {
            if dag.nodes[dep].pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                mark_ready(sink, dag, dep);
                pool.submit(batch, dep);
            }
        }
    };
    pool.run_batch(TaskKind::Node, n, &dag.initial_ready, &run);
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    use super::super::queue::build;
    use super::*;
    #[cfg(feature = "parallel")]
    use crate::error::Error;
    use crate::exec::node::Node;
    use crate::exec::Completable;

    fn c(n: &Arc<Node<i32>>) -> Arc<dyn Completable> {
        n.clone() as Arc<dyn Completable>
    }

    /// base → {left, right} → top, each eval counted.
    fn diamond(count: &Arc<AtomicUsize>) -> (Vec<Arc<dyn Completable>>, Arc<Node<i32>>) {
        let cnt = count.clone();
        let base: Arc<Node<i32>> = Node::pending(
            vec![],
            Box::new(move || {
                cnt.fetch_add(1, Ordering::SeqCst);
                Ok(10)
            }),
        );
        let (b1, b2) = (base.clone(), base.clone());
        let left = Node::pending(
            vec![c(&base)],
            Box::new(move || b1.ready_storage().map(|v| *v + 1)),
        );
        let right = Node::pending(
            vec![c(&base)],
            Box::new(move || b2.ready_storage().map(|v| *v + 2)),
        );
        let (l, r) = (left.clone(), right.clone());
        let top = Node::pending(
            vec![c(&left), c(&right)],
            Box::new(move || Ok(*l.ready_storage()? + *r.ready_storage()?)),
        );
        let roots = vec![c(&base), c(&left), c(&right), c(&top)];
        (roots, top)
    }

    #[test]
    fn sequential_driver_completes_diamond_once() {
        let count = Arc::new(AtomicUsize::new(0));
        let (roots, top) = diamond(&count);
        let dag = build(&roots);
        run_sequential(&dag, None);
        assert_eq!(*top.ready_storage().unwrap(), 23);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_driver_completes_diamond_once() {
        let count = Arc::new(AtomicUsize::new(0));
        let (roots, top) = diamond(&count);
        let dag = build(&roots);
        run_parallel(&dag, None);
        assert_eq!(*top.ready_storage().unwrap(), 23);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_driver_poisons_consumers_of_failures() {
        let bad: Arc<Node<i32>> =
            Node::pending(vec![], Box::new(|| Err(Error::Arithmetic("boom".into()))));
        let b = bad.clone();
        let consumer = Node::pending(
            vec![c(&bad)],
            Box::new(move || b.ready_storage().map(|v| *v + 1)),
        );
        let ok = Node::pending(vec![], Box::new(|| Ok(7i32)));
        let roots = vec![c(&bad), c(&consumer), c(&ok)];
        let dag = build(&roots);
        run_parallel(&dag, None);
        assert!(matches!(bad.failure(), Some(Error::Arithmetic(_))));
        assert!(matches!(consumer.failure(), Some(Error::InvalidObject(_))));
        assert_eq!(*ok.ready_storage().unwrap(), 7);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_driver_deep_chain() {
        // a long serial chain exercises the submit/help path heavily
        let mut prev: Arc<Node<i32>> = Node::pending(vec![], Box::new(|| Ok(0)));
        let mut roots = vec![c(&prev)];
        for _ in 0..2_000 {
            let p = prev.clone();
            prev = Node::pending(
                vec![c(&prev)],
                Box::new(move || p.ready_storage().map(|v| *v + 1)),
            );
            roots.push(c(&prev));
        }
        let dag = build(&roots);
        run_parallel(&dag, None);
        assert_eq!(*prev.ready_storage().unwrap(), 2_000);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_driver_traces_multiple_workers_on_wide_dag() {
        // 64 independent nodes, each with a little real work: on any
        // machine (even 1 hardware thread, where the pool still keeps
        // 2 daemon workers) timeslicing spreads them across workers.
        let roots: Vec<Arc<dyn Completable>> = (0..64)
            .map(|i| {
                c(&Node::pending(
                    vec![],
                    Box::new(move || {
                        let mut acc = 0u64;
                        for k in 0..200_000u64 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        std::hint::black_box(acc);
                        Ok(i)
                    }),
                ))
            })
            .collect();
        let dag = build(&roots);
        let sink = TraceSink::new();
        run_parallel(&dag, Some(&sink));
        let events = sink.into_events();
        assert_eq!(events.len(), 64);
        let workers: std::collections::HashSet<usize> = events.iter().map(|e| e.worker).collect();
        assert!(
            workers.len() > 1,
            "expected >1 worker on a wide DAG, trace saw {workers:?}"
        );
        for e in &events {
            assert!(e.start_ns >= e.ready_ns);
            assert!(e.end_ns >= e.start_ns);
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn node_trace_reports_intra_kernel_chunking() {
        // a node whose compute fans row chunks out to the pool reports
        // the chunking on its trace event, under both drivers
        use crate::kernel::par;
        let chunked_eval = || {
            par::with_parallelism(4, || {
                par::with_cost_model(1, 0, || {
                    let plan = par::plan(256, 256).expect("forced plan");
                    let parts = par::run_chunks(256, plan, |s, e| e - s);
                    Ok(parts.iter().sum::<usize>() as i32)
                })
            })
        };
        for parallel_driver in [false, true] {
            let node: Arc<Node<i32>> = Node::pending(vec![], Box::new(chunked_eval));
            let plain: Arc<Node<i32>> = Node::pending(vec![], Box::new(|| Ok(1)));
            let dag = build(&[c(&node), c(&plain)]);
            let sink = TraceSink::new();
            if parallel_driver {
                run_parallel(&dag, Some(&sink));
            } else {
                run_sequential(&dag, Some(&sink));
            }
            let events = sink.into_events();
            let chunked: Vec<_> = events.iter().filter(|e| e.par_chunks > 0).collect();
            assert_eq!(chunked.len(), 1, "exactly one node chunked");
            assert_eq!(chunked[0].chunk_rows, 256);
            assert!(chunked[0].par_workers >= 1);
        }
    }
}
