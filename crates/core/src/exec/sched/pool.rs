//! Ready-queue drivers: sequential FIFO and the worker-pool driver.
//!
//! Both drain the same dependency-counted [`Dag`](super::queue::Dag):
//! pop a ready node, compute it, decrement each dependent's pending
//! count, and enqueue dependents that reach zero. Every DAG node is
//! computed — including consumers of failed nodes, whose thunks observe
//! the failure through `ready_storage()` and complete `Failed` with
//! `InvalidObject` (paper §V poisoning). Because node evaluation reads
//! only completed, immutable dependencies, results are identical under
//! any drain order; the drivers differ only in wall-clock shape.
//!
//! The pool driver uses `std::sync::{Mutex, Condvar}` directly (a
//! condition variable is the natural shape for "wake one worker per
//! newly ready node, everyone at drain") and scoped threads, so workers
//! borrow the DAG without any `'static` ceremony.

use std::collections::VecDeque;
#[cfg(feature = "parallel")]
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering;
#[cfg(feature = "parallel")]
use std::sync::{Condvar, Mutex};

use super::queue::Dag;
use super::trace::{TraceEvent, TraceSink};

/// Floor on pool width under the Parallel policy. Even on a single
/// hardware thread the pool spawns two workers: the point of the
/// parallel driver is overlapping execution (and an honest trace of
/// it), and OS timeslicing still interleaves two workers' work.
#[cfg(feature = "parallel")]
const MIN_WORKERS: usize = 2;

fn record(sink: Option<&TraceSink>, dag: &Dag, idx: usize, start_ns: u64, worker: usize) {
    let Some(sink) = sink else { return };
    let end_ns = sink.now_ns();
    let dn = &dag.nodes[idx];
    let meta = dn.node.trace_meta();
    sink.record(TraceEvent {
        kind: meta.kind,
        rows: meta.rows,
        cols: meta.cols,
        nvals: meta.nvals,
        format: meta.format,
        migrated_from: meta.migrated_from,
        seq: dn.seq,
        ready_ns: dn.ready_ns.load(Ordering::Relaxed),
        start_ns,
        end_ns,
        worker,
        fused: None,
    });
}

fn mark_ready(sink: Option<&TraceSink>, dag: &Dag, idx: usize) {
    if let Some(sink) = sink {
        dag.nodes[idx]
            .ready_ns
            .store(sink.now_ns(), Ordering::Relaxed);
    }
}

/// Drain the DAG on the calling thread in FIFO ready order. This is the
/// `SchedPolicy::Sequential` path and the fallback when the `parallel`
/// feature is disabled; trace events carry worker id 0.
pub(crate) fn run_sequential(dag: &Dag, sink: Option<&TraceSink>) {
    let mut queue: VecDeque<usize> = dag.initial_ready.iter().copied().collect();
    for &i in &dag.initial_ready {
        mark_ready(sink, dag, i);
    }
    while let Some(idx) = queue.pop_front() {
        let start_ns = sink.map_or(0, TraceSink::now_ns);
        dag.nodes[idx].node.compute();
        record(sink, dag, idx, start_ns, 0);
        for &dep in &dag.nodes[idx].dependents {
            if dag.nodes[dep].pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                mark_ready(sink, dag, dep);
                queue.push_back(dep);
            }
        }
    }
}

/// Drain the DAG with a pool of worker threads.
///
/// Shared state is one mutex-guarded ready queue plus an atomic count
/// of not-yet-computed nodes. A worker that completes a node decrements
/// its dependents outside the lock and only takes the lock to publish
/// newly ready work; the last node completed wakes everyone up to exit.
/// Termination: every node's pending count reaches zero exactly once
/// (the DAG is acyclic and edge counts are consistent by construction),
/// so exactly `dag.len()` pops happen and `remaining` hits zero.
#[cfg(feature = "parallel")]
pub(crate) fn run_parallel(dag: &Dag, sink: Option<&TraceSink>) {
    let n = dag.len();
    if n <= 1 {
        return run_sequential(dag, sink);
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .max(MIN_WORKERS)
        .min(n);

    let queue: Mutex<VecDeque<usize>> = Mutex::new(dag.initial_ready.iter().copied().collect());
    for &i in &dag.initial_ready {
        mark_ready(sink, dag, i);
    }
    let ready = Condvar::new();
    let remaining = AtomicUsize::new(n);

    std::thread::scope(|s| {
        for worker in 0..workers {
            let (queue, ready, remaining) = (&queue, &ready, &remaining);
            s.spawn(move || loop {
                let idx = {
                    let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if let Some(i) = q.pop_front() {
                            break i;
                        }
                        if remaining.load(Ordering::Acquire) == 0 {
                            return;
                        }
                        q = ready.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                };
                let start_ns = sink.map_or(0, TraceSink::now_ns);
                dag.nodes[idx].node.compute();
                record(sink, dag, idx, start_ns, worker);
                for &dep in &dag.nodes[idx].dependents {
                    if dag.nodes[dep].pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        mark_ready(sink, dag, dep);
                        queue
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push_back(dep);
                        ready.notify_one();
                    }
                }
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Broadcast under the lock: a peer may sit between
                    // its `remaining` check and `wait()`, and only the
                    // lock orders this wakeup after it actually waits.
                    let _q = queue.lock().unwrap_or_else(|e| e.into_inner());
                    ready.notify_all();
                    return;
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    use super::super::queue::build;
    use super::*;
    #[cfg(feature = "parallel")]
    use crate::error::Error;
    use crate::exec::node::Node;
    use crate::exec::Completable;

    fn c(n: &Arc<Node<i32>>) -> Arc<dyn Completable> {
        n.clone() as Arc<dyn Completable>
    }

    /// base → {left, right} → top, each eval counted.
    fn diamond(count: &Arc<AtomicUsize>) -> (Vec<Arc<dyn Completable>>, Arc<Node<i32>>) {
        let cnt = count.clone();
        let base: Arc<Node<i32>> = Node::pending(
            vec![],
            Box::new(move || {
                cnt.fetch_add(1, Ordering::SeqCst);
                Ok(10)
            }),
        );
        let (b1, b2) = (base.clone(), base.clone());
        let left = Node::pending(
            vec![c(&base)],
            Box::new(move || b1.ready_storage().map(|v| *v + 1)),
        );
        let right = Node::pending(
            vec![c(&base)],
            Box::new(move || b2.ready_storage().map(|v| *v + 2)),
        );
        let (l, r) = (left.clone(), right.clone());
        let top = Node::pending(
            vec![c(&left), c(&right)],
            Box::new(move || Ok(*l.ready_storage()? + *r.ready_storage()?)),
        );
        let roots = vec![c(&base), c(&left), c(&right), c(&top)];
        (roots, top)
    }

    #[test]
    fn sequential_driver_completes_diamond_once() {
        let count = Arc::new(AtomicUsize::new(0));
        let (roots, top) = diamond(&count);
        let dag = build(&roots);
        run_sequential(&dag, None);
        assert_eq!(*top.ready_storage().unwrap(), 23);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_driver_completes_diamond_once() {
        let count = Arc::new(AtomicUsize::new(0));
        let (roots, top) = diamond(&count);
        let dag = build(&roots);
        run_parallel(&dag, None);
        assert_eq!(*top.ready_storage().unwrap(), 23);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_driver_poisons_consumers_of_failures() {
        let bad: Arc<Node<i32>> =
            Node::pending(vec![], Box::new(|| Err(Error::Arithmetic("boom".into()))));
        let b = bad.clone();
        let consumer = Node::pending(
            vec![c(&bad)],
            Box::new(move || b.ready_storage().map(|v| *v + 1)),
        );
        let ok = Node::pending(vec![], Box::new(|| Ok(7i32)));
        let roots = vec![c(&bad), c(&consumer), c(&ok)];
        let dag = build(&roots);
        run_parallel(&dag, None);
        assert!(matches!(bad.failure(), Some(Error::Arithmetic(_))));
        assert!(matches!(consumer.failure(), Some(Error::InvalidObject(_))));
        assert_eq!(*ok.ready_storage().unwrap(), 7);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_driver_deep_chain() {
        // a long serial chain exercises the wait/notify path heavily
        let mut prev: Arc<Node<i32>> = Node::pending(vec![], Box::new(|| Ok(0)));
        let mut roots = vec![c(&prev)];
        for _ in 0..2_000 {
            let p = prev.clone();
            prev = Node::pending(
                vec![c(&prev)],
                Box::new(move || p.ready_storage().map(|v| *v + 1)),
            );
            roots.push(c(&prev));
        }
        let dag = build(&roots);
        run_parallel(&dag, None);
        assert_eq!(*prev.ready_storage().unwrap(), 2_000);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_driver_traces_multiple_workers_on_wide_dag() {
        // 64 independent nodes, each with a little real work: on any
        // machine (even 1 hardware thread, where the pool still spawns
        // 2 workers) timeslicing spreads them across workers.
        let roots: Vec<Arc<dyn Completable>> = (0..64)
            .map(|i| {
                c(&Node::pending(
                    vec![],
                    Box::new(move || {
                        let mut acc = 0u64;
                        for k in 0..200_000u64 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        std::hint::black_box(acc);
                        Ok(i)
                    }),
                ))
            })
            .collect();
        let dag = build(&roots);
        let sink = TraceSink::new();
        run_parallel(&dag, Some(&sink));
        let events = sink.into_events();
        assert_eq!(events.len(), 64);
        let workers: std::collections::HashSet<usize> = events.iter().map(|e| e.worker).collect();
        assert!(
            workers.len() > 1,
            "expected >1 worker on a wide DAG, trace saw {workers:?}"
        );
        for e in &events {
            assert!(e.start_ns >= e.ready_ns);
            assert!(e.end_ns >= e.start_ns);
        }
    }
}
