//! DAG construction for the scheduler: flatten the live pending cone
//! into an indexed node table with dependency counts and reverse edges.
//!
//! The deferred graph is a persistent DAG of `Arc<dyn Completable>`
//! nodes (see `exec::node`); handles only know their own node, so the
//! scheduler rediscovers the structure by walking dependency snapshots
//! from the sequence roots. Node identity is the allocation address —
//! the data half of the trait-object fat pointer — which is stable for
//! the lifetime of the `Arc` and unique among live nodes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::exec::Completable;

/// One scheduler-visible node of the pending DAG.
pub(crate) struct DagNode {
    pub(crate) node: Arc<dyn Completable>,
    /// Indices of nodes that read this one; a consumer appears once per
    /// in-edge, so duplicate dependencies decrement symmetrically.
    pub(crate) dependents: Vec<usize>,
    /// Outstanding (incomplete, in-DAG) dependencies. The node becomes
    /// ready when this reaches zero.
    pub(crate) pending: AtomicUsize,
    /// Program-order index among the sequence roots, if this node was
    /// one (interior nodes have `None`).
    pub(crate) seq: Option<usize>,
    /// Trace support: ns timestamp at which the node became ready.
    pub(crate) ready_ns: AtomicU64,
}

/// The flattened pending DAG plus its initially ready frontier.
pub(crate) struct Dag {
    pub(crate) nodes: Vec<DagNode>,
    pub(crate) initial_ready: Vec<usize>,
}

impl Dag {
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }
}

/// Build the scheduler DAG from the live sequence roots, in program
/// order. Already-complete nodes (forced earlier by an export method,
/// or born `Ready`) are left out entirely: edges into them are never
/// counted, so their consumers start with correspondingly fewer pending
/// dependencies.
///
/// Completion races are benign. A node observed incomplete here may be
/// completed concurrently by per-object forcing on another thread;
/// `compute()` is then a no-op, and the scheduler still flows its
/// dependents' counters, so every counted edge is decremented exactly
/// once.
pub(crate) fn build(roots: &[Arc<dyn Completable>]) -> Dag {
    let mut index: HashMap<*const u8, usize> = HashMap::new();
    let mut nodes: Vec<DagNode> = Vec::new();

    // Discovery: collect every incomplete node reachable from the roots.
    let mut stack: Vec<Arc<dyn Completable>> = Vec::new();
    for (i, root) in roots.iter().enumerate() {
        stack.push(root.clone());
        while let Some(n) = stack.pop() {
            let key = Arc::as_ptr(&n) as *const u8;
            if index.contains_key(&key) || n.is_complete() {
                continue;
            }
            let deps = n.dep_nodes();
            index.insert(key, nodes.len());
            nodes.push(DagNode {
                node: n,
                dependents: Vec::new(),
                pending: AtomicUsize::new(0),
                seq: None,
                ready_ns: AtomicU64::new(0),
            });
            stack.extend(deps);
        }
        // Each submitted node appears in the sequence once, so first
        // assignment wins trivially; a root that has already completed
        // (or was just forced concurrently) simply carries no DAG entry.
        if let Some(&idx) = index.get(&(Arc::as_ptr(root) as *const u8)) {
            if nodes[idx].seq.is_none() {
                nodes[idx].seq = Some(i);
            }
        }
    }

    // Edge pass: count each consumer→dependency edge that stayed inside
    // the DAG. `dep_nodes()` of a node that completed since discovery is
    // empty — its pending count stays 0 and its compute() is a no-op.
    for idx in 0..nodes.len() {
        let deps = nodes[idx].node.dep_nodes();
        let mut in_dag = 0usize;
        for d in &deps {
            if let Some(&dep_idx) = index.get(&(Arc::as_ptr(d) as *const u8)) {
                nodes[dep_idx].dependents.push(idx);
                in_dag += 1;
            }
        }
        nodes[idx].pending.store(in_dag, Ordering::Relaxed);
    }

    let initial_ready: Vec<usize> = (0..nodes.len())
        .filter(|&i| nodes[i].pending.load(Ordering::Relaxed) == 0)
        .collect();

    Dag {
        nodes,
        initial_ready,
    }
}

/// Kahn's-algorithm sanity check used by tests: drain the DAG without
/// computing anything and confirm every node is reachable through the
/// counters (i.e. the edge counts are consistent and acyclic).
#[cfg(test)]
pub(crate) fn drains_completely(dag: &Dag) -> bool {
    use std::collections::VecDeque;
    let mut pending: Vec<usize> = dag
        .nodes
        .iter()
        .map(|n| n.pending.load(Ordering::Relaxed))
        .collect();
    let mut queue: VecDeque<usize> = dag.initial_ready.iter().copied().collect();
    let mut seen = 0usize;
    while let Some(i) = queue.pop_front() {
        seen += 1;
        for &d in &dag.nodes[i].dependents {
            pending[d] -= 1;
            if pending[d] == 0 {
                queue.push_back(d);
            }
        }
    }
    seen == dag.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::node::Node;

    fn value(v: i32) -> Arc<Node<i32>> {
        Node::ready(v)
    }

    fn op(deps: Vec<Arc<dyn Completable>>, v: i32) -> Arc<Node<i32>> {
        Node::pending(deps, Box::new(move || Ok(v)))
    }

    fn c(n: &Arc<Node<i32>>) -> Arc<dyn Completable> {
        n.clone() as Arc<dyn Completable>
    }

    #[test]
    fn complete_nodes_are_excluded() {
        let a = value(1);
        let b = op(vec![c(&a)], 2);
        let dag = build(&[c(&b)]);
        assert_eq!(dag.len(), 1);
        assert_eq!(dag.initial_ready, vec![0]);
        assert_eq!(dag.nodes[0].seq, Some(0));
    }

    #[test]
    fn diamond_builds_single_shared_entry() {
        let base = op(vec![], 1);
        let l = op(vec![c(&base)], 2);
        let r = op(vec![c(&base)], 3);
        let top = op(vec![c(&l), c(&r)], 4);
        let dag = build(&[c(&base), c(&l), c(&r), c(&top)]);
        assert_eq!(dag.len(), 4);
        // base is shared, not duplicated: it has two dependents
        let base_idx = dag.nodes.iter().position(|n| n.seq == Some(0)).unwrap();
        assert_eq!(dag.nodes[base_idx].dependents.len(), 2);
        assert_eq!(dag.initial_ready.len(), 1);
        assert!(drains_completely(&dag));
    }

    #[test]
    fn duplicate_edges_counted_symmetrically() {
        let a = op(vec![], 1);
        // b reads a twice (e.g. mxm(A, A))
        let b = op(vec![c(&a), c(&a)], 2);
        let dag = build(&[c(&a), c(&b)]);
        let b_idx = dag.nodes.iter().position(|n| n.seq == Some(1)).unwrap();
        assert_eq!(dag.nodes[b_idx].pending.load(Ordering::Relaxed), 2);
        let a_idx = dag.nodes.iter().position(|n| n.seq == Some(0)).unwrap();
        assert_eq!(dag.nodes[a_idx].dependents, vec![b_idx, b_idx]);
        assert!(drains_completely(&dag));
    }

    #[test]
    fn interior_only_nodes_have_no_seq() {
        // a dropped intermediate still alive as a dependency snapshot
        let mid = op(vec![], 1);
        let top = op(vec![c(&mid)], 2);
        let dag = build(&[c(&top)]);
        assert_eq!(dag.len(), 2);
        let interior = dag.nodes.iter().find(|n| n.seq.is_none()).unwrap();
        assert_eq!(interior.dependents.len(), 1);
        assert!(drains_completely(&dag));
    }

    #[test]
    fn wide_fanout_all_initially_ready() {
        let leaves: Vec<_> = (0..32).map(|i| op(vec![], i)).collect();
        let roots: Vec<_> = leaves.iter().map(c).collect();
        let dag = build(&roots);
        assert_eq!(dag.initial_ready.len(), 32);
        assert!(drains_completely(&dag));
    }
}
