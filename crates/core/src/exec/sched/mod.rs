//! The nonblocking-mode scheduler (paper §IV's deferred-execution
//! latitude, exploited for parallelism).
//!
//! `Context::wait` hands the live sequence roots to `execute`, which
//! flattens the pending cone into a dependency-counted DAG
//! (`queue`) and drains it with either the sequential FIFO driver or
//! a worker pool (`pool`), per [`SchedPolicy`]. Both drivers compute
//! every DAG node, so the paper's §V error semantics are preserved
//! under any interleaving: a consumer of a failed node observes the
//! failure through its dependency snapshot and completes `Failed` with
//! `InvalidObject`, deterministically, and `wait` then reports the
//! first failure in *program order* by scanning the sequence roots —
//! never a schedule-dependent "first to fail on the clock".
//!
//! With the `parallel` feature disabled the Parallel policy degrades to
//! the sequential driver, keeping single-threaded builds' behavior
//! identical to the pre-scheduler engine.

pub(crate) mod pool;
pub(crate) mod queue;
mod trace;
#[cfg(feature = "parallel")]
pub(crate) mod workers;

use std::sync::Arc;

pub use trace::TraceEvent;
#[doc(hidden)]
pub use trace::TraceMeta;
pub(crate) use trace::TraceSink;

use crate::exec::Completable;

/// How `Context::wait` drains the pending DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// One thread, FIFO ready order. Matches the engine's pre-scheduler
    /// observable behavior exactly.
    Sequential,
    /// Worker pool over the dependency-counted ready queue. Requires
    /// the `parallel` feature; without it this falls back to
    /// [`SchedPolicy::Sequential`].
    Parallel,
}

impl Default for SchedPolicy {
    fn default() -> Self {
        if cfg!(feature = "parallel") {
            SchedPolicy::Parallel
        } else {
            SchedPolicy::Sequential
        }
    }
}

/// Load snapshot of the shared worker pool: how many daemon workers
/// exist and how many tasks sit in the shared queue right now.
///
/// Observability hook for layers that place work *onto* the engine —
/// the `server` crate's admission control reads the backlog to decide
/// when to shed load instead of queueing more. `queued` counts tasks
/// waiting in the queue, not tasks mid-execution, so it is a floor on
/// outstanding work; both fields are `0` before the pool's first use
/// and always `0` without the `parallel` feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStatus {
    /// Daemon worker count (fixed at first use).
    pub width: usize,
    /// Tasks currently waiting in the shared queue.
    pub queued: usize,
}

/// Snapshot the shared worker pool's load (see [`PoolStatus`]). Never
/// spawns the pool.
pub fn pool_status() -> PoolStatus {
    #[cfg(feature = "parallel")]
    {
        let (width, queued) = workers::status();
        PoolStatus { width, queued }
    }
    #[cfg(not(feature = "parallel"))]
    {
        PoolStatus::default()
    }
}

/// Execute the pending cone of `roots` (sequence outputs in program
/// order) to completion. Infallible by design: failures are stored on
/// the nodes themselves; the caller inspects the roots afterwards.
pub(crate) fn execute(
    roots: &[Arc<dyn Completable>],
    policy: SchedPolicy,
    sink: Option<&TraceSink>,
) {
    let dag = queue::build(roots);
    if dag.len() == 0 {
        return;
    }
    match policy {
        SchedPolicy::Sequential => pool::run_sequential(&dag, sink),
        #[cfg(feature = "parallel")]
        SchedPolicy::Parallel => pool::run_parallel(&dag, sink),
        #[cfg(not(feature = "parallel"))]
        SchedPolicy::Parallel => pool::run_sequential(&dag, sink),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::exec::node::Node;

    fn c(n: &Arc<Node<i32>>) -> Arc<dyn Completable> {
        n.clone() as Arc<dyn Completable>
    }

    #[test]
    fn default_policy_tracks_feature() {
        let expect = if cfg!(feature = "parallel") {
            SchedPolicy::Parallel
        } else {
            SchedPolicy::Sequential
        };
        assert_eq!(SchedPolicy::default(), expect);
    }

    #[test]
    fn execute_completes_all_roots_under_both_policies() {
        for policy in [SchedPolicy::Sequential, SchedPolicy::Parallel] {
            let a = Node::pending(vec![], Box::new(|| Ok(1i32)));
            let a2 = a.clone();
            let b = Node::pending(
                vec![c(&a)],
                Box::new(move || a2.ready_storage().map(|v| *v * 10)),
            );
            execute(&[c(&a), c(&b)], policy, None);
            assert_eq!(*b.ready_storage().unwrap(), 10);
        }
    }

    #[test]
    fn failures_are_stored_not_raised() {
        let bad: Arc<Node<i32>> =
            Node::pending(vec![], Box::new(|| Err(Error::Arithmetic("x".into()))));
        execute(&[c(&bad)], SchedPolicy::default(), None);
        assert!(matches!(bad.failure(), Some(Error::Arithmetic(_))));
    }

    #[test]
    fn empty_sequence_is_a_no_op() {
        execute(&[], SchedPolicy::default(), None);
    }
}
