//! The GraphBLAS execution model (paper, Section IV) and error model
//! (Section V).
//!
//! A [`Context`] fixes the execution **mode** for the method sequence run
//! through it:
//!
//! * **Blocking** — every operation completes before its call returns;
//!   output objects are fully computed and stored.
//! * **Nonblocking** — operations verify their arguments (API errors are
//!   still reported eagerly) and may *defer* execution. Deferred outputs
//!   complete when [`Context::wait`] terminates the sequence, or when a
//!   method that exports values to non-opaque data (`nvals`,
//!   `extract_tuples`, `get`, scalar `reduce`, …) forces them. Execution
//!   errors from deferred work surface at those points; an object whose
//!   defining computation failed is *invalid* and poisons its consumers
//!   with `InvalidObject`.
//!
//! Where the C API fixes one process-global mode at `GrB_init`, contexts
//! here are explicit values — a deliberate binding change (see DESIGN.md)
//! that keeps both modes testable in one process; the `graphblas-capi`
//! crate layers the global lifecycle on top.

#[doc(hidden)]
pub mod fuse;
pub(crate) mod node;
pub mod sched;

use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::error::{Error, Result};
pub use fuse::{FusePolicy, FusedNote};
#[doc(hidden)]
pub use node::Completable;
pub(crate) use node::{force, Node};
pub use sched::{pool_status, PoolStatus, SchedPolicy, TraceEvent};

/// Execution mode of a context (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Each method completes before returning.
    Blocking,
    /// Methods may defer; `wait()` terminates the sequence.
    Nonblocking,
}

struct CtxInner {
    mode: Mode,
    /// How `wait()` drains the pending DAG (nonblocking mode only).
    policy: SchedPolicy,
    /// Whether `wait()` runs the `exec::fuse` rewrite pass first
    /// (nonblocking mode only; blocking mode never fuses).
    fuse: FusePolicy,
    /// Deferred outputs of the current sequence, in program order. Weak:
    /// an intermediate dropped unobserved is simply never computed (the
    /// "lazy evaluation" latitude of §IV).
    sequence: Mutex<Vec<Weak<dyn Completable>>>,
    /// `GrB_error()`: detail text of the most recent execution error.
    last_error: Mutex<Option<String>>,
    /// Test hook: the next submitted operation fails with this error.
    injected: Mutex<Option<Error>>,
    /// Execution tracing: when enabled, each `wait()` appends one event
    /// per scheduled node; drained by `take_trace`.
    tracing: std::sync::atomic::AtomicBool,
    trace: Mutex<Vec<TraceEvent>>,
}

/// A GraphBLAS execution context: the binding's rendering of the state
/// established by `GrB_init(mode)`.
///
/// All Table II operations are methods on `Context` (`ctx.mxm(…)`,
/// `ctx.ewise_add_matrix(…)`, …; see [`crate::op`]).
#[derive(Clone)]
pub struct Context {
    inner: Arc<CtxInner>,
}

impl Context {
    /// Create a context in the given mode, with the default scheduling
    /// policy (Parallel when the `parallel` feature is on).
    pub fn new(mode: Mode) -> Self {
        Context::with_policy(mode, SchedPolicy::default())
    }

    /// Create a context with an explicit scheduling policy for `wait()`.
    /// The policy only matters in nonblocking mode; blocking mode
    /// completes each operation inline as before.
    pub fn with_policy(mode: Mode, policy: SchedPolicy) -> Self {
        Context::with_fuse_policy(mode, policy, FusePolicy::default())
    }

    /// Create a context with explicit scheduling *and* fusion policies.
    /// `FusePolicy::Off` is the ablation baseline: the DAG executes
    /// exactly as written (see EXPERIMENTS E7).
    pub fn with_fuse_policy(mode: Mode, policy: SchedPolicy, fuse: FusePolicy) -> Self {
        Context {
            inner: Arc::new(CtxInner {
                mode,
                policy,
                fuse,
                sequence: Mutex::new(Vec::new()),
                last_error: Mutex::new(None),
                injected: Mutex::new(None),
                tracing: std::sync::atomic::AtomicBool::new(false),
                trace: Mutex::new(Vec::new()),
            }),
        }
    }

    /// `GrB_init(GrB_BLOCKING)`.
    pub fn blocking() -> Self {
        Context::new(Mode::Blocking)
    }

    /// `GrB_init(GrB_NONBLOCKING)`.
    pub fn nonblocking() -> Self {
        Context::new(Mode::Nonblocking)
    }

    /// Nonblocking mode with the sequential FIFO driver — the
    /// pre-scheduler engine's observable behavior.
    pub fn nonblocking_sequential() -> Self {
        Context::with_policy(Mode::Nonblocking, SchedPolicy::Sequential)
    }

    /// Nonblocking mode with the worker-pool driver (degrades to
    /// sequential without the `parallel` feature).
    pub fn nonblocking_parallel() -> Self {
        Context::with_policy(Mode::Nonblocking, SchedPolicy::Parallel)
    }

    pub fn mode(&self) -> Mode {
        self.inner.mode
    }

    /// The scheduling policy `wait()` uses.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.inner.policy
    }

    /// The fusion policy `wait()` uses.
    pub fn fuse_policy(&self) -> FusePolicy {
        self.inner.fuse
    }

    /// Fusion runs only when deferral exists to rewrite: nonblocking
    /// mode with `FusePolicy::On`. Blocking mode completes every
    /// operation inline, so there is never a pending producer to absorb.
    pub(crate) fn fusion_active(&self) -> bool {
        self.inner.mode == Mode::Nonblocking && self.inner.fuse == FusePolicy::On
    }

    /// Record a fusion rewrite in the execution trace (when tracing).
    pub(crate) fn record_fused(&self, note: FusedNote) {
        if self
            .inner
            .tracing
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            self.inner.trace.lock().push(TraceEvent {
                kind: "fused",
                rows: 0,
                cols: 0,
                nvals: 0,
                format: "sparse",
                migrated_from: None,
                seq: None,
                ready_ns: 0,
                start_ns: 0,
                end_ns: 0,
                worker: 0,
                par_chunks: 0,
                chunk_rows: 0,
                par_workers: 0,
                pending_len: 0,
                merged_rows: 0,
                fused: Some(note),
                direction: None,
                udf: None,
                tiles: Vec::new(),
            });
        }
    }

    /// Enable or disable execution tracing. While enabled, each
    /// `wait()` appends one [`TraceEvent`] per node the scheduler
    /// completes; collect them with [`Context::take_trace`].
    pub fn enable_trace(&self, on: bool) {
        self.inner
            .tracing
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Drain the accumulated execution trace.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.inner.trace.lock())
    }

    /// `GrB_wait()`: terminate the current sequence, completing every
    /// deferred output. Execution runs through the [`sched`] scheduler
    /// under this context's [`SchedPolicy`]; error reporting is
    /// schedule-independent — the roots are scanned in program order
    /// afterwards, so the error returned is the *first in program
    /// order* (later outputs are still completed and carry their own
    /// failure states, poisoning their consumers per §V).
    pub fn wait(&self) -> Result<()> {
        let pending: Vec<Weak<dyn Completable>> = std::mem::take(&mut *self.inner.sequence.lock());
        let mut roots: Vec<Arc<dyn Completable>> =
            pending.iter().filter_map(Weak::upgrade).collect();
        if roots.is_empty() {
            return Ok(());
        }
        // §IV fusion latitude: rewrite the pending DAG before draining
        // it. Absorbed producers are pruned from the roots, so the
        // scheduler (and the error scan below) never touches them; the
        // fused consumer carries any failure in their place.
        if self.fusion_active() {
            for ev in fuse::fuse_pass(&mut roots) {
                self.record_fused(ev.note);
            }
            if roots.is_empty() {
                return Ok(());
            }
        }
        let sink = self
            .inner
            .tracing
            .load(std::sync::atomic::Ordering::Relaxed)
            .then(sched::TraceSink::new);
        sched::execute(&roots, self.inner.policy, sink.as_ref());
        if let Some(sink) = sink {
            self.inner.trace.lock().extend(sink.into_events());
        }
        let mut first_err: Option<Error> = None;
        for root in &roots {
            if let Some(e) = root.failure() {
                self.record_error(&e);
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// `GrB_error()`: detail text for the most recent execution error
    /// observed through this context, if any.
    pub fn error(&self) -> Option<String> {
        self.inner.last_error.lock().clone()
    }

    /// Record the detail text of an *API* error (one returned directly
    /// from the method call rather than surfacing at execution time).
    /// §V's `GrB_error()` elaborates on "the error code returned by the
    /// last method" without distinguishing the two classes, so a facade
    /// that reports an API error to its caller should record it here
    /// too; the typed layer leaves API errors to its `Result`s.
    pub fn record_api_error(&self, e: &Error) {
        self.record_error(e);
    }

    /// Number of deferred, not-yet-completed operations in the current
    /// sequence (0 in blocking mode). Diagnostic; used by the execution
    /// model tests and benches.
    pub fn pending_ops(&self) -> usize {
        self.inner
            .sequence
            .lock()
            .iter()
            .filter(|w| w.upgrade().is_some_and(|n| !n.is_complete()))
            .count()
    }

    /// Test hook: make the next submitted operation fail with `e` at
    /// execution time (an injectable execution error, for exercising the
    /// §V error paths).
    pub fn inject_fault(&self, e: Error) {
        *self.inner.injected.lock() = Some(e);
    }

    pub(crate) fn take_fault(&self) -> Option<Error> {
        self.inner.injected.lock().take()
    }

    /// Whether a test fault is armed for the next submitted operation.
    /// Fast paths that bypass submission (e.g. 1-element scalar assign
    /// becoming a deferred point update) must stand aside so the fault
    /// lands on a real submission.
    pub(crate) fn has_fault(&self) -> bool {
        self.inner.injected.lock().is_some()
    }

    pub(crate) fn record_error(&self, e: &Error) {
        *self.inner.last_error.lock() = Some(e.to_string());
    }

    /// Run or defer a freshly installed output node according to the
    /// mode. Shared tail of every operation.
    pub(crate) fn finish_op(&self, node: Arc<dyn Completable>) -> Result<()> {
        match self.inner.mode {
            Mode::Blocking => {
                let r = force(&node);
                if let Err(e) = &r {
                    self.record_error(e);
                }
                r
            }
            Mode::Nonblocking => {
                self.inner.sequence.lock().push(Arc::downgrade(&node));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes() {
        assert_eq!(Context::blocking().mode(), Mode::Blocking);
        assert_eq!(Context::nonblocking().mode(), Mode::Nonblocking);
    }

    #[test]
    fn blocking_finish_forces_immediately() {
        let ctx = Context::blocking();
        let n = Node::pending(vec![], Box::new(|| Ok(5i32)));
        ctx.finish_op(n.clone()).unwrap();
        assert!(n.is_complete());
        assert_eq!(ctx.pending_ops(), 0);
    }

    #[test]
    fn nonblocking_defers_until_wait() {
        let ctx = Context::nonblocking();
        let n = Node::pending(vec![], Box::new(|| Ok(5i32)));
        ctx.finish_op(n.clone()).unwrap();
        assert!(!n.is_complete());
        assert_eq!(ctx.pending_ops(), 1);
        ctx.wait().unwrap();
        assert!(n.is_complete());
        assert_eq!(ctx.pending_ops(), 0);
    }

    #[test]
    fn wait_reports_first_error_and_records_it() {
        let ctx = Context::nonblocking();
        let bad: Arc<Node<i32>> = Node::pending(
            vec![],
            Box::new(|| Err(Error::Arithmetic("overflow!".into()))),
        );
        let ok = Node::pending(vec![], Box::new(|| Ok(1i32)));
        ctx.finish_op(bad.clone()).unwrap();
        ctx.finish_op(ok.clone()).unwrap();
        let e = ctx.wait().unwrap_err();
        assert!(matches!(e, Error::Arithmetic(_)));
        // later ops still completed
        assert!(ok.is_complete());
        assert!(ctx.error().unwrap().contains("overflow!"));
        // sequence terminated: a second wait succeeds (new sequence)
        ctx.wait().unwrap();
    }

    #[test]
    fn dropped_intermediates_are_never_computed() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let ctx = Context::nonblocking();
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        let n: Arc<Node<i32>> = Node::pending(
            vec![],
            Box::new(move || {
                r.store(true, Ordering::SeqCst);
                Ok(1)
            }),
        );
        ctx.finish_op(n.clone()).unwrap();
        drop(n); // the only strong ref gone: dead intermediate
        ctx.wait().unwrap();
        assert!(!ran.load(Ordering::SeqCst), "dead code must be elided");
    }

    #[test]
    fn blocking_error_returns_from_the_call() {
        let ctx = Context::blocking();
        let bad: Arc<Node<i32>> = Node::pending(vec![], Box::new(|| Err(Error::Panic("x".into()))));
        assert!(ctx.finish_op(bad).is_err());
        assert!(ctx.error().is_some());
    }

    #[test]
    fn fault_injection_hook() {
        let ctx = Context::blocking();
        ctx.inject_fault(Error::InjectedFault("test".into()));
        assert!(ctx.take_fault().is_some());
        assert!(ctx.take_fault().is_none()); // consumed
    }
}
