//! The opaque GraphBLAS matrix (paper §III-A):
//! `A = <D, M, N, {(i, j, A_ij)}>`.
//!
//! [`Matrix<T>`] is a *handle*, like the C API's `GrB_Matrix`: cloning a
//! handle aliases the same object (use [`Matrix::dup`] for a copy). The
//! object's value lives in an immutable node; every mutating method swaps
//! in a new node, so deferred operations that captured the old node keep
//! program-order semantics for free (and output/input aliasing in a
//! single call is well defined — the inputs are the pre-call snapshots).
//!
//! Methods that export values to non-opaque data — [`Matrix::nvals`],
//! [`Matrix::get`], [`Matrix::extract_tuples`] — force completion of any
//! deferred computation defining this object, surfacing execution errors
//! (paper §IV/§V).
//!
//! Point mutations ([`Matrix::set`], [`Matrix::remove`]) exploit the
//! same deferral latitude in the other direction: they append to a
//! pending-update buffer ([`crate::storage::delta`]) in O(1) amortized
//! time. The buffer is merged into the backing store by the background
//! auto-flusher once enough updates accumulate
//! ([`crate::storage::snapshot`]), or eagerly by a completion-forcing
//! read (the crate-internal `Matrix::resolve`). Kernel input capture
//! and [`Matrix::snapshot`] instead take an epoch-versioned *overlay*
//! over `(base, sealed runs)` — readers observe the pending updates
//! without draining the log, so they never serialize behind writers.

use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::algebra::binary::BinaryOp;
use crate::error::{Error, Result};
use crate::exec::{force, Completable, Node};
use crate::index::Index;
use crate::kernel::merge;
use crate::scalar::Scalar;
use crate::storage::coo::build_matrix;
use crate::storage::csr::Csr;
use crate::storage::delta::{DeltaLog, DeltaOp, DeltaStats, Run};
use crate::storage::engine::{Format, FormatPolicy, MatrixStore};
use crate::storage::snapshot::{self, MatrixSnapshot};

pub(crate) type MatrixNode<T> = Node<MatrixStore<T>>;

/// Per-epoch overlay memo shared by handle clones: the epoch paired
/// with the deferred `(base, runs)` merge node built at it.
type OverlayMemo<T> = Arc<Mutex<Option<(u64, Arc<MatrixNode<T>>)>>>;
type OverlayMemoWeak<T> = Weak<Mutex<Option<(u64, Arc<MatrixNode<T>>)>>>;

/// What a reader at one epoch sees: `(epoch, base, sealed runs + tail,
/// overlay node merging them)`. When the log is empty the overlay IS
/// the base.
type OverlayParts<T> = (
    u64,
    Arc<MatrixNode<T>>,
    Vec<Run<(Index, Index), T>>,
    Arc<MatrixNode<T>>,
);

/// An opaque GraphBLAS matrix handle over domain `T`.
pub struct Matrix<T: Scalar> {
    nrows: Index,
    ncols: Index,
    cell: Arc<RwLock<Arc<MatrixNode<T>>>>,
    /// Storage-format hint for values computed into this object (the
    /// `GxB`-style per-object format option). Shared by handle clones,
    /// like every other property of the object.
    policy: Arc<RwLock<FormatPolicy>>,
    /// Pending point mutations not yet merged into the value node;
    /// keyed row-major. Shared by handle clones. Lock order: `delta`
    /// before `overlay` before `cell`, always.
    delta: Arc<Mutex<DeltaLog<(Index, Index), T>>>,
    /// Memoized overlay node for the current delta epoch: every reader
    /// (snapshot or kernel capture) at the same epoch shares one
    /// deferred `(base, runs)` merge. Shared by handle clones.
    overlay: OverlayMemo<T>,
}

impl<T: Scalar> Clone for Matrix<T> {
    /// Clones the *handle*: both values refer to the same object, exactly
    /// like copying a `GrB_Matrix` in C. Use [`Matrix::dup`] for a copy of
    /// the contents.
    fn clone(&self) -> Self {
        Matrix {
            nrows: self.nrows,
            ncols: self.ncols,
            cell: self.cell.clone(),
            policy: self.policy.clone(),
            delta: self.delta.clone(),
            overlay: self.overlay.clone(),
        }
    }
}

impl<T: Scalar> Matrix<T> {
    /// `GrB_Matrix_new(&A, domain, nrows, ncols)`: a matrix with no stored
    /// elements. Dimensions must be positive (paper §III-A: `M, N > 0`).
    pub fn new(nrows: Index, ncols: Index) -> Result<Self> {
        if nrows == 0 || ncols == 0 {
            return Err(Error::InvalidValue(format!(
                "matrix dimensions must be positive, got {nrows}x{ncols}"
            )));
        }
        Ok(Matrix {
            nrows,
            ncols,
            cell: Arc::new(RwLock::new(Node::ready(MatrixStore::empty(nrows, ncols)))),
            policy: Arc::new(RwLock::new(crate::storage::engine::session_default_policy())),
            delta: Arc::new(Mutex::new(DeltaLog::new())),
            overlay: Arc::new(Mutex::new(None)),
        })
    }

    /// A handle wrapping an existing (pinned) value node — the bridge
    /// from [`MatrixSnapshot::to_matrix`] back into the kernel layer.
    pub(crate) fn from_shared_node(
        nrows: Index,
        ncols: Index,
        node: Arc<MatrixNode<T>>,
        policy: FormatPolicy,
    ) -> Matrix<T> {
        // The node is shared with handles whose observe-probes cannot
        // see this cell; pin it so the fusion pass never absorbs it.
        node.pin();
        Matrix {
            nrows,
            ncols,
            cell: Arc::new(RwLock::new(node)),
            policy: Arc::new(RwLock::new(policy)),
            delta: Arc::new(Mutex::new(DeltaLog::new())),
            overlay: Arc::new(Mutex::new(None)),
        }
    }

    /// Convenience constructor from unique `(row, col, value)` tuples.
    /// Duplicate positions are rejected (`InvalidValue`); use
    /// [`Matrix::build`] with an explicit `dup` operator to combine them.
    pub fn from_tuples(nrows: Index, ncols: Index, tuples: &[(Index, Index, T)]) -> Result<Self> {
        let m = Matrix::new(nrows, ncols)?;
        let rows: Vec<Index> = tuples.iter().map(|t| t.0).collect();
        let cols: Vec<Index> = tuples.iter().map(|t| t.1).collect();
        let vals: Vec<T> = tuples.iter().map(|t| t.2.clone()).collect();
        // build with First, then detect duplicates from the count delta
        let storage = build_matrix(
            nrows,
            ncols,
            &rows,
            &cols,
            &vals,
            &crate::algebra::binary::First::<T, T>::new(),
        )?;
        if storage.nvals() != tuples.len() {
            return Err(Error::InvalidValue(
                "from_tuples given duplicate positions; use build() with a dup operator".into(),
            ));
        }
        m.install_csr(storage);
        Ok(m)
    }

    /// `GrB_Matrix_build`: copy elements from tuple arrays into this
    /// matrix, combining duplicates with `dup`. The matrix must hold no
    /// stored elements (`OutputNotEmpty` otherwise, as in the C API).
    ///
    /// Reads non-opaque arrays, so it executes immediately in every mode.
    pub fn build<F: BinaryOp<T, T, T>>(
        &self,
        rows: &[Index],
        cols: &[Index],
        vals: &[T],
        dup: &F,
    ) -> Result<()> {
        if self.nvals()? != 0 {
            return Err(Error::OutputNotEmpty(
                "build target must have no stored elements".into(),
            ));
        }
        let storage = build_matrix(self.nrows, self.ncols, rows, cols, vals, dup)?;
        self.install_csr(storage);
        Ok(())
    }

    /// `GrB_Matrix_nrows`.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// `GrB_Matrix_ncols`.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    /// `GrB_Matrix_nvals`: the number of stored elements. Forces
    /// completion.
    pub fn nvals(&self) -> Result<usize> {
        Ok(self.forced_storage()?.nvals())
    }

    /// `GrB_Matrix_extractElement`: `Ok(Some(v))` if stored, `Ok(None)` if
    /// the element is undefined (the C API's `GrB_NO_VALUE`). Forces
    /// completion.
    pub fn get(&self, i: Index, j: Index) -> Result<Option<T>> {
        self.check_bounds(i, j)?;
        Ok(self.forced_storage()?.get(i, j).cloned())
    }

    /// `GrB_Matrix_setElement`. Appends to the object's pending-update
    /// buffer — O(1) amortized in every mode, per §IV's latitude to
    /// defer point updates. The buffer is merged into the backing store
    /// (and the value re-stored under the object's format policy, since
    /// updates can cross a density threshold) by the time/size-windowed
    /// background auto-flusher, or eagerly by the next completion-
    /// forcing read: `nvals`/`get`/`extract_tuples`/`wait`.
    pub fn set(&self, i: Index, j: Index, v: T) -> Result<()> {
        self.check_bounds(i, j)?;
        let due = {
            let mut delta = self.delta.lock();
            delta.push((i, j), DeltaOp::Put(v));
            delta.autoflush_due(snapshot::flush_window())
        };
        if let Some(delay) = due {
            self.schedule_background_flush(delay);
        }
        Ok(())
    }

    /// `GrB_Matrix_removeElement`. Deferred like [`Matrix::set`];
    /// removing an absent element is a no-op, as the C API specifies.
    pub fn remove(&self, i: Index, j: Index) -> Result<()> {
        self.check_bounds(i, j)?;
        let due = {
            let mut delta = self.delta.lock();
            delta.push((i, j), DeltaOp::Del);
            delta.autoflush_due(snapshot::flush_window())
        };
        if let Some(delay) = due {
            self.schedule_background_flush(delay);
        }
        Ok(())
    }

    /// `GrB_Matrix_extractTuples`: all stored tuples in row-major order.
    /// Forces completion.
    pub fn extract_tuples(&self) -> Result<Vec<(Index, Index, T)>> {
        Ok(self.forced_storage()?.to_tuples())
    }

    /// `GrB_Matrix_clear`: remove all stored elements (dimensions kept).
    /// Never fails and never forces — the old value, complete or not,
    /// and any pending point updates are simply abandoned.
    pub fn clear(&self) {
        let mut delta = self.delta.lock();
        delta.clear();
        *self.overlay.lock() = None;
        self.install_csr(Csr::empty(self.nrows, self.ncols));
    }

    /// `GrB_Matrix_dup`: a new object with a copy of this object's
    /// current (possibly still deferred) value and format policy.
    /// Snapshot-cheap even with pending point updates: the copy shares
    /// the Arc'd base node and sealed runs through the epoch's overlay
    /// node — the original's log is *not* drained, and the overlay
    /// merge (shared with any same-epoch reader) runs only when one
    /// side observes the value.
    pub fn dup(&self) -> Matrix<T> {
        let node = self.capture();
        // The copy aliases the (possibly deferred) value node through a
        // second cell, which the original handle's observe-probe cannot
        // see — pin the node so the fusion pass never absorbs it.
        node.pin();
        Matrix {
            nrows: self.nrows,
            ncols: self.ncols,
            cell: Arc::new(RwLock::new(node)),
            policy: Arc::new(RwLock::new(self.format_policy())),
            delta: Arc::new(Mutex::new(DeltaLog::new())),
            overlay: Arc::new(Mutex::new(None)),
        }
    }

    /// Take an O(1) immutable [`MatrixSnapshot`] of this object's value
    /// at the current delta epoch: the Arc'd base node plus Arc clones
    /// of the sealed runs. The snapshot never drains this handle's log
    /// and is unaffected by every later write, flush, or compaction —
    /// the MVCC read side of ingest-while-query streaming.
    pub fn snapshot(&self) -> MatrixSnapshot<T> {
        let (epoch, base, runs, node) = self.overlay_parts();
        // The snapshot forces `base` directly for point probes; pin it
        // (and the uninstalled overlay) against fusion absorption.
        base.pin();
        node.pin();
        MatrixSnapshot::new(
            self.nrows,
            self.ncols,
            epoch,
            base,
            runs,
            node,
            self.format_policy(),
        )
    }

    /// Pending-update introspection: buffered entry count, sealed-run
    /// count, and the current epoch (the server's `STATS` surface).
    pub fn delta_stats(&self) -> DeltaStats {
        self.delta.lock().stats()
    }

    /// Per-row stored-element counts (`row_degrees[i]` = out-degree of
    /// vertex `i` for an adjacency matrix). Forces completion; the
    /// result is memoized on the backing store, so repeated calls — and
    /// the SpMSpV direction heuristic, which consults the same cache —
    /// are O(1) until the next merge swaps the store.
    pub fn row_degrees(&self) -> Result<Arc<[usize]>> {
        Ok(self.forced_storage()?.row_degrees())
    }

    /// Per-column stored-element counts (in-degrees). Memoized like
    /// [`Matrix::row_degrees`].
    pub fn col_degrees(&self) -> Result<Arc<[usize]>> {
        Ok(self.forced_storage()?.col_degrees())
    }

    // ----- storage-format hints (GxB-style per-object options) -----

    /// The storage format currently holding this object's value. Forces
    /// completion (the format of a deferred value isn't chosen yet).
    pub fn format(&self) -> Result<Format> {
        Ok(self.forced_storage()?.format())
    }

    /// The format policy applied to values computed into this object.
    pub fn format_policy(&self) -> FormatPolicy {
        *self.policy.read()
    }

    /// Set the format policy for values computed into this object from
    /// now on; the current value (deferred or not) is left as stored.
    pub fn set_format_policy(&self, policy: FormatPolicy) {
        *self.policy.write() = policy;
    }

    /// `GxB_Matrix_Option_set(…, FORMAT, …)` analog: pin this object to
    /// `format`, converting the current value now (forces completion) and
    /// directing future computed values into the same layout.
    pub fn set_format(&self, format: Format) -> Result<()> {
        self.set_format_policy(FormatPolicy::Force(format));
        let store = self.forced_storage()?;
        if store.format() != format {
            self.install(Node::ready((*store).clone().into_format(format)));
        }
        Ok(())
    }

    /// `GxB_set(matrix, TileShape, rows × cols)` analog: shard this
    /// object's value into a 2D tile grid, converting the current value
    /// now (forces completion) and directing future computed values into
    /// the same grid. The grid is clamped to the matrix dimensions.
    pub fn set_tile_shape(&self, rows: usize, cols: usize) -> Result<()> {
        if rows == 0 || cols == 0 {
            return Err(Error::InvalidValue(format!(
                "tile grid must be positive, got {rows}x{cols}"
            )));
        }
        if rows > u16::MAX as usize || cols > u16::MAX as usize {
            return Err(Error::InvalidValue(format!(
                "tile grid {rows}x{cols} exceeds the {} per-axis maximum",
                u16::MAX
            )));
        }
        self.set_format_policy(FormatPolicy::Tiled {
            rows: rows as u16,
            cols: cols as u16,
        });
        let store = self.forced_storage()?;
        let clamped = crate::storage::tiled::clamp_grid(self.nrows, self.ncols, (rows, cols));
        if store.tile_grid() != Some(clamped) {
            self.install(Node::ready((*store).clone().into_tiled((rows, cols))));
        }
        Ok(())
    }

    /// The configured tile grid, if this object's policy shards it.
    pub fn tile_shape(&self) -> Option<(usize, usize)> {
        self.format_policy().tile_grid()
    }

    /// Undo [`Matrix::set_tile_shape`]: back to `FormatPolicy::Auto`,
    /// re-storing the current value as a single slab (forces completion).
    pub fn clear_tile_shape(&self) -> Result<()> {
        self.set_format_policy(FormatPolicy::Auto);
        let store = self.forced_storage()?;
        if store.tile_grid().is_some() {
            self.install(Node::ready(
                (*store).clone().apply_policy(FormatPolicy::Auto),
            ));
        }
        Ok(())
    }

    /// Force completion of this object alone (the released C spec's
    /// per-object `GrB_Matrix_wait`), surfacing any execution error from
    /// its defining computation. Merges any pending point updates.
    pub fn wait(&self) -> Result<()> {
        let node = self.resolve() as Arc<dyn Completable>;
        force(&node)
    }

    /// `true` once the object's value is computed and stored with no
    /// pending point updates. Diagnostic for the execution-model tests.
    pub fn is_complete(&self) -> bool {
        self.delta.lock().is_empty() && self.current_node().is_complete()
    }

    fn check_bounds(&self, i: Index, j: Index) -> Result<()> {
        if i >= self.nrows || j >= self.ncols {
            return Err(Error::InvalidIndex(format!(
                "({i}, {j}) out of bounds for {}x{} matrix",
                self.nrows, self.ncols
            )));
        }
        Ok(())
    }

    // ----- internal plumbing for the operation layer -----

    /// The current node (a point-in-time view: later handle swaps don't
    /// affect it). Does NOT include pending point updates — value
    /// observers use [`Matrix::resolve`] or [`Matrix::capture`] instead.
    pub(crate) fn current_node(&self) -> Arc<MatrixNode<T>> {
        self.cell.read().clone()
    }

    /// Epoch, base node, sealed runs, and the epoch's overlay node —
    /// the read side shared by [`Matrix::snapshot`] and
    /// [`Matrix::capture`]. With no pending updates the overlay *is*
    /// the base. Otherwise the overlay is a deferred `overlay` DAG node
    /// that k-way merges `(base, runs)` under the object's format
    /// policy, memoized per epoch so every same-epoch reader shares one
    /// merge. Nothing is drained: the log keeps its entries and writers
    /// keep appending.
    ///
    /// Memo soundness: every path that installs a new base empties the
    /// log first (flush drains, whole-output writes discard, `clear`
    /// clears), and the epoch is strictly monotone, so (epoch, log
    /// non-empty) uniquely identifies the `(base, runs)` pair the memo
    /// entry was built from.
    fn overlay_parts(&self) -> OverlayParts<T> {
        let mut delta = self.delta.lock();
        let base = self.current_node();
        let epoch = delta.epoch();
        if delta.is_empty() {
            return (epoch, base.clone(), Vec::new(), base);
        }
        let runs = delta.runs_snapshot();
        let mut memo = self.overlay.lock();
        if let Some((e, node)) = memo.as_ref() {
            if *e == epoch {
                return (epoch, base, runs, node.clone());
            }
        }
        let policy = self.format_policy();
        let merge_base = base.clone();
        let merge_runs = runs.clone();
        let node = Node::pending_kind(
            "overlay",
            vec![base.clone() as Arc<dyn Completable>],
            Box::new(move || {
                let store = merge_base.ready_storage()?;
                Ok(merge::merge_into_store(store.as_ref(), &merge_runs, policy))
            }),
        );
        *memo = Some((epoch, node.clone()));
        (epoch, base, runs, node)
    }

    /// The node a kernel should capture as this object's input value:
    /// the current node when no updates are pending, else the epoch's
    /// shared overlay node. Unlike [`Matrix::resolve`], capture leaves
    /// the delta log intact — an operation reading this object never
    /// blocks, or is blocked by, a concurrent writer's flush.
    pub(crate) fn capture(&self) -> Arc<MatrixNode<T>> {
        self.overlay_parts().3
    }

    /// The current node *including* pending point updates, with the log
    /// drained: if the delta buffer is non-empty, install a deferred
    /// flush node merging it into the base (a DAG node depending on the
    /// current value, so scheduling, tracing, and §V program-order
    /// error semantics all apply) and return it. Completion-forcing
    /// reads and the background flusher come through here; kernel input
    /// capture uses the non-draining [`Matrix::capture`].
    ///
    /// The merge runs row-partitioned on the worker pool under the
    /// kernel cost model and is bitwise-deterministic at any degree; the
    /// merged value is re-stored under the object's format policy, so
    /// `FormatPolicy::Auto` re-selects after a flush. If the epoch's
    /// overlay node already exists (a reader got here first), it is
    /// adopted and installed instead — the same pending set is never
    /// merged twice. Neither node registers a fuse face or hook, so a
    /// producer with pending updates is never fusable and the flush
    /// itself absorbs nothing.
    pub(crate) fn resolve(&self) -> Arc<MatrixNode<T>> {
        let mut delta = self.delta.lock();
        if delta.is_empty() {
            return self.current_node();
        }
        let epoch = delta.epoch();
        let mut memo = self.overlay.lock();
        if let Some((e, node)) = memo.take() {
            if e == epoch {
                delta.drain();
                drop(memo);
                self.install(node.clone());
                return node;
            }
        }
        drop(memo);
        let runs = delta.drain();
        let base = self.current_node();
        let policy = self.format_policy();
        let dep = base.clone() as Arc<dyn Completable>;
        let node = Node::pending_kind(
            "flush",
            vec![dep],
            Box::new(move || {
                let store = base.ready_storage()?;
                Ok(merge::merge_into_store(store.as_ref(), &runs, policy))
            }),
        );
        self.install(node.clone());
        node
    }

    /// Queue a background flush of this object's pending updates after
    /// `delay`. Holds only weak references: if every handle is dropped
    /// before the job fires, the job is a no-op (pending updates die
    /// with the object, as program order allows).
    fn schedule_background_flush(&self, delay: Duration) {
        let weak = MatrixWeak {
            nrows: self.nrows,
            ncols: self.ncols,
            cell: Arc::downgrade(&self.cell),
            policy: Arc::downgrade(&self.policy),
            delta: Arc::downgrade(&self.delta),
            overlay: Arc::downgrade(&self.overlay),
        };
        snapshot::schedule_flush(
            delay,
            Box::new(move || {
                if let Some(m) = weak.upgrade() {
                    m.flush_now();
                }
            }),
        );
    }

    /// Flush pending updates into the backing store now (the background
    /// flusher's entry point). Execution errors are left on the node —
    /// they surface, in program order, on the next read that forces it.
    pub(crate) fn flush_now(&self) {
        {
            let mut delta = self.delta.lock();
            // Re-arm first: pushes racing with this flush queue the next.
            delta.clear_flush_scheduled();
            if delta.is_empty() {
                return;
            }
        }
        let node = self.resolve();
        let _ = force(&(node as Arc<dyn Completable>));
        snapshot::note_background_flush();
    }

    /// Drop any pending point updates: the caller is about to overwrite
    /// this object's whole value (an operation writing the output), so
    /// the buffered updates are dead by program order.
    pub(crate) fn discard_pending(&self) {
        self.delta.lock().clear();
        *self.overlay.lock() = None;
    }

    /// Publish a new value node for this object.
    pub(crate) fn install(&self, node: Arc<MatrixNode<T>>) {
        *self.cell.write() = node;
    }

    /// Publish an immediately computed CSR value, stored under this
    /// object's format policy.
    pub(crate) fn install_csr(&self, csr: Csr<T>) {
        self.install(Node::ready(MatrixStore::from_csr(
            csr,
            self.format_policy(),
        )));
    }

    /// Force and read the current store (pending updates merged).
    pub(crate) fn forced_storage(&self) -> Result<Arc<MatrixStore<T>>> {
        let node = self.resolve();
        force(&(node.clone() as Arc<dyn Completable>))?;
        node.ready_storage()
    }

    /// Handle-liveness probe for the fusion pass: reports whether `node`
    /// is still observable through this handle — true while this
    /// object's cell exists and still points at `node`. Once every
    /// handle is dropped or re-pointed at a newer value, the probe turns
    /// false and `node` becomes a candidate for absorption.
    pub(crate) fn observe_probe(
        &self,
        node: &Arc<MatrixNode<T>>,
    ) -> Box<dyn Fn() -> bool + Send + Sync> {
        let cell = Arc::downgrade(&self.cell);
        let ptr = Arc::as_ptr(node) as *const u8 as usize;
        Box::new(move || {
            cell.upgrade()
                .is_some_and(|c| Arc::as_ptr(&*c.read()) as *const u8 as usize == ptr)
        })
    }
}

/// Weak form of a [`Matrix`] handle, held by queued background-flush
/// jobs so the flusher never extends an object's lifetime.
struct MatrixWeak<T: Scalar> {
    nrows: Index,
    ncols: Index,
    cell: Weak<RwLock<Arc<MatrixNode<T>>>>,
    policy: Weak<RwLock<FormatPolicy>>,
    delta: Weak<Mutex<DeltaLog<(Index, Index), T>>>,
    overlay: OverlayMemoWeak<T>,
}

impl<T: Scalar> MatrixWeak<T> {
    fn upgrade(&self) -> Option<Matrix<T>> {
        Some(Matrix {
            nrows: self.nrows,
            ncols: self.ncols,
            cell: self.cell.upgrade()?,
            policy: self.policy.upgrade()?,
            delta: self.delta.upgrade()?,
            overlay: self.overlay.upgrade()?,
        })
    }
}

/// Read a complete node's value as CSR in the orientation the descriptor
/// asks for, through the store's memoized views: a `Csc` store serves
/// `transposed` for free, and any conversion happens once per node no
/// matter how many consumers ask.
pub(crate) fn oriented_storage<T: Scalar>(
    node: &Arc<MatrixNode<T>>,
    transposed: bool,
) -> Result<Arc<Csr<T>>> {
    let store = node.ready_storage()?;
    Ok(if transposed {
        store.col_csr()
    } else {
        store.row_csr()
    })
}

impl<T: Scalar> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix<{}x{}>", self.nrows, self.ncols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::binary::Plus;

    #[test]
    fn new_rejects_zero_dimensions() {
        assert!(matches!(
            Matrix::<i32>::new(0, 3),
            Err(Error::InvalidValue(_))
        ));
        assert!(matches!(
            Matrix::<i32>::new(3, 0),
            Err(Error::InvalidValue(_))
        ));
    }

    #[test]
    fn new_matrix_is_empty() {
        let m = Matrix::<f64>::new(3, 4).unwrap();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nvals().unwrap(), 0);
        assert_eq!(m.get(1, 2).unwrap(), None);
    }

    #[test]
    fn from_tuples_and_roundtrip() {
        let m = Matrix::from_tuples(2, 3, &[(0, 1, 5), (1, 2, 7)]).unwrap();
        assert_eq!(m.extract_tuples().unwrap(), vec![(0, 1, 5), (1, 2, 7)]);
        assert_eq!(m.get(0, 1).unwrap(), Some(5));
    }

    #[test]
    fn from_tuples_rejects_duplicates() {
        let e = Matrix::from_tuples(2, 2, &[(0, 0, 1), (0, 0, 2)]).unwrap_err();
        assert!(matches!(e, Error::InvalidValue(_)));
    }

    #[test]
    fn build_combines_duplicates() {
        let m = Matrix::<i32>::new(2, 2).unwrap();
        m.build(&[0, 0, 1], &[1, 1, 0], &[2, 3, 9], &Plus::new())
            .unwrap();
        assert_eq!(m.get(0, 1).unwrap(), Some(5));
        assert_eq!(m.get(1, 0).unwrap(), Some(9));
    }

    #[test]
    fn build_requires_empty_target() {
        let m = Matrix::from_tuples(2, 2, &[(0, 0, 1)]).unwrap();
        let e = m.build(&[1], &[1], &[2], &Plus::new()).unwrap_err();
        assert!(matches!(e, Error::OutputNotEmpty(_)));
    }

    #[test]
    fn set_get_remove_clear() {
        let m = Matrix::<i32>::new(2, 2).unwrap();
        m.set(0, 1, 10).unwrap();
        m.set(1, 0, 20).unwrap();
        m.set(0, 1, 11).unwrap();
        assert_eq!(m.get(0, 1).unwrap(), Some(11));
        assert_eq!(m.nvals().unwrap(), 2);
        m.remove(0, 1).unwrap();
        assert_eq!(m.get(0, 1).unwrap(), None);
        m.clear();
        assert_eq!(m.nvals().unwrap(), 0);
        assert_eq!(m.shape(), (2, 2));
    }

    #[test]
    fn bounds_are_api_errors() {
        let m = Matrix::<i32>::new(2, 2).unwrap();
        assert!(matches!(m.get(2, 0), Err(Error::InvalidIndex(_))));
        assert!(matches!(m.set(0, 5, 1), Err(Error::InvalidIndex(_))));
        assert!(matches!(m.remove(9, 9), Err(Error::InvalidIndex(_))));
    }

    #[test]
    fn point_updates_defer_until_read() {
        let m = Matrix::<i32>::new(4, 4).unwrap();
        m.set(1, 1, 5).unwrap();
        m.set(1, 1, 6).unwrap(); // last write wins
        m.remove(3, 3).unwrap(); // absent: no-op at merge
        assert!(!m.is_complete(), "set/remove buffer instead of forcing");
        assert_eq!(m.get(1, 1).unwrap(), Some(6)); // read flushes
        assert!(m.is_complete());
        assert_eq!(m.nvals().unwrap(), 1);
    }

    #[test]
    fn build_after_clear_with_pending_ops() {
        // clear() abandons pending point updates, so a subsequent build
        // targets a truly-empty matrix and succeeds
        let m = Matrix::<i32>::new(2, 2).unwrap();
        m.set(0, 0, 1).unwrap();
        m.clear();
        m.build(&[1], &[1], &[7], &Plus::new()).unwrap();
        assert_eq!(m.extract_tuples().unwrap(), vec![(1, 1, 7)]);

        // pending updates WITHOUT a clear are part of the value: build
        // flushes them first and then errors on the non-empty target
        let m2 = Matrix::<i32>::new(2, 2).unwrap();
        m2.set(0, 0, 1).unwrap();
        let e = m2.build(&[1], &[1], &[7], &Plus::new()).unwrap_err();
        assert!(matches!(e, Error::OutputNotEmpty(_)));
        assert_eq!(m2.get(0, 0).unwrap(), Some(1)); // flush happened
    }

    #[test]
    fn clear_discards_pending_updates() {
        let m = Matrix::<i32>::new(2, 2).unwrap();
        m.set(0, 0, 1).unwrap();
        m.clear();
        assert_eq!(m.nvals().unwrap(), 0);
        assert!(m.is_complete());
    }

    #[test]
    fn clone_aliases_dup_copies() {
        let m = Matrix::from_tuples(2, 2, &[(0, 0, 1)]).unwrap();
        let alias = m.clone();
        let copy = m.dup();
        m.set(1, 1, 9).unwrap();
        assert_eq!(alias.get(1, 1).unwrap(), Some(9)); // same object
        assert_eq!(copy.get(1, 1).unwrap(), None); // snapshot copy
    }

    #[test]
    fn dup_with_pending_is_snapshot_cheap() {
        // Regression: dup() used to force a full flush of the source's
        // pending updates. It must now share the base + runs and leave
        // the source log untouched.
        let m = Matrix::from_tuples(3, 3, &[(0, 0, 1)]).unwrap();
        m.set(1, 1, 5).unwrap();
        m.remove(0, 0).unwrap();
        let copy = m.dup();
        assert!(!m.is_complete(), "dup must not drain the source log");
        assert_eq!(m.delta_stats().pending_len, 2);
        // The copy sees the pending updates as part of its value…
        assert_eq!(copy.get(1, 1).unwrap(), Some(5));
        assert_eq!(copy.get(0, 0).unwrap(), None);
        // …and stays isolated from writes after the dup.
        m.set(2, 2, 7).unwrap();
        assert_eq!(copy.get(2, 2).unwrap(), None);
        assert_eq!(m.get(2, 2).unwrap(), Some(7));
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let m = Matrix::from_tuples(2, 2, &[(0, 0, 1)]).unwrap();
        m.set(0, 1, 2).unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.epoch(), 1);
        // Writes and reads after the snapshot don't change its view.
        m.set(0, 1, 99).unwrap();
        m.remove(0, 0).unwrap();
        assert_eq!(m.nvals().unwrap(), 1); // forces a flush on m
        assert_eq!(snap.get(0, 0).unwrap(), Some(1));
        assert_eq!(snap.get(0, 1).unwrap(), Some(2));
        assert_eq!(snap.nvals().unwrap(), 2);
        assert_eq!(snap.extract_tuples().unwrap(), vec![(0, 0, 1), (0, 1, 2)]);
        // Snapshot reads never drained the source's log (it was drained
        // by m.nvals above, not by the snapshot).
        let m2 = snap.to_matrix();
        assert_eq!(m2.extract_tuples().unwrap(), vec![(0, 0, 1), (0, 1, 2)]);
    }

    #[test]
    fn same_epoch_readers_share_one_overlay() {
        let m = Matrix::<i32>::new(4, 4).unwrap();
        m.set(1, 2, 3).unwrap();
        let a = m.snapshot();
        let b = m.snapshot();
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.nvals().unwrap(), 1);
        assert_eq!(b.get(1, 2).unwrap(), Some(3));
    }
}
