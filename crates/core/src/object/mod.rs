//! The opaque GraphBLAS collections (paper §III-A) and the mask-argument
//! plumbing.

pub mod mask_arg;
pub mod matrix;
pub mod vector;

pub use mask_arg::{MatrixMask, VectorMask};
pub use matrix::Matrix;
pub use vector::Vector;
