//! Mask arguments: how `GrB_NULL` / a matrix / a vector is passed as the
//! `Mask` parameter of an operation.
//!
//! Operations accept any [`MatrixMask`] / [`VectorMask`]:
//! [`NoMask`] (the `GrB_NULL` literal) or a reference
//! to any collection whose domain casts to Boolean. At call time the
//! operation takes a *snapshot* of the mask object's node (program-order
//! semantics under deferral) together with the descriptor's
//! SCMP/STRUCTURE flags; the kernel-facing
//! [`MaskCsr`]/[`MaskVec`] is materialized at evaluation time.

use std::sync::Arc;

use crate::descriptor::Descriptor;
use crate::error::Result;
use crate::exec::Completable;
use crate::index::Index;
use crate::mask::{MaskCsr, MaskVec, NoMask};
use crate::object::matrix::{Matrix, MatrixNode};
use crate::object::vector::{Vector, VectorNode};
use crate::scalar::AsBool;

// ----- type-erased mask sources -----

#[doc(hidden)]
pub trait MaskSource2: Send + Sync {
    fn completable(&self) -> Arc<dyn Completable>;
    fn materialize(&self, structural: bool, complement: bool) -> Result<MaskCsr>;
}

struct MatrixMaskSource<M: AsBool>(Arc<MatrixNode<M>>);

impl<M: AsBool> MaskSource2 for MatrixMaskSource<M> {
    fn completable(&self) -> Arc<dyn Completable> {
        self.0.clone()
    }

    fn materialize(&self, structural: bool, complement: bool) -> Result<MaskCsr> {
        let st = self.0.ready_storage()?.row_csr();
        Ok(MaskCsr::from_csr(&st, structural, complement))
    }
}

#[doc(hidden)]
pub trait MaskSource1: Send + Sync {
    fn completable(&self) -> Arc<dyn Completable>;
    fn materialize(&self, structural: bool, complement: bool) -> Result<MaskVec>;
}

struct VectorMaskSource<M: AsBool>(Arc<VectorNode<M>>);

impl<M: AsBool> MaskSource1 for VectorMaskSource<M> {
    fn completable(&self) -> Arc<dyn Completable> {
        self.0.clone()
    }

    fn materialize(&self, structural: bool, complement: bool) -> Result<MaskVec> {
        let st = self.0.ready_storage()?;
        Ok(MaskVec::from_vec(&st, structural, complement))
    }
}

// ----- snapshots captured by operations -----

/// A 2D mask argument snapshot: the mask object's node at call time plus
/// the descriptor's mask flags.
#[derive(Clone)]
#[doc(hidden)]
pub enum MaskSnap2 {
    All,
    Mat {
        src: Arc<dyn MaskSource2>,
        structural: bool,
        complement: bool,
    },
}

impl MaskSnap2 {
    /// `true` when no mask was supplied (every position admitted).
    pub(crate) fn is_all(&self) -> bool {
        matches!(self, MaskSnap2::All)
    }

    pub(crate) fn deps(&self) -> Vec<Arc<dyn Completable>> {
        match self {
            MaskSnap2::All => Vec::new(),
            MaskSnap2::Mat { src, .. } => vec![src.completable()],
        }
    }

    pub(crate) fn materialize(&self) -> Result<MaskCsr> {
        match self {
            MaskSnap2::All => Ok(MaskCsr::All),
            MaskSnap2::Mat {
                src,
                structural,
                complement,
            } => src.materialize(*structural, *complement),
        }
    }
}

/// A 1D mask argument snapshot.
#[derive(Clone)]
#[doc(hidden)]
pub enum MaskSnap1 {
    All,
    Vec {
        src: Arc<dyn MaskSource1>,
        structural: bool,
        complement: bool,
    },
}

impl MaskSnap1 {
    /// `true` when no mask was supplied.
    pub(crate) fn is_all(&self) -> bool {
        matches!(self, MaskSnap1::All)
    }

    pub(crate) fn deps(&self) -> Vec<Arc<dyn Completable>> {
        match self {
            MaskSnap1::All => Vec::new(),
            MaskSnap1::Vec { src, .. } => vec![src.completable()],
        }
    }

    pub(crate) fn materialize(&self) -> Result<MaskVec> {
        match self {
            MaskSnap1::All => Ok(MaskVec::All),
            MaskSnap1::Vec {
                src,
                structural,
                complement,
            } => src.materialize(*structural, *complement),
        }
    }
}

// ----- public argument traits -----

/// A value usable as the 2D `Mask` argument of a matrix operation:
/// [`NoMask`] or `&Matrix<M>` with `M: AsBool`.
pub trait MatrixMask {
    /// Mask dimensions, if a mask is present (checked against the output).
    fn mask_dims(&self) -> Option<(Index, Index)>;
    #[doc(hidden)]
    fn snap(&self, desc: &Descriptor) -> MaskSnap2;
}

impl MatrixMask for NoMask {
    fn mask_dims(&self) -> Option<(Index, Index)> {
        None
    }

    fn snap(&self, _desc: &Descriptor) -> MaskSnap2 {
        MaskSnap2::All
    }
}

impl<M: AsBool> MatrixMask for &Matrix<M> {
    fn mask_dims(&self) -> Option<(Index, Index)> {
        Some(self.shape())
    }

    fn snap(&self, desc: &Descriptor) -> MaskSnap2 {
        MaskSnap2::Mat {
            src: Arc::new(MatrixMaskSource(self.capture())),
            structural: desc.is_mask_structural(),
            complement: desc.is_mask_complemented(),
        }
    }
}

/// A value usable as the 1D `mask` argument of a vector operation:
/// [`NoMask`] or `&Vector<M>` with `M: AsBool`.
pub trait VectorMask {
    fn mask_size(&self) -> Option<Index>;
    #[doc(hidden)]
    fn snap(&self, desc: &Descriptor) -> MaskSnap1;
}

impl VectorMask for NoMask {
    fn mask_size(&self) -> Option<Index> {
        None
    }

    fn snap(&self, _desc: &Descriptor) -> MaskSnap1 {
        MaskSnap1::All
    }
}

impl<M: AsBool> VectorMask for &Vector<M> {
    fn mask_size(&self) -> Option<Index> {
        Some(self.size())
    }

    fn snap(&self, desc: &Descriptor) -> MaskSnap1 {
        MaskSnap1::Vec {
            src: Arc::new(VectorMaskSource(self.capture())),
            structural: desc.is_mask_structural(),
            complement: desc.is_mask_complemented(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_mask_snapshots_to_all() {
        let d = Descriptor::default();
        assert!(matches!(MatrixMask::snap(&NoMask, &d), MaskSnap2::All));
        assert!(MatrixMask::mask_dims(&NoMask).is_none());
        let m = MatrixMask::snap(&NoMask, &d);
        assert!(m.deps().is_empty());
        assert!(m.materialize().unwrap().admits_all());
    }

    #[test]
    fn matrix_mask_snapshot_is_point_in_time() {
        let d = Descriptor::default();
        let m = Matrix::from_tuples(2, 2, &[(0, 0, 1i32)]).unwrap();
        let snap = (&m).snap(&d);
        // mutate after snapshot: the snapshot must not see it
        m.set(1, 1, 1).unwrap();
        let mask = snap.materialize().unwrap();
        assert!(mask.admits(0, 0));
        assert!(!mask.admits(1, 1));
    }

    #[test]
    fn descriptor_flags_flow_into_snapshot() {
        let m = Matrix::from_tuples(2, 2, &[(0, 0, 0i32)]).unwrap(); // stored false
        let plain = (&m).snap(&Descriptor::default()).materialize().unwrap();
        assert!(!plain.admits(0, 0)); // value mode drops stored false
        let structural = (&m)
            .snap(&Descriptor::default().structural_mask())
            .materialize()
            .unwrap();
        assert!(structural.admits(0, 0));
        let comp = (&m)
            .snap(&Descriptor::default().complement_mask())
            .materialize()
            .unwrap();
        assert!(comp.admits(0, 0));
        assert!(comp.admits(1, 1));
    }

    #[test]
    fn vector_mask_snapshot() {
        let v = Vector::from_tuples(3, &[(1, true)]).unwrap();
        let snap = (&v).snap(&Descriptor::default());
        assert_eq!((&v).mask_size(), Some(3));
        let mask = snap.materialize().unwrap();
        assert!(mask.admits(1));
        assert!(!mask.admits(0));
    }
}
