//! The opaque GraphBLAS vector (paper §III-A): `v = <D, N, {(i, v_i)}>`.
//!
//! Mirrors [`Matrix`](crate::object::Matrix): a handle over an immutable
//! value node, with point mutations deferred into a pending-update
//! buffer; see that module for the handle/node and delta semantics.

use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::algebra::binary::BinaryOp;
use crate::error::{Error, Result};
use crate::exec::{force, Completable, Node};
use crate::index::Index;
use crate::kernel::merge;
use crate::scalar::Scalar;
use crate::storage::coo::build_vector;
use crate::storage::delta::{DeltaLog, DeltaOp, DeltaStats, Run};
use crate::storage::snapshot::{self, VectorSnapshot};
use crate::storage::vec::SparseVec;

pub(crate) type VectorNode<T> = Node<SparseVec<T>>;

/// Per-epoch overlay memo shared by handle clones; see `OverlayMemo`
/// on the matrix side.
type OverlayMemo<T> = Arc<Mutex<Option<(u64, Arc<VectorNode<T>>)>>>;
type OverlayMemoWeak<T> = Weak<Mutex<Option<(u64, Arc<VectorNode<T>>)>>>;

/// An opaque GraphBLAS vector handle over domain `T`.
pub struct Vector<T: Scalar> {
    n: Index,
    cell: Arc<RwLock<Arc<VectorNode<T>>>>,
    /// Pending point mutations not yet merged into the value node.
    /// Shared by handle clones. Lock order: `delta` before `overlay`
    /// before `cell`.
    delta: Arc<Mutex<DeltaLog<Index, T>>>,
    /// Memoized per-epoch overlay node; see `Matrix::overlay`.
    overlay: OverlayMemo<T>,
}

impl<T: Scalar> Clone for Vector<T> {
    /// Clones the *handle* (aliases the same object); use
    /// [`Vector::dup`] for a copy.
    fn clone(&self) -> Self {
        Vector {
            n: self.n,
            cell: self.cell.clone(),
            delta: self.delta.clone(),
            overlay: self.overlay.clone(),
        }
    }
}

impl<T: Scalar> Vector<T> {
    /// `GrB_Vector_new(&v, domain, n)`: a vector with no stored elements.
    /// Size must be positive (paper §III-A: `N > 0`).
    pub fn new(n: Index) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidValue("vector size must be positive".into()));
        }
        Ok(Vector {
            n,
            cell: Arc::new(RwLock::new(Node::ready(SparseVec::empty(n)))),
            delta: Arc::new(Mutex::new(DeltaLog::new())),
            overlay: Arc::new(Mutex::new(None)),
        })
    }

    /// A handle wrapping an existing (pinned) value node — the bridge
    /// from [`VectorSnapshot::to_vector`] back into the kernel layer.
    pub(crate) fn from_shared_node(n: Index, node: Arc<VectorNode<T>>) -> Vector<T> {
        node.pin();
        Vector {
            n,
            cell: Arc::new(RwLock::new(node)),
            delta: Arc::new(Mutex::new(DeltaLog::new())),
            overlay: Arc::new(Mutex::new(None)),
        }
    }

    /// Convenience constructor from unique `(index, value)` tuples.
    pub fn from_tuples(n: Index, tuples: &[(Index, T)]) -> Result<Self> {
        let v = Vector::new(n)?;
        let idx: Vec<Index> = tuples.iter().map(|t| t.0).collect();
        let vals: Vec<T> = tuples.iter().map(|t| t.1.clone()).collect();
        let storage = build_vector(
            n,
            &idx,
            &vals,
            &crate::algebra::binary::First::<T, T>::new(),
        )?;
        if storage.nvals() != tuples.len() {
            return Err(Error::InvalidValue(
                "from_tuples given duplicate indices; use build() with a dup operator".into(),
            ));
        }
        v.install(Node::ready(storage));
        Ok(v)
    }

    /// Convenience constructor storing every element of a dense slice.
    pub fn from_dense(vals: &[T]) -> Result<Self> {
        if vals.is_empty() {
            return Err(Error::InvalidValue("vector size must be positive".into()));
        }
        Ok(Vector {
            n: vals.len(),
            cell: Arc::new(RwLock::new(Node::ready(SparseVec::from_dense(vals)))),
            delta: Arc::new(Mutex::new(DeltaLog::new())),
            overlay: Arc::new(Mutex::new(None)),
        })
    }

    /// `GrB_Vector_build`: copy elements from tuple arrays, combining
    /// duplicates with `dup`; the vector must be empty. Executes
    /// immediately in every mode (reads non-opaque arrays).
    pub fn build<F: BinaryOp<T, T, T>>(
        &self,
        indices: &[Index],
        vals: &[T],
        dup: &F,
    ) -> Result<()> {
        if self.nvals()? != 0 {
            return Err(Error::OutputNotEmpty(
                "build target must have no stored elements".into(),
            ));
        }
        let storage = build_vector(self.n, indices, vals, dup)?;
        self.install(Node::ready(storage));
        Ok(())
    }

    /// `GrB_Vector_size`.
    pub fn size(&self) -> Index {
        self.n
    }

    /// `GrB_Vector_nvals`. Forces completion.
    pub fn nvals(&self) -> Result<usize> {
        Ok(self.forced_storage()?.nvals())
    }

    /// `GrB_Vector_extractElement`. Forces completion.
    pub fn get(&self, i: Index) -> Result<Option<T>> {
        self.check_bounds(i)?;
        Ok(self.forced_storage()?.get(i).cloned())
    }

    /// `GrB_Vector_setElement`. Appends to the pending-update buffer —
    /// O(1) amortized in every mode (§IV deferral latitude); merged by
    /// the background auto-flusher or the next completion-forcing read.
    /// See [`Matrix::set`](crate::object::Matrix::set).
    pub fn set(&self, i: Index, v: T) -> Result<()> {
        self.check_bounds(i)?;
        let due = {
            let mut delta = self.delta.lock();
            delta.push(i, DeltaOp::Put(v));
            delta.autoflush_due(snapshot::flush_window())
        };
        if let Some(delay) = due {
            self.schedule_background_flush(delay);
        }
        Ok(())
    }

    /// `GrB_Vector_removeElement`. Deferred like [`Vector::set`];
    /// removing an absent element is a no-op, as the C API specifies.
    pub fn remove(&self, i: Index) -> Result<()> {
        self.check_bounds(i)?;
        let due = {
            let mut delta = self.delta.lock();
            delta.push(i, DeltaOp::Del);
            delta.autoflush_due(snapshot::flush_window())
        };
        if let Some(delay) = due {
            self.schedule_background_flush(delay);
        }
        Ok(())
    }

    /// `GrB_Vector_extractTuples`. Forces completion.
    pub fn extract_tuples(&self) -> Result<Vec<(Index, T)>> {
        Ok(self.forced_storage()?.to_tuples())
    }

    /// Dense rendering with `None` for absent elements. Forces completion.
    pub fn to_dense(&self) -> Result<Vec<Option<T>>> {
        Ok(self.forced_storage()?.to_dense())
    }

    /// `GrB_Vector_clear`. Abandons the old value and any pending point
    /// updates.
    pub fn clear(&self) {
        let mut delta = self.delta.lock();
        delta.clear();
        *self.overlay.lock() = None;
        self.install(Node::ready(SparseVec::empty(self.n)));
    }

    /// `GrB_Vector_dup`. Snapshot-cheap even with pending updates: the
    /// copy shares the base + sealed runs through the epoch's overlay
    /// node; the original's log is not drained. See
    /// [`Matrix::dup`](crate::object::Matrix::dup).
    pub fn dup(&self) -> Vector<T> {
        let node = self.capture();
        // See `Matrix::dup`: the copy aliases the value node outside the
        // original handle's observe-probe, so pin it against fusion.
        node.pin();
        Vector {
            n: self.n,
            cell: Arc::new(RwLock::new(node)),
            delta: Arc::new(Mutex::new(DeltaLog::new())),
            overlay: Arc::new(Mutex::new(None)),
        }
    }

    /// Take an O(1) immutable [`VectorSnapshot`] at the current delta
    /// epoch; see [`Matrix::snapshot`](crate::object::Matrix::snapshot).
    pub fn snapshot(&self) -> VectorSnapshot<T> {
        let (epoch, base, runs, node) = self.overlay_parts();
        base.pin();
        node.pin();
        VectorSnapshot::new(self.n, epoch, base, runs, node)
    }

    /// Pending-update introspection; see
    /// [`Matrix::delta_stats`](crate::object::Matrix::delta_stats).
    pub fn delta_stats(&self) -> DeltaStats {
        self.delta.lock().stats()
    }

    /// Force completion of this object alone (merges pending updates).
    pub fn wait(&self) -> Result<()> {
        let node = self.resolve() as Arc<dyn Completable>;
        force(&node)
    }

    /// `true` once the value is computed and stored with no pending
    /// point updates.
    pub fn is_complete(&self) -> bool {
        self.delta.lock().is_empty() && self.current_node().is_complete()
    }

    fn check_bounds(&self, i: Index) -> Result<()> {
        if i >= self.n {
            return Err(Error::InvalidIndex(format!(
                "index {i} out of bounds for vector of size {}",
                self.n
            )));
        }
        Ok(())
    }

    // ----- internal plumbing -----

    /// The current node, *excluding* pending point updates — value
    /// observers use [`Vector::resolve`] or [`Vector::capture`] instead.
    pub(crate) fn current_node(&self) -> Arc<VectorNode<T>> {
        self.cell.read().clone()
    }

    /// Epoch, base, sealed runs, and the epoch's memoized overlay node;
    /// see `Matrix::overlay_parts` for semantics and the memo-soundness
    /// argument.
    #[allow(clippy::type_complexity)]
    fn overlay_parts(
        &self,
    ) -> (
        u64,
        Arc<VectorNode<T>>,
        Vec<Run<Index, T>>,
        Arc<VectorNode<T>>,
    ) {
        let mut delta = self.delta.lock();
        let base = self.current_node();
        let epoch = delta.epoch();
        if delta.is_empty() {
            return (epoch, base.clone(), Vec::new(), base);
        }
        let runs = delta.runs_snapshot();
        let mut memo = self.overlay.lock();
        if let Some((e, node)) = memo.as_ref() {
            if *e == epoch {
                return (epoch, base, runs, node.clone());
            }
        }
        let merge_base = base.clone();
        let merge_runs = runs.clone();
        let node = Node::pending_kind(
            "overlay",
            vec![base.clone() as Arc<dyn Completable>],
            Box::new(move || {
                let store = merge_base.ready_storage()?;
                Ok(merge::merge_vector(store.as_ref(), &merge_runs))
            }),
        );
        *memo = Some((epoch, node.clone()));
        (epoch, base, runs, node)
    }

    /// The node a kernel should capture as this object's input value
    /// without draining the log; see
    /// [`Matrix::capture`](crate::object::Matrix).
    pub(crate) fn capture(&self) -> Arc<VectorNode<T>> {
        self.overlay_parts().3
    }

    /// The current node *including* pending point updates, with the log
    /// drained; see [`Matrix::resolve`](crate::object::Matrix) for the
    /// flush-node semantics (scheduling, determinism, fuse opacity) and
    /// overlay-memo adoption.
    pub(crate) fn resolve(&self) -> Arc<VectorNode<T>> {
        let mut delta = self.delta.lock();
        if delta.is_empty() {
            return self.current_node();
        }
        let epoch = delta.epoch();
        let mut memo = self.overlay.lock();
        if let Some((e, node)) = memo.take() {
            if e == epoch {
                delta.drain();
                drop(memo);
                self.install(node.clone());
                return node;
            }
        }
        drop(memo);
        let runs = delta.drain();
        let base = self.current_node();
        let dep = base.clone() as Arc<dyn Completable>;
        let node = Node::pending_kind(
            "flush",
            vec![dep],
            Box::new(move || {
                let store = base.ready_storage()?;
                Ok(merge::merge_vector(store.as_ref(), &runs))
            }),
        );
        self.install(node.clone());
        node
    }

    /// Queue a background flush after `delay`; weak references only, so
    /// the flusher never extends the object's lifetime.
    fn schedule_background_flush(&self, delay: Duration) {
        let weak = VectorWeak {
            n: self.n,
            cell: Arc::downgrade(&self.cell),
            delta: Arc::downgrade(&self.delta),
            overlay: Arc::downgrade(&self.overlay),
        };
        snapshot::schedule_flush(
            delay,
            Box::new(move || {
                if let Some(v) = weak.upgrade() {
                    v.flush_now();
                }
            }),
        );
    }

    /// Flush pending updates now (the background flusher's entry point);
    /// see [`Matrix::flush_now`](crate::object::Matrix).
    pub(crate) fn flush_now(&self) {
        {
            let mut delta = self.delta.lock();
            delta.clear_flush_scheduled();
            if delta.is_empty() {
                return;
            }
        }
        let node = self.resolve();
        let _ = force(&(node as Arc<dyn Completable>));
        snapshot::note_background_flush();
    }

    /// Drop any pending point updates (the whole value is about to be
    /// overwritten by an operation's output write).
    pub(crate) fn discard_pending(&self) {
        self.delta.lock().clear();
        *self.overlay.lock() = None;
    }

    pub(crate) fn install(&self, node: Arc<VectorNode<T>>) {
        *self.cell.write() = node;
    }

    pub(crate) fn forced_storage(&self) -> Result<Arc<SparseVec<T>>> {
        let node = self.resolve();
        force(&(node.clone() as Arc<dyn Completable>))?;
        node.ready_storage()
    }

    /// Handle-liveness probe for the fusion pass; see
    /// [`Matrix::observe_probe`](crate::object::Matrix).
    pub(crate) fn observe_probe(
        &self,
        node: &Arc<VectorNode<T>>,
    ) -> Box<dyn Fn() -> bool + Send + Sync> {
        let cell = Arc::downgrade(&self.cell);
        let ptr = Arc::as_ptr(node) as *const u8 as usize;
        Box::new(move || {
            cell.upgrade()
                .is_some_and(|c| Arc::as_ptr(&*c.read()) as *const u8 as usize == ptr)
        })
    }
}

/// Weak form of a [`Vector`] handle, held by queued background-flush
/// jobs; see `MatrixWeak`.
struct VectorWeak<T: Scalar> {
    n: Index,
    cell: Weak<RwLock<Arc<VectorNode<T>>>>,
    delta: Weak<Mutex<DeltaLog<Index, T>>>,
    overlay: OverlayMemoWeak<T>,
}

impl<T: Scalar> VectorWeak<T> {
    fn upgrade(&self) -> Option<Vector<T>> {
        Some(Vector {
            n: self.n,
            cell: self.cell.upgrade()?,
            delta: self.delta.upgrade()?,
            overlay: self.overlay.upgrade()?,
        })
    }
}

impl<T: Scalar> std::fmt::Debug for Vector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Vector<{}>", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::binary::Plus;

    #[test]
    fn new_rejects_zero_size() {
        assert!(matches!(Vector::<i32>::new(0), Err(Error::InvalidValue(_))));
        assert!(matches!(
            Vector::<i32>::from_dense(&[]),
            Err(Error::InvalidValue(_))
        ));
    }

    #[test]
    fn constructors() {
        let v = Vector::<i32>::new(5).unwrap();
        assert_eq!(v.size(), 5);
        assert_eq!(v.nvals().unwrap(), 0);
        let v = Vector::from_tuples(5, &[(1, 10), (3, 30)]).unwrap();
        assert_eq!(v.get(3).unwrap(), Some(30));
        assert_eq!(v.get(0).unwrap(), None);
        let v = Vector::from_dense(&[7, 8]).unwrap();
        assert_eq!(v.nvals().unwrap(), 2);
    }

    #[test]
    fn from_tuples_rejects_duplicates() {
        assert!(Vector::from_tuples(3, &[(1, 1), (1, 2)]).is_err());
    }

    #[test]
    fn build_and_mutate() {
        let v = Vector::<i32>::new(4).unwrap();
        v.build(&[2, 0, 2], &[5, 1, 6], &Plus::new()).unwrap();
        assert_eq!(v.extract_tuples().unwrap(), vec![(0, 1), (2, 11)]);
        assert!(v.build(&[1], &[1], &Plus::new()).is_err()); // not empty
        v.set(1, 99).unwrap();
        v.remove(0).unwrap();
        assert_eq!(v.to_dense().unwrap(), vec![None, Some(99), Some(11), None]);
        v.clear();
        assert_eq!(v.nvals().unwrap(), 0);
    }

    #[test]
    fn clone_aliases_dup_copies() {
        let v = Vector::from_tuples(3, &[(0, 1)]).unwrap();
        let alias = v.clone();
        let copy = v.dup();
        v.set(2, 9).unwrap();
        assert_eq!(alias.get(2).unwrap(), Some(9));
        assert_eq!(copy.get(2).unwrap(), None);
    }

    #[test]
    fn build_after_clear_with_pending_ops() {
        let v = Vector::<i32>::new(3).unwrap();
        v.set(0, 1).unwrap();
        v.clear(); // abandons the pending set -> truly empty
        v.build(&[2], &[9], &Plus::new()).unwrap();
        assert_eq!(v.extract_tuples().unwrap(), vec![(2, 9)]);

        let v2 = Vector::<i32>::new(3).unwrap();
        v2.set(0, 1).unwrap(); // pending, no clear
        let e = v2.build(&[2], &[9], &Plus::new()).unwrap_err();
        assert!(matches!(e, Error::OutputNotEmpty(_)));
        assert_eq!(v2.get(0).unwrap(), Some(1)); // build flushed first
    }

    #[test]
    fn point_updates_defer_until_read() {
        let v = Vector::<i32>::new(4).unwrap();
        v.set(2, 5).unwrap();
        v.remove(0).unwrap(); // absent: no-op at merge
        assert!(!v.is_complete(), "set/remove buffer instead of forcing");
        assert_eq!(v.get(2).unwrap(), Some(5)); // read flushes
        assert!(v.is_complete());
        assert_eq!(v.nvals().unwrap(), 1);
    }

    #[test]
    fn bounds_checked() {
        let v = Vector::<i32>::new(2).unwrap();
        assert!(matches!(v.get(2), Err(Error::InvalidIndex(_))));
        assert!(matches!(v.set(5, 1), Err(Error::InvalidIndex(_))));
    }

    #[test]
    fn dup_with_pending_is_snapshot_cheap() {
        let v = Vector::from_tuples(3, &[(0, 1)]).unwrap();
        v.set(1, 5).unwrap();
        v.remove(0).unwrap();
        let copy = v.dup();
        assert!(!v.is_complete(), "dup must not drain the source log");
        assert_eq!(v.delta_stats().pending_len, 2);
        assert_eq!(copy.get(1).unwrap(), Some(5));
        assert_eq!(copy.get(0).unwrap(), None);
        v.set(2, 7).unwrap();
        assert_eq!(copy.get(2).unwrap(), None);
        assert_eq!(v.get(2).unwrap(), Some(7));
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let v = Vector::from_tuples(3, &[(0, 1)]).unwrap();
        v.set(1, 2).unwrap();
        let snap = v.snapshot();
        assert_eq!(snap.epoch(), 1);
        v.set(1, 99).unwrap();
        v.remove(0).unwrap();
        assert_eq!(v.nvals().unwrap(), 1); // flushes v, not the snapshot
        assert_eq!(snap.get(0).unwrap(), Some(1));
        assert_eq!(snap.get(1).unwrap(), Some(2));
        assert_eq!(snap.nvals().unwrap(), 2);
        assert_eq!(snap.extract_tuples().unwrap(), vec![(0, 1), (1, 2)]);
        let v2 = snap.to_vector();
        assert_eq!(v2.extract_tuples().unwrap(), vec![(0, 1), (1, 2)]);
    }
}
