//! Index types and index selections.
//!
//! The C API uses `GrB_Index` (`uint64_t`) for vector and matrix indices.
//! On the 64-bit targets this library supports, Rust's `usize` is the same
//! width, so [`Index`] is an alias for `usize`.
//!
//! `extract` and `assign` take *index lists* that may also be the literal
//! `GrB_ALL` ("all indices, in order"). [`IndexSelection`] renders that
//! option faithfully and adds the strided-range selections of the later C
//! specification as a documented extension.

use crate::error::{Error, Result};

/// Vector and matrix index type (`GrB_Index`).
pub type Index = usize;

/// An index-list argument to `extract`/`assign`: either an explicit list,
/// the `GrB_ALL` literal, or (extension) a strided range.
#[derive(Debug, Clone, Copy)]
pub enum IndexSelection<'a> {
    /// `GrB_ALL`: every index of the corresponding dimension, in order.
    All,
    /// An explicit list of indices (duplicates allowed for `extract`,
    /// forbidden for `assign` outputs).
    List(&'a [Index]),
    /// Extension (`GrB_Range`-style): `lo..hi` (exclusive), stride 1.
    Range(Index, Index),
    /// Extension: `lo..hi` (exclusive) with a positive stride.
    Stride(Index, Index, Index),
}

/// Shorthand for [`IndexSelection::All`], mirroring the `GrB_ALL` literal.
pub const ALL: IndexSelection<'static> = IndexSelection::All;

impl<'a> IndexSelection<'a> {
    /// Number of indices selected, given the dimension `n` it applies to.
    pub fn len(&self, n: Index) -> usize {
        match *self {
            IndexSelection::All => n,
            IndexSelection::List(l) => l.len(),
            IndexSelection::Range(lo, hi) => hi.saturating_sub(lo),
            IndexSelection::Stride(lo, hi, s) => {
                if s == 0 || hi <= lo {
                    0
                } else {
                    (hi - lo).div_ceil(s)
                }
            }
        }
    }

    /// True if no indices are selected.
    pub fn is_empty(&self, n: Index) -> bool {
        self.len(n) == 0
    }

    /// Validate the selection against dimension `n` and materialize it as a
    /// vector of indices. Returns `InvalidIndex` if any index is out of
    /// bounds and `InvalidValue` for a zero stride.
    pub fn resolve(&self, n: Index) -> Result<Vec<Index>> {
        match *self {
            IndexSelection::All => Ok((0..n).collect()),
            IndexSelection::List(l) => {
                for &i in l {
                    if i >= n {
                        return Err(Error::InvalidIndex(format!(
                            "index {i} out of bounds for dimension {n}"
                        )));
                    }
                }
                Ok(l.to_vec())
            }
            IndexSelection::Range(lo, hi) => {
                if hi > n {
                    return Err(Error::InvalidIndex(format!(
                        "range end {hi} out of bounds for dimension {n}"
                    )));
                }
                Ok((lo..hi).collect())
            }
            IndexSelection::Stride(lo, hi, s) => {
                if s == 0 {
                    return Err(Error::InvalidValue("stride must be positive".into()));
                }
                if hi > n {
                    return Err(Error::InvalidIndex(format!(
                        "range end {hi} out of bounds for dimension {n}"
                    )));
                }
                Ok((lo..hi).step_by(s).collect())
            }
        }
    }

    /// True when the selection is exactly `0..n` in order (lets kernels take
    /// the identity fast path).
    pub fn is_identity(&self, n: Index) -> bool {
        match *self {
            IndexSelection::All => true,
            IndexSelection::Range(lo, hi) => lo == 0 && hi == n,
            IndexSelection::Stride(lo, hi, s) => lo == 0 && hi == n && s == 1,
            IndexSelection::List(l) => l.len() == n && l.iter().enumerate().all(|(k, &i)| k == i),
        }
    }
}

impl<'a> From<&'a [Index]> for IndexSelection<'a> {
    fn from(l: &'a [Index]) -> Self {
        IndexSelection::List(l)
    }
}

impl<'a> From<&'a Vec<Index>> for IndexSelection<'a> {
    fn from(l: &'a Vec<Index>) -> Self {
        IndexSelection::List(l)
    }
}

impl From<std::ops::Range<Index>> for IndexSelection<'static> {
    fn from(r: std::ops::Range<Index>) -> Self {
        IndexSelection::Range(r.start, r.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_resolves_to_identity() {
        assert_eq!(ALL.resolve(4).unwrap(), vec![0, 1, 2, 3]);
        assert!(ALL.is_identity(4));
        assert_eq!(ALL.len(4), 4);
    }

    #[test]
    fn list_bounds_checked() {
        let l = [0usize, 3, 1];
        let sel = IndexSelection::List(&l);
        assert_eq!(sel.resolve(4).unwrap(), vec![0, 3, 1]);
        assert!(matches!(sel.resolve(3), Err(Error::InvalidIndex(_))));
        assert!(!sel.is_identity(3));
    }

    #[test]
    fn list_identity_detection() {
        let l = [0usize, 1, 2];
        assert!(IndexSelection::List(&l).is_identity(3));
        assert!(!IndexSelection::List(&l).is_identity(4));
    }

    #[test]
    fn range_and_stride() {
        assert_eq!(
            IndexSelection::Range(1, 4).resolve(5).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            IndexSelection::Stride(0, 7, 3).resolve(7).unwrap(),
            vec![0, 3, 6]
        );
        assert_eq!(IndexSelection::Stride(0, 7, 3).len(7), 3);
        assert!(matches!(
            IndexSelection::Stride(0, 4, 0).resolve(5),
            Err(Error::InvalidValue(_))
        ));
        assert!(matches!(
            IndexSelection::Range(0, 9).resolve(5),
            Err(Error::InvalidIndex(_))
        ));
        assert!(IndexSelection::Range(0, 5).is_identity(5));
        assert!(IndexSelection::Stride(0, 5, 1).is_identity(5));
        assert!(!IndexSelection::Stride(0, 5, 2).is_identity(5));
    }

    #[test]
    fn empty_selections() {
        assert!(IndexSelection::Range(3, 3).is_empty(5));
        assert_eq!(IndexSelection::Range(4, 2).len(9), 0);
        assert!(IndexSelection::List(&[]).is_empty(5));
        assert!(!ALL.is_empty(1));
        assert!(ALL.is_empty(0));
    }
}
