//! `GrB_eWiseAdd` / `GrB_eWiseMult` (Table II): element-wise union and
//! intersection combines.
//!
//! `eWiseMult` takes a general `⊗ : D1 × D2 → D3` (only the stored-pattern
//! intersection is touched); `eWiseAdd` requires one domain (elements
//! stored in exactly one operand pass through unchanged, so all three
//! domains coincide — the C API would insert implicit casts here, which
//! the typed binding surfaces as an explicit `apply(Cast)`).

use std::any::Any;
use std::sync::Arc;

use crate::accum::Accumulate;
use crate::algebra::binary::BinaryOp;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::fuse::{DotFn, MatProducer, VecProducer};
use crate::exec::{Completable, Context};
use crate::kernel::ewise;
use crate::kernel::write::{write_matrix, write_vector};
use crate::mask::{MaskCsr, MaskVec};
use crate::object::mask_arg::{MatrixMask, VectorMask};
use crate::object::matrix::oriented_storage;
use crate::object::{Matrix, Vector};
use crate::op::{check_mask_dims1, check_mask_dims2, effective_dims};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

impl Context {
    /// `GrB_eWiseAdd` (matrix): `C<Mask> ⊙= A ⊕ B`.
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn ewise_add_matrix<T, F, Ac, Mk>(
        &self,
        c: &Matrix<T>,
        mask: Mk,
        accum: Ac,
        add: F,
        a: &Matrix<T>,
        b: &Matrix<T>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        F: BinaryOp<T, T, T>,
        Ac: Accumulate<T>,
        Mk: MatrixMask,
    {
        let tr_a = desc.is_first_transposed();
        let tr_b = desc.is_second_transposed();
        let da = effective_dims(a, tr_a);
        let db = effective_dims(b, tr_b);
        dim_check(da == db, || {
            format!("eWiseAdd operands differ: {da:?} vs {db:?}")
        })?;
        dim_check(c.shape() == da, || {
            format!("eWiseAdd output is {:?} but operands are {da:?}", c.shape())
        })?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        let (a_node, b_node) = (a.capture(), b.capture());
        let msnap = mask.snap(desc);
        let c_old_cap = crate::op::OldMatrix::capture(
            c,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _, b_node.clone() as _];
        deps.extend(c_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let pure = !Ac::IS_ACCUM && msnap.is_all();

        // Union combine under no mask pushdown: the face only offers a
        // full recompute (every position of either operand is live).
        let combine = {
            let (a_node, b_node, add) = (a_node.clone(), b_node.clone(), add.clone());
            move |_m: &MaskCsr| -> Result<Csr<T>> {
                let a_st = oriented_storage(&a_node, tr_a)?;
                let b_st = oriented_storage(&b_node, tr_b)?;
                let t = ewise::ewise_add_matrix(&a_st, &b_st, &add);
                if let Some(e) = add.poll_error() {
                    return Err(e);
                }
                Ok(t)
            }
        };
        let eval = {
            let combine = combine.clone();
            move || {
                let c_old = c_old_cap.storage()?;
                let mcsr = msnap.materialize()?;
                let t = combine(&mcsr)?;
                let out = write_matrix(&c_old, t, &accum, &mcsr, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(out)
            }
        };
        let face_deps: Vec<Arc<dyn Completable>> = deps.clone();
        let Some(node) = self.submit_matrix_fusable("eWiseAdd", c, deps, Box::new(eval))? else {
            return Ok(());
        };
        if pure {
            node.set_fuse_face(Arc::new(MatProducer::<T> {
                deps: face_deps,
                compute: Arc::new(combine),
                maskable: false,
                lazy: None,
                dot: None,
                kind: "eWiseAdd",
            }) as Arc<dyn Any + Send + Sync>);
        }
        Ok(())
    }

    /// `GrB_eWiseMult` (matrix): `C<Mask> ⊙= A ⊗ B`.
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn ewise_mult_matrix<D1, D2, D3, F, Ac, Mk>(
        &self,
        c: &Matrix<D3>,
        mask: Mk,
        accum: Ac,
        mul: F,
        a: &Matrix<D1>,
        b: &Matrix<D2>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        D1: Scalar,
        D2: Scalar,
        D3: Scalar,
        F: BinaryOp<D1, D2, D3>,
        Ac: Accumulate<D3>,
        Mk: MatrixMask,
    {
        let tr_a = desc.is_first_transposed();
        let tr_b = desc.is_second_transposed();
        let da = effective_dims(a, tr_a);
        let db = effective_dims(b, tr_b);
        dim_check(da == db, || {
            format!("eWiseMult operands differ: {da:?} vs {db:?}")
        })?;
        dim_check(c.shape() == da, || {
            format!(
                "eWiseMult output is {:?} but operands are {da:?}",
                c.shape()
            )
        })?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        let (a_node, b_node) = (a.capture(), b.capture());
        let msnap = mask.snap(desc);
        let c_old_cap = crate::op::OldMatrix::capture(
            c,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _, b_node.clone() as _];
        deps.extend(c_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let pure = !Ac::IS_ACCUM && msnap.is_all();

        let combine = {
            let (a_node, b_node, mul) = (a_node.clone(), b_node.clone(), mul.clone());
            move |_m: &MaskCsr| -> Result<Csr<D3>> {
                let a_st = oriented_storage(&a_node, tr_a)?;
                let b_st = oriented_storage(&b_node, tr_b)?;
                let t = ewise::ewise_mult_matrix(&a_st, &b_st, &mul);
                if let Some(e) = mul.poll_error() {
                    return Err(e);
                }
                Ok(t)
            }
        };
        // Intersection emission for rewrite 4 (dot-reduce): walk the two
        // sorted patterns row by row, emitting each product as it forms —
        // the reduce consumer folds these without ever storing T.
        let dot: DotFn<D3> = {
            let (a_node, b_node, mul) = (a_node.clone(), b_node.clone(), mul.clone());
            Arc::new(move |emit: &mut dyn FnMut(D3)| -> Result<()> {
                let a_st = oriented_storage(&a_node, tr_a)?;
                let b_st = oriented_storage(&b_node, tr_b)?;
                for i in 0..a_st.nrows() {
                    let (ac, av) = a_st.row(i);
                    let (bc, bv) = b_st.row(i);
                    let (mut p, mut q) = (0, 0);
                    while p < ac.len() && q < bc.len() {
                        match ac[p].cmp(&bc[q]) {
                            std::cmp::Ordering::Less => p += 1,
                            std::cmp::Ordering::Greater => q += 1,
                            std::cmp::Ordering::Equal => {
                                emit(mul.apply(&av[p], &bv[q]));
                                p += 1;
                                q += 1;
                            }
                        }
                    }
                }
                if let Some(e) = mul.poll_error() {
                    return Err(e);
                }
                Ok(())
            })
        };
        let eval = {
            let combine = combine.clone();
            move || {
                let c_old = c_old_cap.storage()?;
                let mcsr = msnap.materialize()?;
                let t = combine(&mcsr)?;
                let out = write_matrix(&c_old, t, &accum, &mcsr, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(out)
            }
        };
        let face_deps: Vec<Arc<dyn Completable>> = deps.clone();
        let Some(node) = self.submit_matrix_fusable("eWiseMult", c, deps, Box::new(eval))? else {
            return Ok(());
        };
        if pure {
            node.set_fuse_face(Arc::new(MatProducer::<D3> {
                deps: face_deps,
                compute: Arc::new(combine),
                maskable: false,
                lazy: None,
                dot: Some(dot),
                kind: "eWiseMult",
            }) as Arc<dyn Any + Send + Sync>);
        }
        Ok(())
    }

    /// `GrB_eWiseAdd` (vector): `w<mask> ⊙= u ⊕ v`.
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn ewise_add_vector<T, F, Ac, Mk>(
        &self,
        w: &Vector<T>,
        mask: Mk,
        accum: Ac,
        add: F,
        u: &Vector<T>,
        v: &Vector<T>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        F: BinaryOp<T, T, T>,
        Ac: Accumulate<T>,
        Mk: VectorMask,
    {
        dim_check(u.size() == v.size(), || {
            format!("eWiseAdd operands differ: {} vs {}", u.size(), v.size())
        })?;
        dim_check(w.size() == u.size(), || {
            format!(
                "eWiseAdd output is {} but operands are {}",
                w.size(),
                u.size()
            )
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let (u_node, v_node) = (u.capture(), v.capture());
        let msnap = mask.snap(desc);
        let w_old_cap = crate::op::OldVector::capture(
            w,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![u_node.clone() as _, v_node.clone() as _];
        deps.extend(w_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let pure = !Ac::IS_ACCUM && msnap.is_all();

        let combine = {
            let (u_node, v_node, add) = (u_node.clone(), v_node.clone(), add.clone());
            move |_m: &MaskVec| -> Result<SparseVec<T>> {
                let u_st = u_node.ready_storage()?;
                let v_st = v_node.ready_storage()?;
                let t = ewise::ewise_add_vector(&u_st, &v_st, &add);
                if let Some(e) = add.poll_error() {
                    return Err(e);
                }
                Ok(t)
            }
        };
        let eval = {
            let combine = combine.clone();
            move || {
                let w_old = w_old_cap.storage()?;
                let mvec = msnap.materialize()?;
                let t = combine(&mvec)?;
                let out = write_vector(&w_old, t, &accum, &mvec, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(out)
            }
        };
        let face_deps: Vec<Arc<dyn Completable>> = deps.clone();
        let Some(node) = self.submit_vector_fusable("eWiseAdd", w, deps, Box::new(eval))? else {
            return Ok(());
        };
        if pure {
            node.set_fuse_face(Arc::new(VecProducer::<T> {
                deps: face_deps,
                compute: Arc::new(combine),
                maskable: false,
                lazy: None,
                dot: None,
                kind: "eWiseAdd",
            }) as Arc<dyn Any + Send + Sync>);
        }
        Ok(())
    }

    /// `GrB_eWiseMult` (vector): `w<mask> ⊙= u ⊗ v`.
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn ewise_mult_vector<D1, D2, D3, F, Ac, Mk>(
        &self,
        w: &Vector<D3>,
        mask: Mk,
        accum: Ac,
        mul: F,
        u: &Vector<D1>,
        v: &Vector<D2>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        D1: Scalar,
        D2: Scalar,
        D3: Scalar,
        F: BinaryOp<D1, D2, D3>,
        Ac: Accumulate<D3>,
        Mk: VectorMask,
    {
        dim_check(u.size() == v.size(), || {
            format!("eWiseMult operands differ: {} vs {}", u.size(), v.size())
        })?;
        dim_check(w.size() == u.size(), || {
            format!(
                "eWiseMult output is {} but operands are {}",
                w.size(),
                u.size()
            )
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let (u_node, v_node) = (u.capture(), v.capture());
        let msnap = mask.snap(desc);
        let w_old_cap = crate::op::OldVector::capture(
            w,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![u_node.clone() as _, v_node.clone() as _];
        deps.extend(w_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let pure = !Ac::IS_ACCUM && msnap.is_all();

        let combine = {
            let (u_node, v_node, mul) = (u_node.clone(), v_node.clone(), mul.clone());
            move |_m: &MaskVec| -> Result<SparseVec<D3>> {
                let u_st = u_node.ready_storage()?;
                let v_st = v_node.ready_storage()?;
                let t = ewise::ewise_mult_vector(&u_st, &v_st, &mul);
                if let Some(e) = mul.poll_error() {
                    return Err(e);
                }
                Ok(t)
            }
        };
        // Intersection emission for rewrite 4 (dot-reduce): fold the
        // elementwise products without materializing T — the fused form
        // of a dot product expressed as eWiseMult + reduce.
        let dot: DotFn<D3> = {
            let (u_node, v_node, mul) = (u_node.clone(), v_node.clone(), mul.clone());
            Arc::new(move |emit: &mut dyn FnMut(D3)| -> Result<()> {
                let u_st = u_node.ready_storage()?;
                let v_st = v_node.ready_storage()?;
                let (ui, uv) = (u_st.indices(), u_st.vals());
                let (vi, vv) = (v_st.indices(), v_st.vals());
                let (mut p, mut q) = (0, 0);
                while p < ui.len() && q < vi.len() {
                    match ui[p].cmp(&vi[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            emit(mul.apply(&uv[p], &vv[q]));
                            p += 1;
                            q += 1;
                        }
                    }
                }
                if let Some(e) = mul.poll_error() {
                    return Err(e);
                }
                Ok(())
            })
        };
        let eval = {
            let combine = combine.clone();
            move || {
                let w_old = w_old_cap.storage()?;
                let mvec = msnap.materialize()?;
                let t = combine(&mvec)?;
                let out = write_vector(&w_old, t, &accum, &mvec, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(out)
            }
        };
        let face_deps: Vec<Arc<dyn Completable>> = deps.clone();
        let Some(node) = self.submit_vector_fusable("eWiseMult", w, deps, Box::new(eval))? else {
            return Ok(());
        };
        if pure {
            node.set_fuse_face(Arc::new(VecProducer::<D3> {
                deps: face_deps,
                compute: Arc::new(combine),
                maskable: false,
                lazy: None,
                dot: Some(dot),
                kind: "eWiseMult",
            }) as Arc<dyn Any + Send + Sync>);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::{Accum, NoAccum};
    use crate::algebra::binary::{Plus, Times};
    use crate::error::Error;
    use crate::mask::NoMask;

    #[test]
    fn matrix_add_and_mult() {
        let ctx = Context::blocking();
        let a = Matrix::from_tuples(2, 2, &[(0, 0, 1), (0, 1, 2)]).unwrap();
        let b = Matrix::from_tuples(2, 2, &[(0, 0, 10), (1, 1, 20)]).unwrap();
        let c = Matrix::<i32>::new(2, 2).unwrap();
        ctx.ewise_add_matrix(
            &c,
            NoMask,
            NoAccum,
            Plus::new(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            c.extract_tuples().unwrap(),
            vec![(0, 0, 11), (0, 1, 2), (1, 1, 20)]
        );
        ctx.ewise_mult_matrix(
            &c,
            NoMask,
            NoAccum,
            Times::new(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(0, 0, 10)]);
    }

    #[test]
    fn fig3_line42_numsp_accumulation() {
        // GrB_eWiseAdd(&numsp, NULL, NULL, Int32Add, numsp, frontier, NULL)
        let ctx = Context::blocking();
        let numsp = Matrix::from_tuples(3, 1, &[(0, 0, 1)]).unwrap();
        let frontier = Matrix::from_tuples(3, 1, &[(1, 0, 2), (2, 0, 1)]).unwrap();
        ctx.ewise_add_matrix(
            &numsp,
            NoMask,
            NoAccum,
            Plus::<i32>::new(),
            &numsp,
            &frontier,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            numsp.extract_tuples().unwrap(),
            vec![(0, 0, 1), (1, 0, 2), (2, 0, 1)]
        );
    }

    #[test]
    fn vector_variants_with_mask_and_accum() {
        let ctx = Context::blocking();
        let u = Vector::from_tuples(3, &[(0, 1), (1, 2)]).unwrap();
        let v = Vector::from_tuples(3, &[(1, 10), (2, 20)]).unwrap();
        let w = Vector::from_tuples(3, &[(2, 100)]).unwrap();
        let mask = Vector::from_tuples(3, &[(1, true), (2, true)]).unwrap();
        ctx.ewise_add_vector(
            &w,
            &mask,
            Accum(Plus::<i32>::new()),
            Plus::new(),
            &u,
            &v,
            &Descriptor::default(),
        )
        .unwrap();
        // t = {0:1, 1:12, 2:20}; admitted {1,2}: w(1)=12, w(2)=100+20;
        // w(0) old absent kept absent
        assert_eq!(w.extract_tuples().unwrap(), vec![(1, 12), (2, 120)]);

        let w2 = Vector::<i32>::new(3).unwrap();
        ctx.ewise_mult_vector(
            &w2,
            NoMask,
            NoAccum,
            Times::new(),
            &u,
            &v,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(w2.extract_tuples().unwrap(), vec![(1, 20)]);
    }

    #[test]
    fn mixed_domain_mult() {
        use crate::algebra::binary::binary_fn;
        let ctx = Context::blocking();
        let counts = Matrix::from_tuples(1, 2, &[(0, 0, 4i32), (0, 1, 9)]).unwrap();
        let scales = Matrix::from_tuples(1, 2, &[(0, 0, 0.5f64), (0, 1, 2.0)]).unwrap();
        let out = Matrix::<f64>::new(1, 2).unwrap();
        ctx.ewise_mult_matrix(
            &out,
            NoMask,
            NoAccum,
            binary_fn(|c: &i32, s: &f64| *c as f64 * s),
            &counts,
            &scales,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            out.extract_tuples().unwrap(),
            vec![(0, 0, 2.0), (0, 1, 18.0)]
        );
    }

    #[test]
    fn transposed_operands() {
        let ctx = Context::blocking();
        let a = Matrix::from_tuples(2, 3, &[(0, 2, 5)]).unwrap();
        let b = Matrix::from_tuples(3, 2, &[(2, 0, 7)]).unwrap();
        let c = Matrix::<i32>::new(2, 3).unwrap();
        ctx.ewise_add_matrix(
            &c,
            NoMask,
            NoAccum,
            Plus::new(),
            &a,
            &b,
            &Descriptor::default().transpose_second(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(0, 2, 12)]);
    }

    #[test]
    fn dimension_mismatch() {
        let ctx = Context::blocking();
        let a = Matrix::<i32>::new(2, 2).unwrap();
        let b = Matrix::<i32>::new(2, 3).unwrap();
        let c = Matrix::<i32>::new(2, 2).unwrap();
        assert!(matches!(
            ctx.ewise_add_matrix(
                &c,
                NoMask,
                NoAccum,
                Plus::<i32>::new(),
                &a,
                &b,
                &Descriptor::default()
            ),
            Err(Error::DimensionMismatch(_))
        ));
        let u = Vector::<i32>::new(2).unwrap();
        let v = Vector::<i32>::new(3).unwrap();
        let w = Vector::<i32>::new(2).unwrap();
        assert!(matches!(
            ctx.ewise_mult_vector(
                &w,
                NoMask,
                NoAccum,
                Times::<i32>::new(),
                &u,
                &v,
                &Descriptor::default()
            ),
            Err(Error::DimensionMismatch(_))
        ));
    }
}
