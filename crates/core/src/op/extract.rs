//! `GrB_extract` (Table II): `C<Mask> ⊙= A(i, j)` — gather a
//! subcollection by index selections (`GrB_ALL`, explicit lists, or the
//! range extension; see [`IndexSelection`]).

use crate::accum::Accumulate;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::Context;
use crate::index::IndexSelection;
use crate::kernel::extract::{extract_matrix, extract_matrix_col, extract_vector};
use crate::kernel::write::{write_matrix, write_vector};
use crate::object::mask_arg::{MatrixMask, VectorMask};
use crate::object::matrix::oriented_storage;
use crate::object::{Matrix, Vector};
use crate::op::{check_mask_dims1, check_mask_dims2, effective_dims};
use crate::scalar::Scalar;

impl Context {
    /// `GrB_extract` (matrix): `C<Mask> ⊙= A(rows, cols)`.
    ///
    /// The BC example uses this to initialize the frontier
    /// (Fig. 3 line 33): columns of `A^T` selected by the source-vertex
    /// array, all rows, complemented `numsp` mask.
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn extract_matrix<T, Ac, Mk>(
        &self,
        c: &Matrix<T>,
        mask: Mk,
        accum: Ac,
        a: &Matrix<T>,
        rows: IndexSelection<'_>,
        cols: IndexSelection<'_>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        Ac: Accumulate<T>,
        Mk: MatrixMask,
    {
        let tr_a = desc.is_first_transposed();
        let (am, an) = effective_dims(a, tr_a);
        let rows = rows.resolve(am)?;
        let cols = cols.resolve(an)?;
        dim_check(c.shape() == (rows.len(), cols.len()), || {
            format!(
                "extract output is {:?} but selection is {}x{}",
                c.shape(),
                rows.len(),
                cols.len()
            )
        })?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        let a_node = a.capture();
        let msnap = mask.snap(desc);
        let c_old_cap = crate::op::OldMatrix::capture(
            c,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _];
        deps.extend(c_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let a_st = oriented_storage(&a_node, tr_a)?;
            let c_old = c_old_cap.storage()?;
            let mcsr = msnap.materialize()?;
            let t = extract_matrix(&a_st, &rows, &cols);
            let out = write_matrix(&c_old, t, &accum, &mcsr, replace);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(out)
        };
        self.submit_matrix("extract", c, deps, Box::new(eval))
    }

    /// `GrB_extract` (vector): `w<mask> ⊙= u(indices)`.
    pub fn extract_vector<T, Ac, Mk>(
        &self,
        w: &Vector<T>,
        mask: Mk,
        accum: Ac,
        u: &Vector<T>,
        indices: IndexSelection<'_>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        Ac: Accumulate<T>,
        Mk: VectorMask,
    {
        let indices = indices.resolve(u.size())?;
        dim_check(w.size() == indices.len(), || {
            format!(
                "extract output has size {} but selection has {}",
                w.size(),
                indices.len()
            )
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let u_node = u.capture();
        let msnap = mask.snap(desc);
        let w_old_cap = crate::op::OldVector::capture(
            w,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![u_node.clone() as _];
        deps.extend(w_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let u_st = u_node.ready_storage()?;
            let w_old = w_old_cap.storage()?;
            let mvec = msnap.materialize()?;
            let t = extract_vector(&u_st, &indices);
            let out = write_vector(&w_old, t, &accum, &mvec, replace);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(out)
        };
        self.submit_vector("extract", w, deps, Box::new(eval))
    }

    /// `GrB_Col_extract`: `w<mask> ⊙= A(rows, j)` — one column as a
    /// vector.
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn extract_col<T, Ac, Mk>(
        &self,
        w: &Vector<T>,
        mask: Mk,
        accum: Ac,
        a: &Matrix<T>,
        rows: IndexSelection<'_>,
        j: crate::index::Index,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        Ac: Accumulate<T>,
        Mk: VectorMask,
    {
        let tr_a = desc.is_first_transposed();
        let (am, an) = effective_dims(a, tr_a);
        if j >= an {
            return Err(crate::error::Error::InvalidIndex(format!(
                "column {j} out of bounds for effective width {an}"
            )));
        }
        let rows = rows.resolve(am)?;
        dim_check(w.size() == rows.len(), || {
            format!(
                "extract output has size {} but selection has {}",
                w.size(),
                rows.len()
            )
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let a_node = a.capture();
        let msnap = mask.snap(desc);
        let w_old_cap = crate::op::OldVector::capture(
            w,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _];
        deps.extend(w_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let a_st = oriented_storage(&a_node, tr_a)?;
            let w_old = w_old_cap.storage()?;
            let mvec = msnap.materialize()?;
            let t = extract_matrix_col(&a_st, &rows, j);
            let out = write_vector(&w_old, t, &accum, &mvec, replace);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(out)
        };
        self.submit_vector("extract", w, deps, Box::new(eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::NoAccum;
    use crate::error::Error;
    use crate::index::ALL;
    use crate::mask::NoMask;

    fn a() -> Matrix<i32> {
        Matrix::from_tuples(
            3,
            3,
            &[
                (0, 0, 1),
                (0, 1, 2),
                (1, 1, 3),
                (1, 2, 4),
                (2, 0, 5),
                (2, 2, 6),
            ],
        )
        .unwrap()
    }

    #[test]
    fn extract_submatrix_with_lists() {
        let ctx = Context::blocking();
        let c = Matrix::<i32>::new(2, 2).unwrap();
        ctx.extract_matrix(
            &c,
            NoMask,
            NoAccum,
            &a(),
            IndexSelection::List(&[0, 2]),
            IndexSelection::List(&[2, 0]),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            c.extract_tuples().unwrap(),
            vec![(0, 1, 1), (1, 0, 6), (1, 1, 5)]
        );
    }

    #[test]
    fn fig3_line33_frontier_init() {
        // frontier<!numsp, replace> = A^T(ALL, s) — transposed, masked
        let ctx = Context::blocking();
        let s = [1usize];
        let numsp = Matrix::from_tuples(3, 1, &[(1, 0, 1)]).unwrap();
        let frontier = Matrix::<i32>::new(3, 1).unwrap();
        let desc = Descriptor::default()
            .transpose_first()
            .complement_mask()
            .replace();
        ctx.extract_matrix(
            &frontier,
            &numsp,
            NoAccum,
            &a(),
            ALL,
            IndexSelection::List(&s),
            &desc,
        )
        .unwrap();
        // A^T(:,1) = A(1,:) = {1:3, 2:4}; complement of numsp excludes row 1
        assert_eq!(frontier.extract_tuples().unwrap(), vec![(2, 0, 4)]);
    }

    #[test]
    fn extract_vector_and_ranges() {
        let ctx = Context::blocking();
        let u = Vector::from_dense(&[0, 10, 20, 30, 40]).unwrap();
        let w = Vector::<i32>::new(2).unwrap();
        ctx.extract_vector(
            &w,
            NoMask,
            NoAccum,
            &u,
            IndexSelection::Stride(1, 5, 2),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 10), (1, 30)]);
    }

    #[test]
    fn extract_col_op() {
        let ctx = Context::blocking();
        let w = Vector::<i32>::new(3).unwrap();
        ctx.extract_col(&w, NoMask, NoAccum, &a(), ALL, 1, &Descriptor::default())
            .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn bad_indices_are_api_errors() {
        let ctx = Context::blocking();
        let c = Matrix::<i32>::new(1, 1).unwrap();
        assert!(matches!(
            ctx.extract_matrix(
                &c,
                NoMask,
                NoAccum,
                &a(),
                IndexSelection::List(&[9]),
                IndexSelection::List(&[0]),
                &Descriptor::default(),
            ),
            Err(Error::InvalidIndex(_))
        ));
        let w = Vector::<i32>::new(3).unwrap();
        assert!(matches!(
            ctx.extract_col(&w, NoMask, NoAccum, &a(), ALL, 7, &Descriptor::default()),
            Err(Error::InvalidIndex(_))
        ));
    }

    #[test]
    fn output_shape_must_match_selection() {
        let ctx = Context::blocking();
        let c = Matrix::<i32>::new(2, 2).unwrap();
        assert!(matches!(
            ctx.extract_matrix(&c, NoMask, NoAccum, &a(), ALL, ALL, &Descriptor::default()),
            Err(Error::DimensionMismatch(_))
        ));
    }
}
