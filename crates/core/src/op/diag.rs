//! Diagonal constructors/extractors (documented extension; GraphBLAS
//! 2.0's `GrB_Matrix_diag` and SuiteSparse's `GxB_Vector_diag`):
//! build a matrix carrying a vector on diagonal `k`, and read a
//! diagonal back out as a vector.

use crate::error::{dim_check, Error, Result};
use crate::exec::Context;
use crate::index::Index;
use crate::object::{Matrix, Vector};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::vec::SparseVec;

impl Context {
    /// `GrB_Matrix_diag`: `C` (square, `size(v) + |k|` wide) holds `v`
    /// on diagonal `k` and nothing else.
    pub fn diag_matrix<T: Scalar>(&self, c: &Matrix<T>, v: &Vector<T>, k: i64) -> Result<()> {
        let n = v.size() + k.unsigned_abs() as usize;
        dim_check(c.shape() == (n, n), || {
            format!(
                "diag output must be {n}x{n} for a size-{} vector on diagonal {k}, got {:?}",
                v.size(),
                c.shape()
            )
        })?;
        let v_node = v.capture();
        let deps = vec![v_node.clone() as _];
        let eval = move || {
            let st = v_node.ready_storage()?;
            let tuples = st.iter().map(|(i, val)| {
                let (r, c) = if k >= 0 {
                    (i, i + k as usize)
                } else {
                    (i + (-k) as usize, i)
                };
                (r, c, val.clone())
            });
            Ok(Csr::from_sorted_tuples(n, n, tuples))
        };
        self.submit_matrix("diag", c, deps, Box::new(eval))
    }

    /// `GxB_Vector_diag`: `w(i) = A(i, i + k)` for `k >= 0`
    /// (`A(i - k, i)` mirrored for `k < 0`), over stored elements.
    pub fn diag_extract<T: Scalar>(&self, w: &Vector<T>, a: &Matrix<T>, k: i64) -> Result<()> {
        let (m, n) = a.shape();
        let len = if k >= 0 {
            n.saturating_sub(k as usize).min(m)
        } else {
            m.saturating_sub((-k) as usize).min(n)
        };
        if len == 0 {
            return Err(Error::InvalidValue(format!(
                "diagonal {k} of a {m}x{n} matrix is empty"
            )));
        }
        dim_check(w.size() == len, || {
            format!("diag output must have size {len}, got {}", w.size())
        })?;
        let a_node = a.capture();
        let deps = vec![a_node.clone() as _];
        let eval = move || {
            let st = a_node.ready_storage()?;
            let mut idx: Vec<Index> = Vec::new();
            let mut vals: Vec<T> = Vec::new();
            for d in 0..len {
                let (i, j) = if k >= 0 {
                    (d, d + k as usize)
                } else {
                    (d + (-k) as usize, d)
                };
                if let Some(v) = st.get(i, j) {
                    idx.push(d);
                    vals.push(v.clone());
                }
            }
            Ok(SparseVec::from_sorted_parts(len, idx, vals))
        };
        self.submit_vector("diag", w, deps, Box::new(eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_diagonal_round_trip() {
        let ctx = Context::blocking();
        let v = Vector::from_tuples(3, &[(0, 1.0), (2, 3.0)]).unwrap();
        let c = Matrix::<f64>::new(3, 3).unwrap();
        ctx.diag_matrix(&c, &v, 0).unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(0, 0, 1.0), (2, 2, 3.0)]);
        let back = Vector::<f64>::new(3).unwrap();
        ctx.diag_extract(&back, &c, 0).unwrap();
        assert_eq!(back.extract_tuples().unwrap(), v.extract_tuples().unwrap());
    }

    #[test]
    fn off_diagonals() {
        let ctx = Context::blocking();
        let v = Vector::from_dense(&[7, 8]).unwrap();
        let up = Matrix::<i32>::new(3, 3).unwrap();
        ctx.diag_matrix(&up, &v, 1).unwrap();
        assert_eq!(up.extract_tuples().unwrap(), vec![(0, 1, 7), (1, 2, 8)]);
        let down = Matrix::<i32>::new(3, 3).unwrap();
        ctx.diag_matrix(&down, &v, -1).unwrap();
        assert_eq!(down.extract_tuples().unwrap(), vec![(1, 0, 7), (2, 1, 8)]);
        // extract the sub-diagonal back
        let w = Vector::<i32>::new(2).unwrap();
        ctx.diag_extract(&w, &down, -1).unwrap();
        assert_eq!(w.to_dense().unwrap(), vec![Some(7), Some(8)]);
    }

    #[test]
    fn rectangular_diag_extract() {
        let ctx = Context::blocking();
        let a = Matrix::from_tuples(2, 4, &[(0, 0, 1), (1, 1, 2), (1, 3, 9)]).unwrap();
        let w = Vector::<i32>::new(2).unwrap();
        ctx.diag_extract(&w, &a, 0).unwrap();
        assert_eq!(w.to_dense().unwrap(), vec![Some(1), Some(2)]);
        let w2 = Vector::<i32>::new(2).unwrap();
        ctx.diag_extract(&w2, &a, 2).unwrap();
        // A(1,3) = 9 lies on diagonal 2 at offset 1
        assert_eq!(w2.extract_tuples().unwrap(), vec![(1, 9)]);
    }

    #[test]
    fn dimension_and_emptiness_errors() {
        let ctx = Context::blocking();
        let v = Vector::<i32>::from_dense(&[1, 2]).unwrap();
        let wrong = Matrix::<i32>::new(2, 2).unwrap(); // needs 3x3 for k=1
        assert!(ctx.diag_matrix(&wrong, &v, 1).is_err());
        let a = Matrix::<i32>::new(2, 2).unwrap();
        let w = Vector::<i32>::new(2).unwrap();
        assert!(ctx.diag_extract(&w, &a, 5).is_err()); // empty diagonal
    }
}
