//! `GrB_mxv` and `GrB_vxm` (Table II): matrix–vector products over a
//! semiring.

use std::any::Any;
use std::sync::Arc;

use crate::accum::Accumulate;
use crate::algebra::binary::BinaryOp;
use crate::algebra::semiring::Semiring;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::fuse::VecProducer;
use crate::exec::{Completable, Context};
use crate::kernel::spmspv;
use crate::kernel::write::write_vector;
use crate::mask::MaskVec;
use crate::object::mask_arg::VectorMask;
use crate::object::{Matrix, Vector};
use crate::op::{check_mask_dims1, effective_dims};
use crate::scalar::Scalar;
use crate::storage::vec::SparseVec;

impl Context {
    /// `GrB_mxv(w, mask, accum, op, A, u, desc)`:
    /// `w<mask> ⊙= A ⊕.⊗ u`.
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn mxv<D1, D2, D3, S, Ac, Mk>(
        &self,
        w: &Vector<D3>,
        mask: Mk,
        accum: Ac,
        semiring: S,
        a: &Matrix<D1>,
        u: &Vector<D2>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        D1: Scalar,
        D2: Scalar,
        D3: Scalar,
        S: Semiring<D1, D2, D3>,
        Ac: Accumulate<D3>,
        Mk: VectorMask,
    {
        let tr_a = desc.is_first_transposed();
        let (am, ak) = effective_dims(a, tr_a);
        dim_check(ak == u.size(), || {
            format!("mxv: matrix is {am}x{ak} but vector has size {}", u.size())
        })?;
        dim_check(w.size() == am, || {
            format!(
                "mxv: output has size {} but product has size {am}",
                w.size()
            )
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let a_node = a.capture();
        let u_node = u.capture();
        let msnap = mask.snap(desc);
        let w_old_cap = crate::op::OldVector::capture(
            w,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _, u_node.clone() as _];
        deps.extend(w_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();
        let pure = !Ac::IS_ACCUM && msnap.is_all();

        // The internal product under a write mask, shared between the
        // unfused evaluator and the node's fusion face (mask pushdown).
        let product = {
            let (a_node, u_node) = (a_node.clone(), u_node.clone());
            let semiring = semiring.clone();
            move |mvec: &MaskVec| -> Result<SparseVec<D3>> {
                let u_st = u_node.ready_storage()?;
                let a_st = a_node.ready_storage()?;
                let t = spmspv::mxv(&semiring, &a_st, &u_st, tr_a, mvec);
                if let Some(e) = semiring
                    .add()
                    .poll_error()
                    .or_else(|| semiring.mul().poll_error())
                {
                    return Err(e);
                }
                Ok(t)
            }
        };
        let eval = {
            let product = product.clone();
            move || {
                let w_old = w_old_cap.storage()?;
                let mvec = msnap.materialize()?;
                let t = product(&mvec)?;
                let out = write_vector(&w_old, t, &accum, &mvec, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(out)
            }
        };
        let face_deps: Vec<Arc<dyn Completable>> = deps.clone();
        let Some(node) = self.submit_vector_fusable("mxv", w, deps, Box::new(eval))? else {
            return Ok(());
        };
        if pure {
            node.set_fuse_face(Arc::new(VecProducer::<D3> {
                deps: face_deps,
                compute: Arc::new(product),
                maskable: true,
                lazy: None,
                dot: None,
                kind: "mxv",
            }) as Arc<dyn Any + Send + Sync>);
        }
        Ok(())
    }

    /// `GrB_vxm(w, mask, accum, op, u, A, desc)`:
    /// `w^T<mask^T> ⊙= u^T ⊕.⊗ A`. The descriptor's `GrB_INP1` transposes
    /// `A` (the matrix is the *second* input here).
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn vxm<D1, D2, D3, S, Ac, Mk>(
        &self,
        w: &Vector<D3>,
        mask: Mk,
        accum: Ac,
        semiring: S,
        u: &Vector<D1>,
        a: &Matrix<D2>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        D1: Scalar,
        D2: Scalar,
        D3: Scalar,
        S: Semiring<D1, D2, D3>,
        Ac: Accumulate<D3>,
        Mk: VectorMask,
    {
        let tr_a = desc.is_second_transposed();
        let (ak, an) = effective_dims(a, tr_a);
        dim_check(u.size() == ak, || {
            format!("vxm: vector has size {} but matrix is {ak}x{an}", u.size())
        })?;
        dim_check(w.size() == an, || {
            format!(
                "vxm: output has size {} but product has size {an}",
                w.size()
            )
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let a_node = a.capture();
        let u_node = u.capture();
        let msnap = mask.snap(desc);
        let w_old_cap = crate::op::OldVector::capture(
            w,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _, u_node.clone() as _];
        deps.extend(w_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let pure = !Ac::IS_ACCUM && msnap.is_all();

        let product = {
            let (a_node, u_node) = (a_node.clone(), u_node.clone());
            let semiring = semiring.clone();
            move |mvec: &MaskVec| -> Result<SparseVec<D3>> {
                let a_st = a_node.ready_storage()?;
                let u_st = u_node.ready_storage()?;
                let t = spmspv::vxm(&semiring, &u_st, &a_st, tr_a, mvec);
                if let Some(e) = semiring
                    .add()
                    .poll_error()
                    .or_else(|| semiring.mul().poll_error())
                {
                    return Err(e);
                }
                Ok(t)
            }
        };
        let eval = {
            let product = product.clone();
            move || {
                let w_old = w_old_cap.storage()?;
                let mvec = msnap.materialize()?;
                let t = product(&mvec)?;
                let out = write_vector(&w_old, t, &accum, &mvec, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(out)
            }
        };
        let face_deps: Vec<Arc<dyn Completable>> = deps.clone();
        let Some(node) = self.submit_vector_fusable("vxm", w, deps, Box::new(eval))? else {
            return Ok(());
        };
        if pure {
            node.set_fuse_face(Arc::new(VecProducer::<D3> {
                deps: face_deps,
                compute: Arc::new(product),
                maskable: true,
                lazy: None,
                dot: None,
                kind: "vxm",
            }) as Arc<dyn Any + Send + Sync>);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::{Accum, NoAccum};
    use crate::algebra::binary::Plus;
    use crate::algebra::semiring::{lor_land, plus_times};
    use crate::error::Error;
    use crate::mask::NoMask;

    fn a() -> Matrix<i32> {
        Matrix::from_tuples(2, 3, &[(0, 0, 1), (0, 2, 2), (1, 1, 3)]).unwrap()
    }

    #[test]
    fn mxv_basic() {
        let ctx = Context::blocking();
        let u = Vector::from_dense(&[10, 20, 30]).unwrap();
        let w = Vector::<i32>::new(2).unwrap();
        ctx.mxv(
            &w,
            NoMask,
            NoAccum,
            plus_times::<i32>(),
            &a(),
            &u,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 70), (1, 60)]);
    }

    #[test]
    fn vxm_basic() {
        let ctx = Context::blocking();
        let u = Vector::from_dense(&[10, 20]).unwrap();
        let w = Vector::<i32>::new(3).unwrap();
        ctx.vxm(
            &w,
            NoMask,
            NoAccum,
            plus_times::<i32>(),
            &u,
            &a(),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 10), (1, 60), (2, 20)]);
    }

    #[test]
    fn mxv_with_transpose_equals_vxm() {
        let ctx = Context::blocking();
        let u = Vector::from_dense(&[10, 20]).unwrap();
        let w1 = Vector::<i32>::new(3).unwrap();
        let w2 = Vector::<i32>::new(3).unwrap();
        ctx.mxv(
            &w1,
            NoMask,
            NoAccum,
            plus_times::<i32>(),
            &a(),
            &u,
            &Descriptor::default().transpose_first(),
        )
        .unwrap();
        ctx.vxm(
            &w2,
            NoMask,
            NoAccum,
            plus_times::<i32>(),
            &u,
            &a(),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(w1.extract_tuples().unwrap(), w2.extract_tuples().unwrap());
    }

    #[test]
    fn bfs_step_with_complemented_mask() {
        // classic BFS frontier update: next<!visited> = frontier lor.land A
        let ctx = Context::blocking();
        let adj = Matrix::from_tuples(3, 3, &[(0, 1, true), (1, 2, true), (1, 0, true)]).unwrap();
        let frontier = Vector::from_tuples(3, &[(1, true)]).unwrap();
        let visited = Vector::from_tuples(3, &[(0, true), (1, true)]).unwrap();
        let next = Vector::<bool>::new(3).unwrap();
        ctx.vxm(
            &next,
            &visited,
            NoAccum,
            lor_land(),
            &frontier,
            &adj,
            &Descriptor::default().complement_mask().replace(),
        )
        .unwrap();
        // frontier {1} reaches {0, 2}; visited {0,1} masked out -> {2}
        assert_eq!(next.extract_tuples().unwrap(), vec![(2, true)]);
    }

    #[test]
    fn accumulate_into_vector() {
        let ctx = Context::blocking();
        let u = Vector::from_dense(&[1, 1, 1]).unwrap();
        let w = Vector::from_tuples(2, &[(0, 100)]).unwrap();
        ctx.mxv(
            &w,
            NoMask,
            Accum(Plus::<i32>::new()),
            plus_times::<i32>(),
            &a(),
            &u,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 103), (1, 3)]);
    }

    #[test]
    fn dimension_errors() {
        let ctx = Context::blocking();
        let u = Vector::from_dense(&[1, 1]).unwrap(); // wrong size
        let w = Vector::<i32>::new(2).unwrap();
        assert!(matches!(
            ctx.mxv(
                &w,
                NoMask,
                NoAccum,
                plus_times::<i32>(),
                &a(),
                &u,
                &Descriptor::default()
            ),
            Err(Error::DimensionMismatch(_))
        ));
        let u3 = Vector::from_dense(&[1, 1, 1]).unwrap();
        let w_bad = Vector::<i32>::new(3).unwrap();
        assert!(matches!(
            ctx.mxv(
                &w_bad,
                NoMask,
                NoAccum,
                plus_times::<i32>(),
                &a(),
                &u3,
                &Descriptor::default()
            ),
            Err(Error::DimensionMismatch(_))
        ));
        assert!(matches!(
            ctx.vxm(
                &w_bad,
                NoMask,
                NoAccum,
                plus_times::<i32>(),
                &u3,
                &a(),
                &Descriptor::default()
            ),
            Err(Error::DimensionMismatch(_))
        ));
    }
}
