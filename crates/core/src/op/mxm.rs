//! `GrB_mxm`: `C<Mask> ⊙= A ⊕.⊗ B` (paper, Figure 2).

use std::any::Any;
use std::sync::Arc;

use crate::accum::Accumulate;
use crate::algebra::binary::BinaryOp;
use crate::algebra::semiring::Semiring;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::fuse::MatProducer;
use crate::exec::{Completable, Context};
use crate::kernel::mxm::{mxm as mxm_kernel, mxm_dot, mxm_hyper, mxm_tiled, MxmStrategy};
use crate::kernel::write::write_matrix;
use crate::mask::MaskCsr;
use crate::object::mask_arg::MatrixMask;
use crate::object::matrix::oriented_storage;
use crate::object::Matrix;
use crate::op::{check_mask_dims2, effective_dims};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;
use crate::storage::engine::{Layout, MatrixStore};

impl Context {
    /// `GrB_mxm(C, Mask, accum, op, A, B, desc)`: matrix–matrix multiply
    /// over a semiring.
    ///
    /// * `mask` — [`NoMask`](crate::mask::NoMask) or `&Matrix<M>`; the
    ///   descriptor's `GrB_SCMP`/`GrB_STRUCTURE` flags apply.
    /// * `accum` — [`NoAccum`](crate::accum::NoAccum) or
    ///   [`Accum(op)`](crate::accum::Accum).
    /// * `desc` — `GrB_INP0`/`GrB_INP1 = GrB_TRAN` transpose the inputs;
    ///   `GrB_OUTP = GrB_REPLACE` clears unmasked output positions.
    ///
    /// Masked products are computed only at admitted positions; strongly
    /// masked products switch to dot-product form automatically.
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn mxm<D1, D2, D3, S, Ac, Mk>(
        &self,
        c: &Matrix<D3>,
        mask: Mk,
        accum: Ac,
        semiring: S,
        a: &Matrix<D1>,
        b: &Matrix<D2>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        D1: Scalar,
        D2: Scalar,
        D3: Scalar,
        S: Semiring<D1, D2, D3>,
        Ac: Accumulate<D3>,
        Mk: MatrixMask,
    {
        // --- eager API-error checks (both modes, arguments untouched) ---
        let tr_a = desc.is_first_transposed();
        let tr_b = desc.is_second_transposed();
        let (am, ak) = effective_dims(a, tr_a);
        let (bk, bn) = effective_dims(b, tr_b);
        dim_check(ak == bk, || {
            format!("mxm inner dimensions differ: {am}x{ak} times {bk}x{bn}")
        })?;
        dim_check(c.shape() == (am, bn), || {
            format!(
                "mxm output is {}x{} but product is {am}x{bn}",
                c.nrows(),
                c.ncols()
            )
        })?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        // --- snapshot inputs, build the deferred thunk ---
        let a_node = a.capture();
        let b_node = b.capture();
        let msnap = mask.snap(desc);
        let c_old_cap = crate::op::OldMatrix::capture(
            c,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _, b_node.clone() as _];
        deps.extend(c_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        // The hypersparse fast path bypasses the write stage, so it is
        // only taken when that stage is the identity: no accumulator and
        // nothing excludable by the mask (replace with no mask is a plain
        // overwrite).
        let write_is_identity = !Ac::IS_ACCUM && msnap.is_all();

        // The internal product `T = A ⊕.⊗ B` under a write mask, shared
        // between the unfused evaluator and the node's fusion face (where
        // a downstream consumer's mask gets pushed down into it).
        let product = {
            let (a_node, b_node) = (a_node.clone(), b_node.clone());
            let semiring = semiring.clone();
            move |mcsr: &MaskCsr| -> Result<Csr<D3>> {
                let a_st = oriented_storage(&a_node, tr_a)?;
                let b_st = oriented_storage(&b_node, tr_b)?;

                // Strongly masked products: switch to dot-product form when
                // the admitted set is far smaller than the scatter flop
                // count — or as soon as it's merely no larger, when B's
                // transposed view is already materialized (a Csc store or a
                // cached conversion) and the dot form costs no transpose.
                let t = match mcsr {
                    MaskCsr::Pattern {
                        pattern,
                        complement: false,
                    } if pattern.nvals() > 0 => {
                        let flops: usize = a_st.col_idx().iter().map(|&k| b_st.row_nvals(k)).sum();
                        let bt_free = b_node.ready_storage()?.csr_view_ready(!tr_b);
                        if pattern.nvals() * 16 <= flops || (bt_free && pattern.nvals() <= flops) {
                            // B^T comes from the store's memoized column
                            // view; if the descriptor already transposed B,
                            // the effective B^T is B itself.
                            let bt_st = oriented_storage(&b_node, !tr_b)?;
                            mxm_dot(&semiring, &a_st, &bt_st, pattern)
                        } else {
                            mxm_kernel(&semiring, &a_st, &b_st, mcsr, MxmStrategy::Auto)
                        }
                    }
                    _ => mxm_kernel(&semiring, &a_st, &b_st, mcsr, MxmStrategy::Auto),
                };

                if let Some(e) = semiring
                    .add()
                    .poll_error()
                    .or_else(|| semiring.mul().poll_error())
                {
                    return Err(e);
                }
                Ok(t)
            }
        };

        let eval = {
            let product = product.clone();
            move || {
                // Hypersparse fast path: A stored hypersparse and used
                // untransposed — walk only its non-empty rows and emit a
                // hypersparse store directly, skipping the O(nrows) CSR
                // assembly entirely.
                if write_is_identity && !tr_a {
                    if let Layout::Hyper(a_hyper) = a_node.ready_storage()?.layout() {
                        let a_hyper = a_hyper.clone();
                        let b_st = oriented_storage(&b_node, tr_b)?;
                        let t = mxm_hyper(&semiring, &a_hyper, &b_st, &MaskCsr::All);
                        if let Some(e) = semiring
                            .add()
                            .poll_error()
                            .or_else(|| semiring.mul().poll_error())
                        {
                            return Err(e);
                        }
                        return Ok(MatrixStore::hyper(t));
                    }
                    // Tiled fast path: walk A's tile grid directly instead
                    // of assembling a slab view first. Per-row gather order
                    // is ascending k, so the product is bitwise-identical
                    // to the slab kernel's.
                    if let Layout::Tiled(a_tiled) = a_node.ready_storage()?.layout() {
                        let a_tiled = a_tiled.clone();
                        let b_st = oriented_storage(&b_node, tr_b)?;
                        let t = mxm_tiled(&semiring, &a_tiled, &b_st, &MaskCsr::All);
                        if let Some(e) = semiring
                            .add()
                            .poll_error()
                            .or_else(|| semiring.mul().poll_error())
                        {
                            return Err(e);
                        }
                        return Ok(MatrixStore::csr(t));
                    }
                }

                let c_old = c_old_cap.storage()?;
                let mcsr = msnap.materialize()?;
                let t = product(&mcsr)?;
                let out = write_matrix(&c_old, t, &accum, &mcsr, replace);
                if let Some(e) = accum.poll_error() {
                    return Err(e);
                }
                Ok(MatrixStore::csr(out))
            }
        };
        let face_deps: Vec<Arc<dyn Completable>> = deps.clone();
        let Some(node) = self.submit_matrix_store_fusable("mxm", c, deps, Box::new(eval))? else {
            return Ok(());
        };
        if write_is_identity {
            // Pure product: downstream consumers may recompute it under
            // their own write mask (rewrite 3, the masked-SpGEMM win) or
            // fold a unary op into its output stage (rewrite 2).
            node.set_fuse_face(Arc::new(MatProducer::<D3> {
                deps: face_deps,
                compute: Arc::new(product),
                maskable: true,
                lazy: None,
                dot: None,
                kind: "mxm",
            }) as Arc<dyn Any + Send + Sync>);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::{Accum, NoAccum};
    use crate::algebra::binary::Plus;
    use crate::algebra::semiring::plus_times;
    use crate::error::Error;
    use crate::mask::NoMask;

    fn m(t: &[(usize, usize, i32)], r: usize, c: usize) -> Matrix<i32> {
        Matrix::from_tuples(r, c, t).unwrap()
    }

    #[test]
    fn basic_product() {
        let ctx = Context::blocking();
        let a = m(&[(0, 0, 1), (0, 1, 2), (1, 1, 3)], 2, 2);
        let b = m(&[(0, 0, 4), (1, 0, 5), (1, 1, 6)], 2, 2);
        let c = Matrix::<i32>::new(2, 2).unwrap();
        ctx.mxm(
            &c,
            NoMask,
            NoAccum,
            plus_times::<i32>(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            c.extract_tuples().unwrap(),
            vec![(0, 0, 14), (0, 1, 12), (1, 0, 15), (1, 1, 18)]
        );
    }

    #[test]
    fn dimension_mismatch_is_eager_api_error() {
        let ctx = Context::nonblocking();
        let a = m(&[(0, 0, 1)], 2, 3);
        let b = m(&[(0, 0, 1)], 2, 2); // inner mismatch: 3 vs 2
        let c = Matrix::<i32>::new(2, 2).unwrap();
        let e = ctx
            .mxm(
                &c,
                NoMask,
                NoAccum,
                plus_times::<i32>(),
                &a,
                &b,
                &Descriptor::default(),
            )
            .unwrap_err();
        assert!(matches!(e, Error::DimensionMismatch(_)));
        // output untouched (still empty, still valid)
        assert_eq!(c.nvals().unwrap(), 0);
    }

    #[test]
    fn transpose_descriptor_fixes_dimensions() {
        let ctx = Context::blocking();
        let a = m(&[(0, 1, 2)], 3, 2); // A: 3x2, A^T: 2x3
        let b = m(&[(2, 0, 5)], 3, 2);
        let c = Matrix::<i32>::new(2, 2).unwrap();
        // C = A^T * B requires INP0 transposed
        ctx.mxm(
            &c,
            NoMask,
            NoAccum,
            plus_times::<i32>(),
            &a,
            &b,
            &Descriptor::default().transpose_first(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![]);
        // with a value on the path: A^T(1,0)*B(0,?) etc.
        let a = m(&[(0, 1, 2)], 3, 2);
        let b = m(&[(0, 0, 5)], 3, 2);
        ctx.mxm(
            &c,
            NoMask,
            NoAccum,
            plus_times::<i32>(),
            &a,
            &b,
            &Descriptor::default().transpose_first(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(1, 0, 10)]);
    }

    #[test]
    fn accumulate_into_existing_output() {
        let ctx = Context::blocking();
        let a = m(&[(0, 0, 2)], 1, 1);
        let b = m(&[(0, 0, 3)], 1, 1);
        let c = m(&[(0, 0, 100)], 1, 1);
        ctx.mxm(
            &c,
            NoMask,
            Accum(Plus::<i32>::new()),
            plus_times::<i32>(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(c.get(0, 0).unwrap(), Some(106));
    }

    #[test]
    fn masked_product_with_replace() {
        let ctx = Context::blocking();
        let a = m(&[(0, 0, 1), (1, 0, 1)], 2, 1);
        let b = m(&[(0, 0, 7), (0, 1, 8)], 1, 2);
        let c = m(&[(0, 0, 50)], 2, 2);
        let mask = m(&[(0, 1, 1), (1, 0, 1)], 2, 2);
        ctx.mxm(
            &c,
            &mask,
            NoAccum,
            plus_times::<i32>(),
            &a,
            &b,
            &Descriptor::default().replace(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(0, 1, 8), (1, 0, 7)]);
    }

    #[test]
    fn aliased_output_and_input_uses_snapshot() {
        // C = C * C is well defined here: inputs are pre-call snapshots
        let ctx = Context::blocking();
        let c = m(&[(0, 1, 1), (1, 0, 1)], 2, 2);
        ctx.mxm(
            &c,
            NoMask,
            NoAccum,
            plus_times::<i32>(),
            &c,
            &c,
            &Descriptor::default(),
        )
        .unwrap();
        // [[0,1],[1,0]]^2 = I
        assert_eq!(c.extract_tuples().unwrap(), vec![(0, 0, 1), (1, 1, 1)]);
    }

    #[test]
    fn nonblocking_defers_and_wait_completes() {
        let ctx = Context::nonblocking();
        let a = m(&[(0, 0, 2)], 1, 1);
        let b = m(&[(0, 0, 3)], 1, 1);
        let c = Matrix::<i32>::new(1, 1).unwrap();
        ctx.mxm(
            &c,
            NoMask,
            NoAccum,
            plus_times::<i32>(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert!(!c.is_complete());
        ctx.wait().unwrap();
        assert!(c.is_complete());
        assert_eq!(c.get(0, 0).unwrap(), Some(6));
    }

    #[test]
    fn mask_dimension_mismatch_rejected() {
        let ctx = Context::blocking();
        let a = m(&[(0, 0, 1)], 2, 2);
        let c = Matrix::<i32>::new(2, 2).unwrap();
        let mask = m(&[(0, 0, 1)], 3, 2);
        let e = ctx
            .mxm(
                &c,
                &mask,
                NoAccum,
                plus_times::<i32>(),
                &a,
                &a,
                &Descriptor::default(),
            )
            .unwrap_err();
        assert!(matches!(e, Error::DimensionMismatch(_)));
    }
}
