//! `GrB_reduce` (Table II): fold matrix rows into a vector with a monoid
//! (`w ⊙= ⊕_j A(:,j)`), or fold a whole collection to a scalar.
//!
//! Scalar reductions export to non-opaque data, so they force completion
//! and execute immediately in every mode (paper §IV).

use crate::accum::Accumulate;
use crate::algebra::monoid::Monoid;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::fuse::{face_as, FusedNote, MatProducer, VecProducer};
use crate::exec::{force, Completable, Context};
use crate::kernel::reduce::{reduce_matrix_scalar, reduce_rows, reduce_vector_scalar};
use crate::kernel::write::write_vector;
use crate::object::mask_arg::VectorMask;
use crate::object::matrix::oriented_storage;
use crate::object::{Matrix, Vector};
use crate::op::{check_mask_dims1, effective_dims};
use crate::scalar::Scalar;

impl Context {
    /// Rewrite 4 (`exec::fuse`): a scalar reduce of a pending producer
    /// that exposes an emission form folds element-by-element without
    /// materializing the intermediate — the fused form of a dot product
    /// written as `eWiseMult` + `reduce`. The producer node is left
    /// pending (its value was never needed); forcing it later still
    /// works. Returns `None` when the rewrite doesn't apply.
    fn try_fused_reduce_matrix<T, M>(&self, monoid: &M, a: &Matrix<T>) -> Option<Result<T>>
    where
        T: Scalar,
        M: Monoid<T>,
    {
        if !self.fusion_active() {
            return None;
        }
        let node = a.capture();
        if node.is_complete() {
            return None;
        }
        let face = face_as::<MatProducer<T>>(node.fuse_face()?)?;
        let dot = face.dot.clone()?;
        // Complete the producer's own inputs first; a failure among them
        // surfaces through the emission's dependency reads with §V's
        // exact invalid-object wording, same as the unfused path.
        for d in &face.deps {
            let _ = force(d);
        }
        let mut acc = monoid.identity();
        let folded = dot(&mut |x| acc = monoid.apply(&acc, &x));
        Some(
            match folded.and_then(|()| match monoid.poll_error() {
                Some(e) => Err(e),
                None => Ok(()),
            }) {
                Err(e) => {
                    self.record_error(&e);
                    Err(e)
                }
                Ok(()) => {
                    self.record_fused(FusedNote {
                        rewrite: "dot-reduce",
                        producer: face.kind,
                        consumer: "reduce",
                    });
                    Ok(acc)
                }
            },
        )
    }

    /// Vector counterpart of [`Context::try_fused_reduce_matrix`].
    fn try_fused_reduce_vector<T, M>(&self, monoid: &M, u: &Vector<T>) -> Option<Result<T>>
    where
        T: Scalar,
        M: Monoid<T>,
    {
        if !self.fusion_active() {
            return None;
        }
        let node = u.capture();
        if node.is_complete() {
            return None;
        }
        let face = face_as::<VecProducer<T>>(node.fuse_face()?)?;
        let dot = face.dot.clone()?;
        for d in &face.deps {
            let _ = force(d);
        }
        let mut acc = monoid.identity();
        let folded = dot(&mut |x| acc = monoid.apply(&acc, &x));
        Some(
            match folded.and_then(|()| match monoid.poll_error() {
                Some(e) => Err(e),
                None => Ok(()),
            }) {
                Err(e) => {
                    self.record_error(&e);
                    Err(e)
                }
                Ok(()) => {
                    self.record_fused(FusedNote {
                        rewrite: "dot-reduce",
                        producer: face.kind,
                        consumer: "reduce",
                    });
                    Ok(acc)
                }
            },
        )
    }
    /// `GrB_reduce` (matrix → vector): `w<mask> ⊙= ⊕_j A(:,j)` — one
    /// entry per non-empty row. `GrB_INP0 = GrB_TRAN` reduces columns
    /// instead.
    pub fn reduce_rows<T, M, Ac, Mk>(
        &self,
        w: &Vector<T>,
        mask: Mk,
        accum: Ac,
        monoid: M,
        a: &Matrix<T>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        M: Monoid<T>,
        Ac: Accumulate<T>,
        Mk: VectorMask,
    {
        let tr_a = desc.is_first_transposed();
        let (am, _) = effective_dims(a, tr_a);
        dim_check(w.size() == am, || {
            format!(
                "reduce output has size {} but matrix has {am} rows",
                w.size()
            )
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let a_node = a.capture();
        let msnap = mask.snap(desc);
        let w_old_cap = crate::op::OldVector::capture(
            w,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _];
        deps.extend(w_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let a_st = oriented_storage(&a_node, tr_a)?;
            let w_old = w_old_cap.storage()?;
            let mvec = msnap.materialize()?;
            let t = reduce_rows(&a_st, &monoid);
            if let Some(e) = monoid.poll_error() {
                return Err(e);
            }
            let out = write_vector(&w_old, t, &accum, &mvec, replace);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(out)
        };
        self.submit_vector("reduce", w, deps, Box::new(eval))
    }

    /// `GrB_reduce` (matrix → scalar): `⊕` over every stored element;
    /// the monoid identity if the matrix is empty. Forces completion.
    pub fn reduce_matrix_to_scalar<T, M>(&self, monoid: M, a: &Matrix<T>) -> Result<T>
    where
        T: Scalar,
        M: Monoid<T>,
    {
        if let Some(r) = self.try_fused_reduce_matrix(&monoid, a) {
            return r;
        }
        let st = a.forced_storage().inspect_err(|e| self.record_error(e))?;
        let v = reduce_matrix_scalar(&st.row_csr(), &monoid);
        match monoid.poll_error() {
            Some(e) => {
                self.record_error(&e);
                Err(e)
            }
            None => Ok(v),
        }
    }

    /// `GrB_reduce` (vector → scalar). Forces completion.
    pub fn reduce_vector_to_scalar<T, M>(&self, monoid: M, u: &Vector<T>) -> Result<T>
    where
        T: Scalar,
        M: Monoid<T>,
    {
        if let Some(r) = self.try_fused_reduce_vector(&monoid, u) {
            return r;
        }
        let st = u.forced_storage().inspect_err(|e| self.record_error(e))?;
        let v = reduce_vector_scalar(&st, &monoid);
        match monoid.poll_error() {
            Some(e) => {
                self.record_error(&e);
                Err(e)
            }
            None => Ok(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::{Accum, NoAccum};
    use crate::algebra::binary::Plus;
    use crate::algebra::monoid::{MaxMonoid, PlusMonoid};
    use crate::mask::NoMask;

    fn a() -> Matrix<f32> {
        Matrix::from_tuples(3, 2, &[(0, 0, 1.0), (0, 1, 2.0), (2, 1, 4.0)]).unwrap()
    }

    #[test]
    fn row_reduce() {
        let ctx = Context::blocking();
        let w = Vector::<f32>::new(3).unwrap();
        ctx.reduce_rows(
            &w,
            NoMask,
            NoAccum,
            PlusMonoid::new(),
            &a(),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 3.0), (2, 4.0)]);
    }

    #[test]
    fn column_reduce_via_transpose() {
        let ctx = Context::blocking();
        let w = Vector::<f32>::new(2).unwrap();
        ctx.reduce_rows(
            &w,
            NoMask,
            NoAccum,
            PlusMonoid::new(),
            &a(),
            &Descriptor::default().transpose_first(),
        )
        .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 1.0), (1, 6.0)]);
    }

    #[test]
    fn fig3_line78_reduce_with_accum() {
        // GrB_reduce(delta, NULL, GrB_PLUS_FP32, GrB_PLUS_FP32, bcu, NULL)
        // where delta was pre-filled with -nsver
        let ctx = Context::blocking();
        let delta = Vector::from_dense(&[-2.0f32, -2.0, -2.0]).unwrap();
        ctx.reduce_rows(
            &delta,
            NoMask,
            Accum(Plus::<f32>::new()),
            PlusMonoid::new(),
            &a(),
            &Descriptor::default(),
        )
        .unwrap();
        // row sums {0:3, 2:4} accumulated into -2 fills; row 1 untouched
        assert_eq!(
            delta.extract_tuples().unwrap(),
            vec![(0, 1.0), (1, -2.0), (2, 2.0)]
        );
    }

    #[test]
    fn scalar_reductions() {
        let ctx = Context::blocking();
        assert_eq!(
            ctx.reduce_matrix_to_scalar(PlusMonoid::<f32>::new(), &a())
                .unwrap(),
            7.0
        );
        assert_eq!(
            ctx.reduce_matrix_to_scalar(MaxMonoid::<f32>::new(), &a())
                .unwrap(),
            4.0
        );
        let v = Vector::from_tuples(4, &[(1, 5i64), (2, 6)]).unwrap();
        assert_eq!(
            ctx.reduce_vector_to_scalar(PlusMonoid::<i64>::new(), &v)
                .unwrap(),
            11
        );
        let empty = Matrix::<f32>::new(2, 2).unwrap();
        assert_eq!(
            ctx.reduce_matrix_to_scalar(PlusMonoid::<f32>::new(), &empty)
                .unwrap(),
            0.0
        );
    }

    #[test]
    fn scalar_reduce_forces_deferred_work() {
        use crate::algebra::semiring::plus_times;
        let ctx = Context::nonblocking();
        let x = Matrix::from_tuples(1, 1, &[(0, 0, 3i64)]).unwrap();
        let y = Matrix::<i64>::new(1, 1).unwrap();
        ctx.mxm(
            &y,
            NoMask,
            NoAccum,
            plus_times::<i64>(),
            &x,
            &x,
            &Descriptor::default(),
        )
        .unwrap();
        assert!(!y.is_complete());
        // scalar reduce must force y
        let s = ctx
            .reduce_matrix_to_scalar(PlusMonoid::<i64>::new(), &y)
            .unwrap();
        assert_eq!(s, 9);
        assert!(y.is_complete());
    }
}
