//! `GrB_kronecker` (documented extension; GraphBLAS 1.3):
//! `C<Mask> ⊙= kron(A, B)` — the Kronecker product
//! `C(i1·m2 + i2, j1·n2 + j2) = A(i1, j1) ⊗ B(i2, j2)`.
//!
//! The Kronecker product is the generator of Kronecker/RMAT graphs, so
//! this operation lets the benchmark workloads themselves be produced in
//! the language of linear algebra.

use crate::accum::Accumulate;
use crate::algebra::binary::BinaryOp;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::Context;
use crate::index::Index;
use crate::kernel::util::{assemble_rows, map_rows};
use crate::kernel::write::write_matrix;
use crate::object::mask_arg::MatrixMask;
use crate::object::matrix::oriented_storage;
use crate::object::Matrix;
use crate::op::{check_mask_dims2, effective_dims};
use crate::scalar::Scalar;
use crate::storage::csr::Csr;

/// The Kronecker-product kernel: row `i` of the result interleaves row
/// `i / m2` of `A` with row `i % m2` of `B`.
fn kron_kernel<D1, D2, D3, F>(a: &Csr<D1>, b: &Csr<D2>, mul: &F) -> Csr<D3>
where
    D1: Scalar,
    D2: Scalar,
    D3: Scalar,
    F: BinaryOp<D1, D2, D3>,
{
    let (m2, n2) = (b.nrows(), b.ncols());
    let nrows = a.nrows() * m2;
    let ncols = a.ncols() * n2;
    let rows = map_rows(nrows, a.nvals().saturating_mul(b.nvals()), |i| {
        let (i1, i2) = (i / m2, i % m2);
        let (ac, av) = a.row(i1);
        let (bc, bv) = b.row(i2);
        let mut cols: Vec<Index> = Vec::with_capacity(ac.len() * bc.len());
        let mut vals: Vec<D3> = Vec::with_capacity(ac.len() * bc.len());
        for (j1, x) in ac.iter().zip(av) {
            for (j2, y) in bc.iter().zip(bv) {
                cols.push(j1 * n2 + j2);
                vals.push(mul.apply(x, y));
            }
        }
        (cols, vals)
    });
    assemble_rows(nrows, ncols, rows)
}

impl Context {
    /// `GrB_kronecker(C, Mask, accum, op, A, B, desc)`.
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn kronecker<D1, D2, D3, F, Ac, Mk>(
        &self,
        c: &Matrix<D3>,
        mask: Mk,
        accum: Ac,
        mul: F,
        a: &Matrix<D1>,
        b: &Matrix<D2>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        D1: Scalar,
        D2: Scalar,
        D3: Scalar,
        F: BinaryOp<D1, D2, D3>,
        Ac: Accumulate<D3>,
        Mk: MatrixMask,
    {
        let tr_a = desc.is_first_transposed();
        let tr_b = desc.is_second_transposed();
        let (am, an) = effective_dims(a, tr_a);
        let (bm, bn) = effective_dims(b, tr_b);
        dim_check(c.shape() == (am * bm, an * bn), || {
            format!(
                "kronecker output is {:?} but result is {}x{}",
                c.shape(),
                am * bm,
                an * bn
            )
        })?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        let a_node = a.capture();
        let b_node = b.capture();
        let msnap = mask.snap(desc);
        let c_old_cap = crate::op::OldMatrix::capture(
            c,
            Ac::IS_ACCUM || (!msnap.is_all() && !desc.is_replace()),
        );
        let mut deps: Vec<_> = vec![a_node.clone() as _, b_node.clone() as _];
        deps.extend(c_old_cap.dep());
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let a_st = oriented_storage(&a_node, tr_a)?;
            let b_st = oriented_storage(&b_node, tr_b)?;
            let c_old = c_old_cap.storage()?;
            let mcsr = msnap.materialize()?;
            let t = kron_kernel(&a_st, &b_st, &mul);
            if let Some(e) = mul.poll_error() {
                return Err(e);
            }
            let out = write_matrix(&c_old, t, &accum, &mcsr, replace);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(out)
        };
        self.submit_matrix("kronecker", c, deps, Box::new(eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::NoAccum;
    use crate::algebra::binary::Times;
    use crate::mask::NoMask;

    #[test]
    fn small_kronecker_product() {
        let ctx = Context::blocking();
        let a = Matrix::from_tuples(2, 2, &[(0, 0, 2), (1, 1, 3)]).unwrap();
        let b = Matrix::from_tuples(2, 2, &[(0, 1, 5), (1, 0, 7)]).unwrap();
        let c = Matrix::<i32>::new(4, 4).unwrap();
        ctx.kronecker(
            &c,
            NoMask,
            NoAccum,
            Times::<i32>::new(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            c.extract_tuples().unwrap(),
            vec![(0, 1, 10), (1, 0, 14), (2, 3, 15), (3, 2, 21)]
        );
    }

    #[test]
    fn kronecker_grows_a_graph() {
        // kron of a 2-cycle with itself: the 4-vertex graph of pairs
        let ctx = Context::blocking();
        let k2 = Matrix::from_tuples(2, 2, &[(0, 1, true), (1, 0, true)]).unwrap();
        let c = Matrix::<bool>::new(4, 4).unwrap();
        ctx.kronecker(
            &c,
            NoMask,
            NoAccum,
            crate::algebra::binary::LAnd,
            &k2,
            &k2,
            &Descriptor::default(),
        )
        .unwrap();
        // edges (0,1)x(0,1): (0*2+0 -> 1*2+1) etc.
        assert_eq!(
            c.extract_tuples().unwrap(),
            vec![(0, 3, true), (1, 2, true), (2, 1, true), (3, 0, true)]
        );
    }

    #[test]
    fn rectangular_dims_and_errors() {
        let ctx = Context::blocking();
        let a = Matrix::from_tuples(2, 3, &[(0, 2, 1)]).unwrap();
        let b = Matrix::from_tuples(3, 2, &[(2, 0, 1)]).unwrap();
        let c = Matrix::<i32>::new(6, 6).unwrap();
        ctx.kronecker(
            &c,
            NoMask,
            NoAccum,
            Times::<i32>::new(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(2, 4, 1)]);
        let wrong = Matrix::<i32>::new(5, 5).unwrap();
        assert!(ctx
            .kronecker(
                &wrong,
                NoMask,
                NoAccum,
                Times::<i32>::new(),
                &a,
                &b,
                &Descriptor::default()
            )
            .is_err());
    }

    #[test]
    fn kron_is_the_rmat_generator_step() {
        // kron^2 of a seed "initiator" yields the classic Kronecker-graph
        // pattern: nnz multiplies
        let ctx = Context::blocking();
        let seed = Matrix::from_tuples(2, 2, &[(0, 0, 1), (0, 1, 1), (1, 1, 1)]).unwrap();
        let k2 = Matrix::<i32>::new(4, 4).unwrap();
        ctx.kronecker(
            &k2,
            NoMask,
            NoAccum,
            Times::<i32>::new(),
            &seed,
            &seed,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(k2.nvals().unwrap(), 9);
        let k3 = Matrix::<i32>::new(8, 8).unwrap();
        ctx.kronecker(
            &k3,
            NoMask,
            NoAccum,
            Times::<i32>::new(),
            &k2,
            &seed,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(k3.nvals().unwrap(), 27);
    }
}
