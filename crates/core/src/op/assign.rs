//! `GrB_assign` (Table II): `C<Mask>(rows, cols) ⊙= A` and the
//! scalar-fill variants (`C<Mask>(rows, cols) ⊙= value`).
//!
//! The mask spans the *whole* output (not just the assigned region), and
//! `GrB_REPLACE` clears unmasked positions across the whole output —
//! assign's write stage is the ordinary Figure 2 pipeline applied to
//! `Z = C-with-region-updated`.

use crate::accum::Accumulate;
use crate::descriptor::Descriptor;
use crate::error::{dim_check, Result};
use crate::exec::Context;
use crate::index::{Index, IndexSelection};
use crate::kernel::assign::{
    assign_matrix, assign_scalar_matrix, assign_scalar_vector, assign_vector,
};
use crate::kernel::write::{write_matrix, write_vector};
use crate::mask::MaskVec;
use crate::object::mask_arg::{MatrixMask, VectorMask};
use crate::object::matrix::oriented_storage;
use crate::object::{Matrix, Vector};
use crate::op::{check_mask_dims1, check_mask_dims2, check_no_duplicates, effective_dims};
use crate::scalar::Scalar;
use crate::storage::vec::SparseVec;

impl Context {
    /// `GrB_assign` (matrix): `C<Mask>(rows, cols) ⊙= A`.
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn assign_matrix<T, Ac, Mk>(
        &self,
        c: &Matrix<T>,
        mask: Mk,
        accum: Ac,
        a: &Matrix<T>,
        rows: IndexSelection<'_>,
        cols: IndexSelection<'_>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        Ac: Accumulate<T>,
        Mk: MatrixMask,
    {
        let tr_a = desc.is_first_transposed();
        let (am, an) = effective_dims(a, tr_a);
        let rows = rows.resolve(c.nrows())?;
        let cols = cols.resolve(c.ncols())?;
        check_no_duplicates(&rows, "row")?;
        check_no_duplicates(&cols, "column")?;
        dim_check((am, an) == (rows.len(), cols.len()), || {
            format!(
                "assign source is {am}x{an} but target region is {}x{}",
                rows.len(),
                cols.len()
            )
        })?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        let (a_node, c_node) = (a.capture(), c.capture());
        let msnap = mask.snap(desc);
        let mut deps: Vec<_> = vec![a_node.clone() as _, c_node.clone() as _];
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let a_st = oriented_storage(&a_node, tr_a)?;
            let c_old = c_node.ready_storage()?.row_csr();
            let mcsr = msnap.materialize()?;
            let z = assign_matrix(&c_old, &a_st, &rows, &cols, &accum);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            // Z already embodies the accumulate semantics; the write stage
            // only applies the mask/replace selection against old C.
            Ok(write_matrix(
                &c_old,
                z,
                &crate::accum::NoAccum,
                &mcsr,
                replace,
            ))
        };
        self.submit_matrix("assign", c, deps, Box::new(eval))
    }

    /// `GrB_assign` (matrix, scalar fill): every position of the region
    /// receives `value` (Fig. 3 line 61: `bcu` filled with `1.0`).
    // the C operation signature: out, mask, accum, op, inputs, descriptor
    #[allow(clippy::too_many_arguments)]
    pub fn assign_scalar_matrix<T, Ac, Mk>(
        &self,
        c: &Matrix<T>,
        mask: Mk,
        accum: Ac,
        value: T,
        rows: IndexSelection<'_>,
        cols: IndexSelection<'_>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        Ac: Accumulate<T>,
        Mk: MatrixMask,
    {
        let rows = rows.resolve(c.nrows())?;
        let cols = cols.resolve(c.ncols())?;
        check_no_duplicates(&rows, "row")?;
        check_no_duplicates(&cols, "column")?;
        check_mask_dims2(mask.mask_dims(), c.shape())?;

        // A 1x1 no-accum unmasked scalar assign is exactly a point
        // update: route it through the O(1) pending-update buffer
        // instead of submitting a whole-output rewrite. (Skipped when a
        // test fault is armed, so the fault lands on a real submission.)
        if !Ac::IS_ACCUM
            && mask.mask_dims().is_none()
            && !desc.is_replace()
            && !desc.is_mask_complemented()
            && rows.len() == 1
            && cols.len() == 1
            && !self.has_fault()
        {
            return c.set(rows[0], cols[0], value);
        }

        let c_node = c.capture();
        let msnap = mask.snap(desc);
        let mut deps: Vec<_> = vec![c_node.clone() as _];
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let c_old = c_node.ready_storage()?.row_csr();
            let mcsr = msnap.materialize()?;
            let z = assign_scalar_matrix(&c_old, &value, &rows, &cols, &accum);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(write_matrix(
                &c_old,
                z,
                &crate::accum::NoAccum,
                &mcsr,
                replace,
            ))
        };
        self.submit_matrix("assign", c, deps, Box::new(eval))
    }

    /// `GrB_assign` (vector): `w<mask>(indices) ⊙= u`.
    pub fn assign_vector<T, Ac, Mk>(
        &self,
        w: &Vector<T>,
        mask: Mk,
        accum: Ac,
        u: &Vector<T>,
        indices: IndexSelection<'_>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        Ac: Accumulate<T>,
        Mk: VectorMask,
    {
        let indices = indices.resolve(w.size())?;
        check_no_duplicates(&indices, "vector")?;
        dim_check(u.size() == indices.len(), || {
            format!(
                "assign source has size {} but target region has {}",
                u.size(),
                indices.len()
            )
        })?;
        check_mask_dims1(mask.mask_size(), w.size())?;

        let (u_node, w_node) = (u.capture(), w.capture());
        let msnap = mask.snap(desc);
        let mut deps: Vec<_> = vec![u_node.clone() as _, w_node.clone() as _];
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let u_st = u_node.ready_storage()?;
            let w_old = w_node.ready_storage()?;
            let mvec = msnap.materialize()?;
            let z = assign_vector(&w_old, &u_st, &indices, &accum);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(write_vector(
                &w_old,
                z,
                &crate::accum::NoAccum,
                &mvec,
                replace,
            ))
        };
        self.submit_vector("assign", w, deps, Box::new(eval))
    }

    /// `GrB_assign` (vector, scalar fill) — Fig. 3 line 77: `delta`
    /// filled with `-nsver`.
    pub fn assign_scalar_vector<T, Ac, Mk>(
        &self,
        w: &Vector<T>,
        mask: Mk,
        accum: Ac,
        value: T,
        indices: IndexSelection<'_>,
        desc: &Descriptor,
    ) -> Result<()>
    where
        T: Scalar,
        Ac: Accumulate<T>,
        Mk: VectorMask,
    {
        check_mask_dims1(mask.mask_size(), w.size())?;

        // Whole-vector masked scalar fill (`w<mask> = value` over
        // `GrB_ALL`, the BFS `visited<q> = true` shape): the write stage
        // only reads Z at mask-admitted positions, so materializing ALL
        // and building the dense fill is O(n) of wasted work per call —
        // build Z straight from the mask pattern instead, making the
        // whole operation O(|mask| + nvals(w)).
        if !Ac::IS_ACCUM && mask.mask_size().is_some() && matches!(indices, IndexSelection::All) {
            let w_node = w.capture();
            let msnap = mask.snap(desc);
            let mut deps: Vec<_> = vec![w_node.clone() as _];
            deps.extend(msnap.deps());
            let replace = desc.is_replace();
            let eval = move || {
                let w_old = w_node.ready_storage()?;
                let mvec = msnap.materialize()?;
                let z = match &mvec {
                    MaskVec::Pattern {
                        indices,
                        complement: false,
                    } => SparseVec::from_sorted_parts(
                        w_old.size(),
                        indices.clone(),
                        vec![value.clone(); indices.len()],
                    ),
                    // complement (or absent) patterns admit O(n)
                    // positions anyway: keep the dense fill
                    _ => {
                        let all: Vec<Index> = (0..w_old.size()).collect();
                        assign_scalar_vector(&w_old, &value, &all, &crate::accum::NoAccum)
                    }
                };
                Ok(write_vector(
                    &w_old,
                    z,
                    &crate::accum::NoAccum,
                    &mvec,
                    replace,
                ))
            };
            return self.submit_vector("assign", w, deps, Box::new(eval));
        }

        let indices = indices.resolve(w.size())?;
        check_no_duplicates(&indices, "vector")?;

        // Single-index no-accum unmasked scalar assign == point update;
        // see assign_scalar_matrix.
        if !Ac::IS_ACCUM
            && mask.mask_size().is_none()
            && !desc.is_replace()
            && !desc.is_mask_complemented()
            && indices.len() == 1
            && !self.has_fault()
        {
            return w.set(indices[0], value);
        }

        let w_node = w.capture();
        let msnap = mask.snap(desc);
        let mut deps: Vec<_> = vec![w_node.clone() as _];
        deps.extend(msnap.deps());
        let replace = desc.is_replace();

        let eval = move || {
            let w_old = w_node.ready_storage()?;
            let mvec = msnap.materialize()?;
            let z = assign_scalar_vector(&w_old, &value, &indices, &accum);
            if let Some(e) = accum.poll_error() {
                return Err(e);
            }
            Ok(write_vector(
                &w_old,
                z,
                &crate::accum::NoAccum,
                &mvec,
                replace,
            ))
        };
        self.submit_vector("assign", w, deps, Box::new(eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::{Accum, NoAccum};
    use crate::algebra::binary::Plus;
    use crate::error::Error;
    use crate::index::ALL;
    use crate::mask::NoMask;

    #[test]
    fn fill_whole_matrix() {
        let ctx = Context::blocking();
        let bcu = Matrix::<f32>::new(3, 2).unwrap();
        ctx.assign_scalar_matrix(&bcu, NoMask, NoAccum, 1.0, ALL, ALL, &Descriptor::default())
            .unwrap();
        assert_eq!(bcu.nvals().unwrap(), 6);
        assert_eq!(bcu.get(2, 1).unwrap(), Some(1.0));
    }

    #[test]
    fn fill_vector_then_accumulate_reduction() {
        let ctx = Context::blocking();
        let delta = Vector::<f32>::new(4).unwrap();
        ctx.assign_scalar_vector(&delta, NoMask, NoAccum, -2.0, ALL, &Descriptor::default())
            .unwrap();
        assert_eq!(delta.to_dense().unwrap(), vec![Some(-2.0); 4]);
    }

    #[test]
    fn masked_whole_vector_fill_touches_only_admitted_positions() {
        // exercises the O(|mask|) GrB_ALL fast path: merge mode keeps
        // unmasked entries, replace mode drops them, complement masks
        // take the dense fallback — all three must agree with the
        // per-position semantics
        let ctx = Context::blocking();
        let mask = Vector::from_tuples(5, &[(1, true), (3, true), (4, false)]).unwrap();
        let w = Vector::from_tuples(5, &[(0, 9), (3, 9)]).unwrap();
        ctx.assign_scalar_vector(&w, &mask, NoAccum, 7, ALL, &Descriptor::default())
            .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 9), (1, 7), (3, 7)]);

        let w = Vector::from_tuples(5, &[(0, 9), (3, 9)]).unwrap();
        ctx.assign_scalar_vector(&w, &mask, NoAccum, 7, ALL, &Descriptor::default().replace())
            .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(1, 7), (3, 7)]);

        let w = Vector::from_tuples(5, &[(0, 9), (3, 9)]).unwrap();
        ctx.assign_scalar_vector(
            &w,
            &mask,
            NoAccum,
            7,
            ALL,
            &Descriptor::default().complement_mask(),
        )
        .unwrap();
        // complement of {1, 3}: value-false and absent positions admit
        assert_eq!(
            w.extract_tuples().unwrap(),
            vec![(0, 7), (2, 7), (3, 9), (4, 7)]
        );
    }

    #[test]
    fn assign_matrix_region() {
        let ctx = Context::blocking();
        let c = Matrix::from_tuples(3, 3, &[(0, 0, 1), (1, 1, 2), (2, 2, 3)]).unwrap();
        let a = Matrix::from_tuples(2, 2, &[(0, 0, 10), (1, 1, 20)]).unwrap();
        ctx.assign_matrix(
            &c,
            NoMask,
            NoAccum,
            &a,
            IndexSelection::List(&[0, 1]),
            IndexSelection::List(&[1, 2]),
            &Descriptor::default(),
        )
        .unwrap();
        // region rows{0,1} x cols{1,2}: A maps (0,0)->C(0,1)=10,
        // (1,1)->C(1,2)=20; old C(1,1) in region, A lacks it -> deleted
        assert_eq!(
            c.extract_tuples().unwrap(),
            vec![(0, 0, 1), (0, 1, 10), (1, 2, 20), (2, 2, 3)]
        );
    }

    #[test]
    fn assign_with_accum() {
        let ctx = Context::blocking();
        let w = Vector::from_tuples(3, &[(0, 5)]).unwrap();
        let u = Vector::from_tuples(2, &[(0, 1), (1, 2)]).unwrap();
        ctx.assign_vector(
            &w,
            NoMask,
            Accum(Plus::<i32>::new()),
            &u,
            IndexSelection::List(&[0, 2]),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(w.extract_tuples().unwrap(), vec![(0, 6), (2, 2)]);
    }

    #[test]
    fn masked_scalar_assign_with_replace() {
        let ctx = Context::blocking();
        let c = Matrix::from_tuples(2, 2, &[(0, 0, 9), (1, 1, 9)]).unwrap();
        let mask = Matrix::from_tuples(2, 2, &[(0, 0, true), (0, 1, true)]).unwrap();
        ctx.assign_scalar_matrix(
            &c,
            &mask,
            NoAccum,
            7,
            ALL,
            ALL,
            &Descriptor::default().replace(),
        )
        .unwrap();
        // Z = all-7s; admitted {(0,0),(0,1)} -> 7; replace clears the rest
        assert_eq!(c.extract_tuples().unwrap(), vec![(0, 0, 7), (0, 1, 7)]);
    }

    #[test]
    fn duplicate_target_indices_rejected() {
        let ctx = Context::blocking();
        let w = Vector::<i32>::new(3).unwrap();
        let u = Vector::<i32>::new(2).unwrap();
        assert!(matches!(
            ctx.assign_vector(
                &w,
                NoMask,
                NoAccum,
                &u,
                IndexSelection::List(&[1, 1]),
                &Descriptor::default()
            ),
            Err(Error::InvalidValue(_))
        ));
    }

    #[test]
    fn source_region_shape_mismatch() {
        let ctx = Context::blocking();
        let c = Matrix::<i32>::new(3, 3).unwrap();
        let a = Matrix::<i32>::new(2, 2).unwrap();
        assert!(matches!(
            ctx.assign_matrix(
                &c,
                NoMask,
                NoAccum,
                &a,
                IndexSelection::List(&[0]),
                IndexSelection::List(&[0, 1]),
                &Descriptor::default()
            ),
            Err(Error::DimensionMismatch(_))
        ));
    }

    #[test]
    fn assign_transposed_source() {
        let ctx = Context::blocking();
        let c = Matrix::<i32>::new(2, 3).unwrap();
        let a = Matrix::from_tuples(3, 2, &[(2, 0, 5)]).unwrap();
        ctx.assign_matrix(
            &c,
            NoMask,
            NoAccum,
            &a,
            ALL,
            ALL,
            &Descriptor::default().transpose_first(),
        )
        .unwrap();
        assert_eq!(c.extract_tuples().unwrap(), vec![(0, 2, 5)]);
    }
}
